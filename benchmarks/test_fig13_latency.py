"""Benchmark + validation of Fig. 13 (latency per multiply-add)."""

from repro.experiments.fig13 import run


class TestFig13:
    def test_regenerate_fig13(self, benchmark):
        points = benchmark(run)
        by_name = {p.architecture: p for p in points}
        # headline claims: PCS ~1.7x, FCS ~2.5x over the best baseline
        assert 1.5 <= by_name["pcs-fma"].speedup_vs_best_baseline <= 1.9
        assert 2.3 <= by_name["fcs-fma"].speedup_vs_best_baseline <= 2.8
        # latency ordering
        lat = {n: p.latency_ns for n, p in by_name.items()}
        assert lat["fcs-fma"] < lat["pcs-fma"] < lat["coregen"] \
            < lat["flopoco"]
        # every point within 5 % of the paper-derived value
        for p in points:
            assert abs(p.latency_ns - p.paper_latency_ns) \
                / p.paper_latency_ns < 0.05
