"""Scalar vs batched FMA throughput (the repro.batch acceptance gate).

Times the faithful digit-level models against the :mod:`repro.batch`
fast path on identical workloads, in operations per second, and asserts
the PR's headline claim: ``dot_batch`` over 4096 element pairs is at
least 5x faster than the scalar ``repro.fma.dotprod`` loop while
producing bit-identical results.

The speedup assertion runs even under ``--benchmark-disable`` (CI smoke
mode) -- it times with ``perf_counter`` directly so the gate cannot be
skipped by disabling the benchmark fixture.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from _timing import best_of, make_vectors
from repro.batch import (accelerate_engine, accumulate_batch, dot_batch,
                         fma_batch, kernel_for, vector_available)
from repro.fma import (CSFmaEngine, FcsFmaUnit, PcsFmaUnit,
                       run_recurrence)
from repro.fma.accumulator import PcsAccumulator
from repro.fma.dotprod import FusedDotProductUnit

N_DOT = 4096
MIN_SPEEDUP = 5.0

#: the paper-style 10x target for the NumPy lane engine; the enforced
#: floors below are what single-core NumPy sustains with margin on a
#: loaded CI box (measured ~4.4-5.3x pcs / ~2.9-3.7x fcs per lane).
VECTOR_TARGET_SPEEDUP = 10.0
MIN_VECTOR_SPEEDUP = {"pcs-fma": 3.0, "fcs-fma": 2.0}
N_VECTOR_LANES = 512
N_VECTOR_REF_LANES = 8

UNITS = [PcsFmaUnit(), FcsFmaUnit()]
unit_ids = ["pcs", "fcs"]

#: results archived to BENCH_vector.json by the module fixture.
RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def warm_kernels():
    """Compile the specialized CSA-tree variants once, outside timing
    (in production the module-level cache amortizes this)."""
    a, b = make_vectors(256, seed=99)
    for unit in UNITS:
        dot_batch(a, b, unit=unit)


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Archive the vector-lane measurements after the module runs."""
    yield
    if not RESULTS:
        return
    out = os.environ.get("BENCH_VECTOR_OUT", "BENCH_vector.json")
    doc = {"schema": "repro.vector.bench/1",
           "n_lanes": N_VECTOR_LANES,
           "dot_len": N_DOT,
           "target_speedup": VECTOR_TARGET_SPEEDUP,
           "gates": {u: {"min_speedup": g}
                     for u, g in MIN_VECTOR_SPEEDUP.items()},
           "units": RESULTS}
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


class TestDotThroughput:
    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_scalar_dot(self, benchmark, unit):
        a, b = make_vectors(256)
        out = benchmark(FusedDotProductUnit(unit).dot, a, b)
        assert out.is_normal

    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_batched_dot(self, benchmark, unit):
        a, b = make_vectors(256)
        out = benchmark(dot_batch, a, b, unit=unit)
        assert out.is_normal

    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_speedup_gate_4096(self, unit):
        """The acceptance criterion: >= 5x on a 4096-element dot product,
        bit-identical result."""
        a, b = make_vectors(N_DOT, seed=7)

        t0 = time.perf_counter()
        ref = FusedDotProductUnit(unit).dot(a, b)
        t_scalar = time.perf_counter() - t0

        best, fast = best_of(lambda: dot_batch(a, b, unit=unit))

        assert fast.cls == ref.cls
        assert fast.sign == ref.sign
        assert fast.biased_exponent == ref.biased_exponent
        assert fast.fraction == ref.fraction

        speedup = t_scalar / best
        rate = N_DOT / best
        print(f"\n{unit.name}: scalar {N_DOT / t_scalar:,.0f} op/s, "
              f"batched {rate:,.0f} op/s, speedup {speedup:.2f}x")
        assert speedup >= MIN_SPEEDUP, (
            f"{unit.name} dot_batch speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP}x gate")


class TestVectorDotThroughput:
    """The tentpole gate: the NumPy lane engine vs the tuple kernel on
    wide dot batches, bit-identical and materially faster per lane."""

    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_vector_speedup_gate(self, unit):
        if not vector_available():     # pragma: no cover - numpy baked in
            pytest.skip("NumPy vector engine unavailable")
        import numpy as np

        from repro.batch import vector_kernel_for
        from repro.fma.convert import cs_to_ieee
        from repro.serve.protocol import fp_to_word, word_to_fp

        vk = vector_kernel_for(unit)
        assert vk is not None

        # all-normal word planes: NaN/Inf lanes would defer (and a NaN
        # short-circuits the tuple chain, understating its cost).
        rng = np.random.default_rng(11)
        shape = (N_DOT, N_VECTOR_LANES)
        words = []
        for _ in range(2):
            sign = rng.integers(0, 2, shape, np.uint64) << np.uint64(63)
            exp = rng.integers(1023 - 40, 1023 + 41, shape, np.uint64)
            frac = rng.integers(0, 1 << 52, shape, np.uint64)
            words.append(sign | (exp << np.uint64(52)) | frac)
        a_words, b_words = words

        vk.dot_many_words(a_words[:8, :8], b_words[:8, :8])   # warm
        t0 = time.perf_counter()
        tuples = vk.dot_many_words(a_words, b_words)
        t_vector = time.perf_counter() - t0
        vec_ms = t_vector / N_VECTOR_LANES * 1e3

        # tuple-kernel baseline on a reference slice, best-of-2 (each
        # lane is ~4096 serial FMAs -- self-averaging enough that two
        # reps bound the noise), extrapolated per lane.
        ref_fp = [([word_to_fp(int(w)) for w in a_words[:, i]],
                   [word_to_fp(int(w)) for w in b_words[:, i]])
                  for i in range(N_VECTOR_REF_LANES)]

        def tuple_ref():
            return [dot_batch(a, b, unit=unit, backend="tuple")
                    for a, b in ref_fp]

        t_tuple, ref_out = best_of(tuple_ref, repeats=2)
        tuple_ms = t_tuple / N_VECTOR_REF_LANES * 1e3

        # bit-identity on the reference lanes
        lower = vk.kernel.lower
        for i, ref in enumerate(ref_out):
            got = fp_to_word(cs_to_ieee(lower(tuples[i])))
            assert got == fp_to_word(ref), (
                f"{unit.name} lane {i}: vector {got:#018x} != "
                f"tuple {fp_to_word(ref):#018x}")

        speedup = tuple_ms / vec_ms
        gate = MIN_VECTOR_SPEEDUP[unit.name]
        RESULTS[unit.name] = {
            "tuple_ms_per_lane": round(tuple_ms, 3),
            "vector_ms_per_lane": round(vec_ms, 3),
            "speedup": round(speedup, 2),
            "min_speedup": gate,
            "meets_10x_target": speedup >= VECTOR_TARGET_SPEEDUP}
        print(f"\n{unit.name}: tuple {tuple_ms:.2f} ms/lane, "
              f"vector {vec_ms:.2f} ms/lane, speedup {speedup:.2f}x "
              f"(gate {gate}x, target {VECTOR_TARGET_SPEEDUP}x)")
        assert speedup >= gate, (
            f"{unit.name} vector dot speedup {speedup:.2f}x below the "
            f"{gate}x gate")


class TestFmaThroughput:
    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_scalar_fma_loop(self, benchmark, unit):
        a, b = make_vectors(256, seed=3)
        c, _ = make_vectors(256, seed=4)
        out = benchmark(fma_batch, a, b, c, unit=unit, use_batch=False)
        assert len(out) == 256

    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_batched_fma(self, benchmark, unit):
        a, b = make_vectors(256, seed=3)
        c, _ = make_vectors(256, seed=4)
        out = benchmark(fma_batch, a, b, c, unit=unit)
        assert len(out) == 256


class TestAccumulatorThroughput:
    def test_scalar_accumulate(self, benchmark):
        a, b = make_vectors(512, seed=5, spread=20)

        def run():
            acc = PcsAccumulator()
            for ai, bi in zip(a, b):
                acc.accumulate(ai, bi)
            return acc

        acc = benchmark(run)
        assert acc.operations == 512

    def test_batched_accumulate(self, benchmark):
        a, b = make_vectors(512, seed=5, spread=20)
        acc = benchmark(lambda: accumulate_batch(a, b))
        assert acc.operations == 512


class TestEngineThroughput:
    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_scalar_recurrence(self, benchmark, unit, fig14_workload):
        b1, b2, x0 = fig14_workload
        out = benchmark(run_recurrence, CSFmaEngine(unit), b1, b2, x0,
                        len(b1))
        assert out.final is not None

    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_accelerated_recurrence(self, benchmark, unit, fig14_workload):
        b1, b2, x0 = fig14_workload
        engine = accelerate_engine(CSFmaEngine(unit))
        out = benchmark(run_recurrence, engine, b1, b2, x0, len(b1))
        assert out.final is not None


class TestMemoizedLookups:
    def test_synthesize_by_name_cached(self, benchmark):
        from repro.batch import clear_hw_caches
        from repro.hw.synthesis import synthesize_by_name

        clear_hw_caches()
        synthesize_by_name("pcs-fma")  # prime

        report = benchmark(synthesize_by_name, "pcs-fma")
        assert report.cycles > 0

    def test_kernel_lookup_cached(self):
        unit = FcsFmaUnit()
        assert kernel_for(unit) is kernel_for(unit)
