"""Scalar vs batched FMA throughput (the repro.batch acceptance gate).

Times the faithful digit-level models against the :mod:`repro.batch`
fast path on identical workloads, in operations per second, and asserts
the PR's headline claim: ``dot_batch`` over 4096 element pairs is at
least 5x faster than the scalar ``repro.fma.dotprod`` loop while
producing bit-identical results.

The speedup assertion runs even under ``--benchmark-disable`` (CI smoke
mode) -- it times with ``perf_counter`` directly so the gate cannot be
skipped by disabling the benchmark fixture.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.batch import (accelerate_engine, accumulate_batch, dot_batch,
                         fma_batch, kernel_for)
from repro.fma import (CSFmaEngine, FcsFmaUnit, PcsFmaUnit,
                       run_recurrence)
from repro.fma.accumulator import PcsAccumulator
from repro.fma.dotprod import FusedDotProductUnit
from repro.fp import double

N_DOT = 4096
MIN_SPEEDUP = 5.0

UNITS = [PcsFmaUnit(), FcsFmaUnit()]
unit_ids = ["pcs", "fcs"]


def make_vectors(n: int, seed: int = 0, spread: int = 40):
    """Deterministic operand vectors with a wide exponent spread (the
    unfriendly case for the kernel's alignment fast paths)."""
    rng = random.Random(seed)
    a = [double(rng.choice([-1, 1])
                * rng.uniform(1.0, 2.0) * 2.0 ** rng.randint(-spread, spread))
         for _ in range(n)]
    b = [double(rng.choice([-1, 1])
                * rng.uniform(1.0, 2.0) * 2.0 ** rng.randint(-spread, spread))
         for _ in range(n)]
    return a, b


@pytest.fixture(scope="module", autouse=True)
def warm_kernels():
    """Compile the specialized CSA-tree variants once, outside timing
    (in production the module-level cache amortizes this)."""
    a, b = make_vectors(256, seed=99)
    for unit in UNITS:
        dot_batch(a, b, unit=unit)


class TestDotThroughput:
    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_scalar_dot(self, benchmark, unit):
        a, b = make_vectors(256)
        out = benchmark(FusedDotProductUnit(unit).dot, a, b)
        assert out.is_normal

    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_batched_dot(self, benchmark, unit):
        a, b = make_vectors(256)
        out = benchmark(dot_batch, a, b, unit=unit)
        assert out.is_normal

    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_speedup_gate_4096(self, unit):
        """The acceptance criterion: >= 5x on a 4096-element dot product,
        bit-identical result."""
        a, b = make_vectors(N_DOT, seed=7)

        t0 = time.perf_counter()
        ref = FusedDotProductUnit(unit).dot(a, b)
        t_scalar = time.perf_counter() - t0

        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            fast = dot_batch(a, b, unit=unit)
            best = min(best, time.perf_counter() - t0)

        assert fast.cls == ref.cls
        assert fast.sign == ref.sign
        assert fast.biased_exponent == ref.biased_exponent
        assert fast.fraction == ref.fraction

        speedup = t_scalar / best
        rate = N_DOT / best
        print(f"\n{unit.name}: scalar {N_DOT / t_scalar:,.0f} op/s, "
              f"batched {rate:,.0f} op/s, speedup {speedup:.2f}x")
        assert speedup >= MIN_SPEEDUP, (
            f"{unit.name} dot_batch speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP}x gate")


class TestFmaThroughput:
    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_scalar_fma_loop(self, benchmark, unit):
        a, b = make_vectors(256, seed=3)
        c, _ = make_vectors(256, seed=4)
        out = benchmark(fma_batch, a, b, c, unit=unit, use_batch=False)
        assert len(out) == 256

    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_batched_fma(self, benchmark, unit):
        a, b = make_vectors(256, seed=3)
        c, _ = make_vectors(256, seed=4)
        out = benchmark(fma_batch, a, b, c, unit=unit)
        assert len(out) == 256


class TestAccumulatorThroughput:
    def test_scalar_accumulate(self, benchmark):
        a, b = make_vectors(512, seed=5, spread=20)

        def run():
            acc = PcsAccumulator()
            for ai, bi in zip(a, b):
                acc.accumulate(ai, bi)
            return acc

        acc = benchmark(run)
        assert acc.operations == 512

    def test_batched_accumulate(self, benchmark):
        a, b = make_vectors(512, seed=5, spread=20)
        acc = benchmark(lambda: accumulate_batch(a, b))
        assert acc.operations == 512


class TestEngineThroughput:
    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_scalar_recurrence(self, benchmark, unit, fig14_workload):
        b1, b2, x0 = fig14_workload
        out = benchmark(run_recurrence, CSFmaEngine(unit), b1, b2, x0,
                        len(b1))
        assert out.final is not None

    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_accelerated_recurrence(self, benchmark, unit, fig14_workload):
        b1, b2, x0 = fig14_workload
        engine = accelerate_engine(CSFmaEngine(unit))
        out = benchmark(run_recurrence, engine, b1, b2, x0, len(b1))
        assert out.final is not None


class TestMemoizedLookups:
    def test_synthesize_by_name_cached(self, benchmark):
        from repro.batch import clear_hw_caches
        from repro.hw.synthesis import synthesize_by_name

        clear_hw_caches()
        synthesize_by_name("pcs-fma")  # prime

        report = benchmark(synthesize_by_name, "pcs-fma")
        assert report.cycles > 0

    def test_kernel_lookup_cached(self):
        unit = FcsFmaUnit()
        assert kernel_for(unit) is kernel_for(unit)
