"""The guard acceptance gate: disabled-mode overhead < 2% on dot@4096.

The residue checkers follow the telemetry/probes arm-global design: a
disarmed guard costs one hoisted ``_gd.ACTIVE`` load per kernel call
boundary and nothing per element.  This benchmark pins that claim on
the headline ``dot@4096`` workload, the same way the telemetry gate
does:

* **baseline** -- the raw kernel path (``kernel.dot_tuple`` + ``lower``
  + ``cs_to_ieee``), the fastest this machine runs the computation;
* **disabled** -- the public ``dot_batch`` wrapper with every arm
  global (telemetry, probes, *and* the guard) disarmed: the production
  path, guard hooks included;
* **armed** -- the same call inside a :func:`repro.guard.guarding`
  region (informational; concurrent checking is allowed to cost more,
  and the clean datapath must not flag).

The gate asserts disabled/baseline < 1.02 best-of-N interleaved, and
that disarmed and guard-armed runs are bit-identical -- observation
never changes the value.  Timed with ``perf_counter`` directly so
``--benchmark-disable`` (CI smoke mode) cannot skip it.
"""

from __future__ import annotations

import time

import pytest

from repro.batch import dot_batch, kernel_for
from repro.fma import FcsFmaUnit, PcsFmaUnit, cs_to_ieee
from repro.guard import guarding

from _timing import bits, bounded_overhead_ratio, make_vectors

N_DOT = 4096
MAX_OVERHEAD = 1.02

UNITS = [PcsFmaUnit(), FcsFmaUnit()]
unit_ids = ["pcs", "fcs"]


class TestDisabledGuardOverheadGate:
    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_dot_4096(self, unit):
        a, b = make_vectors(N_DOT, seed=7)
        kernel = kernel_for(unit)  # compile outside timing

        def raw():
            return cs_to_ieee(kernel.lower(kernel.dot_tuple(a, b)))

        def wrapped():
            # pinned to the tuple wrapper: the gate measures the guard
            # hooks' disarmed cost on the tuple kernel path, and the
            # armed run below must exercise the same datapath shadows
            return dot_batch(a, b, unit=unit, backend="tuple")

        raw()  # warm both paths once before timing
        wrapped()
        with guarding() as state:
            t0 = time.perf_counter()
            out_armed = wrapped()
            t_armed = time.perf_counter() - t0
        assert state.total_mismatches == 0      # clean datapath, no flags
        assert state.total_checks > 0           # the shadows actually ran

        def same_bits(out_raw, out_disabled):
            assert bits(out_disabled) == bits(out_raw) == bits(out_armed)

        ratio, t_raw, t_disabled = bounded_overhead_ratio(
            raw, wrapped, max_ratio=MAX_OVERHEAD, check=same_bits)

        print(f"\n{unit.name}: raw {N_DOT / t_raw:,.0f} op/s, "
              f"guard-disabled {N_DOT / t_disabled:,.0f} op/s "
              f"(x{ratio:.4f}), guard-armed {N_DOT / t_armed:,.0f} op/s "
              f"({state.total_checks} checks)")
        assert ratio < MAX_OVERHEAD, (
            f"{unit.name} disabled-guard dot_batch is "
            f"{(ratio - 1) * 100:.2f}% slower than the raw kernel "
            f"path (gate: <{(MAX_OVERHEAD - 1) * 100:.0f}%)")


class TestArmedGuardIsTransparent:
    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_armed_result_is_bit_identical(self, unit):
        a, b = make_vectors(256, seed=11)
        expected = bits(dot_batch(a, b, unit=unit))
        with guarding() as state:
            got = bits(dot_batch(a, b, unit=unit))
        assert got == expected
        assert state.total_mismatches == 0
        assert state.checks.get("product", 0) > 0
