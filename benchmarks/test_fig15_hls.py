"""Benchmark + validation of Fig. 15 (ldlsolve schedule lengths)."""

import pytest

from repro.experiments.fig15 import FMA_UNIT_LIMIT, run
from repro.hls import default_library, parse_program, run_fma_insertion
from repro.solvers import generate_kernel, trajectory_problem


class TestFig15:
    def test_regenerate_fig15_small_medium(self, benchmark, request):
        sizes = [("small", 4, 1), ("medium", 8, 2)]
        if request.config.getoption("--full-fig15"):
            sizes.append(("large", 12, 3))
        rows = benchmark.pedantic(run, args=(sizes,), rounds=1,
                                  iterations=1)
        for r in rows:
            # every solver benefits; FCS more than PCS (Fig. 15)
            assert r.pcs_cycles < r.baseline_cycles
            assert r.fcs_cycles < r.pcs_cycles
            assert r.fcs_reduction_percent > r.pcs_reduction_percent
            # reductions in the paper's ballpark (26.0%-50.1%)
            assert 10.0 <= r.pcs_reduction_percent <= 60.0
            assert 25.0 <= r.fcs_reduction_percent <= 60.0
            # the unit budget of Sec. IV-D is respected
            assert r.pcs_fma_units <= FMA_UNIT_LIMIT
            assert r.fcs_fma_units <= FMA_UNIT_LIMIT

    @pytest.mark.parametrize("flavor", ["pcs", "fcs"])
    def test_fma_pass_cost(self, benchmark, flavor):
        """Compiler-pass runtime on the small solver kernel."""
        kernel = generate_kernel(trajectory_problem(4, 1))

        def compile_kernel():
            g = parse_program(kernel.source,
                              outputs=kernel.output_names)
            lib = default_library(fma_flavor=flavor,
                                  fma_limit=FMA_UNIT_LIMIT)
            return run_fma_insertion(g, lib)

        rep = benchmark(compile_kernel)
        assert rep.fma_inserted > 0

    def test_kernel_generation_cost(self, benchmark):
        """CVXGEN-like codegen runtime (symbolic LDL + emission)."""
        problem = trajectory_problem(8, 2)
        kernel = benchmark(generate_kernel, problem)
        assert kernel.statement_count > 0
