"""Microbenchmarks of the functional datapath models.

Not a paper table -- these time the simulation building blocks so
regressions in the bit-accurate models are visible: single FMA
evaluations, format conversions, the carry-reduce/ZD/LZA primitives.
"""

import random

import pytest

from repro.cs import (CSNumber, carry_reduce, count_skippable_blocks,
                      lza_estimate, multiply_mantissa)
from repro.fma import (FcsFmaUnit, PcsFmaUnit, cs_to_ieee, ieee_to_cs)
from repro.fp import double, fp_fma


@pytest.fixture(scope="module")
def operands():
    rng = random.Random(0)
    return [(rng.uniform(-100, 100), rng.uniform(-100, 100),
             rng.uniform(-100, 100)) for _ in range(8)]


class TestSingleOperations:
    def test_classic_fma(self, benchmark, operands):
        vals = [(double(a), double(b), double(c)) for a, b, c in operands]

        def run():
            return [fp_fma(a, b, c) for a, b, c in vals]

        out = benchmark(run)
        assert all(v.is_normal for v in out)

    @pytest.mark.parametrize("unit_cls", [PcsFmaUnit, FcsFmaUnit],
                             ids=["pcs", "fcs"])
    def test_cs_fma(self, benchmark, operands, unit_cls):
        unit = unit_cls()
        vals = [(ieee_to_cs(double(a), unit.params), double(b),
                 ieee_to_cs(double(c), unit.params))
                for a, b, c in operands]

        def run():
            return [unit.fma(a, b, c) for a, b, c in vals]

        out = benchmark(run)
        assert all(r.is_normal for r in out)

    def test_conversion_roundtrip(self, benchmark, operands):
        unit = PcsFmaUnit()
        vals = [double(a) for a, _b, _c in operands]

        def run():
            return [cs_to_ieee(ieee_to_cs(v, unit.params)) for v in vals]

        out = benchmark(run)
        assert [v.to_float() for v in out] == \
            [v.to_float() for v in vals]


class TestPrimitives:
    def test_carry_reduce_385(self, benchmark):
        rng = random.Random(1)
        cs = CSNumber(rng.getrandbits(385), rng.getrandbits(385), 385)
        out = benchmark(carry_reduce, cs, 11)
        assert out.value == cs.value

    def test_zero_detect(self, benchmark):
        rng = random.Random(2)
        cs = CSNumber(rng.getrandbits(165), rng.getrandbits(165) >> 60,
                      385)
        k = benchmark(count_skippable_blocks, cs, 55, 5)
        assert 0 <= k <= 5

    def test_lza_377(self, benchmark):
        rng = random.Random(3)
        a = rng.getrandbits(300)
        b = rng.getrandbits(300)
        est = benchmark(lza_estimate, a, b, 377)
        assert est >= 0

    def test_multiplier_53x110(self, benchmark):
        rng = random.Random(4)
        b = rng.getrandbits(52) | (1 << 52)
        c = rng.getrandbits(110)
        res = benchmark(multiply_mantissa, b, 53, c, 110,
                        round_up_c=True)
        assert res.rows == 54
