"""Benchmark + validation of Table I (synthesis results)."""

import pytest

from repro.experiments.table1 import PAPER_TABLE1, run
from repro.hw import VIRTEX6, design_by_name, synthesize


class TestTable1:
    def test_regenerate_table1(self, benchmark):
        rows = benchmark(run)
        by_name = {r.architecture: r for r in rows}
        # cycles and DSPs must be exact; fmax within 5 %
        for name, (fmax, cycles, _luts, dsps) in PAPER_TABLE1.items():
            r = by_name[name]
            assert r.cycles == cycles
            assert r.dsps == dsps
            assert abs(r.fmax_mhz - fmax) / fmax < 0.05

    @pytest.mark.parametrize("name", list(PAPER_TABLE1))
    def test_synthesize_one_architecture(self, benchmark, name):
        design = design_by_name(name, VIRTEX6)
        report = benchmark(synthesize, design, VIRTEX6)
        assert report.cycles == PAPER_TABLE1[name][1]
