"""Microbenchmarks of the extension features (dot products, Booth,
accumulator, loop unrolling, cycle-accurate execution)."""

import random

import pytest

from repro.fma import FusedDotProductUnit, PcsAccumulator
from repro.fma.dotprod import kahan_dot, naive_dot
from repro.cs.booth import booth_multiply
from repro.fp import FPValue, double
from repro.hls import (asap_schedule, default_library, execute_schedule,
                       parse_program)


@pytest.fixture(scope="module")
def vectors():
    rng = random.Random(0)
    n = 24
    a = [FPValue.from_float(rng.uniform(-100, 100)) for _ in range(n)]
    b = [FPValue.from_float(rng.uniform(-1, 1)) for _ in range(n)]
    return a, b


class TestDotProducts:
    def test_fused_dot_fcs(self, benchmark, vectors):
        a, b = vectors
        unit = FusedDotProductUnit()
        r = benchmark(unit.dot, a, b)
        assert r.is_finite

    def test_naive_dot(self, benchmark, vectors):
        a, b = vectors
        r = benchmark(naive_dot, a, b)
        assert r.is_finite

    def test_kahan_dot(self, benchmark, vectors):
        a, b = vectors
        r = benchmark(kahan_dot, a, b)
        assert r.is_finite


class TestAccumulator:
    def test_pcs_mac_accumulate(self, benchmark, vectors):
        a, b = vectors

        def run():
            acc = PcsAccumulator(max_exp=64, lsb_exp=-64)
            for x, y in zip(a, b):
                acc.accumulate(x, y)
            return acc.result()

        assert benchmark(run).is_finite


class TestBooth:
    def test_booth_53x110(self, benchmark):
        rng = random.Random(1)
        bm = rng.getrandbits(52) | (1 << 52)
        c = rng.getrandbits(110)
        r = benchmark(booth_multiply, bm, 53, c, 110)
        assert r.rows == 28


class TestCompilationPipeline:
    FIR = """
    acc[0] = 0;
    for (i = 0; i < 16; i++) {
        acc[i+1] = acc[i] + h[i]*x[i];
    }
    y = acc[16];
    """

    def test_parse_with_unrolling(self, benchmark):
        g = benchmark(parse_program, self.FIR, ["y"])
        assert len(g.outputs()) == 1

    def test_schedule_execution(self, benchmark):
        lib = default_library()
        g = parse_program(self.FIR, outputs=["y"])
        sched = asap_schedule(g, lib)
        inputs = {f"h[{i}]": 1.0 for i in range(16)}
        inputs.update({f"x[{i}]": 2.0 for i in range(16)})
        res = benchmark(execute_schedule, g, sched, lib, inputs)
        assert res.outputs["y"] == 32.0
