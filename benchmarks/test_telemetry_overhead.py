"""The telemetry acceptance gate: disabled-mode overhead < 2%.

The whole point of the arm/disarm design is that un-collected telemetry
costs one module-global load per *call boundary* (never per element).
This benchmark pins that claim on the headline ``dot@4096`` workload:

* **baseline** -- the raw kernel path with the instrumented wrapper
  bypassed entirely (``kernel.dot_tuple`` + ``lower`` + ``cs_to_ieee``),
  i.e. the fastest this machine can run the computation;
* **disabled** -- the public ``dot_batch`` wrapper with telemetry
  disarmed, which is what production callers pay;
* **armed** -- the same call inside a ``collecting`` region
  (informational; collection is allowed to cost more).

The gate asserts disabled/baseline < 1.02 best-of-N, and that all three
modes produce bit-identical results.  Like the batch speedup gate, it
times with ``perf_counter`` directly so ``--benchmark-disable`` (CI
smoke mode) cannot skip it.
"""

from __future__ import annotations

import pytest

from repro.batch import dot_batch, kernel_for
from repro.fma import FcsFmaUnit, PcsFmaUnit, cs_to_ieee
from repro.telemetry import collecting

from _timing import (REPEATS, best_of_interleaved, bits,
                     bounded_overhead_ratio, make_vectors)

N_DOT = 4096
MAX_OVERHEAD = 1.02

UNITS = [PcsFmaUnit(), FcsFmaUnit()]
unit_ids = ["pcs", "fcs"]


class TestDisabledOverheadGate:
    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_dot_4096(self, unit):
        a, b = make_vectors(N_DOT, seed=7)
        kernel = kernel_for(unit)  # compile outside timing

        def raw():
            return cs_to_ieee(kernel.lower(kernel.dot_tuple(a, b)))

        def wrapped():
            # the gate measures the *tuple* wrapper's call-boundary cost
            # against the raw tuple kernel, so the backend is pinned --
            # the vector engine would change the computation, not the
            # instrumentation being measured
            return dot_batch(a, b, unit=unit, backend="tuple")

        raw()  # warm both paths once before timing
        wrapped()
        with collecting():
            (t_armed,), (out_armed,) = best_of_interleaved([wrapped])

        def same_bits(out_raw, out_disabled):
            assert bits(out_disabled) == bits(out_raw) == bits(out_armed)

        ratio, t_raw, t_disabled = bounded_overhead_ratio(
            raw, wrapped, max_ratio=MAX_OVERHEAD, check=same_bits)

        print(f"\n{unit.name}: raw {N_DOT / t_raw:,.0f} op/s, "
              f"disabled {N_DOT / t_disabled:,.0f} op/s "
              f"(x{ratio:.4f}), armed {N_DOT / t_armed:,.0f} op/s")
        assert ratio < MAX_OVERHEAD, (
            f"{unit.name} disabled-telemetry dot_batch is "
            f"{(ratio - 1) * 100:.2f}% slower than the raw kernel "
            f"path (gate: <{(MAX_OVERHEAD - 1) * 100:.0f}%)")


class TestArmedCollectsWithoutPerturbing:
    def test_armed_snapshot_sees_the_run(self):
        a, b = make_vectors(256, seed=11)
        unit = FcsFmaUnit()
        expected = bits(dot_batch(a, b, unit=unit))
        with collecting() as t:
            got = bits(dot_batch(a, b, unit=unit))
        snap = t.snapshot()
        assert got == expected
        assert snap.counter("batch.dot.calls") == 1
        assert snap.counter("batch.dot.elements.fcs") == 256
        assert snap.span("batch.dot.kernel").count == 1
        assert snap.span("batch.dot.kernel").total_ns > 0
