"""The telemetry acceptance gate: disabled-mode overhead < 2%.

The whole point of the arm/disarm design is that un-collected telemetry
costs one module-global load per *call boundary* (never per element).
This benchmark pins that claim on the headline ``dot@4096`` workload:

* **baseline** -- the raw kernel path with the instrumented wrapper
  bypassed entirely (``kernel.dot_tuple`` + ``lower`` + ``cs_to_ieee``),
  i.e. the fastest this machine can run the computation;
* **disabled** -- the public ``dot_batch`` wrapper with telemetry
  disarmed, which is what production callers pay;
* **armed** -- the same call inside a ``collecting`` region
  (informational; collection is allowed to cost more).

The gate asserts disabled/baseline < 1.02 best-of-N, and that all three
modes produce bit-identical results.  Like the batch speedup gate, it
times with ``perf_counter`` directly so ``--benchmark-disable`` (CI
smoke mode) cannot skip it.
"""

from __future__ import annotations

import random
import struct
import time

import pytest

from repro.batch import dot_batch, kernel_for
from repro.fma import FcsFmaUnit, PcsFmaUnit, cs_to_ieee
from repro.fp import FPValue, double
from repro.telemetry import collecting

N_DOT = 4096
MAX_OVERHEAD = 1.02
REPEATS = 7

UNITS = [PcsFmaUnit(), FcsFmaUnit()]
unit_ids = ["pcs", "fcs"]


def make_vectors(n: int, seed: int = 0, spread: int = 40):
    rng = random.Random(seed)
    a = [double(rng.choice([-1, 1])
                * rng.uniform(1.0, 2.0) * 2.0 ** rng.randint(-spread, spread))
         for _ in range(n)]
    b = [double(rng.choice([-1, 1])
                * rng.uniform(1.0, 2.0) * 2.0 ** rng.randint(-spread, spread))
         for _ in range(n)]
    return a, b


def bits(v: FPValue) -> int:
    return struct.unpack("<Q", struct.pack("<d", v.to_float()))[0]


def best_of_interleaved(fns, repeats: int = REPEATS):
    """Best wall time of each callable over ``repeats`` interleaved
    rounds.  Interleaving (raw, wrapped, raw, wrapped, ...) instead of
    timing each mode in its own block keeps clock-frequency drift and
    scheduler noise from landing entirely on one mode and masquerading
    as overhead."""
    best = [float("inf")] * len(fns)
    outs = [None] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            outs[i] = fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best, outs


class TestDisabledOverheadGate:
    @pytest.mark.parametrize("unit", UNITS, ids=unit_ids)
    def test_dot_4096(self, unit):
        a, b = make_vectors(N_DOT, seed=7)
        kernel = kernel_for(unit)  # compile outside timing

        def raw():
            return cs_to_ieee(kernel.lower(kernel.dot_tuple(a, b)))

        def wrapped():
            return dot_batch(a, b, unit=unit)

        raw()  # warm both paths once before timing
        wrapped()
        with collecting():
            (t_armed,), (out_armed,) = best_of_interleaved([wrapped])

        # a loaded machine can jitter single measurements by several
        # percent -- far above the true overhead of one global load per
        # call -- so allow a few fresh attempts before declaring failure
        ratio = float("inf")
        for _ in range(3):
            (t_raw, t_disabled), (out_raw, out_disabled) = \
                best_of_interleaved([raw, wrapped])
            assert bits(out_disabled) == bits(out_raw) == bits(out_armed)
            ratio = min(ratio, t_disabled / t_raw)
            if ratio < MAX_OVERHEAD:
                break

        print(f"\n{unit.name}: raw {N_DOT / t_raw:,.0f} op/s, "
              f"disabled {N_DOT / t_disabled:,.0f} op/s "
              f"(x{ratio:.4f}), armed {N_DOT / t_armed:,.0f} op/s")
        assert ratio < MAX_OVERHEAD, (
            f"{unit.name} disabled-telemetry dot_batch is "
            f"{(ratio - 1) * 100:.2f}% slower than the raw kernel "
            f"path (gate: <{(MAX_OVERHEAD - 1) * 100:.0f}%)")


class TestArmedCollectsWithoutPerturbing:
    def test_armed_snapshot_sees_the_run(self):
        a, b = make_vectors(256, seed=11)
        unit = FcsFmaUnit()
        expected = bits(dot_batch(a, b, unit=unit))
        with collecting() as t:
            got = bits(dot_batch(a, b, unit=unit))
        snap = t.snapshot()
        assert got == expected
        assert snap.counter("batch.dot.calls") == 1
        assert snap.counter("batch.dot.elements.fcs") == 256
        assert snap.span("batch.dot.kernel").count == 1
        assert snap.span("batch.dot.kernel").total_ns > 0
