"""Conformance runner throughput, cache, and parallel-scaling gates.

Three claims from the conformance PR, measured on the real sweep:

* a shard sustains a healthy differential-check rate (the per-process
  unit of scaling -- wall-clock of an N-worker sweep is bounded by
  shard time / workers);
* a warm-cache re-run skips >= 90% of shards and beats the cold run by
  a wide margin;
* on machines with enough cores, an 8-worker sweep is >= 4x faster than
  ``--workers 1`` (skipped where the hardware cannot express the
  speedup; the 1-worker and 8-worker sweeps are verified to execute
  identical work via their case digests either way).

The cache and determinism gates run even under ``--benchmark-disable``
(CI smoke mode); only the core-hungry scaling assertion is gated on
``os.cpu_count()``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.conformance import ShardSpec, run_shard, run_sweep

SEED = 20260806
MIN_SHARD_CASES_PER_S = 100.0
MIN_WARM_HIT_RATE = 0.9
MIN_PARALLEL_SPEEDUP = 4.0


class TestShardThroughput:
    def test_shard_rate(self, benchmark):
        spec = ShardSpec(shard_id=0, num_shards=8, seed=SEED, cases=32,
                         shrink=False)
        result = benchmark(run_shard, spec)
        assert result["mismatch_count"] == 0
        assert result["cases_per_s"] > MIN_SHARD_CASES_PER_S


class TestCacheEffect:
    def test_warm_rerun_skips_shards(self, tmp_path):
        kw = dict(shards=8, workers=1, seed=SEED, cases=16,
                  shrink=False, cache_dir=tmp_path / "cache")
        t0 = time.perf_counter()
        cold = run_sweep(**kw)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = run_sweep(**kw)
        warm_s = time.perf_counter() - t0
        assert cold["totals"]["mismatches"] == 0
        assert warm["totals"]["cache_hit_rate"] >= MIN_WARM_HIT_RATE
        # serving 8 shards from disk must be much cheaper than running
        # them; 5x is conservative (measured: >50x)
        assert warm_s * 5 < cold_s


class TestParallelScaling:
    def test_workers_execute_identical_work(self):
        kw = dict(shards=4, seed=SEED, cases=8, shrink=False,
                  use_cache=False)
        one = run_sweep(workers=1, **kw)
        many = run_sweep(workers=4, **kw)
        assert [s["case_digest"] for s in one["shards"]] == \
            [s["case_digest"] for s in many["shards"]]
        assert one["totals"]["mismatches"] == \
            many["totals"]["mismatches"] == 0

    @pytest.mark.skipif((os.cpu_count() or 1) < 8,
                        reason="needs >= 8 cores to express a 4x speedup")
    def test_eight_workers_at_least_4x(self):
        kw = dict(shards=8, seed=SEED, cases=48, shrink=False,
                  use_cache=False)
        t0 = time.perf_counter()
        run_sweep(workers=1, **kw)
        serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_sweep(workers=8, **kw)
        parallel = time.perf_counter() - t0
        assert serial / parallel >= MIN_PARALLEL_SPEEDUP
