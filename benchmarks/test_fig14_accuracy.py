"""Benchmark + validation of Fig. 14 (chained-FMA accuracy)."""

import pytest

from repro.experiments.fig14 import run
from repro.fma import (DiscreteMulAddEngine, fcs_engine, pcs_engine,
                       run_recurrence)
from repro.fp import BINARY64


class TestFig14:
    def test_regenerate_fig14(self, benchmark):
        results = benchmark(run, runs=6)
        err = {r.engine: r.mean_ulp_error for r in results}
        # the paper's claim: both CS units clearly outperform standard
        # IEEE double precision
        assert err["pcs-fma"] < err["discrete-binary64"]
        assert err["fcs-fma"] < err["discrete-binary64"]
        # the widened 68b reference beats plain 64b as well
        assert err["discrete-extended68"] < err["discrete-binary64"]
        # fused-anything beats discrete 64b on average
        assert err["classic-fma-binary64"] <= err["discrete-binary64"]

    @pytest.mark.parametrize("make,label", [
        (lambda: DiscreteMulAddEngine(BINARY64), "discrete64"),
        (pcs_engine, "pcs"),
        (fcs_engine, "fcs"),
    ], ids=["discrete64", "pcs", "fcs"])
    def test_recurrence_throughput(self, benchmark, fig14_workload,
                                   make, label):
        """Cost of one 30-step recurrence (60 FMA evaluations) per
        engine -- the functional models' simulation speed."""
        b1, b2, x0 = fig14_workload
        engine = make()
        result = benchmark(run_recurrence, engine, b1, b2, x0, 30)
        assert result.final.is_normal
