"""Benchmark + validation of Table II (energy per operation)."""

from repro.experiments.table2 import PAPER_TABLE2, run


class TestTable2:
    def test_regenerate_table2(self, benchmark):
        rows = benchmark(run, steps=30)
        e = {r.architecture: r.energy_nj for r in rows}
        base = e["coregen"]
        # the paper's claim: 4x-5x energy increase for the CS units
        assert 3.5 <= e["pcs-fma"] / base <= 5.5
        assert 3.0 <= e["fcs-fma"] / base <= 5.0
        assert e["fcs-fma"] < e["pcs-fma"]
        # absolute values within 25 % of Table II
        for name, paper in PAPER_TABLE2.items():
            assert abs(e[name] - paper) / paper < 0.25
