"""Fault-campaign throughput gates: injections/sec, serial vs parallel.

Two claims on the real campaign engine:

* the serial engine sustains a healthy injection rate (golden results
  are memoized per operand, so an injection costs roughly one faulted
  FMA evaluation plus classification);
* the parallel path through the resilient executor completes the same
  campaign with the identical report (minus the resilience summary)
  and without pathological overhead -- resilience must not cost more
  than the pool it wraps.

The equivalence gate runs even under ``--benchmark-disable`` (CI smoke
mode); it times with ``perf_counter`` directly.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.faults.campaign import CampaignConfig, run_campaign

SEED = 20260806
MIN_INJECTIONS_PER_S = 200.0
MAX_PARALLEL_SLOWDOWN = 5.0


class TestSerialThroughput:
    def test_injection_rate(self, benchmark):
        config = CampaignConfig(seed=SEED, injections=400)
        report = benchmark(run_campaign, config)
        assert report["totals"]["injections"] == 400

    def test_injections_per_second_floor(self):
        config = CampaignConfig(seed=SEED, injections=500)
        run_campaign(config)  # warm the operand pools / golden memos
        t0 = time.perf_counter()
        report = run_campaign(config)
        elapsed = time.perf_counter() - t0
        rate = report["totals"]["injections"] / elapsed
        assert rate > MIN_INJECTIONS_PER_S, f"{rate:.0f} inj/s"


class TestParallelCampaign:
    def test_parallel_equals_serial_without_blowup(self):
        config = CampaignConfig(seed=SEED, injections=400)
        t0 = time.perf_counter()
        serial = run_campaign(config)
        serial_s = time.perf_counter() - t0

        workers = min(4, os.cpu_count() or 1)
        if workers < 2:
            pytest.skip("needs >= 2 cores")
        t0 = time.perf_counter()
        par = run_campaign(config, workers=workers, chunk=50)
        par_s = time.perf_counter() - t0

        res = par.pop("resilience")
        assert res["failed"] == []
        assert json.dumps(par, sort_keys=True) == \
            json.dumps(serial, sort_keys=True)
        # worker startup dominates at this campaign size; the gate only
        # forbids pathological resilience overhead
        assert par_s < serial_s * MAX_PARALLEL_SLOWDOWN + 10.0, (
            f"parallel {par_s:.2f}s vs serial {serial_s:.2f}s")
