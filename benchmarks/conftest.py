"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures (the same
code paths as ``repro-experiments``) and asserts the headline claims, so
``pytest benchmarks/ --benchmark-only`` both times the models and
verifies the reproduction.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-fig15", action="store_true", default=False,
        help="include the large solver in the fig15 benchmark "
             "(slower)")


@pytest.fixture(scope="session")
def fig14_workload():
    from repro.experiments.fig14 import make_workload
    return make_workload(seed=42, steps=30)
