"""Serving-layer acceptance gates: coalescing speedup, open-loop
latency, and end-to-end correctness under load.

Three claims are asserted (and the numbers archived to
``BENCH_serve.json`` for the CI artifact):

* **coalescing**: serving a burst through the micro-batcher at
  ``max_batch=64`` is at least :data:`MIN_SPEEDUP` times faster than
  the same server configured with ``max_batch=1`` (sequential
  kernel invocations through the identical admission/executor path);
* **open loop**: a seeded 1000-request open-loop workload loses no
  request, duplicates no response, and keeps p99 latency under
  :data:`P99_BUDGET_S`;
* **bit identity**: every ``ok`` response in that workload equals the
  word the faithful scalar models produce for the same request.

The gates time with ``perf_counter`` directly, so they run even under
``--benchmark-disable`` (CI smoke mode).
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import pytest

from repro.serve import (FmaServer, LoadSpec, Request, ServeConfig,
                         make_requests, percentile, run_open_loop)
from repro.serve.executor import reference_result

from _timing import best_timed

MIN_SPEEDUP = 3.0
MIN_DOT_UPLIFT = 1.2
P99_BUDGET_S = 0.25
N_BURST = 256
N_OPEN_LOOP = 1000

#: results archived by the module-teardown writer.
RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Collect every gate's numbers and write ``BENCH_serve.json``."""
    yield
    out = os.environ.get("BENCH_SERVE_OUT", "BENCH_serve.json")
    payload = {"schema": "repro.serve.bench/1",
               "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                             time.gmtime()),
               "gates": {"min_speedup": MIN_SPEEDUP,
                         "min_dot_uplift": MIN_DOT_UPLIFT,
                         "p99_budget_s": P99_BUDGET_S},
               "results": RESULTS}
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def burst_requests(n: int) -> list[Request]:
    spec = LoadSpec(n_requests=n, seed=11,
                    mix=(("fma", "pcs", 1),), timeout_s=None)
    return [req for _off, req in make_requests(spec)]


async def _serve_burst(cfg: ServeConfig, reqs: list[Request]):
    async with FmaServer(cfg) as s:
        t0 = time.perf_counter()
        resps = await asyncio.gather(*(s.submit(r) for r in reqs))
        return time.perf_counter() - t0, resps, dict(s.stats)


def serve_burst(cfg: ServeConfig, reqs: list[Request]):
    return asyncio.run(_serve_burst(cfg, reqs))


class TestCoalescingSpeedup:
    def test_speedup_gate_batch64(self):
        """>= 3x coalesced vs sequential on the same serving path."""
        reqs = burst_requests(N_BURST)
        # one worker on both sides: the gate isolates what coalescing
        # buys (amortized dispatch), not worker-pool parallelism
        base = dict(slow_start=False, max_pending=4096, workers=1,
                    max_wait_s=0.002)
        seq_cfg = ServeConfig(max_batch=1, **base)
        coal_cfg = ServeConfig(max_batch=64, **base)

        # warm the kernels/units outside timing
        serve_burst(ServeConfig(max_batch=64, **base), reqs[:64])

        t_seq, seq_resps, seq_stats = serve_burst(seq_cfg, reqs)
        t_coal, (coal_resps, coal_stats) = best_timed(
            lambda: serve_burst(coal_cfg, reqs))

        assert all(r.ok for r in seq_resps)
        assert all(r.ok for r in coal_resps)
        # identical responses regardless of batching strategy
        assert ([r.result for r in seq_resps]
                == [r.result for r in coal_resps])
        assert seq_stats["max_batch_size"] == 1
        assert coal_stats["max_batch_size"] == 64

        speedup = t_seq / t_coal
        RESULTS["coalescing"] = {
            "n_requests": N_BURST,
            "sequential_s": round(t_seq, 6),
            "coalesced_s": round(t_coal, 6),
            "speedup": round(speedup, 2),
            "sequential_rps": round(N_BURST / t_seq, 1),
            "coalesced_rps": round(N_BURST / t_coal, 1)}
        print(f"\ncoalescing: sequential {t_seq * 1e3:.1f} ms, "
              f"batched {t_coal * 1e3:.1f} ms, speedup {speedup:.2f}x")
        assert speedup >= MIN_SPEEDUP, (
            f"coalesced serving speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP}x gate")


class TestDotBackendUplift:
    def test_vector_backend_dot_burst(self):
        """Coalesced dot bursts through the vector backend vs the same
        server pinned to the tuple kernels: identical responses, and the
        measured uplift is archived to ``BENCH_serve.json``."""
        from repro.batch import vector_available

        if not vector_available():     # pragma: no cover - numpy baked in
            pytest.skip("NumPy vector engine unavailable")
        spec = LoadSpec(n_requests=N_BURST, seed=23,
                        mix=(("dot", "pcs", 1),), vec_len=(64, 128),
                        timeout_s=None)
        reqs = [req for _off, req in make_requests(spec)]
        base = dict(max_batch=64, slow_start=False, max_pending=4096,
                    workers=1, max_wait_s=0.002)
        tuple_cfg = ServeConfig(backend="tuple", **base)
        vector_cfg = ServeConfig(backend="vector", **base)

        serve_burst(vector_cfg, reqs[:64])      # warm outside timing
        t_tuple, (tup_resps, _s1) = best_timed(
            lambda: serve_burst(tuple_cfg, reqs), repeats=2)
        t_vector, (vec_resps, _s2) = best_timed(
            lambda: serve_burst(vector_cfg, reqs), repeats=2)

        assert all(r.ok for r in tup_resps)
        assert all(r.ok for r in vec_resps)
        # backend choice never changes a single served bit
        assert ([r.result for r in tup_resps]
                == [r.result for r in vec_resps])

        uplift = t_tuple / t_vector
        RESULTS["dot_backend"] = {
            "n_requests": N_BURST,
            "vec_len": list(spec.vec_len),
            "tuple_s": round(t_tuple, 6),
            "vector_s": round(t_vector, 6),
            "uplift": round(uplift, 2)}
        print(f"\ndot backend: tuple {t_tuple * 1e3:.1f} ms, "
              f"vector {t_vector * 1e3:.1f} ms, uplift {uplift:.2f}x")
        assert uplift >= MIN_DOT_UPLIFT, (
            f"vector dot serving uplift {uplift:.2f}x below the "
            f"{MIN_DOT_UPLIFT}x gate")


class TestOpenLoopLatency:
    def test_thousand_requests_p99_and_bit_identity(self):
        """1000 seeded open-loop requests: nothing lost or duplicated,
        p99 under budget, every result bit-identical to the direct
        engines."""
        spec = LoadSpec(n_requests=N_OPEN_LOOP, rate_hz=15000.0, seed=3)
        cfg = ServeConfig(max_batch=64, max_wait_s=0.002, workers=4,
                          max_pending=4096, slow_start=False)

        async def body():
            async with FmaServer(cfg) as s:
                report = await run_open_loop(s, spec)
                return report, dict(s.stats)

        report, stats = asyncio.run(body())

        assert len(report.responses) == N_OPEN_LOOP     # nothing lost
        assert report.duplicates == []                  # nothing doubled
        assert report.n_rejected == 0
        assert report.n_error == 0
        assert report.n_ok == N_OPEN_LOOP

        for _off, req in make_requests(spec):
            ref = reference_result(req)
            resp = report.responses[req.req_id]
            assert resp.status == ref[0] == "ok"
            assert resp.result == ref[1], (
                f"request {req.req_id} served "
                f"{resp.result:#018x} != direct {ref[1]:#018x}")

        p50 = percentile(report.latencies_s, 50)
        p99 = percentile(report.latencies_s, 99)
        RESULTS["open_loop"] = {
            "n_requests": N_OPEN_LOOP,
            "rate_hz": spec.rate_hz,
            "seed": spec.seed,
            "wall_s": round(report.wall_s, 4),
            "throughput_rps": round(report.throughput(), 1),
            "p50_ms": round(p50 * 1e3, 3),
            "p99_ms": round(p99 * 1e3, 3),
            "max_batch_size": stats["max_batch_size"],
            "batches": stats["batches"]}
        print(f"\nopen loop: {report.throughput():,.0f} rps, "
              f"p50 {p50 * 1e3:.2f} ms, p99 {p99 * 1e3:.2f} ms, "
              f"largest batch {stats['max_batch_size']}")
        assert stats["max_batch_size"] > 1              # coalescing real
        assert p99 <= P99_BUDGET_S, (
            f"p99 {p99 * 1e3:.1f} ms over the "
            f"{P99_BUDGET_S * 1e3:.0f} ms budget")
