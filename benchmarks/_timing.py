"""Shared measurement helpers for the benchmark gates.

Every acceptance gate in this directory times with ``perf_counter``
directly (so ``--benchmark-disable``, the CI smoke mode, cannot skip
it) and follows the same two disciplines:

* **interleaved best-of-N** -- when comparing two code paths, the
  rounds alternate (raw, wrapped, raw, wrapped, ...) so clock-frequency
  drift and scheduler noise cannot land entirely on one side and
  masquerade as overhead;
* **bounded retries** -- a loaded machine can jitter single
  measurements by several percent, far above the effects the overhead
  gates measure, so a failing ratio gets a few fresh attempts before
  the gate declares failure.

These helpers used to be copy-pasted across ``test_batch_throughput``,
``test_telemetry_overhead``, ``test_guard_overhead`` and
``test_serve_throughput``; this module is the single copy.
"""

from __future__ import annotations

import random
import struct
import time

from repro.fp import FPValue, double

#: default interleaved rounds for the overhead gates.
REPEATS = 7

#: default fresh attempts before an overhead gate declares failure.
ATTEMPTS = 3


def make_vectors(n: int, seed: int = 0, spread: int = 40):
    """Deterministic operand vectors with a wide exponent spread (the
    unfriendly case for the kernel's alignment fast paths)."""
    rng = random.Random(seed)
    a = [double(rng.choice([-1, 1])
                * rng.uniform(1.0, 2.0) * 2.0 ** rng.randint(-spread, spread))
         for _ in range(n)]
    b = [double(rng.choice([-1, 1])
                * rng.uniform(1.0, 2.0) * 2.0 ** rng.randint(-spread, spread))
         for _ in range(n)]
    return a, b


def bits(v: FPValue) -> int:
    """binary64 bit pattern of a value (via the float round trip)."""
    return struct.unpack("<Q", struct.pack("<d", v.to_float()))[0]


def best_of(fn, repeats: int = 3):
    """``(best_seconds, last_out)`` of ``fn`` over ``repeats`` runs."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def best_timed(fn, repeats: int = 3):
    """Best attempt of a self-timing callable.

    ``fn`` returns ``(seconds, *rest)`` measured by its own clock (e.g.
    inside an event loop); the attempt with the smallest ``seconds``
    wins and its ``rest`` is returned.
    """
    best_t = float("inf")
    best_rest = None
    for _ in range(repeats):
        t, *rest = fn()
        if t < best_t:
            best_t, best_rest = t, rest
    return best_t, best_rest


def best_of_interleaved(fns, repeats: int = REPEATS):
    """Best wall time of each callable over ``repeats`` interleaved
    rounds.  Interleaving (raw, wrapped, raw, wrapped, ...) instead of
    timing each mode in its own block keeps clock-frequency drift and
    scheduler noise from landing entirely on one mode and masquerading
    as overhead."""
    best = [float("inf")] * len(fns)
    outs = [None] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            outs[i] = fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best, outs


def bounded_overhead_ratio(raw, wrapped, *, max_ratio: float,
                           repeats: int = REPEATS,
                           attempts: int = ATTEMPTS, check=None):
    """``min`` over up to ``attempts`` fresh interleaved best-of-N
    measurements of ``time(wrapped) / time(raw)``, stopping early once
    the ratio is below ``max_ratio``.  ``check(out_raw, out_wrapped)``
    runs after every attempt (bit-identity assertions live there).
    Returns ``(ratio, t_raw, t_wrapped)`` of the accepted attempt."""
    ratio = float("inf")
    t_raw = t_wrapped = float("inf")
    for _ in range(attempts):
        (tr, tw), (out_raw, out_wrapped) = best_of_interleaved(
            [raw, wrapped], repeats)
        if check is not None:
            check(out_raw, out_wrapped)
        if tw / tr < ratio:
            ratio, t_raw, t_wrapped = tw / tr, tr, tw
        if ratio < max_ratio:
            break
    return ratio, t_raw, t_wrapped
