"""Redundant execution with voting: the correction half of the guard.

The residue checkers (:mod:`repro.guard.residue`) *detect* a transient
upset; this module *recovers* from it.  A :class:`GuardedExecutor` runs
a work unit under an armed guard and, on a residue mismatch -- or
unconditionally in DMR/TMR mode -- re-executes it (optionally on a
different worker process via :func:`repro.faults.resilient.run_resilient`)
and majority-votes over the results.  Every run is classified:

``clean``
    The first execution(s) passed every check (and, for DMR/TMR,
    agreed bit-for-bit).  The value is trusted as-is.
``corrected``
    A check flagged an execution (or replicas disagreed), and
    re-execution produced a quorum of check-clean, agreeing values.
    Because the upsets this layer defends against are *transient*
    (one register, one clock edge -- the :class:`repro.probes.Arm`
    contract), a check-clean re-execution recomputes the uncorrupted
    value, so corrected results are bit-identical to the uninjected
    oracle; the SEU campaign asserts exactly that.
``uncorrectable``
    No quorum of clean executions within the execution budget.  The
    result carries no value -- callers must reject it, never return it
    as data (the serving layer maps it to an ``error`` response).

The escalation ladder (docs/GUARD.md): residue flag -> re-execute ->
vote -> reject.  Telemetry lands under ``guard.exec.*`` /
``guard.escalations`` / ``guard.reexecutions``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..telemetry import core as _tm
from . import residue as _gd
from .residue import GuardConfig, GuardMismatch

__all__ = ["GuardPolicy", "GuardedOutcome", "GuardedExecutor"]

MODES = ("residue", "dmr", "tmr")


@dataclass(frozen=True)
class GuardPolicy:
    """How a :class:`GuardedExecutor` detects and corrects.

    ``mode``
        ``residue`` -- one guarded execution; re-execute only on a
        check flag (cheapest, relies on check coverage).  ``dmr`` --
        two executions compared bit-for-bit; disagreement or a flag
        escalates.  ``tmr`` -- three executions, majority vote.
    ``max_executions``
        Hard budget on executions of one work unit, including the
        initial one(s); exhausting it yields ``uncorrectable``.
    ``quorum``
        Check-clean, bit-identical values required to accept a
        *corrected* result (``residue`` mode accepts a single clean
        re-execution: the checks themselves are the certificate).
    ``workers``
        ``> 1`` dispatches re-executions through
        :func:`~repro.faults.resilient.run_resilient` onto a fresh
        worker process, isolating the retry from a corrupted worker.
        The work function must then be picklable and module-level.
    """

    mode: str = "residue"
    max_executions: int = 4
    quorum: int = 2
    workers: int = 1
    timeout_s: float | None = None

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        if self.max_executions < self.min_executions:
            raise ValueError("max_executions below the mode's minimum")
        if self.quorum < 1:
            raise ValueError("quorum must be >= 1")

    @property
    def min_executions(self) -> int:
        return {"residue": 1, "dmr": 2, "tmr": 3}[self.mode]


@dataclass
class GuardedOutcome:
    """Classification of one guarded work unit."""

    status: str                       # clean / corrected / uncorrectable
    value: object = None              # None when uncorrectable
    executions: int = 0
    flagged: int = 0                  # executions a check flagged
    #: per-execution structured records: mismatch tallies and errors
    records: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status != "uncorrectable"

    def to_record(self) -> dict:
        """JSON-ready record (deterministic key order via sort_keys)."""
        return {"status": self.status, "executions": self.executions,
                "flagged": self.flagged, "records": self.records}


def _pool_attempt(args):
    """Picklable trampoline: one guarded execution in a worker process.

    Returns ``(value, mismatches)``; a raising check propagates as an
    ordinary exception record through ``run_resilient``.
    """
    fn, execution = args
    with _gd.guarding() as state:
        value = fn(execution)
    return value, dict(state.mismatches)


class GuardedExecutor:
    """Run work units under the guard; re-execute and vote on trouble.

    The work function receives the zero-based execution number (so
    fault-model callers can make the first execution the faulted one)
    and returns a value with a meaningful ``==`` -- votes compare
    values bit-for-bit via equality.
    """

    def __init__(self, policy: GuardPolicy | None = None, *,
                 rng_seed: int = 0):
        self.policy = policy if policy is not None else GuardPolicy()
        self.rng_seed = rng_seed
        self._calls = 0

    # -- one guarded execution -----------------------------------------

    def _execute(self, fn, execution: int) -> tuple:
        """Returns ``(ok, value, record)``; never raises for work-unit
        failures (a failed execution is simply not a vote)."""
        pol = self.policy
        if pol.workers > 1:
            from ..faults.resilient import RetryPolicy, run_resilient

            run = run_resilient(
                _pool_attempt, [(fn, execution)], workers=pol.workers,
                timeout_s=pol.timeout_s,
                retry=RetryPolicy(max_attempts=1), always_pool=True,
                rng_seed=self.rng_seed + self._calls)
            res = run.results[0]
            if res is not None and res.ok:
                value, mismatches = res.value
                if mismatches:  # worker ran record-only? defensive
                    return False, None, {"execution": execution,
                                         "flagged": True,
                                         "mismatches": mismatches}
                return True, value, {"execution": execution,
                                     "flagged": False}
            err = res.error if res is not None else {"kind": "lost"}
            if err and err.get("type") == "GuardMismatch":
                return False, None, {"execution": execution,
                                     "flagged": True,
                                     "mismatches": {"remote": 1}}
            return False, None, {"execution": execution, "flagged": False,
                                 "error": err}
        try:
            with _gd.guarding() as state:
                value = fn(execution)
        except GuardMismatch as exc:
            return False, None, {"execution": execution, "flagged": True,
                                 "mismatches": {exc.stage: 1}}
        except Exception as exc:
            return False, None, {
                "execution": execution, "flagged": False,
                "error": {"kind": "exception",
                          "type": type(exc).__name__, "message": str(exc)}}
        return True, value, {"execution": execution, "flagged": False}

    # -- the vote -------------------------------------------------------

    def run(self, fn) -> GuardedOutcome:
        """Execute ``fn`` under the policy and classify the outcome."""
        pol = self.policy
        self._calls += 1
        t = _tm.ACTIVE
        records: list[dict] = []
        values: list = []          # check-clean values, in order
        flagged = 0
        executions = 0

        def vote() -> object | None:
            """First value with ``quorum`` bit-identical clean copies."""
            for v in values:
                if sum(1 for w in values if w == v) >= pol.quorum:
                    return v
            return None

        # initial replicas required by the mode
        for i in range(pol.min_executions):
            ok, value, rec = self._execute(fn, executions)
            executions += 1
            records.append(rec)
            if ok:
                values.append(value)
            elif rec.get("flagged"):
                flagged += 1

        clean = False
        if flagged == 0 and len(values) == pol.min_executions:
            if pol.mode == "residue":
                clean = True
            else:
                clean = all(v == values[0] for v in values[1:])
        if clean:
            if t is not None:
                t.count("guard.exec.clean")
            return GuardedOutcome("clean", values[0], executions,
                                  flagged, records)

        # escalation: re-execute (optionally on another worker) until a
        # quorum of check-clean values agrees, or the budget runs out
        if t is not None:
            t.count("guard.escalations")
        needed = 1 if pol.mode == "residue" else pol.quorum
        while executions < pol.max_executions:
            if len(values) >= needed and (
                    pol.mode == "residue" or vote() is not None):
                break
            ok, value, rec = self._execute(fn, executions)
            executions += 1
            records.append(rec)
            if t is not None:
                t.count("guard.reexecutions")
            if ok:
                values.append(value)
            elif rec.get("flagged"):
                flagged += 1

        if pol.mode == "residue":
            winner = values[0] if values else None
        else:
            winner = vote()
        if winner is not None or (pol.mode == "residue" and values):
            if t is not None:
                t.count("guard.exec.corrected")
            return GuardedOutcome("corrected", winner, executions,
                                  flagged, records)
        if t is not None:
            t.count("guard.exec.uncorrectable")
        return GuardedOutcome("uncorrectable", None, executions,
                              flagged, records)
