"""CLI for the detection-coverage campaign: ``python -m repro.guard``.

Re-runs the seeded SEU injection plan with the CED layer armed and
reports baseline SDC vs guarded SDC-to-user, per site and per class.
Typical uses::

    python -m repro.guard --seed 20260806 --injections 500 \\
        --json-out BENCH_guard.json
    python -m repro.guard --mode tmr --classes pcs,fcs
    python -m repro.guard --min-reduction 10 --workers 4

Exit status is 0 when the campaign completed and every enabled gate
passed, 1 when the campaign could not complete or a gate failed
(coverage floor, reduction floor, or a corrected result that was not
bit-identical to the oracle), and 2 on bad arguments.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..faults.campaign import CampaignConfig
from ..faults.sites import select_sites
from .campaign import render_guarded_text, run_guarded_campaign
from .voting import MODES, GuardPolicy


def _csv(text: str) -> tuple[str, ...]:
    return tuple(t for t in (s.strip() for s in text.split(",")) if t)


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro.guard",
        description="Detection-coverage campaign: the seeded SEU "
                    "injection plan re-run with the residue guard and "
                    "redundant-execution voting armed.",
        epilog="exit status: 0 = campaign complete, gates passed; "
               "1 = incomplete or a gate failed; 2 = bad arguments.")
    ap.add_argument("--seed", type=int, default=0,
                    help="campaign seed (default 0); same seed, same "
                         "report, byte for byte")
    ap.add_argument("--injections", type=int, default=500,
                    help="number of injections to plan (default 500)")
    ap.add_argument("--operands", type=int, default=24,
                    help="operand-pool size per unit flavor (default 24)")
    ap.add_argument("--multi-bit", type=float, default=0.15,
                    help="fraction of injections upsetting two bits "
                         "(default 0.15)")
    ap.add_argument("--sites", type=_csv, default=(),
                    help="comma-separated site names to restrict to")
    ap.add_argument("--classes", type=_csv, default=(),
                    help="comma-separated site classes "
                         "(pcs,fcs,batch,structural)")
    ap.add_argument("--mode", choices=MODES, default="residue",
                    help="guard policy: residue (re-execute on "
                         "mismatch), dmr, or tmr (default residue)")
    ap.add_argument("--max-executions", type=int, default=4,
                    help="execution budget per work unit (default 4)")
    ap.add_argument("--workers", type=int, default=1,
                    help="parallel workers (default 1 = serial)")
    ap.add_argument("--timeout", type=float, default=120.0,
                    help="per-chunk wall-clock timeout in seconds for "
                         "parallel runs (default 120)")
    ap.add_argument("--retries", type=int, default=3,
                    help="max attempts per chunk in parallel runs "
                         "(default 3)")
    ap.add_argument("--min-reduction", type=float, default=None,
                    help="fail (exit 1) unless baseline SDC >= this "
                         "factor times guarded SDC-to-user")
    ap.add_argument("--min-coverage", type=float, default=None,
                    help="fail (exit 1) unless the guard flagged or "
                         "masked at least this fraction of baseline "
                         "SDC injections")
    ap.add_argument("--json-out", default=None,
                    help="write the full report as JSON to this path "
                         "(e.g. BENCH_guard.json)")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the text report")
    return ap


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.injections < 1:
        parser.error("--injections must be >= 1")
    if args.operands < 1:
        parser.error("--operands must be >= 1")
    if not 0.0 <= args.multi_bit <= 1.0:
        parser.error("--multi-bit must be in [0, 1]")
    if args.max_executions < 1:
        parser.error("--max-executions must be >= 1")
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.timeout <= 0:
        parser.error("--timeout must be positive")
    if args.retries < 1:
        parser.error("--retries must be >= 1")
    if args.min_reduction is not None and args.min_reduction <= 0:
        parser.error("--min-reduction must be positive")
    if args.min_coverage is not None \
            and not 0.0 <= args.min_coverage <= 1.0:
        parser.error("--min-coverage must be in [0, 1]")
    try:
        config = CampaignConfig(
            seed=args.seed, injections=args.injections,
            operands=args.operands, multi_bit=args.multi_bit,
            sites=args.sites, classes=args.classes)
        select_sites(config.sites, config.classes)  # validate filters
        policy = GuardPolicy(
            mode=args.mode,
            max_executions=max(args.max_executions,
                               {"residue": 1, "dmr": 2,
                                "tmr": 3}[args.mode]))
    except (KeyError, ValueError) as exc:
        parser.error(str(exc))
    report = run_guarded_campaign(config, policy, workers=args.workers,
                                  timeout_s=args.timeout,
                                  max_attempts=args.retries)
    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
    if not args.quiet:
        print(render_guarded_text(report))

    totals = report["totals"]
    failures = []
    if totals["injections"] < config.injections:
        failures.append("campaign incomplete")
    if totals["corrected"] != totals["corrected_exact"]:
        failures.append(
            f"{totals['corrected'] - totals['corrected_exact']} corrected "
            f"result(s) not bit-identical to the uninjected oracle")
    cov = report["coverage"]
    if args.min_reduction is not None and cov["guarded_sdc"] > 0 \
            and cov["baseline_sdc"] < args.min_reduction * cov["guarded_sdc"]:
        failures.append(
            f"SDC reduction {cov['baseline_sdc']}/{cov['guarded_sdc']} "
            f"below the {args.min_reduction}x floor")
    if args.min_coverage is not None and cov["baseline_sdc"] > 0:
        caught = cov["baseline_sdc"] - cov["guarded_sdc"]
        if caught / cov["baseline_sdc"] < args.min_coverage:
            failures.append(
                f"detection coverage {caught}/{cov['baseline_sdc']} "
                f"below the {args.min_coverage} floor")
    for msg in failures:
        print(f"guard gate: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
