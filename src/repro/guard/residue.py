"""Residue-code shadow checks threaded through the FMA datapaths.

The classic low-cost concurrent-error-detection scheme for multiply/add
structures is residue checking: alongside the wide datapath, a tiny
checker computes each value modulo ``2^k - 1`` and verifies that the
residues obey the same arithmetic identity as the full-width values
(``residue(b) * residue(c) + residue(a) == residue(result-pre-round)``),
because ``mod 2^k - 1`` commutes with addition and multiplication and a
single-bit flip always changes the residue (``2^i mod (2^k - 1)`` is a
power of two, never zero).

Two regimes appear in this model (docs/GUARD.md works the math):

* **Exact identities** -- where the datapath value equals the untruncated
  integer expression (the batch multiplier's no-overflow branch), the
  checker is pure residue arithmetic over the small moduli
  :data:`EXACT_MODULI` (mod-3 and mod-255, the textbook checkers).
* **Wrapped identities** -- the model multiplies directly into the
  ``(window - shift)`` modulus and the 3:2 / Carry Reduce stages mask
  carry-outs, so values are only conserved modulo ``2^w``.  Hardware
  residue checkers handle this with end-around-carry accumulation over
  the *unwrapped* CSA tree; the model's stand-in is the congruence check
  ``lhs === rhs (mod 2^w)``, which is the same identity the hardware
  checker certifies and is strictly stronger than any single residue.

Every check sits behind the module-global :data:`ACTIVE` arm with the
same one-load disabled fast path as :mod:`repro.probes` and
:mod:`repro.telemetry`; the hot kernels hoist ``_gd.ACTIVE`` once per
call.  A failed check raises :class:`GuardMismatch` (or records it in
``record_only`` mode), which the SEU campaign classifies as *detected*
and the :class:`~repro.guard.voting.GuardedExecutor` treats as the
trigger for redundant re-execution.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from typing import Iterator

from ..telemetry import core as _tm

__all__ = [
    "ACTIVE",
    "EXACT_MODULI",
    "GuardConfig",
    "GuardMismatch",
    "GuardState",
    "guard_active",
    "guarding",
    "lza_shadow",
    "residue",
    "zd_shadow",
]

#: Small mod-(2^k - 1) checker moduli for exact (unwrapped) identities:
#: k = 2 and k = 8, the classic mod-3 / mod-255 residue checkers.  A
#: single-bit flip of weight 2^i changes a value by +-2^i, and
#: 2^i mod (2^k - 1) cycles through powers of two -- never 0 -- so no
#: single flip is ever silent under either modulus.
EXACT_MODULI = (3, 255)


class GuardMismatch(Exception):
    """A concurrent-error check failed: the datapath value disagrees with
    its residue/recompute shadow.  Deliberately *not* an
    ``ArithmeticError`` so per-item arithmetic handlers in the serving
    and batch layers never swallow it as an ordinary operand error."""

    def __init__(self, stage: str, detail: str = ""):
        self.stage = stage
        self.detail = detail
        msg = f"guard mismatch at {stage}"
        super().__init__(f"{msg}: {detail}" if detail else msg)


@dataclass(frozen=True)
class GuardConfig:
    """Checker policy for one :func:`guarding` region.

    ``record_only`` turns mismatches into structured records instead of
    raising (used by the campaign's coverage accounting and by tests
    that want to observe every mismatch, not just the first).
    """

    record_only: bool = False
    max_records: int = 64


def residue(x: int, m: int) -> int:
    """The mod-``m`` residue of ``x`` (negative values fold correctly)."""
    return x % m


class GuardState:
    """Mutable per-region checker state: counts and mismatch records.

    Check methods are written for the armed path only -- the disabled
    fast path never reaches them (callers test ``ACTIVE is not None``).
    """

    __slots__ = ("config", "checks", "mismatches", "records")

    def __init__(self, config: GuardConfig | None = None):
        self.config = config if config is not None else GuardConfig()
        self.checks: dict[str, int] = {}
        self.mismatches: dict[str, int] = {}
        self.records: list[dict] = []

    # -- accounting -----------------------------------------------------

    def _bump(self, table: dict[str, int], stage: str) -> None:
        table[stage] = table.get(stage, 0) + 1

    def _fail(self, stage: str, detail: str) -> None:
        self._bump(self.mismatches, stage)
        if len(self.records) < self.config.max_records:
            self.records.append({"stage": stage, "detail": detail})
        if not self.config.record_only:
            raise GuardMismatch(stage, detail)

    @property
    def total_checks(self) -> int:
        return sum(self.checks.values())

    @property
    def total_mismatches(self) -> int:
        return sum(self.mismatches.values())

    # -- datapath checks ------------------------------------------------

    def check_product(self, s: int, c: int, cv: int, sig: int,
                      width: int, exact: bool = False) -> None:
        """Verify the CS product pair against the operand residues.

        ``s + c`` must equal ``cv * sig`` -- exactly when the tree had no
        overflow (``exact=True``: pure mod-3/mod-255 residue arithmetic,
        the full product is never formed), otherwise modulo ``2^width``
        (the wrap the model's masked CSA tree computes under).
        """
        self._bump(self.checks, "product")
        if exact:
            for m in EXACT_MODULI:
                if (s + c) % m != ((cv % m) * (sig % m)) % m:
                    self._fail("product", f"mod-{m} residue")
                    return
        elif (s + c - cv * sig) & ((1 << width) - 1):
            self._fail("product", "mod-2^w congruence")

    def check_window(self, w_sum: int, w_carry: int, rows_sum: int,
                     width: int) -> None:
        """Window conservation: the CS pair after the 3:2 compressor and
        (for PCS) the Carry Reduce stage must still represent the sum of
        the input rows modulo ``2^width`` -- both stages conserve value
        under the window wrap, so any value-changing upset between the
        row registers and the collapsed window breaks the congruence."""
        self._bump(self.checks, "window")
        if (w_sum + w_carry - rows_sum) & ((1 << width) - 1):
            self._fail("window", "window conservation")

    def check_norm(self, skipped: int, shadow: int, selector: str) -> None:
        """Normalization shadow: the block-skip count chosen by the ZD /
        LZA must match an independent recompute (closed-form redundant
        sign bits for the ZD, a second anticipator pass for the LZA)."""
        self._bump(self.checks, "norm")
        if skipped != shadow:
            self._fail("norm", f"{selector} skip {skipped} != {shadow}")

    def check_slice(self, m_sum: int, m_carry: int, w_sum: int,
                    w_carry: int, lo: int, mant_mask: int,
                    carry_mask: int) -> None:
        """Result-slice shadow: the mantissa mux output must equal the
        window planes re-sliced at ``lo`` (an exact shift/mask)."""
        self._bump(self.checks, "slice")
        if (m_sum != (w_sum >> lo) & mant_mask
                or m_carry != (w_carry >> lo) & mant_mask & carry_mask):
            self._fail("slice", "mantissa slice")

    def check_equal(self, stage: str, got, want) -> None:
        """Generic duplicate-and-compare shadow (classic unit, structural
        artifact recompute)."""
        self._bump(self.checks, stage)
        if got != want:
            self._fail(stage, "recompute disagrees")


# ---------------------------------------------------------------------------
# normalization shadows: independent recomputes with no probe points


def zd_shadow(value: int, width: int, block: int, max_skip: int) -> int:
    """Closed form of the block Zero Detector's skip count.

    ``skipped = clamp((rsb - 1) // block, 0, max_skip)`` where ``rsb``
    counts the redundant leading sign bits of the collapsed window value
    -- the quantity :func:`repro.cs.zero_detect.count_skippable_blocks`
    searches for block by block (the batch kernel's equivalence).
    Deliberately re-derived here from the *value*, not the CS planes, so
    it shares no inputs with the ZD's probed block-class wires.
    """
    if value >> (width - 1):
        inv = value ^ ((1 << width) - 1)
        rsb = width if inv == 0 else width - inv.bit_length()
    else:
        rsb = width - value.bit_length()
    skipped = (rsb - 1) // block
    if skipped > max_skip:
        return max_skip
    return skipped if skipped > 0 else 0


def lza_shadow(a: int, b: int, width: int) -> int:
    """Second-opinion Schmookler/Nowka anticipator pass.

    Same indicator as :func:`repro.cs.lza.lza_estimate` but with no
    probe point and no telemetry -- a shadow latch of the anticipator's
    inputs, so an upset of the primary LZA's input registers shows up as
    a skip-count disagreement.
    """
    mask = (1 << width) - 1
    a &= mask
    b &= mask
    t = a ^ b
    g = a & b
    z = (~(a | b)) & mask
    t_up = t >> 1
    z_dn = ((z << 1) | 1) & mask
    g_dn = (g << 1) & mask
    f = (t_up & ((g & ~z_dn) | (z & ~g_dn))
         | (~t_up & mask) & ((z & ~z_dn) | (g & ~g_dn))) & mask
    f &= (1 << (width - 1)) - 1
    if f == 0:
        return width - 1 if width > 0 else 0
    est = width - 1 - (f.bit_length() - 1)
    return est if est > 0 else 0


# ---------------------------------------------------------------------------
# the arm global

#: checker state while the guard is armed; ``None`` always = fast path.
ACTIVE: "GuardState | None" = None

#: Serializes concurrent :func:`guarding` regions (the serving layer
#: verifies requests from multiple worker threads; arming is process
#: global, so verified executions take turns).
_ARM_LOCK = threading.Lock()


def guard_active() -> bool:
    """True while residue checking is armed (hot-path call guard)."""
    return ACTIVE is not None


@contextlib.contextmanager
def guarding(config: GuardConfig | None = None) -> Iterator[GuardState]:
    """Arm the residue checkers for the duration of the context.

    Arming is process-global (the datapaths read one module global) and
    non-reentrant, like :func:`repro.probes.armed` and
    :func:`repro.telemetry.collecting`; concurrent callers serialize on
    an internal lock rather than erroring, because the serving layer
    verifies requests from multiple worker threads.  On exit the check
    and mismatch tallies are flushed to telemetry as ``guard.checks.*``
    / ``guard.mismatch.*`` counters.
    """
    global ACTIVE
    with _ARM_LOCK:
        if ACTIVE is not None:  # pragma: no cover - lock prevents this
            raise RuntimeError("residue guard is already armed")
        state = GuardState(config)
        ACTIVE = state
        try:
            yield state
        finally:
            ACTIVE = None
            t = _tm.ACTIVE
            if t is not None:
                for stage, n in state.checks.items():
                    t.count(f"guard.checks.{stage}", n)
                for stage, n in state.mismatches.items():
                    t.count(f"guard.mismatch.{stage}", n)
