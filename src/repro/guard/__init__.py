"""Concurrent error detection and correction (CED) for the FMA datapaths.

``repro.faults`` *measures* silent data corruption; this package
*defends* against it at runtime:

* :mod:`repro.guard.residue` -- residue-code shadow checks armed behind
  a probes/telemetry-style ``ACTIVE`` global (one load disabled), run
  alongside the scalar CS-FMA stages and the batch SWAR lanes;
* :mod:`repro.guard.voting` -- the :class:`GuardedExecutor`:
  redundant execution with majority voting on residue mismatch or in
  DMR/TMR mode, classifying every outcome as ``clean`` / ``corrected``
  / ``uncorrectable`` (uncorrectable results are rejected, never
  returned as data);
* :mod:`repro.guard.campaign` -- closed-loop validation: the PR 4 SEU
  campaigns re-run with the guard armed, producing a baseline-vs-guarded
  detection-coverage report (``python -m repro.guard``).

The datapath modules import :mod:`repro.guard.residue` (and therefore
this ``__init__``) at module load, so only the dependency-light residue
layer is imported eagerly here; the voting/campaign layers -- which pull
in :mod:`repro.faults` and would close an import cycle back into the
datapaths -- load lazily on first attribute access (the
``repro.experiments`` pattern).

See ``docs/GUARD.md`` for the residue math and the escalation ladder.
"""

from .residue import (GuardConfig, GuardMismatch, GuardState, guard_active,
                      guarding)

__all__ = [
    "GuardConfig",
    "GuardMismatch",
    "GuardState",
    "GuardedExecutor",
    "GuardedOutcome",
    "GuardPolicy",
    "guard_active",
    "guarding",
]

_LAZY = {"GuardedExecutor": "voting", "GuardedOutcome": "voting",
         "GuardPolicy": "voting"}


def __getattr__(name: str):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}")
    import importlib

    return getattr(importlib.import_module(f".{mod}", __name__), name)
