"""Closed-loop validation: the SEU campaigns re-run with the guard armed.

The PR 4 campaign engine measures how often a transient upset reaches
the user as silent data corruption.  This module re-runs the *same*
seeded injection plan with the CED layer active and measures what is
left: every injection is evaluated once unguarded (the baseline record,
bit-identical to ``python -m repro.faults``) and once through a
:class:`~repro.guard.voting.GuardedExecutor`, producing a per-site /
per-class detection-coverage report -- baseline SDC rate vs guarded
SDC-to-user rate.

Fault-model mapping (docs/GUARD.md spells out each rung):

* **data / batch sites** -- the probe-armed transient fires during the
  first guarded execution only (the :class:`~repro.probes.Arm`
  occurrence counter advances past ``at_call``), so a re-execution
  recomputes cleanly: exactly the transient-upset contract the
  escalation ladder assumes.
* **operand sites** -- a flipped *packed operand word* is consistent
  arithmetic on wrong inputs; unit-level residue checks cannot see it.
  The executor covers the bus instead: operand fetches run at least
  DMR, with re-executions re-fetching the operand from its source
  (transient bus upsets do not persist), so disagreement exposes the
  flip and the vote recovers the clean value.
* **structural sites** -- netlists/pipelines/schedules are pure
  functions of their specs; the guard re-derives the artifact and
  compares (duplicate-and-compare), so a corrupted artifact is either
  caught by analysis rules (rejected and rebuilt) or by the compare.

Determinism matches the baseline campaign: records are pure functions
of ``(config, policy, injection)``, aggregation is sorted, and parallel
runs merge by injection id -- serial and parallel reports are
byte-identical.
"""

from __future__ import annotations

from dataclasses import asdict

from ..faults.campaign import (CampaignConfig, _classify_cs,
                               _batch_inputs, _golden_batch,
                               _golden_scalar, _pool, _same_cs, _same_ieee,
                               _scalar_operands, _scalar_unit, _site_of,
                               plan_injections, run_injection)
from ..faults.resilient import RetryPolicy, run_resilient
from ..faults.sites import (SITE_CLASSES, FaultSite, flip_word,
                            make_transform, params_for_unit, select_sites)
from ..fma.convert import cs_to_ieee
from ..fma.formats import CSFloat
from ..probes import Arm, armed
from ..telemetry import core as _tm
from .voting import GuardedExecutor, GuardPolicy

__all__ = ["run_guarded_injection", "run_guarded_campaign",
           "aggregate_guarded", "render_guarded_text", "GUARD_STATUSES"]

GUARD_STATUSES = ("clean", "corrected", "uncorrectable")


def _policy_for(site: FaultSite, policy: GuardPolicy) -> GuardPolicy:
    """Operand (bus) sites always run at least DMR: consistent-but-wrong
    inputs pass every unit-level residue check, so redundancy with
    re-fetch is the only detector with reach there."""
    if site.kind == "operand" and policy.mode == "residue":
        return GuardPolicy(mode="dmr",
                           max_executions=max(policy.max_executions, 4),
                           quorum=policy.quorum, workers=policy.workers,
                           timeout_s=policy.timeout_s)
    return policy


def _value_verdict(site: FaultSite, golden, value) -> tuple[bool, bool]:
    """``(exact, user_visible)`` for a value the guard released.

    ``exact`` -- bit-identical to the uninjected oracle.
    ``user_visible`` -- the IEEE-converted value the caller would
    consume differs (representation-absorbed differences are not
    user-visible corruption, matching the baseline's ``masked``
    classification).
    """
    if value == golden:
        return True, False
    if site.site_class == "batch":
        from ..batch.cskernel import kernel_for

        kernel = kernel_for(_scalar_unit(site.unit))
        try:
            golden, value = kernel.lower(golden), kernel.lower(value)
        except Exception:
            # the released tuple violates the operand format; the format
            # boundary rejects it downstream -- detected, not silent
            return False, False
    if _same_cs(golden, value):
        return True, False
    return False, not _same_ieee(cs_to_ieee(golden), cs_to_ieee(value))


def _guard_record(outcome, site: FaultSite, golden) -> dict:
    """Fold a :class:`GuardedOutcome` into the campaign's guard record."""
    flagged = outcome.flagged > 0 or any(
        "error" in r for r in outcome.records)
    if outcome.status == "uncorrectable":
        return {"status": "uncorrectable", "flagged": flagged,
                "executions": outcome.executions,
                "corrected_exact": False, "sdc_to_user": False}
    exact, visible = _value_verdict(site, golden, outcome.value)
    return {"status": outcome.status, "flagged": flagged,
            "executions": outcome.executions,
            "corrected_exact": outcome.status == "corrected" and exact,
            "sdc_to_user": visible}


def _guard_data(config: CampaignConfig, site: FaultSite, inj: dict,
                policy: GuardPolicy) -> dict:
    params = params_for_unit(site.unit)
    triple = _pool(config.seed, site.unit, config.operands)[inj["operand"]]
    arm = Arm(make_transform(site, tuple(inj["fracs"]), params))
    if site.site_class == "batch":
        golden = _golden_batch(config, site.unit, inj["operand"])
        kernel, at, bt, ct = _batch_inputs(site.unit, triple)

        def work(execution: int):
            return kernel.fma(at, bt, ct)
    else:
        golden = _golden_scalar(config, site.unit, inj["operand"])
        a, b, c = _scalar_operands(site.unit, triple)
        unit = _scalar_unit(site.unit)

        def work(execution: int):
            return unit.fma(a, b, c)

    # the probes stay armed across every execution: the Arm fires at its
    # occurrence exactly once, so re-executions see the clean datapath
    # (the transient-upset contract)
    with armed({site.tag: arm}):
        outcome = GuardedExecutor(policy).run(work)
    return _guard_record(outcome, site, golden)


def _guard_operand(config: CampaignConfig, site: FaultSite, inj: dict,
                   policy: GuardPolicy) -> dict:
    params = params_for_unit(site.unit)
    triple = _pool(config.seed, site.unit, config.operands)[inj["operand"]]
    golden = _golden_scalar(config, site.unit, inj["operand"])
    a, b, c = _scalar_operands(site.unit, triple)
    mask = (1 << (params.operand_bits + 2)) - 1
    w = flip_word(mask, tuple(inj["fracs"]))
    corrupt_a = inj["operand"] % 2 == 0
    try:
        faulted = CSFloat.unpack((a if corrupt_a else c).pack() ^ w,
                                 params)
    except Exception:
        # invalid operand word: the format's validity check rejects it
        # before execution -- detected at the bus boundary
        return {"status": "uncorrectable", "flagged": True,
                "executions": 0, "corrected_exact": False,
                "sdc_to_user": False}
    unit = _scalar_unit(site.unit)

    def work(execution: int):
        # a transient bus upset corrupts one fetch; re-executions
        # re-read the operand from its source register
        if execution == 0:
            return unit.fma(faulted if corrupt_a else a, b,
                            c if corrupt_a else faulted)
        return unit.fma(a, b, c)

    outcome = GuardedExecutor(_policy_for(site, policy)).run(work)
    return _guard_record(outcome, site, golden)


def _guard_structural(base: dict) -> dict:
    """Structural artifacts are pure functions of their specs, so the
    guard's duplicate-and-compare re-derivation catches every baseline
    outcome that changed the artifact (``bit_diff``) and rebuilds it."""
    if base["outcome"] == "masked" and not base["bit_diff"]:
        return {"status": "clean", "flagged": False, "executions": 1,
                "corrected_exact": False, "sdc_to_user": False}
    return {"status": "corrected",
            "flagged": True, "executions": 2,
            "corrected_exact": True, "sdc_to_user": False}


def run_guarded_injection(config: CampaignConfig, site: FaultSite,
                          inj: dict, policy: GuardPolicy) -> dict:
    """Baseline record plus the guarded verdict for one injection."""
    base = run_injection(config, site, inj)
    if site.kind == "data":
        guard = _guard_data(config, site, inj, policy)
    elif site.kind == "operand":
        guard = _guard_operand(config, site, inj, policy)
    else:
        guard = _guard_structural(base)
    rec = dict(base)
    rec["guard"] = guard
    return rec


def _policy_dict(policy: GuardPolicy) -> dict:
    return asdict(policy)


def _guarded_entry(payload: dict) -> list[dict]:
    """Picklable work unit: one contiguous plan slice, guarded."""
    config = CampaignConfig.from_dict(payload["config"])
    policy = GuardPolicy(**payload["policy"])
    plan = plan_injections(config)
    from ..faults.sites import SITES

    return [run_guarded_injection(config, SITES[inj["site"]], inj, policy)
            for inj in plan[payload["lo"]:payload["hi"]]]


def run_guarded_campaign(config: CampaignConfig,
                         policy: GuardPolicy | None = None, *,
                         workers: int = 1, chunk: int = 50,
                         timeout_s: float | None = 120.0,
                         max_attempts: int = 3) -> dict:
    """Run the detection-coverage campaign and aggregate the report.

    Serial by default; ``workers > 1`` fans contiguous plan slices
    through :func:`~repro.faults.resilient.run_resilient` and merges by
    injection id, exactly like the baseline campaign -- the report is
    byte-identical to the serial run's.
    """
    policy = policy if policy is not None else GuardPolicy()
    plan = plan_injections(config)
    sites = select_sites(config.sites, config.classes)
    done: dict[int, dict] = {}
    resilience = None
    if workers > 1 and len(plan) > chunk:
        payloads = [{"config": config.to_dict(),
                     "policy": _policy_dict(policy),
                     "lo": lo, "hi": min(lo + chunk, len(plan))}
                    for lo in range(0, len(plan), chunk)]
        run = run_resilient(_guarded_entry, payloads, workers=workers,
                            timeout_s=timeout_s,
                            retry=RetryPolicy(max_attempts=max_attempts),
                            rng_seed=config.seed)
        resilience = run.summary()
        leftovers = []
        for res, payload in zip(run.results, payloads):
            if res.ok:
                for rec in res.value:
                    done[rec["id"]] = rec
            else:
                leftovers.extend(range(payload["lo"], payload["hi"]))
        for i in leftovers:
            inj = plan[i]
            rec = run_guarded_injection(config, _site_of(sites, inj), inj,
                                        policy)
            done[rec["id"]] = rec
    else:
        for inj in plan:
            rec = run_guarded_injection(config, _site_of(sites, inj), inj,
                                        policy)
            done[rec["id"]] = rec
    records = [done[i] for i in sorted(done)]
    report = aggregate_guarded(config, policy, records, sites)
    if resilience is not None:
        report["resilience"] = resilience
    t = _tm.ACTIVE
    if t is not None:
        t.count("guard.campaigns")
        for rec in records:
            t.count(f"guard.campaign.{rec['guard']['status']}")
    return report


# ---------------------------------------------------------------------------
# aggregation


def _bucket() -> dict:
    return {"injections": 0, "baseline_sdc": 0, "clean": 0, "corrected": 0,
            "corrected_exact": 0, "uncorrectable": 0, "flagged": 0,
            "sdc_to_user": 0, "executions": 0}


def _feed(bucket: dict, rec: dict) -> None:
    g = rec["guard"]
    bucket["injections"] += 1
    bucket["baseline_sdc"] += 1 if rec["outcome"] == "sdc" else 0
    bucket[g["status"]] += 1
    bucket["corrected_exact"] += 1 if g["corrected_exact"] else 0
    bucket["flagged"] += 1 if g["flagged"] else 0
    bucket["sdc_to_user"] += 1 if g["sdc_to_user"] else 0
    bucket["executions"] += g["executions"]


def _rates(bucket: dict) -> dict:
    n = bucket["injections"]
    bucket["baseline_sdc_rate"] = (round(bucket["baseline_sdc"] / n, 4)
                                   if n else 0.0)
    bucket["guarded_sdc_rate"] = (round(bucket["sdc_to_user"] / n, 4)
                                  if n else 0.0)
    return bucket


def aggregate_guarded(config: CampaignConfig, policy: GuardPolicy,
                      records: list[dict],
                      sites: list[FaultSite]) -> dict:
    """Deterministic detection-coverage report (sorted, no timestamps)."""
    totals = _bucket()
    by_class: dict[str, dict] = {}
    by_site: dict[str, dict] = {}
    site_meta = {s.name: s for s in sites}
    for rec in records:
        _feed(totals, rec)
        _feed(by_class.setdefault(rec["class"], _bucket()), rec)
        _feed(by_site.setdefault(rec["site"], _bucket()), rec)
    site_table = {}
    for name in sorted(by_site):
        entry = _rates(by_site[name])
        meta = site_meta.get(name)
        if meta is not None:
            entry["class"] = meta.site_class
            entry["stage"] = meta.stage
        site_table[name] = entry
    b, g = totals["baseline_sdc"], totals["sdc_to_user"]
    return {
        "config": config.to_dict(),
        "policy": _policy_dict(policy),
        "totals": _rates(totals),
        "classes": {c: _rates(by_class[c]) for c in SITE_CLASSES
                    if c in by_class},
        "sites": site_table,
        "coverage": {
            "baseline_sdc": b,
            "guarded_sdc": g,
            # None = no SDC survived the guard (unbounded reduction)
            "reduction_factor": (round(b / g, 2) if g else None),
        },
    }


def render_guarded_text(report: dict) -> str:
    """Human-readable detection-coverage summary."""
    t = report["totals"]
    cov = report["coverage"]
    red = cov["reduction_factor"]
    rows = [
        f"guarded SEU campaign: {t['injections']} injections "
        f"(seed {report['config']['seed']}, "
        f"mode {report['policy']['mode']})",
        f"  clean          {t['clean']:>6}",
        f"  corrected      {t['corrected']:>6}   "
        f"(bit-identical to oracle: {t['corrected_exact']})",
        f"  uncorrectable  {t['uncorrectable']:>6}   (rejected, never "
        f"returned as data)",
        f"  SDC to user    {t['sdc_to_user']:>6}   vs baseline "
        f"{t['baseline_sdc']}  "
        + (f"({red}x reduction)" if red is not None
           else "(no surviving SDC)"),
        f"  executions     {t['executions']:>6}",
        "",
        "site class    inject  base-sdc  corrected  rejected  user-sdc",
        "----------    ------  --------  ---------  --------  --------",
    ]
    for cls, b in report["classes"].items():
        rows.append(f"{cls:<12}  {b['injections']:>6}  "
                    f"{b['baseline_sdc']:>8}  {b['corrected']:>9}  "
                    f"{b['uncorrectable']:>8}  {b['sdc_to_user']:>8}")
    rows.append("")
    rows.append("per-site coverage (baseline sdc -> guarded user-sdc):")
    for name, b in report["sites"].items():
        rows.append(f"  {name:<26} {b['injections']:>5} inj  "
                    f"{b['baseline_sdc']:>4} -> {b['sdc_to_user']:>4}  "
                    f"corrected {b['corrected']:>4}")
    res = report.get("resilience")
    if res:
        rows.append("")
        rows.append(f"resilience: {res['retries']} retries, "
                    f"{res['timeouts']} timeouts, "
                    f"{res['pool_respawns']} pool respawns"
                    + (", serial fallback" if res["serial_fallback"]
                       else ""))
    return "\n".join(rows)
