"""Bit-accurate floating-point values with flag-based exception encoding.

The paper follows FloPoCo's convention of signalling exceptional values
(zero, infinity, NaN) on *two extra wires* instead of encoding them inside
the number representation (Sec. III-B: "this can be avoided by using two
additional wires for explicitly signalling exceptions").  :class:`FPValue`
mirrors that: the class field carries the exception state, while the
sign/exponent/fraction fields are only meaningful for ``NORMAL`` values.

Subnormals are not representable -- any exact value whose rounded
magnitude falls below the smallest normal flushes to (signed) zero, the
behaviour of the FPGA libraries the paper builds on.
"""

from __future__ import annotations

import enum
import math
import struct
from dataclasses import dataclass
from fractions import Fraction

from .formats import BINARY64, FloatFormat
from .rounding import RoundingMode, round_scaled

__all__ = ["FpClass", "FPValue"]


class FpClass(enum.Enum):
    """FloPoCo-style two-wire exception class of a value."""

    ZERO = 0
    NORMAL = 1
    INF = 2
    NAN = 3


@dataclass(frozen=True)
class FPValue:
    """A floating-point value in a given :class:`FloatFormat`.

    Attributes
    ----------
    fmt:
        The format the value is stored in.
    cls:
        Exception class (two-wire encoding).
    sign:
        0 for positive, 1 for negative.  Meaningful for ZERO, NORMAL and
        INF (IEEE signed zeroes/infinities); ignored for NaN.
    biased_exponent:
        Biased exponent; only meaningful for NORMAL values, where it lies
        in ``[1, fmt.max_biased_exponent]``.
    fraction:
        Stored fraction field (without the implied leading 1); only
        meaningful for NORMAL values.
    """

    fmt: FloatFormat
    cls: FpClass
    sign: int = 0
    biased_exponent: int = 0
    fraction: int = 0

    def __post_init__(self) -> None:
        if self.sign not in (0, 1):
            raise ValueError("sign must be 0 or 1")
        if self.cls is FpClass.NORMAL:
            if not (1 <= self.biased_exponent <= self.fmt.max_biased_exponent):
                raise ValueError(
                    f"biased exponent {self.biased_exponent} out of normal "
                    f"range [1, {self.fmt.max_biased_exponent}] for "
                    f"{self.fmt.name}"
                )
            if not (0 <= self.fraction <= self.fmt.fraction_mask):
                raise ValueError("fraction field out of range")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def zero(cls, fmt: FloatFormat, sign: int = 0) -> "FPValue":
        return cls(fmt, FpClass.ZERO, sign)

    @classmethod
    def inf(cls, fmt: FloatFormat, sign: int = 0) -> "FPValue":
        return cls(fmt, FpClass.INF, sign)

    @classmethod
    def nan(cls, fmt: FloatFormat) -> "FPValue":
        return cls(fmt, FpClass.NAN)

    @classmethod
    def from_parts(cls, fmt: FloatFormat, sign: int, biased_exponent: int,
                   fraction: int) -> "FPValue":
        """Build a NORMAL value from raw fields."""
        return cls(fmt, FpClass.NORMAL, sign, biased_exponent, fraction)

    @classmethod
    def from_float(cls, x: float, fmt: FloatFormat = BINARY64) -> "FPValue":
        """Convert a Python float.

        For ``fmt == BINARY64`` the conversion of normal numbers is exact;
        subnormal floats flush to zero (matching the hardware libraries).
        For other formats the value is correctly rounded (ties to even).
        """
        if math.isnan(x):
            return cls.nan(fmt)
        if math.isinf(x):
            return cls.inf(fmt, 1 if x < 0 else 0)
        if x == 0.0:
            return cls.zero(fmt, 1 if math.copysign(1.0, x) < 0 else 0)
        if fmt is BINARY64 or fmt == BINARY64:
            bits = struct.unpack("<Q", struct.pack("<d", x))[0]
            sign = (bits >> 63) & 1
            be = (bits >> 52) & 0x7FF
            frac = bits & ((1 << 52) - 1)
            if be == 0:  # subnormal: flush to zero
                return cls.zero(fmt, sign)
            return cls.from_parts(fmt, sign, be, frac)
        return cls.from_fraction(Fraction(x), fmt)

    @classmethod
    def from_fraction(cls, value: Fraction, fmt: FloatFormat,
                      mode: RoundingMode = RoundingMode.NEAREST_EVEN,
                      ) -> "FPValue":
        """Correctly round an exact rational to the format.

        Overflow saturates to infinity; magnitudes that round below the
        smallest normal flush to zero (no subnormals).
        """
        if value == 0:
            return cls.zero(fmt)
        sign = 1 if value < 0 else 0
        mag = -value if sign else value
        # Unbiased exponent e such that 1 <= mag / 2^e < 2.
        e = _ilog2(mag)
        # Round magnitude to significand with fmt.fraction_bits fraction
        # bits: sig = round(mag / 2^(e - fraction_bits)).
        sig = round_scaled(mag, e - fmt.fraction_bits, mode)
        if sig >= (1 << fmt.significand_bits):
            # Rounding overflowed into the next binade (e.g. 1.111..1
            # rounded up).  Renormalize.
            sig >>= 1
            e += 1
        if sig < (1 << fmt.fraction_bits):
            # Can only happen for pathological inputs; renormalize down.
            while sig and sig < (1 << fmt.fraction_bits):
                sig <<= 1
                e -= 1
        if sig == 0:
            return cls.zero(fmt, sign)
        be = e + fmt.bias
        if be > fmt.max_biased_exponent:
            return cls.inf(fmt, sign)
        if be < 1:
            return cls.zero(fmt, sign)  # flush-to-zero
        return cls.from_parts(fmt, sign, be, sig & fmt.fraction_mask)

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------

    @property
    def is_zero(self) -> bool:
        return self.cls is FpClass.ZERO

    @property
    def is_normal(self) -> bool:
        return self.cls is FpClass.NORMAL

    @property
    def is_inf(self) -> bool:
        return self.cls is FpClass.INF

    @property
    def is_nan(self) -> bool:
        return self.cls is FpClass.NAN

    @property
    def is_finite(self) -> bool:
        return self.cls in (FpClass.ZERO, FpClass.NORMAL)

    @property
    def significand(self) -> int:
        """Significand including the implied leading 1 (NORMAL only)."""
        if not self.is_normal:
            raise ValueError("significand of a non-normal value")
        return self.fraction | (1 << self.fmt.fraction_bits)

    @property
    def unbiased_exponent(self) -> int:
        if not self.is_normal:
            raise ValueError("exponent of a non-normal value")
        return self.biased_exponent - self.fmt.bias

    def to_fraction(self) -> Fraction:
        """Exact rational value (finite values only)."""
        if self.is_zero:
            return Fraction(0)
        if not self.is_normal:
            raise ValueError(f"no finite rational value for {self.cls}")
        mag = Fraction(self.significand)
        shift = self.unbiased_exponent - self.fmt.fraction_bits
        if shift >= 0:
            mag *= 1 << shift
        else:
            mag /= 1 << (-shift)
        return -mag if self.sign else mag

    def to_float(self) -> float:
        """Convert to a Python float (rounded if the format is wider)."""
        if self.is_nan:
            return math.nan
        if self.is_inf:
            return -math.inf if self.sign else math.inf
        if self.is_zero:
            return -0.0 if self.sign else 0.0
        f = self.to_fraction()
        try:
            return float(f)
        except OverflowError:
            return -math.inf if self.sign else math.inf

    # ------------------------------------------------------------------
    # packing (bit-exact round trips; used by the HLS converters and the
    # switching-activity energy model)
    # ------------------------------------------------------------------

    def pack(self) -> int:
        """Pack into the FloPoCo-style word: 2 exception bits, sign,
        exponent, fraction (MSB first)."""
        word = self.cls.value
        word = (word << 1) | self.sign
        word = (word << self.fmt.exponent_bits) | (
            self.biased_exponent if self.is_normal else 0)
        word = (word << self.fmt.fraction_bits) | (
            self.fraction if self.is_normal else 0)
        return word

    @classmethod
    def unpack(cls, word: int, fmt: FloatFormat) -> "FPValue":
        """Inverse of :meth:`pack`."""
        frac = word & fmt.fraction_mask
        word >>= fmt.fraction_bits
        be = word & fmt.exponent_mask
        word >>= fmt.exponent_bits
        sign = word & 1
        word >>= 1
        fpclass = FpClass(word & 3)
        if fpclass is FpClass.NORMAL:
            return cls.from_parts(fmt, sign, be, frac)
        return cls(fmt, fpclass, sign)

    @property
    def packed_width(self) -> int:
        """Width in bits of the packed word."""
        return self.fmt.total_bits + 2

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_normal:
            return (f"FPValue({self.fmt.name}, {'-' if self.sign else '+'}"
                    f"1.{self.fraction:0{self.fmt.fraction_bits}b} * "
                    f"2^{self.unbiased_exponent})")
        return f"FPValue({self.fmt.name}, {self.cls.name}, sign={self.sign})"


def _ilog2(mag: Fraction) -> int:
    """floor(log2(mag)) for a positive rational, computed exactly."""
    num, den = mag.numerator, mag.denominator
    e = num.bit_length() - den.bit_length()
    # 2^e <= num/den < 2^(e+2); fix up by comparison.
    if e >= 0:
        if num < den << e:
            e -= 1
        elif num >= den << (e + 1):
            e += 1
    else:
        if num << (-e) < den:
            e -= 1
        elif num << (-e - 1) >= den:
            e += 1
    return e
