"""Floating-point format descriptions.

The paper works with IEEE 754 binary64 ("double precision", Fig. 2) plus a
family of *widened* binary formats used as accuracy references in the
Fig. 14 experiment: 68-bit and 75-bit variants that keep the 11-bit
exponent of binary64 but extend the mantissa ("The 68b and 75b variants
employ a larger mantissa for improved accuracy", Sec. IV-B).

Like the FPGA libraries the paper compares against (FloPoCo, Xilinx
CoreGen), *subnormals are not supported* -- values below the smallest
normal magnitude flush to zero (Sec. II: "Many existing floating-point
libraries for FPGAs omit subnormals ... an approach we will also follow").

A :class:`FloatFormat` is a frozen value object describing the bit layout;
all arithmetic lives in :mod:`repro.fp.value` and :mod:`repro.fp.ops`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "FloatFormat",
    "BINARY32",
    "BINARY64",
    "EXTENDED68",
    "EXTENDED75",
    "format_by_name",
]


@dataclass(frozen=True)
class FloatFormat:
    """Bit layout of a binary floating-point format.

    Parameters
    ----------
    name:
        Human-readable identifier (``"binary64"`` etc.).
    exponent_bits:
        Width of the biased-exponent field ``E``.
    fraction_bits:
        Width of the stored fraction field ``M`` (excluding the implied
        leading 1 of normalized numbers).

    The represented value of a normal number is
    ``(-1)^S * 1.M * 2^(E - bias)`` with ``bias = 2^(exponent_bits-1) - 1``.
    """

    name: str
    exponent_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.exponent_bits < 2:
            raise ValueError("exponent field needs at least 2 bits")
        if self.fraction_bits < 1:
            raise ValueError("fraction field needs at least 1 bit")

    # -- derived layout properties ------------------------------------

    @property
    def bias(self) -> int:
        """Exponent bias (IEEE convention)."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def total_bits(self) -> int:
        """Total storage width: sign + exponent + fraction."""
        return 1 + self.exponent_bits + self.fraction_bits

    @property
    def significand_bits(self) -> int:
        """Significand width *including* the implied leading 1."""
        return self.fraction_bits + 1

    @property
    def emax(self) -> int:
        """Largest unbiased exponent of a finite normal number."""
        return self.bias

    @property
    def emin(self) -> int:
        """Smallest unbiased exponent of a normal number."""
        return 1 - self.bias

    @property
    def max_biased_exponent(self) -> int:
        """Largest biased exponent of a finite number (all-ones is Inf/NaN
        in packed IEEE encodings; our flag-based encoding still honours
        this bound so packed round-trips stay exact)."""
        return (1 << self.exponent_bits) - 2

    @property
    def fraction_mask(self) -> int:
        return (1 << self.fraction_bits) - 1

    @property
    def exponent_mask(self) -> int:
        return (1 << self.exponent_bits) - 1

    @property
    def min_normal_exponent_biased(self) -> int:
        """Smallest biased exponent of a normal number (1 in IEEE)."""
        return 1

    @property
    def ulp_exponent(self) -> int:
        """Scale of one unit in the last place of a number with unbiased
        exponent 0, i.e. ``2^ulp_exponent`` is the ULP at magnitude 1."""
        return -self.fraction_bits

    def describe(self) -> str:
        """One-line human-readable description of the layout."""
        return (
            f"{self.name}: 1s + {self.exponent_bits}e + "
            f"{self.fraction_bits}f = {self.total_bits}b, bias {self.bias}"
        )


#: IEEE 754 single precision.
BINARY32 = FloatFormat("binary32", exponent_bits=8, fraction_bits=23)

#: IEEE 754 double precision (Fig. 2 of the paper).
BINARY64 = FloatFormat("binary64", exponent_bits=11, fraction_bits=52)

#: 68-bit widened CoreGen-style format of Sec. IV-B (11b exponent kept,
#: fraction extended from 52 to 55 bits: 1 + 11 + 56 = 68).
EXTENDED68 = FloatFormat("extended68", exponent_bits=11, fraction_bits=56)

#: 75-bit widened format used as the golden reference in Fig. 14
#: (1 + 11 + 63 = 75).
EXTENDED75 = FloatFormat("extended75", exponent_bits=11, fraction_bits=63)

_REGISTRY = {
    fmt.name: fmt for fmt in (BINARY32, BINARY64, EXTENDED68, EXTENDED75)
}


def format_by_name(name: str) -> FloatFormat:
    """Look up one of the predefined formats by its canonical name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown format {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
