"""Exact-arithmetic oracle used by tests and the accuracy experiments.

The Fig. 14 experiment gauges every implementation against a higher
precision "golden reference" (the paper used a 75-bit CoreGen datapath).
For the reproduction we additionally keep a *fully exact* rational trace
of every computation, which lets tests assert tight error bounds instead
of merely comparing two approximations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from .formats import FloatFormat
from .value import FPValue

__all__ = ["ExactTrace", "mantissa_error_bits", "ulp_error"]


@dataclass
class ExactTrace:
    """Accumulates an exact rational computation next to an approximate one.

    Typical use: run a recurrence with some FMA implementation, feed the
    same operations into the trace, then ask for the error of the final
    value.
    """

    values: list[Fraction] = field(default_factory=list)

    def seed(self, *xs: Fraction | int | float) -> None:
        """Initialize the history with exact starting values."""
        for x in xs:
            self.values.append(Fraction(x))

    def fma(self, a: Fraction, b: Fraction, c: Fraction) -> Fraction:
        """Record and return the exact ``a + b*c``."""
        r = a + b * c
        self.values.append(r)
        return r

    @property
    def last(self) -> Fraction:
        return self.values[-1]


def mantissa_error_bits(approx: Fraction, exact: Fraction) -> float:
    """Relative error expressed in *mantissa bits*: ``-log2(|rel err|)``
    is the number of correct bits; this returns the number of *wrong*
    trailing bits of a 52-bit mantissa, the quantity plotted in Fig. 14.

    Returns 0.0 for an exact match and 52.0 if nothing is correct (or the
    exact value is zero while the approximation is not).
    """
    import math

    if approx == exact:
        return 0.0
    if exact == 0:
        return 52.0
    rel = abs(approx - exact) / abs(exact)
    correct_bits = -math.log2(float(rel)) if rel > 0 else 52.0
    wrong = 52.0 - correct_bits
    return min(max(wrong, 0.0), 52.0)


def ulp_error(value: FPValue, exact: Fraction) -> Fraction:
    """Error of ``value`` against ``exact`` in units of ``value``'s ULP.

    Only defined for finite values; a zero ``value`` uses the ULP of the
    smallest normal of its format.
    """
    fmt: FloatFormat = value.fmt
    if value.is_normal:
        ulp_exp = value.unbiased_exponent - fmt.fraction_bits
    elif value.is_zero:
        ulp_exp = (1 - fmt.bias) - fmt.fraction_bits
    else:
        raise ValueError("ulp_error of a non-finite value")
    ulp = Fraction(1 << ulp_exp) if ulp_exp >= 0 else Fraction(
        1, 1 << (-ulp_exp))
    approx = value.to_fraction()
    return abs(approx - exact) / ulp


def run_recurrence_exact(b1: Sequence[float], b2: Sequence[float],
                         x0: Sequence[float], steps: int) -> list[Fraction]:
    """Exact evaluation of the Fig. 14 recurrence
    ``x[n] = B1[n]*x[n-1] + B2[n]*x[n-2] + x[n-3]``.

    ``b1``/``b2`` supply one coefficient pair per step; ``x0`` gives the
    three seed values ``x[0], x[1], x[2]``.  Returns the full exact
    trajectory ``[x[0], ..., x[steps+2]]``.
    """
    xs: list[Fraction] = [Fraction(v) for v in x0]
    for n in range(steps):
        r = (Fraction(b1[n]) * xs[-1] + Fraction(b2[n]) * xs[-2] + xs[-3])
        xs.append(r)
    return xs


__all__.append("run_recurrence_exact")
