"""Rounding modes and integer/rational rounding primitives.

Everything in the reproduction ultimately rounds an *exact* value (a
``Fraction`` or a scaled integer) to a given number of significand bits.
Centralizing the rounding logic here keeps the discrete IEEE operators
(:mod:`repro.fp.ops`), the FMA datapath models (:mod:`repro.fma`) and the
format converters bit-for-bit consistent.

The paper's FMA units use *round half away from zero* between fused
operators (Sec. III-C: a single extra mantissa bit suffices to transfer
the rounding information), while the IEEE baselines use the default
*round to nearest, ties to even*.
"""

from __future__ import annotations

import enum
from fractions import Fraction

__all__ = [
    "RoundingMode",
    "round_scaled",
    "round_fraction_to_int",
    "shift_right_round",
]


class RoundingMode(enum.Enum):
    """Supported rounding modes.

    * ``NEAREST_EVEN`` -- IEEE 754 default (roundTiesToEven).
    * ``HALF_AWAY`` -- round half away from zero; the mode the paper's
      fused chains use because it needs only a single extra transferred
      bit (Sec. III-C).
    * ``TRUNCATE`` -- round toward zero (the "tempting to eliminate
      rounding entirely" option the paper rejects for the solvers).
    * ``TO_POS_INF`` / ``TO_NEG_INF`` -- directed modes, included for
      completeness of the operator library.
    """

    NEAREST_EVEN = "nearest-even"
    HALF_AWAY = "half-away-from-zero"
    TRUNCATE = "truncate"
    TO_POS_INF = "to-positive-infinity"
    TO_NEG_INF = "to-negative-infinity"


def _round_nonneg_q(int_part: int, rem_num: int, rem_den: int,
                    mode: RoundingMode, negative: bool) -> int:
    """Round ``int_part + rem_num/rem_den`` (0 <= rem_num < rem_den) of a
    value whose overall sign is given by ``negative`` (the magnitude is the
    quantity being rounded).  Returns the rounded magnitude."""
    if rem_num == 0:
        return int_part
    twice = 2 * rem_num
    if mode is RoundingMode.TRUNCATE:
        return int_part
    if mode is RoundingMode.NEAREST_EVEN:
        if twice > rem_den or (twice == rem_den and (int_part & 1)):
            return int_part + 1
        return int_part
    if mode is RoundingMode.HALF_AWAY:
        if twice >= rem_den:
            return int_part + 1
        return int_part
    if mode is RoundingMode.TO_POS_INF:
        return int_part if negative else int_part + 1
    if mode is RoundingMode.TO_NEG_INF:
        return int_part + 1 if negative else int_part
    raise ValueError(f"unhandled rounding mode {mode!r}")


def round_fraction_to_int(value: Fraction, mode: RoundingMode) -> int:
    """Round an exact rational ``value`` to an integer under ``mode``.

    The result is a signed integer; directed modes honour the sign of the
    original value (e.g. ``TO_NEG_INF`` on ``-0.5`` gives ``-1``).
    """
    negative = value < 0
    mag = -value if negative else value
    int_part = mag.numerator // mag.denominator
    rem_num = mag.numerator - int_part * mag.denominator
    rounded = _round_nonneg_q(int_part, rem_num, mag.denominator, mode,
                              negative)
    return -rounded if negative else rounded


def round_scaled(value: Fraction, scale_exp: int,
                 mode: RoundingMode) -> int:
    """Round ``value / 2^scale_exp`` to an integer.

    This is the workhorse for floating-point packing: to round a value to
    a significand with ULP ``2^scale_exp``, call
    ``round_scaled(value, scale_exp, mode)`` and use the returned integer
    as the significand.
    """
    if scale_exp >= 0:
        scaled = value / Fraction(1 << scale_exp)
    else:
        scaled = value * (1 << (-scale_exp))
    return round_fraction_to_int(scaled, mode)


def shift_right_round(significand: int, shift: int,
                      mode: RoundingMode) -> int:
    """Shift a signed integer significand right by ``shift`` bits with
    rounding of the shifted-out part.

    ``shift <= 0`` degenerates to a plain left shift (exact).  This models
    the hardware guard/round/sticky path of a binary right shift without
    materializing a Fraction.
    """
    if shift <= 0:
        return significand << (-shift)
    negative = significand < 0
    mag = -significand if negative else significand
    int_part = mag >> shift
    rem = mag & ((1 << shift) - 1)
    rounded = _round_nonneg_q(int_part, rem, 1 << shift, mode, negative)
    return -rounded if negative else rounded
