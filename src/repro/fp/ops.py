"""Discrete IEEE-754 operators (the "Xilinx CoreGen"-like baseline).

These model the behaviour of separate multiplier and adder IP cores: each
operation takes IEEE-formatted operands, computes the exact result and
performs a *single* correct rounding back into the target format.  A
multiply-add realized with these discrete units therefore rounds twice --
exactly the accuracy disadvantage the paper's fused units remove.

Special-value semantics follow IEEE 754 (with subnormals flushed to zero,
as in the FPGA libraries): ``inf - inf = NaN``, ``0 * inf = NaN``, NaN
propagates, and exact zero sums take the ``+0`` sign under round-to-nearest.
"""

from __future__ import annotations

from fractions import Fraction

from .formats import BINARY64, FloatFormat
from .rounding import RoundingMode
from .value import FPValue

__all__ = [
    "fp_add",
    "fp_sub",
    "fp_mul",
    "fp_neg",
    "fp_abs",
    "fp_fma",
    "fp_mul_add_discrete",
]


def _result_fmt(*xs: FPValue, fmt: FloatFormat | None) -> FloatFormat:
    if fmt is not None:
        return fmt
    return xs[0].fmt


def fp_neg(x: FPValue) -> FPValue:
    """Sign flip (exact, even for specials; NaN unchanged)."""
    if x.is_nan:
        return x
    return FPValue(x.fmt, x.cls, x.sign ^ 1, x.biased_exponent, x.fraction)


def fp_abs(x: FPValue) -> FPValue:
    """Magnitude (exact; NaN unchanged)."""
    if x.is_nan:
        return x
    return FPValue(x.fmt, x.cls, 0, x.biased_exponent, x.fraction)


def fp_add(a: FPValue, b: FPValue, *, fmt: FloatFormat | None = None,
           mode: RoundingMode = RoundingMode.NEAREST_EVEN) -> FPValue:
    """IEEE addition with a single rounding.

    ``fmt`` selects the result format (defaults to ``a``'s); operands may
    be in different formats -- the exact sum is formed before rounding,
    which is how a widened-datapath adder behaves.
    """
    out = _result_fmt(a, b, fmt=fmt)
    if a.is_nan or b.is_nan:
        return FPValue.nan(out)
    if a.is_inf or b.is_inf:
        if a.is_inf and b.is_inf:
            if a.sign != b.sign:
                return FPValue.nan(out)
            return FPValue.inf(out, a.sign)
        return FPValue.inf(out, a.sign if a.is_inf else b.sign)
    total = a.to_fraction() + b.to_fraction()
    if total == 0:
        # IEEE: exact zero sum is +0 under to-nearest, -0 under TO_NEG_INF;
        # -0 + -0 keeps the sign.
        if a.is_zero and b.is_zero and a.sign == b.sign:
            return FPValue.zero(out, a.sign)
        return FPValue.zero(out, 1 if mode is RoundingMode.TO_NEG_INF else 0)
    return FPValue.from_fraction(total, out, mode)


def fp_sub(a: FPValue, b: FPValue, *, fmt: FloatFormat | None = None,
           mode: RoundingMode = RoundingMode.NEAREST_EVEN) -> FPValue:
    """IEEE subtraction ``a - b`` (single rounding)."""
    return fp_add(a, fp_neg(b), fmt=fmt, mode=mode)


def fp_mul(a: FPValue, b: FPValue, *, fmt: FloatFormat | None = None,
           mode: RoundingMode = RoundingMode.NEAREST_EVEN) -> FPValue:
    """IEEE multiplication with a single rounding."""
    out = _result_fmt(a, b, fmt=fmt)
    if a.is_nan or b.is_nan:
        return FPValue.nan(out)
    sign = a.sign ^ b.sign
    if a.is_inf or b.is_inf:
        if a.is_zero or b.is_zero:
            return FPValue.nan(out)  # 0 * inf
        return FPValue.inf(out, sign)
    if a.is_zero or b.is_zero:
        return FPValue.zero(out, sign)
    prod = a.to_fraction() * b.to_fraction()
    return FPValue.from_fraction(prod, out, mode)


def fp_div(a: FPValue, b: FPValue, *, fmt: FloatFormat | None = None,
           mode: RoundingMode = RoundingMode.NEAREST_EVEN) -> FPValue:
    """IEEE division with a single rounding.

    Divisions appear in the solver kernels' *factorization* phase
    (CVXGEN's `ldlfactor()`), not in the multiply-add-shaped
    `ldlsolve()` the paper accelerates -- the operator exists so the
    full generated solver can compile.
    """
    out = _result_fmt(a, b, fmt=fmt)
    if a.is_nan or b.is_nan:
        return FPValue.nan(out)
    sign = a.sign ^ b.sign
    if a.is_inf:
        if b.is_inf:
            return FPValue.nan(out)    # inf / inf
        return FPValue.inf(out, sign)
    if b.is_inf:
        return FPValue.zero(out, sign)
    if b.is_zero:
        if a.is_zero:
            return FPValue.nan(out)    # 0 / 0
        return FPValue.inf(out, sign)  # x / 0
    if a.is_zero:
        return FPValue.zero(out, sign)
    return FPValue.from_fraction(a.to_fraction() / b.to_fraction(),
                                 out, mode)


__all__.insert(3, "fp_div")


def fp_fma(a: FPValue, b: FPValue, c: FPValue, *,
           fmt: FloatFormat | None = None,
           mode: RoundingMode = RoundingMode.NEAREST_EVEN) -> FPValue:
    """Fused multiply-add ``a + b * c`` with a *single* rounding.

    This is the idealized (infinitely-wide) fused semantics; the paper's
    classic FMA baseline (Sec. III-A) realizes exactly this behaviour for
    finite operands, and the P/FCS units approximate it (they can deviate
    by the documented bounded misrounding).
    """
    out = _result_fmt(a, b, c, fmt=fmt)
    if a.is_nan or b.is_nan or c.is_nan:
        return FPValue.nan(out)
    psign = b.sign ^ c.sign
    # product special cases
    if b.is_inf or c.is_inf:
        if b.is_zero or c.is_zero:
            return FPValue.nan(out)
        if a.is_inf and a.sign != psign:
            return FPValue.nan(out)
        return FPValue.inf(out, psign)
    if a.is_inf:
        return FPValue.inf(out, a.sign)
    total = a.to_fraction() + b.to_fraction() * c.to_fraction()
    if total == 0:
        if a.is_zero and (b.is_zero or c.is_zero) and a.sign == psign:
            return FPValue.zero(out, a.sign)
        return FPValue.zero(out, 1 if mode is RoundingMode.TO_NEG_INF else 0)
    return FPValue.from_fraction(total, out, mode)


def fp_mul_add_discrete(a: FPValue, b: FPValue, c: FPValue, *,
                        fmt: FloatFormat | None = None,
                        mode: RoundingMode = RoundingMode.NEAREST_EVEN,
                        ) -> FPValue:
    """``a + b * c`` realized with discrete units: the product is rounded
    to the working format *before* the addition (two roundings total).

    This is the CoreGen/FloPoCo-style baseline datapath the paper's fused
    units are compared against in Fig. 14.
    """
    out = _result_fmt(a, b, c, fmt=fmt)
    prod = fp_mul(b, c, fmt=out, mode=mode)
    return fp_add(a, prod, fmt=out, mode=mode)


def as_format(x: FPValue, fmt: FloatFormat,
              mode: RoundingMode = RoundingMode.NEAREST_EVEN) -> FPValue:
    """Convert a value between binary formats (one correct rounding)."""
    if x.is_nan:
        return FPValue.nan(fmt)
    if x.is_inf:
        return FPValue.inf(fmt, x.sign)
    if x.is_zero:
        return FPValue.zero(fmt, x.sign)
    return FPValue.from_fraction(x.to_fraction(), fmt, mode)


__all__.append("as_format")


def double(x: float) -> FPValue:
    """Shorthand: lift a Python float into a BINARY64 :class:`FPValue`."""
    return FPValue.from_float(x, BINARY64)


__all__.append("double")


def exact_fma_fraction(a: FPValue, b: FPValue, c: FPValue) -> Fraction:
    """Exact rational value of ``a + b*c`` for finite operands (oracle)."""
    return a.to_fraction() + b.to_fraction() * c.to_fraction()


__all__.append("exact_fma_fraction")
