"""IEEE-754 substrate: formats, values, rounding, discrete operators.

This package models the *standard-conforming* side of the paper: the
binary formats of Fig. 2, FloPoCo-style exception wires, the discrete
multiplier/adder baselines (CoreGen-like), the widened 68b/75b accuracy
reference formats of Fig. 14, and an exact rational oracle.
"""

from .formats import (BINARY32, BINARY64, EXTENDED68, EXTENDED75,
                      FloatFormat, format_by_name)
from .ops import (as_format, double, exact_fma_fraction, fp_abs, fp_add,
                  fp_div, fp_fma, fp_mul, fp_mul_add_discrete, fp_neg,
                  fp_sub)
from .reference import (ExactTrace, mantissa_error_bits, run_recurrence_exact,
                        ulp_error)
from .rounding import RoundingMode, round_fraction_to_int, round_scaled, \
    shift_right_round
from .value import FpClass, FPValue

__all__ = [
    "BINARY32", "BINARY64", "EXTENDED68", "EXTENDED75",
    "FloatFormat", "format_by_name",
    "FpClass", "FPValue",
    "RoundingMode", "round_fraction_to_int", "round_scaled",
    "shift_right_round",
    "fp_add", "fp_sub", "fp_mul", "fp_div", "fp_neg", "fp_abs", "fp_fma",
    "fp_mul_add_discrete", "as_format", "double", "exact_fma_fraction",
    "ExactTrace", "mantissa_error_bits", "ulp_error",
    "run_recurrence_exact",
]
