"""Radix-4 Booth recoding for the partial-product generators.

The paper's multiplier argument (Sec. III-D) is that "the height of its
CSA tree depends on the number of inputs", i.e. on the number of
partial-product rows.  Booth recoding is the classic lever on that
number: radix-4 recoding turns the ``w`` rows of a simple bit-per-row
multiplier into ``ceil(w/2) + 1`` rows of signed multiples
{0, ±C, ±2C}, halving the tree height's input count at the cost of a
row-selection mux per row.

This module provides the recoder and a Booth-based drop-in for
:func:`repro.cs.multiplier.multiply_mantissa`, used by the multiplier
ablation study -- it is *not* wired into the default units (the paper's
DSP-based multipliers do their recoding inside the DSP blocks).
"""

from __future__ import annotations

from dataclasses import dataclass

from .csa import CSAReduction, csa_tree_depth, reduce_rows
from .csnumber import CSNumber
from .multiplier import MultiplierResult

__all__ = ["booth_digits", "booth_rows", "booth_multiply",
           "booth_row_count"]


def booth_digits(b: int, width: int) -> list[int]:
    """Radix-4 Booth recode an unsigned multiplier into digits in
    {-2, -1, 0, 1, 2}, least significant first.

    Digit ``k`` weighs ``4^k``; the recoded digit string sums exactly to
    ``b``.
    """
    if not (0 <= b < (1 << width)):
        raise ValueError("b out of range")
    digits: list[int] = []
    # pad with the implicit 0 below the LSB; scan overlapping triplets
    extended = b << 1
    n_digits = (width + 2) // 2
    for k in range(n_digits + 1):
        triplet = (extended >> (2 * k)) & 0b111
        digit = {0b000: 0, 0b001: 1, 0b010: 1, 0b011: 2,
                 0b100: -2, 0b101: -1, 0b110: -1, 0b111: 0}[triplet]
        digits.append(digit)
    # trim redundant trailing zeros (keep at least one digit)
    while len(digits) > 1 and digits[-1] == 0:
        digits.pop()
    return digits


def booth_row_count(width: int) -> int:
    """Partial-product rows after radix-4 recoding (incl. the sign
    correction row): about half of the simple multiplier's ``width``."""
    return (width + 2) // 2 + 1


def booth_rows(b: int, b_width: int, c_tc: int, c_width: int,
               out_width: int) -> list[int]:
    """Generate the recoded partial-product rows of ``b * C`` with ``C``
    a two's-complement word; each row is a wrapped two's-complement
    encoding of ``digit * C * 4^k``."""
    mask = (1 << out_width) - 1
    c_signed = c_tc - (1 << c_width) if (c_tc >> (c_width - 1)) else c_tc
    rows = []
    for k, digit in enumerate(booth_digits(b, b_width)):
        if digit == 0:
            continue
        rows.append((digit * c_signed << (2 * k)) & mask)
    return rows or [0]


def booth_multiply(b_mant: int, b_width: int, c_tc: int, c_width: int,
                   *, negate: bool = False, round_up_c: bool = False,
                   out_width: int | None = None) -> MultiplierResult:
    """Booth-recoded twin of :func:`repro.cs.multiplier.multiply_mantissa`
    (same contract, fewer CSA rows)."""
    if not (0 <= b_mant < (1 << b_width)):
        raise ValueError("b_mant out of range for b_width")
    if not (0 <= c_tc < (1 << c_width)):
        raise ValueError("c_tc must be a wrapped two's-complement word")
    w = out_width if out_width is not None else b_width + c_width
    mask = (1 << w) - 1

    c_signed = c_tc - (1 << c_width) if (c_tc >> (c_width - 1)) else c_tc
    if round_up_c:
        c_signed += 1
    if negate:
        c_signed = -c_signed
    c_eff = c_signed & mask
    # rows from the (possibly corrected/negated) multiplicand
    rows = booth_rows(b_mant, b_width, c_eff, w, w)
    n_rows = booth_row_count(b_width)
    red: CSAReduction = reduce_rows(rows, width=w)
    product = CSNumber(red.sum & mask, red.carry & mask, w)
    return MultiplierResult(product, n_rows, red.depth, red.compressors)


@dataclass(frozen=True)
class BoothComparison:
    """Tree statistics of the simple vs Booth-recoded multiplier."""

    b_width: int
    simple_rows: int
    booth_rows: int
    simple_depth: int
    booth_depth: int

    @property
    def levels_saved(self) -> int:
        return self.simple_depth - self.booth_depth


def compare_tree_heights(b_width: int) -> BoothComparison:
    """The Sec. III-D tree-height comparison for a given B width."""
    simple = b_width
    booth = booth_row_count(b_width)
    return BoothComparison(b_width, simple, booth,
                           csa_tree_depth(simple), csa_tree_depth(booth))


__all__.append("BoothComparison")
__all__.append("compare_tree_heights")
