"""Block-granular Zero Detector (ZD) with the Fig. 10 skip rules.

The PCS-FMA replaces single-bit leading-zero normalization with a
multiplexer that discards entire leading mantissa *blocks* (Sec. III-F).
Because the mantissa is a two's-complement carry-save number, "zero"
blocks come in several disguises (Fig. 10):

(a) all digits 0;
(b) all digits 1 -- redundant sign extension of a negative number;
(c) ``1...1 2 0...0`` -- value-zero via the ripple carry of the 2;
(d) an all-0 block may only be skipped when the first *two* CS digits of
    the following block are also 0, otherwise collapsing the block can
    flip the sign of the remaining number (the overflow case the paper
    works through for ``0000000|012``).

The analogous guard for all-1 blocks (not spelled out in the paper, but
required for the same overflow reason) is: the next block's leading digit
must be exactly 1 and either its second digit is 0 or the next block
contains no 2-digits at all -- this covers the paper's ``1111111|111``
example while provably preserving the two's-complement value, which the
property-based tests check against :func:`skip_preserves_value`.
"""

from __future__ import annotations

import enum

from ..probes import probe
from ..telemetry import core as _tm
from .csnumber import CSNumber

__all__ = [
    "BlockKind",
    "classify_block",
    "block_digits",
    "count_skippable_blocks",
    "skip_preserves_value",
]


class BlockKind(enum.Enum):
    """Classification of a mantissa block for the ZD."""

    ZERO_VALUE = "zero-value"    # Fig. 10 a / c
    ALL_ONES = "all-ones"        # Fig. 10 b
    SIGNIFICANT = "significant"


def block_digits(cs: CSNumber, block_index: int, block_size: int,
                 ) -> list[int]:
    """Digits of one block, MSB first.

    ``block_index`` counts from 0 at the least significant block; the
    block spans positions ``[block_index*block_size,
    (block_index+1)*block_size)``.
    """
    lo = block_index * block_size
    return [cs.digit(i) for i in range(min(lo + block_size, cs.width) - 1,
                                       lo - 1, -1)]


def classify_block(digits_msb_first: list[int]) -> BlockKind:
    """Classify a digit block per Fig. 10.

    ``ZERO_VALUE`` matches ``1...1 2 0...0`` (with zero or more leading
    ones) *and* the all-0 block -- both contribute numeric value 0 to the
    truncated window.  ``ALL_ONES`` is the redundant sign extension.
    """
    if all(d == 1 for d in digits_msb_first):
        return BlockKind.ALL_ONES
    # zero-value pattern: 1* (2 0*)? , i.e. ones, then optionally a single
    # 2 followed only by zeros; the all-0 block is the a=0,no-2 case.
    i = 0
    n = len(digits_msb_first)
    while i < n and digits_msb_first[i] == 1:
        i += 1
    if i == n:  # all ones (already handled) -- defensive
        return BlockKind.ALL_ONES
    if digits_msb_first[i] == 2:
        # a leading (possibly empty) run of 1s, a single 2, zeros to the
        # end: block value is exactly 2^block_size -> zero after the wrap
        if all(d == 0 for d in digits_msb_first[i + 1:]):
            return BlockKind.ZERO_VALUE
        return BlockKind.SIGNIFICANT
    # digits_msb_first[i] == 0: zero-value only if no ones preceded and
    # the rest are zero too
    if i == 0 and all(d == 0 for d in digits_msb_first):
        return BlockKind.ZERO_VALUE
    return BlockKind.SIGNIFICANT


def _skip_ok(kind: BlockKind, next_digits: list[int]) -> bool:
    """Guarded skip decision given the classification of the leading block
    and the digits (MSB first) of the block below it."""
    if not next_digits:
        return False
    d0 = next_digits[0]
    d1 = next_digits[1] if len(next_digits) > 1 else 0
    if kind is BlockKind.ZERO_VALUE:
        return d0 == 0 and d1 == 0
    if kind is BlockKind.ALL_ONES:
        if d0 != 1:
            return False
        return d1 == 0 or all(d <= 1 for d in next_digits)
    return False


def count_skippable_blocks(cs: CSNumber, block_size: int,
                           max_skip: int | None = None) -> int:
    """Number of leading blocks the ZD discards.

    ``cs.width`` must be a multiple of ``block_size``.  ``max_skip``
    bounds the count (the 6-to-1 mux of the PCS unit can skip at most 5
    of its 7 blocks, Sec. III-F).

    A prefix of ``k`` leading blocks is skippable iff discarding it
    preserves the two's-complement value of the number.  The Fig. 10
    patterns (all-0 blocks, all-1 sign extensions, ``1...1 2 0...0``
    ripple blocks, and the two-digit overflow guards) are the *local*
    manifestations of this criterion; carry-save ripple chains can span
    several blocks (an all-1 block completed to zero by a ``2`` digit in
    the block below, or by a digit-sum overflow of the kept region), so
    hardware joins the per-block detectors with a block-granular
    carry/sign lookahead.  We model the decision by its semantic
    definition (:func:`skip_preserves_value`); the local Fig. 10 rules
    are kept in :func:`classify_block` for documentation and testing.

    The largest valid ``k`` is returned.
    """
    # fault-injection probe: the ZD's block-class input wires
    cs = probe("cs.zd_input", cs)
    if cs.width % block_size:
        raise ValueError("width must be a multiple of the block size")
    nblocks = cs.width // block_size
    limit = nblocks - 1 if max_skip is None else min(max_skip, nblocks - 1)
    skipped = 0
    for k in range(limit, 0, -1):
        if skip_preserves_value(cs, block_size, k):
            skipped = k
            break
    t = _tm.ACTIVE
    if t is not None:
        # telemetry: tally the Fig. 10 class of every leading block down
        # to (and including) the first significant one, plus the skip
        # count the 6-to-1 mux actually took
        for j in range(nblocks - 1, -1, -1):
            kind = classify_block(block_digits(cs, j, block_size))
            t.count(f"cs.zd.class.{kind.value}")
            if kind is BlockKind.SIGNIFICANT:
                break
        t.count(f"cs.zd.skipped.{skipped}")
    return skipped


def skip_preserves_value(cs: CSNumber, block_size: int, skipped: int,
                         ) -> bool:
    """Semantic check: does discarding ``skipped`` leading blocks leave
    the two's-complement value unchanged?

    Used by the property-based tests as the ground truth the local
    Fig. 10 rules must never violate.
    """
    full = cs.signed_value()
    new_width = cs.width - skipped * block_size
    if new_width <= 0:
        return full == 0 or full == -1
    reduced = cs.truncated(new_width)
    return reduced.signed_value() == full
