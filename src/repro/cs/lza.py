"""Leading-zero/leading-sign anticipation (Schmookler & Nowka style).

The classic FMA baseline uses an LZA to compute the normalization shift
distance *in parallel* with the wide addition (Sec. III-A, [23]); the
FCS-FMA reuses the idea at block granularity (Sec. III-G), accepting the
well-known one-bit uncertainty of the anticipator.

``lza_estimate`` inspects only the two addends (never the sum) and
returns a *lower bound* on the number of redundant leading sign bits of
the two's-complement sum; the true count exceeds the estimate by at most
one -- the property every user of this module (and the property-based
test-suite) relies on.
"""

from __future__ import annotations

from ..probes import probe
from ..telemetry import core as _tm

__all__ = ["lza_estimate", "leading_sign_bits", "count_leading_zeros"]


def count_leading_zeros(word: int, width: int) -> int:
    """Leading zero bits of an unsigned ``width``-bit word."""
    if word < 0 or word >> width:
        raise ValueError("word out of range")
    if word == 0:
        return width
    return width - word.bit_length()


def leading_sign_bits(value: int, width: int) -> int:
    """Redundant leading sign bits of a two's-complement value.

    For a non-negative value this is the number of leading zeros; for a
    negative one the number of leading ones *minus one is not applied* --
    we count every copy of the sign bit beyond the first significant
    position, i.e. how far the value could be left-normalized without
    changing it.  ``0`` and ``-1`` yield ``width`` (maximally redundant).
    """
    v = value & ((1 << width) - 1)
    if v >> (width - 1):  # negative: count leading ones
        inv = (~v) & ((1 << width) - 1)
        if inv == 0:
            return width  # value == -1
        return width - inv.bit_length()
    if v == 0:
        return width
    return width - v.bit_length()


def lza_estimate(a: int, b: int, width: int) -> int:
    """Anticipate leading sign bits of ``a + b`` without adding.

    Parameters
    ----------
    a, b:
        Two's-complement encoded non-negative words of ``width`` bits.
    width:
        Operand width.

    Precondition (guard-bit discipline): the signed sum ``a + b`` must be
    representable in ``width`` bits -- FMA adder windows are sized with
    guard bits so the addition can never overflow, and the anticipation
    guarantee only holds under that contract.

    Returns a lower bound ``est`` such that
    ``est <= leading_sign_bits((a + b) mod 2^width, width) <= est + 1``
    (the classic one-bit anticipation error, Sec. III-G: "Most LZA units
    are inexact and have an error of up to one bit position").

    Implementation: the propagate/generate/kill indicator string of
    Schmookler & Nowka.  With ``t = a ^ b``, ``g = a & b``,
    ``z = ~(a | b)``, position ``i`` is flagged significant when the
    pattern around it breaks the leading-sign run::

        f_i = t_{i+1} & (g_i & ~z_{i-1} | z_i & ~g_{i-1})
            | ~t_{i+1} & (z_i & ~z_{i-1} | g_i & ~g_{i-1})

    (boundary convention: z_{-1} = 1, g_{-1} = 0, t_width = 0).  The most
    significant set bit of ``f`` marks the leading-one position of the
    sum's magnitude, or one position above it.
    """
    mask = (1 << width) - 1
    # fault-injection probe: the anticipator's input latches
    a, b = probe("cs.lza_input", (a, b))
    a &= mask
    b &= mask
    t = a ^ b
    g = a & b
    z = (~(a | b)) & mask

    # shifted neighbours with the documented boundary conventions
    t_up = t >> 1                    # t_{i+1}; t_width = 0
    z_dn = ((z << 1) | 1) & mask     # z_{i-1}; z_{-1} = 1
    g_dn = (g << 1) & mask           # g_{i-1}; g_{-1} = 0

    f = (t_up & ((g & ~z_dn) | (z & ~g_dn))
         | (~t_up & mask) & ((z & ~z_dn) | (g & ~g_dn))) & mask
    # The indicator is only defined for positions <= width-2 (there is no
    # t_{width}); the sign position itself can never break the sign run.
    f &= (1 << (width - 1)) - 1

    if f == 0:
        # No significance anywhere: the sum is 0 or -1 -> fully redundant.
        if _tm.ACTIVE is not None:
            _tm.ACTIVE.count("cs.lza.fully_redundant")
        return width - 1 if width > 0 else 0
    pos = f.bit_length() - 1
    est = width - 1 - pos
    if _tm.ACTIVE is not None:
        _tm.ACTIVE.count("cs.lza.estimates")
    # The anticipated position may be one left of the true leading one,
    # never right of it, so est is a valid lower bound on the redundant
    # leading sign bits.
    return max(est, 0)
