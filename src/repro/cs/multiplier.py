"""Mantissa multiplier with the integrated rounding unit of Fig. 6.

The paper's key multiplier trick (Sec. III-C): the product is formed with
the *unrounded* multiplicator ``C_M``; if rounding would have incremented
``C_M`` by one ULP, the multiplicand ``B_M`` is added as an extra row of
the CSA tree, because ``B*(C+1) = B*C + B``.  The rounding decision for
``C`` thus runs in parallel with the partial-product reduction and adds
at most one level to the tree.

The multiplicand ``B`` is the operand kept in IEEE format ("the *number
of inputs* to the multiplier CSA tree depends on the width of the smaller
operand", Sec. III-D), so the tree has ``significand(B)`` rows plus the
correction row; the widened carry-save ``C`` only widens the rows.

The functional result is exact; the returned statistics (rows, depth,
compressors) drive the timing/area/energy models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..guard import residue as _gd
from ..probes import probe
from .csa import CSAReduction, reduce_rows
from .csnumber import CSNumber

__all__ = ["MultiplierResult", "multiply_mantissa"]


@dataclass(frozen=True)
class MultiplierResult:
    """Carry-save product plus CSA-tree statistics."""

    product: CSNumber
    rows: int
    depth: int
    compressors: int

    def signed_value(self) -> int:
        return self.product.signed_value()


def multiply_mantissa(b_mant: int, b_width: int, c_tc: int, c_width: int,
                      *, negate: bool = False, round_up_c: bool = False,
                      out_width: int | None = None) -> MultiplierResult:
    """Multiply an unsigned ``b_mant`` by a two's-complement ``c_tc``.

    Parameters
    ----------
    b_mant:
        Unsigned multiplicand (IEEE significand with explicit leading 1),
        ``0 <= b_mant < 2^b_width``.
    b_width:
        Width of ``b_mant``; determines the number of partial-product
        rows (one per bit).
    c_tc:
        Multiplicator as a two's-complement encoded non-negative word of
        ``c_width`` bits (i.e. already wrapped; its signed value is
        recovered modulo ``2^c_width``).
    negate:
        Apply the sign of ``B``: the multiplicand's two's-complement
        negation is folded into the rows (the conditional-complement
        trick -- sign handling never touches the tree depth).
    round_up_c:
        The Fig. 6 correction: inject one extra ``b_mant`` row so the
        product corresponds to ``B * (C + 1)``.
    out_width:
        Two's-complement width of the product window; defaults to
        ``b_width + c_width``.

    Returns the product in carry-save form over ``out_width`` bits (wrap
    semantics) with tree statistics.
    """
    if not (0 <= b_mant < (1 << b_width)):
        raise ValueError("b_mant out of range for b_width")
    if not (0 <= c_tc < (1 << c_width)):
        raise ValueError("c_tc must be a wrapped two's-complement word")
    w = out_width if out_width is not None else b_width + c_width
    mask = (1 << w) - 1

    # Sign-extend C to the output window, optionally negate (conditional
    # complement of the multiplicand side), then form one row per B bit.
    c_signed = c_tc - (1 << c_width) if (c_tc >> (c_width - 1)) else c_tc
    if round_up_c:
        c_signed += 1
    c_eff = (-c_signed if negate else c_signed) & mask

    rows: list[int] = []
    for i in range(b_width):
        if (b_mant >> i) & 1:
            rows.append((c_eff << i) & mask)
    if not rows:
        rows.append(0)
    n_rows = b_width + (1 if round_up_c else 0)

    red: CSAReduction = reduce_rows(rows, width=w)
    product = CSNumber(red.sum & mask, red.carry & mask, w)
    # fault-injection probe: the product sum/carry row registers
    product = probe("cs.mult_product", product)
    g = _gd.ACTIVE
    if g is not None:
        # residue shadow: the CS pair must still encode c_eff * b_mant
        # under the tree's wrap modulus
        g.check_product(product.sum, product.carry, c_eff, b_mant, w)
    return MultiplierResult(product, n_rows, red.depth, red.compressors)
