"""Carry-save arithmetic substrate.

Implements the number representation the paper's FMA units are built on:
CS digits in {0,1,2} (:mod:`~repro.cs.csnumber`), 3:2 compressor trees
(:mod:`~repro.cs.csa`), chunked carry reduction and the DSP pre-adder
model (:mod:`~repro.cs.adders`), the Fig. 6 multiplier with integrated
rounding (:mod:`~repro.cs.multiplier`), leading-zero anticipation
(:mod:`~repro.cs.lza`) and the Fig. 10 block Zero Detector
(:mod:`~repro.cs.zero_detect`).
"""

from .adders import (carry_reduce, chunked_add, cs_to_binary, cs_to_signed,
                     pre_adder_combine)
from .booth import (BoothComparison, booth_digits, booth_multiply,
                    booth_row_count, compare_tree_heights)
from .csa import CSAReduction, csa3, csa4, csa_tree_depth, reduce_rows
from .csnumber import FULL_CARRY, NO_CARRY, CSNumber, pcs_carry_mask
from .lza import count_leading_zeros, leading_sign_bits, lza_estimate
from .multiplier import MultiplierResult, multiply_mantissa
from .zero_detect import (BlockKind, block_digits, classify_block,
                          count_skippable_blocks, skip_preserves_value)

__all__ = [
    "CSNumber", "pcs_carry_mask", "FULL_CARRY", "NO_CARRY",
    "csa3", "csa4", "csa_tree_depth", "reduce_rows", "CSAReduction",
    "carry_reduce", "chunked_add", "cs_to_binary", "cs_to_signed",
    "pre_adder_combine",
    "MultiplierResult", "multiply_mantissa",
    "booth_digits", "booth_multiply", "booth_row_count",
    "BoothComparison", "compare_tree_heights",
    "lza_estimate", "leading_sign_bits", "count_leading_zeros",
    "BlockKind", "classify_block", "block_digits",
    "count_skippable_blocks", "skip_preserves_value",
]
