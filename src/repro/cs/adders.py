"""Chunked adders: carry reduction and CS-to-binary conversion.

Two datapath steps of the paper live here:

* **Carry Reduce** (Fig. 9, Sec. III-E): a row of independent ``chunk``-bit
  adders turns an arbitrary carry-save pair into *partial* carry save with
  one explicit carry bit per chunk boundary.  With 11-bit chunks this
  reduces a 385b sum + 384b of carries to 385b + 35 carry bits while
  costing only an 11-bit adder delay (1.742 ns on the paper's Virtex-6).

* **Full conversion to plain binary** -- the expensive operation the CS
  formats exist to avoid; it is still needed at the CS -> IEEE boundary
  converters inserted by the HLS pass and inside the classic FMA baseline
  (its 161b adder).
"""

from __future__ import annotations

from ..probes import probe
from .csnumber import CSNumber, pcs_carry_mask

__all__ = [
    "carry_reduce",
    "cs_to_binary",
    "cs_to_signed",
    "chunked_add",
    "pre_adder_combine",
]


def carry_reduce(cs: CSNumber, chunk: int) -> CSNumber:
    """Reduce a carry-save pair to PCS with one carry per ``chunk`` bits.

    Every chunk ``[k*chunk, (k+1)*chunk)`` is summed independently
    (sum bits + carry bits within the chunk); the chunk's carry-out (at
    most 1, since each input word contributes < 2^chunk) is emitted at the
    next chunk boundary.  The numeric value is preserved except that a
    carry out of the topmost boundary beyond ``width+1`` would be lost --
    callers size the guard bit so this cannot happen for in-range data.
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    width = cs.width
    chunk_mask = (1 << chunk) - 1
    new_sum = 0
    new_carry = 0
    pos = 0
    while pos < width:
        w = min(chunk, width - pos)
        local_mask = (1 << w) - 1
        local = ((cs.sum >> pos) & local_mask) + ((cs.carry >> pos)
                                                  & local_mask)
        new_sum |= (local & local_mask) << pos
        cout = local >> w
        if cout:
            boundary = pos + w
            if boundary > width:
                raise OverflowError("carry out beyond guard position")
            new_carry |= 1 << boundary
        pos += w
    # include any pre-existing guard carry at position == width
    guard = (cs.carry >> width) & 1
    if guard:
        if (new_carry >> width) & 1:
            raise OverflowError("guard carry collision during reduction")
        new_carry |= 1 << width
    _ = chunk_mask  # (chunk_mask kept for symmetry/documentation)
    out = CSNumber(new_sum, new_carry, width,
                   pcs_carry_mask(width, chunk) |
                   (1 << width))
    # fault-injection probe: the PCS chunk-sum/chunk-carry registers
    return probe("cs.carry_reduce", out)


def cs_to_binary(cs: CSNumber) -> int:
    """Full carry-propagating addition of the CS pair (unsigned).

    This is the slow, wide adder the CS representation defers; the result
    may use one bit more than ``cs.width``.
    """
    return cs.sum + cs.carry


def cs_to_signed(cs: CSNumber) -> int:
    """Collapse to the two's-complement value over ``cs.width`` bits
    (modular addition, top carry-out discarded as in hardware)."""
    return cs.signed_value()


def chunked_add(a: int, b: int, width: int, chunk: int,
                ) -> tuple[int, int]:
    """Add two binary words with *independent* chunk adders.

    Returns ``(sum_word, carry_word)`` where carries appear only at chunk
    boundaries -- the primitive underlying :func:`carry_reduce`, exposed
    separately because the delay model prices it as a single short adder.
    """
    cs = CSNumber(a & ((1 << width) - 1), b & ((1 << width) - 1), width)
    out = carry_reduce(cs, chunk)
    return out.sum, out.carry


def pre_adder_combine(cs: CSNumber, chunk: int) -> int:
    """Model of the DSP48E1 *pre-adder* use in the FCS-FMA (Sec. III-H).

    The Virtex-6/7 DSP blocks provide a 25-bit pre-adder on one multiplier
    input; the FCS unit feeds each ``chunk``-digit block's sum and carry
    words through it, converting the block to plain binary *inside* the
    DSP, "without the risk of a sign-changing overflow".  Functionally the
    combined value is just ``sum + carry`` over the block, with the
    block's carry-out absorbed by the next block's pre-adder headroom.

    Returns the plain-binary value of the full number (the per-block
    carry-outs ripple exactly as the wider pre-adder width absorbs them).
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    return cs.sum + cs.carry
