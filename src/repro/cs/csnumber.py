"""Carry-save (CS) numbers: digits in {0, 1, 2} stored as two bit words.

A carry-save number is a pair of bit vectors ``(sum, carry)``; the digit
at position ``i`` is ``sum_i + carry_i`` and has weight ``2^i``, so the
numeric value is simply ``sum + carry``.  The format trades non-unique
representations (Sec. II / Sec. III-E of the paper: ``0.5d`` can be
``0.0200cs`` *or* ``0.0120cs``) for carry-propagation-free addition.

*Partial* carry save (PCS, Sec. III-E) restricts the positions where
carry bits may be non-zero: one explicit carry bit every ``k``-th digit
(the paper evaluates k = 5, 11, 55 and picks 11).  *Full* carry save
(FCS, Sec. III-H) allows a carry bit at every digit.

The class is deliberately immutable and value-semantic; the mutating
datapath steps live in :mod:`repro.cs.adders` and
:mod:`repro.cs.multiplier`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CSNumber", "pcs_carry_mask", "FULL_CARRY", "NO_CARRY"]


def pcs_carry_mask(width: int, spacing: int) -> int:
    """Mask of legal carry-bit positions for PCS with the given spacing.

    A carry bit at position ``i`` stores the carry *into* digit ``i``
    (i.e. the carry-out of the chunk below), so position 0 never carries;
    legal positions are ``spacing, 2*spacing, ...`` up to ``width``
    inclusive -- the top position acts as the overflow guard the paper
    allots when rounding 383 bits up to 385 (Sec. III-D).
    """
    if spacing < 1:
        raise ValueError("carry spacing must be >= 1")
    mask = 0
    pos = spacing
    while pos <= width:
        mask |= 1 << pos
        pos += spacing
    return mask


#: Sentinel spacing constants for :class:`CSNumber` construction helpers.
FULL_CARRY = 1
NO_CARRY = 0


@dataclass(frozen=True)
class CSNumber:
    """An immutable carry-save number.

    Attributes
    ----------
    sum:
        The partial-sum bit word (non-negative int).
    carry:
        The carry bit word (non-negative int).  For PCS formats only the
        positions in ``carry_mask`` may be set.
    width:
        Digit-vector width.  ``sum`` must fit in ``width`` bits; ``carry``
        may use one extra position (``width``) as the overflow guard.
    carry_mask:
        Mask of positions where carry bits are allowed, or ``None`` for
        unrestricted (full) carry save.
    """

    sum: int
    carry: int
    width: int
    carry_mask: int | None = None

    def __post_init__(self) -> None:
        if self.sum < 0 or self.carry < 0:
            raise ValueError("CS words must be non-negative bit vectors")
        if self.sum >> self.width:
            raise ValueError(
                f"sum word wider than declared width {self.width}")
        if self.carry >> (self.width + 1):
            raise ValueError("carry word exceeds width+1 guard position")
        if self.carry_mask is not None and self.carry & ~self.carry_mask:
            raise ValueError("carry bit at a position outside carry_mask")

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_int(cls, value: int, width: int,
                 carry_mask: int | None = None) -> "CSNumber":
        """Represent a plain binary (non-negative) value: all carries 0."""
        if value < 0:
            raise ValueError(
                "use from_signed for negative values (two's complement)")
        if value >> width:
            raise ValueError(f"value does not fit in {width} bits")
        return cls(value, 0, width, carry_mask)

    @classmethod
    def from_signed(cls, value: int, width: int,
                    carry_mask: int | None = None) -> "CSNumber":
        """Represent a signed value in ``width``-bit two's complement."""
        lo, hi = -(1 << (width - 1)), 1 << (width - 1)
        if not (lo <= value < hi):
            raise ValueError(
                f"value {value} outside two's-complement range of "
                f"{width} bits")
        return cls(value & ((1 << width) - 1), 0, width, carry_mask)

    @classmethod
    def zero(cls, width: int, carry_mask: int | None = None) -> "CSNumber":
        return cls(0, 0, width, carry_mask)

    # -- observers -------------------------------------------------------

    @property
    def value(self) -> int:
        """Unsigned numeric value ``sum + carry`` (may use the guard bit)."""
        return self.sum + self.carry

    def signed_value(self) -> int:
        """Two's-complement value over ``width`` bits.

        The CS words are added, the result reduced mod ``2^width`` (a
        carry out of the top is discarded, as in hardware), and the sign
        taken from the top bit.
        """
        m = (1 << self.width) - 1
        v = (self.sum + self.carry) & m
        if v >> (self.width - 1):
            v -= 1 << self.width
        return v

    def digit(self, i: int) -> int:
        """Digit value in {0, 1, 2} at position ``i``."""
        return ((self.sum >> i) & 1) + ((self.carry >> i) & 1)

    def digits(self) -> list[int]:
        """All digits, LSB first."""
        return [self.digit(i) for i in range(self.width)]

    @property
    def is_plain_binary(self) -> bool:
        """True when no carry bits are set (unique representation)."""
        return self.carry == 0

    @property
    def carry_bit_count(self) -> int:
        return bin(self.carry).count("1")

    # -- structural transforms --------------------------------------------

    def truncated(self, new_width: int) -> "CSNumber":
        """Drop digits above ``new_width`` (modular truncation, as a
        hardware bit-slice would)."""
        m = (1 << new_width) - 1
        cm = None
        if self.carry_mask is not None:
            cm = self.carry_mask & ((1 << (new_width + 1)) - 1)
        return CSNumber(self.sum & m, self.carry & m, new_width, cm)

    def shifted_left(self, n: int, new_width: int | None = None,
                     ) -> "CSNumber":
        """Shift digits towards the MSB, widening unless truncated."""
        w = new_width if new_width is not None else self.width + n
        m = (1 << w) - 1
        return CSNumber((self.sum << n) & m, (self.carry << n) & m, w,
                        None if self.carry_mask is None else
                        ((self.carry_mask << n) & ((1 << (w + 1)) - 1)))

    def with_mask(self, carry_mask: int | None) -> "CSNumber":
        """Reinterpret with a different carry-position constraint (the
        carries must already satisfy it)."""
        return CSNumber(self.sum, self.carry, self.width, carry_mask)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ds = "".join(str(d) for d in reversed(self.digits()))
        return f"CS[{self.width}]({ds})"
