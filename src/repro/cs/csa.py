"""Carry-save adders and reduction trees.

A 3:2 compressor (full-adder row) takes three bit words and produces a
(sum, carry) pair of equal value; chaining compressors gives the classic
Wallace/Dadda-style CSA tree used inside every multiplier in the paper
(Fig. 4/6/9/11: "CSA tree").  Besides the functional reduction, this
module reports the *tree depth* (number of 3:2 levels), which feeds the
delay model of :mod:`repro.hw.delay` -- the paper's key observation that
"the height of its CSA tree depends on the number of inputs" (Sec. III-D)
is what makes the widened PCS multiplier latency-neutral.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "csa3",
    "csa4",
    "reduce_rows",
    "csa_tree_depth",
    "CSAReduction",
]


def csa3(x: int, y: int, z: int) -> tuple[int, int]:
    """3:2 compress three non-negative bit words into (sum, carry).

    ``sum + carry == x + y + z`` exactly; the carry word is shifted left
    by one because a full adder's carry-out has double weight.
    """
    s = x ^ y ^ z
    c = ((x & y) | (x & z) | (y & z)) << 1
    return s, c


def csa4(w: int, x: int, y: int, z: int) -> tuple[int, int]:
    """4:2 compress (two chained 3:2 rows; value-preserving).

    Modern FPGA slices realize this in one LUT level plus the dedicated
    carry chain; the delay model accounts for it separately.
    """
    s1, c1 = csa3(w, x, y)
    return csa3(s1, c1, z)


def csa_tree_depth(rows: int) -> int:
    """Number of 3:2 compressor levels needed to reduce ``rows`` partial
    products to 2 (the standard Wallace-tree recurrence).

    ``rows <= 2`` needs no level.  Each level turns ``n`` rows into
    ``2*floor(n/3) + (n mod 3)``.
    """
    if rows < 0:
        raise ValueError("row count must be non-negative")
    depth = 0
    n = rows
    while n > 2:
        n = 2 * (n // 3) + (n % 3)
        depth += 1
    return depth


@dataclass(frozen=True)
class CSAReduction:
    """Result of reducing a list of rows: a CS pair plus tree statistics."""

    sum: int
    carry: int
    depth: int
    compressors: int

    @property
    def value(self) -> int:
        return self.sum + self.carry


def reduce_rows(rows: list[int], width: int | None = None) -> CSAReduction:
    """Reduce partial-product rows to carry-save form with a Wallace tree.

    Parameters
    ----------
    rows:
        Non-negative bit words (already weighted/shifted by the caller).
    width:
        Optional modulus width: when given, every compressor output is
        truncated to ``width`` bits (two's-complement wrap, as the
        fixed-width hardware rows would).

    Returns the final (sum, carry) pair, the tree depth in 3:2 levels and
    the total number of compressor rows instantiated (an area proxy).
    """
    mask = (1 << width) - 1 if width is not None else None
    work = [r & mask if mask is not None else r for r in rows]
    if any(r < 0 for r in rows):
        raise ValueError("rows must be non-negative bit words; apply "
                         "two's-complement encoding before reduction")
    depth = 0
    compressors = 0
    while len(work) > 2:
        nxt: list[int] = []
        for i in range(0, len(work) - 2, 3):
            s, c = csa3(work[i], work[i + 1], work[i + 2])
            if mask is not None:
                s &= mask
                c &= mask
            nxt.append(s)
            nxt.append(c)
            compressors += 1
        rem = len(work) % 3
        if rem:
            nxt.extend(work[-rem:])
        work = nxt
        depth += 1
    s = work[0] if work else 0
    c = work[1] if len(work) > 1 else 0
    return CSAReduction(s, c, depth, compressors)
