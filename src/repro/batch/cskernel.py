"""Fast bit-exact kernel for the PCS/FCS carry-save FMA datapath.

This is the batched engine's core: a re-implementation of
:meth:`repro.fma.csfma.CSFmaUnit.fma` that produces *bit-identical*
results (every mantissa sum/carry digit, rounding-data digit, exponent
and flag) while avoiding the per-digit modelling machinery of the
faithful path:

* values travel as plain tuples instead of ``CSFloat``/``CSNumber``
  dataclasses (no constructor validation per step);
* the multiplier uses compiled straight-line Wallace trees
  (:mod:`repro.batch.trees`) keyed by the popcount of the ``B``
  significand;
* the Carry Reduce stage runs as a single SWAR expression over the whole
  window instead of a per-chunk loop;
* the PCS Zero Detector uses the closed form
  ``skipped = min(max_skip, (rsb - 1) // block)`` where ``rsb`` is the
  number of redundant leading sign bits of the collapsed window -- the
  quantity :func:`repro.cs.zero_detect.count_skippable_blocks` searches
  for block by block;
* the FCS leading-zero anticipator is inlined (same Schmookler-style
  indicator as :func:`repro.cs.lza.lza_estimate`).

The equivalence arguments (and the differential tests backing them) live
in ``tests/test_batch_differential.py``; the faithful scalar unit remains
the reference model for everything, including traces and strict-mode
assertions, which this kernel intentionally does not reproduce.

Internal value convention
-------------------------
A carry-save value is the tuple
``(cls, exp, m_sum, m_carry, r_sum, r_carry, sign_hint)`` with ``cls``
the integer :class:`~repro.fp.value.FpClass` value; an IEEE ``B``
operand is ``(cls, sign, unbiased_exp, significand)``.
"""

from __future__ import annotations

from .. import probes
from ..fma.csfma import CSFmaUnit
from ..guard import residue as _gd
from ..telemetry import core as _tm
from ..fma.formats import CSFloat, CSFmaParams
from ..fp.formats import BINARY64
from ..fp.value import FpClass, FPValue
from .trees import tree_depth, tree_fn

__all__ = ["FastCSKernel", "kernel_for", "bit_positions",
           "CS_ZERO", "CS_NORMAL", "CS_INF", "CS_NAN"]

CS_ZERO, CS_NORMAL, CS_INF, CS_NAN = 0, 1, 2, 3

_KERNELS: dict[tuple[int, str, bool], "FastCSKernel"] = {}


def kernel_for(unit: CSFmaUnit) -> "FastCSKernel | None":
    """Fast kernel matching ``unit``, or ``None`` when the unit's extra
    behaviour (strict-mode invariant checks) requires the faithful path."""
    if unit.strict:
        return None
    key = (id(unit.params), unit.selector, unit.use_carry_reduce)
    k = _KERNELS.get(key)
    if _tm.ACTIVE is not None:
        _tm.ACTIVE.count("batch.kernel.cache.hit" if k is not None
                         else "batch.kernel.cache.miss")
    if k is None:
        k = FastCSKernel(unit.params, unit.selector, unit.use_carry_reduce)
        _KERNELS[key] = k
    return k


def bit_positions(word: int) -> tuple[int, ...]:
    """Ascending set-bit positions (the multiplier's row shifts)."""
    out = []
    while word:
        low = word & -word
        out.append(low.bit_length() - 1)
        word &= word - 1
    return tuple(out)


class FastCSKernel:
    """Bit-exact fast twin of one :class:`CSFmaUnit` configuration."""

    def __init__(self, params: CSFmaParams, selector: str,
                 use_carry_reduce: bool):
        p = self.params = params
        self.selector = selector
        self.use_carry_reduce = use_carry_reduce
        self.W = W = p.window_width
        self.wmask = (1 << W) - 1
        self.block = p.block
        self.bmask = (1 << p.block) - 1
        self.mw = p.mant_width
        self.mmask = (1 << p.mant_width) - 1
        self.msign = 1 << (p.mant_width - 1)
        self.frac = p.frac_bits
        self.bsig = p.b_sig_bits
        self.plsb = p.product_lsb
        self.pw = p.product_width
        self.pmask = (1 << p.product_width) - 1
        self.psign = 1 << (p.product_width - 1)
        self.amax = p.addend_max_pos
        self.max_skip = p.window_blocks - p.mant_blocks
        self.mcmask = p.mant_carry_mask
        self.rcmask = p.round_carry_mask
        self.emin, self.emax = p.exp_min, p.exp_max
        # SWAR carry-reduce constants: H marks the top bit of each
        # carry-spacing chunk.
        sp = p.carry_spacing
        H = 0
        pos = sp - 1
        while pos < W:
            H |= 1 << pos
            pos += sp
        self.H = H
        self.notH = ~H & self.wmask
        self.ieee_shift = self.frac - BINARY64.fraction_bits

    # -- conversions ---------------------------------------------------

    def lift_cs(self, x: CSFloat) -> tuple:
        """CSFloat -> internal tuple (exact field copy)."""
        return (x.cls.value, x.exp, x.mant.sum, x.mant.carry,
                x.round_data.sum, x.round_data.carry, x.sign_hint)

    def lift_ieee(self, x: FPValue) -> tuple:
        """IEEE -> internal tuple; bit-identical to
        ``lift_cs(ieee_to_cs(x, params))``."""
        if x.cls is not FpClass.NORMAL:
            return (x.cls.value, 0, 0, 0, 0, 0, x.sign)
        fmt = x.fmt
        m = (x.fraction | (1 << fmt.fraction_bits)) << (
            self.frac - fmt.fraction_bits)
        if x.sign:
            m = -m
        return (CS_NORMAL, x.biased_exponent - fmt.bias,
                m & self.mmask, 0, 0, 0, 0)

    def lift_b(self, x: FPValue) -> tuple:
        """IEEE ``B`` operand -> ``(cls, sign, unbiased_exp, sig)``."""
        if x.cls is FpClass.NORMAL:
            return (CS_NORMAL, x.sign, x.biased_exponent - x.fmt.bias,
                    x.fraction | (1 << x.fmt.fraction_bits))
        return (x.cls.value, x.sign, 0, 0)

    def lower(self, t: tuple) -> CSFloat:
        """Internal tuple -> CSFloat (for the format boundary only)."""
        from ..cs.csnumber import CSNumber

        p = self.params
        cls = t[0]
        if cls == CS_NORMAL:
            mant = CSNumber(t[2], t[3], p.mant_width, p.mant_carry_mask)
            rnd = CSNumber(t[4], t[5], p.block, p.round_carry_mask)
            return CSFloat(p, FpClass.NORMAL, t[1], mant, rnd)
        return CSFloat(p, FpClass(cls), sign_hint=t[6])

    # -- the multiplier -------------------------------------------------

    def product(self, cv: int, pos: tuple, width: int, mask: int,
                sig: int | None = None) -> tuple[int, int]:
        """CS product of the signed multiplicand ``cv`` with the
        significand whose set bits are ``pos``, modulo ``2**width``.

        Returns what ``multiply_mantissa(..., out_width=width)`` returns,
        up to bits the callers mask away (`& mask` commutes upward
        through the tree; see :mod:`repro.batch.trees`).  ``sig`` is the
        significand value itself, when the caller already has it -- the
        residue shadow checker folds its residues instead of rebuilding
        it from ``pos``.
        """
        R = len(pos)
        exact = (cv >= 0
                 and cv.bit_length() + pos[-1] + tree_depth(R) <= width)
        if exact:
            s, c = tree_fn(R, False)(cv, mask, pos)
            s, c = s & mask, c & mask
        else:
            s, c = tree_fn(R, True)(cv & mask, mask, pos)
        if probes.ARMED is not None:
            # fault-injection probe: the compiled-tree product rows
            s, c = probes.probe("batch.product", (s, c))
        g = _gd.ACTIVE
        if g is not None:
            # residue shadow for the SWAR lanes: the no-overflow branch
            # is an exact integer identity (pure mod-3/mod-255 residue
            # arithmetic); the wrapped branch checks under the modulus
            if sig is None:
                sig = sum(1 << i for i in pos)
            g.check_product(s, c, cv, sig, width, exact=exact)
        return s, c

    # -- the datapath ----------------------------------------------------

    def fma(self, a: tuple, b: tuple, c: tuple,
            pos: tuple | None = None,
            prod: "tuple[int, int] | None" = None) -> tuple:
        """``a + b * c``; bit-identical to the scalar unit.

        ``pos`` optionally carries the precomputed set-bit positions of
        ``b``'s significand (batch callers hoist it out of inner loops).
        ``prod`` optionally injects the precomputed *full-window-width*
        CS product pair ``(S, C)`` of ``cv`` with ``b``'s significand
        (the vector backend batches the trees across a whole dot chain).
        Masking commutes upward through a CSA tree, so the full-width
        pair masked down reproduces the per-modulus trees bit for bit;
        callers must only pass ``prod`` when probes and the guard are
        disarmed, since it bypasses their product-plane hooks.
        """
        acls = a[0]
        bcls = b[0]
        ccls = c[0]
        # special values (flag wires), mirroring CSFmaUnit._special_case
        if acls == CS_NAN or bcls == CS_NAN or ccls == CS_NAN:
            return (CS_NAN, 0, 0, 0, 0, 0, 0)
        if bcls == CS_INF or ccls == CS_INF or acls == CS_INF:
            mmask = self.mmask
            if ccls == CS_NORMAL:
                v = (c[2] + c[3]) & mmask
                csign = 1 if v & self.msign else 0
            else:
                csign = c[6]
            psign = b[1] ^ csign
            if bcls == CS_INF or ccls == CS_INF:
                if bcls == CS_ZERO or ccls == CS_ZERO:
                    return (CS_NAN, 0, 0, 0, 0, 0, 0)
                if acls == CS_INF and a[6] != psign:
                    return (CS_NAN, 0, 0, 0, 0, 0, 0)
                return (CS_INF, 0, 0, 0, 0, 0, psign)
            return (CS_INF, 0, 0, 0, 0, 0, a[6])

        block = self.block
        bmask = self.bmask
        mmask = self.mmask
        msign = self.msign
        mw = self.mw
        gd = _gd.ACTIVE

        # stage 1: deferred rounding decisions
        if ccls == CS_NORMAL:
            dec_c = ((c[4] + c[5]) & bmask) >> (block - 1)
            v = (c[2] + c[3]) & mmask
            c_used = (v - (1 << mw) if v & msign else v) + dec_c
        else:
            c_used = 0
        if acls == CS_NORMAL:
            dec_a = ((a[4] + a[5]) & bmask) >> (block - 1)
            v = (a[2] + a[3]) & mmask
            a_used = (v - (1 << mw) if v & msign else v) + dec_a
        else:
            a_used = 0
        p_nonzero = bcls == CS_NORMAL and ccls == CS_NORMAL and c_used != 0
        a_nonzero = acls == CS_NORMAL and a_used != 0
        if not p_nonzero and not a_nonzero:
            return (CS_ZERO, 0, 0, 0, 0, 0, a[6] if acls == CS_ZERO else 0)

        W = self.W
        wmask = self.wmask
        frac = self.frac

        # stage 2: window anchoring
        if p_nonzero:
            e_f = b[2] + c[1]
            w0 = e_f - (self.bsig - 1) - frac - self.plsb
            if a_nonzero:
                aw = a[1] - frac - self.amax
                if aw > w0:
                    w0 = aw
        else:
            w0 = a[1] - frac - self.amax

        # stage 3: multiplier (compiled tree at the exact modulus needed)
        r1 = None
        a_row = 0
        if p_nonzero:
            p_pos = (e_f - (self.bsig - 1) - frac) - w0
            cv = -c_used if b[1] else c_used
            if prod is not None:
                S, C = prod
                if p_pos >= 0:
                    r0 = (S << p_pos) & wmask
                    r1 = (C << p_pos) & wmask
                else:
                    pv = ((S & self.pmask) + (C & self.pmask)) \
                        & self.pmask
                    if pv & self.psign:
                        pv -= self.psign << 1
                    r0 = (pv >> (-p_pos)) & wmask
            elif p_pos >= 0:
                if pos is None:
                    pos = bit_positions(b[3])
                ow = W - p_pos
                S, C = self.product(cv, pos, ow, (1 << ow) - 1, b[3])
                r0 = (S << p_pos) & wmask
                r1 = (C << p_pos) & wmask
            else:
                # product entirely below the window: collapse and
                # floor-shift the signed value (the scalar unit's
                # documented modelling liberty)
                if pos is None:
                    pos = bit_positions(b[3])
                S, C = self.product(cv, pos, self.pw, self.pmask, b[3])
                pv = (S + C) & self.pmask
                if pv & self.psign:
                    pv -= self.psign << 1
                r0 = (pv >> (-p_pos)) & wmask

        # stage 4: addend pre-shift
        if a_nonzero:
            a_pos = (a[1] - frac) - w0
            a_row = ((a_used << a_pos) if a_pos >= 0
                     else (a_used >> (-a_pos))) & wmask

        # stage 5: wide CSA (at most 3 rows -> at most one 3:2 level)
        if p_nonzero:
            if r1 is not None:
                if a_nonzero:
                    t = r0 ^ r1
                    w_sum = t ^ a_row
                    w_carry = (((r0 & r1) | (t & a_row)) << 1) & wmask
                else:
                    w_sum = r0
                    w_carry = r1
            elif a_nonzero:
                w_sum = r0
                w_carry = a_row
            else:
                w_sum = r0
                w_carry = 0
        else:
            w_sum = a_row
            w_carry = 0

        # stage 6: Carry Reduce (PCS) as one SWAR pass: each
        # carry-spacing chunk adds sum+carry with the chunk's carry-out
        # re-emitted at the next chunk's LSB.
        if self.use_carry_reduce:
            A = w_sum
            B = w_carry
            H = self.H
            notH = self.notH
            z = (A & notH) + (B & notH)
            axb = A ^ B
            w_sum = (z & notH) | ((z ^ axb) & H)
            w_carry = ((((A & B) | (axb & z)) & H) << 1) & wmask

        if probes.ARMED is not None:
            # fault-injection probe: the window planes (post-SWAR Carry
            # Reduce for PCS, raw 3:2 output for FCS)
            w_sum, w_carry = probes.probe("batch.window",
                                          (w_sum, w_carry))

        if gd is not None:
            rows_sum = a_row + ((r0 + (r1 or 0)) if p_nonzero else 0)
            gd.check_window(w_sum, w_carry, rows_sum, W)

        value = (w_sum + w_carry) & wmask
        if value == 0:
            return (CS_ZERO, 0, 0, 0, 0, 0, 0)

        # stage 7: block normalization
        if self.selector == "zd":
            # closed form of the block Zero Detector: skippable blocks =
            # redundant leading sign bits, rounded down to whole blocks
            if value >> (W - 1):
                inv = value ^ wmask
                rsb = W if inv == 0 else W - inv.bit_length()
            else:
                rsb = W - value.bit_length()
            skipped = (rsb - 1) // block
            if skipped > self.max_skip:
                skipped = self.max_skip
            elif skipped < 0:
                skipped = 0
        else:
            # inline LZA (Schmookler-style indicator, block granular)
            prod_word = (((r0 + r1) & wmask) if r1 is not None else r0) \
                if p_nonzero else 0
            aa = a_row
            t = aa ^ prod_word
            g = aa & prod_word
            zz = (aa | prod_word) ^ wmask
            t_up = t >> 1
            z_dn = ((zz << 1) | 1) & wmask
            g_dn = (g << 1) & wmask
            f = (t_up & ((g & ~z_dn) | (zz & ~g_dn))
                 | (t_up ^ wmask) & ((zz & ~z_dn) | (g & ~g_dn))) & wmask
            f &= (1 << (W - 1)) - 1
            est = W - 1 if f == 0 else W - f.bit_length()
            skipped = (est - 1) // block if est > 1 else 0
            if skipped > self.max_skip:
                skipped = self.max_skip

        if gd is not None:
            # normalization shadow (same recompute the scalar unit runs;
            # here it doubles as a cross-implementation consistency check)
            if self.selector == "zd":
                shadow = _gd.zd_shadow(value, W, block, self.max_skip)
            else:
                est_ref = _gd.lza_shadow(aa, prod_word, W)
                shadow = min(max(est_ref - 1, 0) // block, self.max_skip)
            gd.check_norm(skipped, shadow, self.selector)

        # stage 8: result and rounding-data slice
        lo = block * (self.params.window_blocks - 1 - skipped
                      - (self.params.mant_blocks - 1))
        m_sum = (w_sum >> lo) & mmask
        mc_full = (w_carry >> lo) & mmask
        m_carry = mc_full & self.mcmask
        if mc_full & ~self.mcmask:
            raise AssertionError("carry bit outside the operand format")
        rlo = lo - block
        if rlo >= 0:
            r_sum = (w_sum >> rlo) & bmask
            r_carry = (w_carry >> rlo) & bmask & self.rcmask
        else:
            r_sum = r_carry = 0
        if gd is not None:
            gd.check_slice(m_sum, m_carry, w_sum, w_carry, lo, mmask,
                          self.mcmask)

        # stage 9: exponent update and range check
        e_r = w0 + lo + frac
        if e_r > self.emax:
            return (CS_INF, 0, 0, 0, 0, 0, 1 if value >> (W - 1) else 0)
        if e_r < self.emin:
            return (CS_ZERO, 0, 0, 0, 0, 0, 1 if value >> (W - 1) else 0)
        return (CS_NORMAL, e_r, m_sum, m_carry, r_sum, r_carry, 0)

    # -- batch entry points ----------------------------------------------

    def dot_tuple(self, a, b) -> tuple:
        """Fused dot product, accumulator kept as an internal tuple.

        Bit-identical to the
        :meth:`repro.fma.dotprod.FusedDotProductUnit.dot` accumulator
        chain ``acc = fma(acc, a_i, lift(b_i))``.
        """
        shift = self.ieee_shift
        mmask = self.mmask
        fma = self.fma
        lift_ieee = self.lift_ieee
        lift_b = self.lift_b
        acc = (CS_ZERO, 0, 0, 0, 0, 0, 0)
        one = 1 << 52
        for ai, bi in zip(a, b):
            if (ai.cls is FpClass.NORMAL and bi.cls is FpClass.NORMAL
                    and ai.fmt is BINARY64 and bi.fmt is BINARY64):
                m = (bi.fraction | one) << shift
                if bi.sign:
                    m = -m
                ct = (CS_NORMAL, bi.biased_exponent - 1023, m & mmask,
                      0, 0, 0, 0)
                sig = ai.fraction | one
                bt = (CS_NORMAL, ai.sign, ai.biased_exponent - 1023, sig)
                acc = fma(acc, bt, ct, bit_positions(sig))
            else:
                acc = fma(acc, lift_b(ai), lift_ieee(bi))
        return acc
