"""Public batched entry points: ``fma_batch``, ``dot_batch``,
``accumulate_batch``.

Each function evaluates many operations through the fast kernels of
:mod:`repro.batch` while remaining bit-identical to the corresponding
scalar loop over the faithful models (``use_batch=False`` literally runs
that loop, which is what the differential tests compare against).
"""

from __future__ import annotations

from typing import Sequence

from ..fma.accumulator import AccumulatorOverflow, PcsAccumulator
from ..fma.convert import cs_to_ieee, ieee_to_cs
from ..fma.csfma import CSFmaUnit, FcsFmaUnit
from ..fma.formats import CSFloat
from ..fp.formats import BINARY64
from ..fp.value import FpClass, FPValue
from ..telemetry import core as _tm
from .cskernel import bit_positions, kernel_for
from .ieee_fast import fp_mul_fast

__all__ = ["fma_batch", "dot_batch", "accumulate_batch"]


def _as_cs(x: "CSFloat | FPValue", unit: CSFmaUnit) -> CSFloat:
    if isinstance(x, FPValue):
        return ieee_to_cs(x, unit.params)
    return x


def fma_batch(a: Sequence["CSFloat | FPValue"], b: Sequence[FPValue],
              c: Sequence["CSFloat | FPValue"],
              unit: CSFmaUnit | None = None, *,
              use_batch: bool = True) -> list[CSFloat]:
    """Evaluate independent ``a[i] + b[i] * c[i]`` through one CS unit.

    ``a``/``c`` accept CS operands or IEEE values (lifted exactly);
    ``b`` stays IEEE as in the hardware.  Bit-identical to calling
    ``unit.fma`` element by element.
    """
    if not (len(a) == len(b) == len(c)):
        raise ValueError("operand vector length mismatch")
    unit = unit if unit is not None else FcsFmaUnit()
    kernel = kernel_for(unit) if use_batch else None
    tm = _tm.ACTIVE
    if tm is not None:
        # call-boundary instrumentation only: per-kernel lane counts,
        # never per-element work (keeps the disabled-overhead gate free)
        tm.count("batch.fma.calls")
        tm.count(f"batch.fma.elements.{unit.params.name}", len(a))
        if kernel is None:
            tm.count("batch.fma.fallback_scalar")
    if kernel is None:
        return [unit.fma(_as_cs(ai, unit), bi, _as_cs(ci, unit))
                for ai, bi, ci in zip(a, b, c)]
    lift = kernel.lift_cs
    lift_ieee = kernel.lift_ieee
    out = []
    for ai, bi, ci in zip(a, b, c):
        at = lift_ieee(ai) if isinstance(ai, FPValue) else lift(ai)
        ct = lift_ieee(ci) if isinstance(ci, FPValue) else lift(ci)
        bt = kernel.lift_b(bi)
        pos = bit_positions(bt[3]) if bt[0] == 1 else None
        out.append(kernel.lower(kernel.fma(at, bt, ct, pos)))
    return out


def dot_batch(a: Sequence[FPValue], b: Sequence[FPValue],
              unit: CSFmaUnit | None = None, *,
              use_batch: bool = True) -> FPValue:
    """Fused inner product ``sum_i a[i] * b[i]``.

    Bit-identical to
    :meth:`repro.fma.dotprod.FusedDotProductUnit.dot` on the same unit:
    the accumulator stays in the unit's carry-save operand format and is
    normalized back to IEEE once at the end.
    """
    if len(a) != len(b):
        raise ValueError("vector length mismatch")
    unit = unit if unit is not None else FcsFmaUnit()
    kernel = kernel_for(unit) if use_batch else None
    tm = _tm.ACTIVE
    if tm is not None:
        tm.count("batch.dot.calls")
        tm.count(f"batch.dot.elements.{unit.params.name}", len(a))
        if kernel is None:
            tm.count("batch.dot.fallback_scalar")
    if kernel is None:
        acc = ieee_to_cs(FPValue.zero(BINARY64), unit.params)
        for ai, bi in zip(a, b):
            acc = unit.fma(acc, ai, ieee_to_cs(bi, unit.params))
        return cs_to_ieee(acc)
    with _tm.span("batch.dot.kernel"):
        acc = kernel.dot_tuple(a, b)
    return cs_to_ieee(kernel.lower(acc))


def accumulate_batch(a: Sequence[FPValue], b: Sequence[FPValue],
                     acc: PcsAccumulator | None = None, *,
                     use_batch: bool = True) -> PcsAccumulator:
    """Accumulate all products ``a[i] * b[i]`` into a [12]-style MAC.

    Bit-identical to calling :meth:`PcsAccumulator.accumulate` per pair
    (one singly-rounded binary64 multiply feeding the carry-free window
    add); returns the accumulator for chaining.
    """
    if len(a) != len(b):
        raise ValueError("vector length mismatch")
    if acc is None:
        acc = PcsAccumulator()
    if _tm.ACTIVE is not None:
        _tm.ACTIVE.count("batch.acc.calls")
        _tm.ACTIVE.count("batch.acc.elements", len(a))
    if not use_batch:
        for ai, bi in zip(a, b):
            acc.accumulate(ai, bi)
        return acc

    from ..cs.csnumber import CSNumber

    width = acc.width
    mask = (1 << width) - 1
    sp = acc.carry_spacing
    H = 0
    pos = sp - 1
    while pos < width:
        H |= 1 << pos
        pos += sp
    notH = ~H & mask
    lsb = acc.lsb_exp
    state = acc._state
    S, C = state.sum, state.carry
    ops = 0
    try:
        for ai, bi in zip(a, b):
            x = fp_mul_fast(ai, bi, fmt=BINARY64)
            cls = x.cls
            if cls is not FpClass.NORMAL:
                if cls is FpClass.ZERO:
                    ops += 1
                    continue
                raise AccumulatorOverflow("non-finite addend")
            shift = x.biased_exponent - 1023 - 52 - lsb
            mant = x.fraction | (1 << 52)
            if x.sign:
                mant = -mant
            addend = (mant << shift) if shift >= 0 else (mant >> (-shift))
            if addend.bit_length() >= width:
                raise AccumulatorOverflow(
                    f"|x| = 2^{x.biased_exponent - 1023} exceeds the "
                    f"window (max_exp={acc.max_exp})")
            w = addend & mask
            # one 3:2 level, then the chunked Carry Reduce as a single
            # SWAR pass (same identity as the FMA window datapath)
            t = S ^ C
            s3 = (t ^ w) & mask
            c3 = (((S & C) | (t & w)) << 1) & mask
            z = (s3 & notH) + (c3 & notH)
            axb = s3 ^ c3
            S = (z & notH) | ((z ^ axb) & H)
            C = ((((s3 & c3) | (axb & z)) & H) << 1) & mask
            ops += 1
    finally:
        acc._state = CSNumber(S, C, width)
        acc._ops += ops
    return acc
