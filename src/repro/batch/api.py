"""Public batched entry points: ``fma_batch``, ``dot_batch``,
``accumulate_batch``.

Each function evaluates many operations through the fast kernels of
:mod:`repro.batch` while remaining bit-identical to the corresponding
scalar loop over the faithful models (``use_batch=False`` literally runs
that loop, which is what the differential tests compare against).
"""

from __future__ import annotations

from typing import Sequence

from .. import probes
from ..fma.accumulator import AccumulatorOverflow, PcsAccumulator
from ..fma.convert import cs_to_ieee, ieee_to_cs
from ..fma.csfma import CSFmaUnit, FcsFmaUnit
from ..fma.formats import CSFloat
from ..fp.formats import BINARY64
from ..fp.value import FpClass, FPValue
from ..guard import residue as _gd
from ..telemetry import core as _tm
from .cskernel import CS_ZERO, bit_positions, kernel_for
from .engines import requested_backend, resolve_backend
from .ieee_fast import fp_mul_fast

__all__ = ["fma_batch", "dot_batch", "accumulate_batch"]

#: below these batch sizes the vector engine's fixed ndarray overhead
#: loses to the tuple kernel, so ``auto`` dispatch routes the call to
#: the tuple kernel (counted as a ``small-batch`` fallback).  An
#: explicit ``backend="vector"`` pin skips the heuristic: the per-fma
#: lift/lower staging only amortizes across hundreds of lanes, whereas
#: the dot chain amortizes its staging across the whole vector length.
VECTOR_MIN_FMA_LANES = 512
VECTOR_MIN_DOT_LEN = 512


def _vector_blocked() -> "str | None":
    """Reason the vector engine must defer this *call* entirely, or
    ``None``.  Armed fault probes and the armed residue guard observe
    scalar datapath signals, so arming semantics are preserved exactly
    by routing armed work through the tuple kernel."""
    if probes.ARMED is not None:
        return "armed-probes"
    if _gd.ACTIVE is not None:
        return "armed-guard"
    return None


def _count_fallback(tm, reason: str) -> None:
    if tm is not None:
        tm.count("batch.vector.fallback")
        tm.count(f"batch.vector.fallback.{reason}")


def _fp_word(x: FPValue) -> int:
    """Canonical binary64 bit pattern (specials defer, so only the
    normal/zero encodings must round-trip exactly)."""
    if x.is_nan:
        return 0x7FF8000000000000
    if x.is_inf:
        return (x.sign << 63) | 0x7FF0000000000000
    if x.is_zero:
        return x.sign << 63
    return (x.sign << 63) | (x.biased_exponent << 52) | x.fraction


def _fma_vector(kernel, unit, a, b, c, tm,
                pinned: bool = False) -> "list[CSFloat] | None":
    """All-lanes vector evaluation of ``fma_batch``; ``None`` -> caller
    falls back to the tuple loop (reason already counted).  ``pinned``
    (an explicit ``vector`` request) bypasses the batch-size
    heuristic."""
    from .vector import np, vector_kernel_for

    reason = _vector_blocked()
    if reason is None and not pinned and len(a) < VECTOR_MIN_FMA_LANES:
        reason = "small-batch"
    vk = vector_kernel_for(unit) if reason is None else None
    if reason is None and vk is None:
        reason = "no-kernel"
    if reason is not None:
        _count_fallback(tm, reason)
        return None
    n = len(a)
    defer = np.zeros(n, bool)
    aw = np.zeros(n, np.uint64)
    bw = np.zeros(n, np.uint64)
    cw = np.zeros(n, np.uint64)
    for i in range(n):
        ai, ci = a[i], c[i]
        if isinstance(ai, FPValue) and isinstance(ci, FPValue):
            aw[i] = _fp_word(ai)
            bw[i] = _fp_word(b[i])
            cw[i] = _fp_word(ci)
        else:
            defer[i] = True     # live CS operands: no word encoding
    acs, _ab, spec_a = vk.lift_words(aw)
    _cb, bcs, spec_b = vk.lift_words(bw)
    ccs, _xb, spec_c = vk.lift_words(cw)
    n_cs = int(defer.sum())
    defer |= spec_a | spec_b | spec_c
    # deferred lanes run scalar below; make their vector lanes trivial
    # (class ZERO) so the lane engine never sees a special class
    for cols in (acs, bcs, ccs):
        cols["cls"] = np.where(defer, CS_ZERO, cols["cls"])
    tuples = vk.lower_lanes(vk.fma_lanes(acs, bcs, ccs))
    if tm is not None:
        n_def = int(defer.sum())
        tm.count("batch.vector.lanes", n - n_def)
        if n_def:
            tm.count("batch.vector.deferred", n_def)
            if n_cs:
                tm.count("batch.vector.deferred.cs-operand", n_cs)
            if n_def - n_cs:
                tm.count("batch.vector.deferred.special", n_def - n_cs)
    lower = kernel.lower
    out = [lower(t) for t in tuples]
    if defer.any():
        lift = kernel.lift_cs
        lift_ieee = kernel.lift_ieee
        for i in np.flatnonzero(defer):
            ai, bi, ci = a[i], b[i], c[i]
            at = lift_ieee(ai) if isinstance(ai, FPValue) else lift(ai)
            ct = lift_ieee(ci) if isinstance(ci, FPValue) else lift(ci)
            bt = kernel.lift_b(bi)
            pos = bit_positions(bt[3]) if bt[0] == 1 else None
            out[i] = lower(kernel.fma(at, bt, ct, pos))
    return out


def _as_cs(x: "CSFloat | FPValue", unit: CSFmaUnit) -> CSFloat:
    if isinstance(x, FPValue):
        return ieee_to_cs(x, unit.params)
    return x


def fma_batch(a: Sequence["CSFloat | FPValue"], b: Sequence[FPValue],
              c: Sequence["CSFloat | FPValue"],
              unit: CSFmaUnit | None = None, *,
              use_batch: bool = True,
              backend: str | None = None) -> list[CSFloat]:
    """Evaluate independent ``a[i] + b[i] * c[i]`` through one CS unit.

    ``a``/``c`` accept CS operands or IEEE values (lifted exactly);
    ``b`` stays IEEE as in the hardware.  Bit-identical to calling
    ``unit.fma`` element by element.  ``backend`` selects the evaluation
    machinery (:data:`repro.batch.engines.BACKENDS`; ``None`` honours
    ``REPRO_BATCH_BACKEND``); ``use_batch=False`` forces ``faithful``.
    """
    if not (len(a) == len(b) == len(c)):
        raise ValueError("operand vector length mismatch")
    unit = unit if unit is not None else FcsFmaUnit()
    if not use_batch:
        requested = backend = "faithful"
    else:
        requested = requested_backend(backend)
        backend = resolve_backend(requested)
    kernel = kernel_for(unit) if backend != "faithful" else None
    tm = _tm.ACTIVE
    if tm is not None:
        # call-boundary instrumentation only: per-kernel lane counts,
        # never per-element work (keeps the disabled-overhead gate free)
        tm.count("batch.fma.calls")
        tm.count(f"batch.fma.elements.{unit.params.name}", len(a))
        if kernel is None:
            tm.count("batch.fma.fallback_scalar")
    if kernel is None:
        return [unit.fma(_as_cs(ai, unit), bi, _as_cs(ci, unit))
                for ai, bi, ci in zip(a, b, c)]
    if backend == "vector":
        out = _fma_vector(kernel, unit, a, b, c, tm,
                          pinned=requested == "vector")
        if out is not None:
            return out
    lift = kernel.lift_cs
    lift_ieee = kernel.lift_ieee
    out = []
    for ai, bi, ci in zip(a, b, c):
        at = lift_ieee(ai) if isinstance(ai, FPValue) else lift(ai)
        ct = lift_ieee(ci) if isinstance(ci, FPValue) else lift(ci)
        bt = kernel.lift_b(bi)
        pos = bit_positions(bt[3]) if bt[0] == 1 else None
        out.append(kernel.lower(kernel.fma(at, bt, ct, pos)))
    return out


def dot_batch(a: Sequence[FPValue], b: Sequence[FPValue],
              unit: CSFmaUnit | None = None, *,
              use_batch: bool = True,
              backend: str | None = None) -> FPValue:
    """Fused inner product ``sum_i a[i] * b[i]``.

    Bit-identical to
    :meth:`repro.fma.dotprod.FusedDotProductUnit.dot` on the same unit:
    the accumulator stays in the unit's carry-save operand format and is
    normalized back to IEEE once at the end.  ``backend`` as in
    :func:`fma_batch`; the vector engine runs the product trees for all
    steps as one ndarray pass (:meth:`VectorCSKernel.dot_hybrid`) and
    defers to the tuple kernel while probes/guard are armed.
    """
    if len(a) != len(b):
        raise ValueError("vector length mismatch")
    unit = unit if unit is not None else FcsFmaUnit()
    if not use_batch:
        requested = backend = "faithful"
    else:
        requested = requested_backend(backend)
        backend = resolve_backend(requested)
    kernel = kernel_for(unit) if backend != "faithful" else None
    tm = _tm.ACTIVE
    if tm is not None:
        tm.count("batch.dot.calls")
        tm.count(f"batch.dot.elements.{unit.params.name}", len(a))
        if kernel is None:
            tm.count("batch.dot.fallback_scalar")
    if kernel is None:
        acc = ieee_to_cs(FPValue.zero(BINARY64), unit.params)
        for ai, bi in zip(a, b):
            acc = unit.fma(acc, ai, ieee_to_cs(bi, unit.params))
        return cs_to_ieee(acc)
    if backend == "vector":
        reason = _vector_blocked()
        if (reason is None and requested != "vector"
                and len(a) < VECTOR_MIN_DOT_LEN):
            reason = "small-batch"
        vk = None
        if reason is None:
            from .vector import vector_kernel_for

            vk = vector_kernel_for(unit)
            if vk is None:
                reason = "no-kernel"
        if reason is None:
            if tm is not None:
                tm.count("batch.vector.lanes")
            with _tm.span("batch.dot.kernel"):
                acc = vk.dot_hybrid(a, b)
            return cs_to_ieee(kernel.lower(acc))
        _count_fallback(tm, reason)
    with _tm.span("batch.dot.kernel"):
        acc = kernel.dot_tuple(a, b)
    return cs_to_ieee(kernel.lower(acc))


def accumulate_batch(a: Sequence[FPValue], b: Sequence[FPValue],
                     acc: PcsAccumulator | None = None, *,
                     use_batch: bool = True) -> PcsAccumulator:
    """Accumulate all products ``a[i] * b[i]`` into a [12]-style MAC.

    Bit-identical to calling :meth:`PcsAccumulator.accumulate` per pair
    (one singly-rounded binary64 multiply feeding the carry-free window
    add); returns the accumulator for chaining.
    """
    if len(a) != len(b):
        raise ValueError("vector length mismatch")
    if acc is None:
        acc = PcsAccumulator()
    if _tm.ACTIVE is not None:
        _tm.ACTIVE.count("batch.acc.calls")
        _tm.ACTIVE.count("batch.acc.elements", len(a))
    if not use_batch:
        for ai, bi in zip(a, b):
            acc.accumulate(ai, bi)
        return acc

    from ..cs.csnumber import CSNumber

    width = acc.width
    mask = (1 << width) - 1
    sp = acc.carry_spacing
    H = 0
    pos = sp - 1
    while pos < width:
        H |= 1 << pos
        pos += sp
    notH = ~H & mask
    lsb = acc.lsb_exp
    state = acc._state
    S, C = state.sum, state.carry
    ops = 0
    try:
        for ai, bi in zip(a, b):
            x = fp_mul_fast(ai, bi, fmt=BINARY64)
            cls = x.cls
            if cls is not FpClass.NORMAL:
                if cls is FpClass.ZERO:
                    ops += 1
                    continue
                raise AccumulatorOverflow("non-finite addend")
            shift = x.biased_exponent - 1023 - 52 - lsb
            mant = x.fraction | (1 << 52)
            if x.sign:
                mant = -mant
            addend = (mant << shift) if shift >= 0 else (mant >> (-shift))
            if addend.bit_length() >= width:
                raise AccumulatorOverflow(
                    f"|x| = 2^{x.biased_exponent - 1023} exceeds the "
                    f"window (max_exp={acc.max_exp})")
            w = addend & mask
            # one 3:2 level, then the chunked Carry Reduce as a single
            # SWAR pass (same identity as the FMA window datapath)
            t = S ^ C
            s3 = (t ^ w) & mask
            c3 = (((S & C) | (t & w)) << 1) & mask
            z = (s3 & notH) + (c3 & notH)
            axb = s3 ^ c3
            S = (z & notH) | ((z ^ axb) & H)
            C = ((((s3 & c3) | (axb & z)) & H) << 1) & mask
            ops += 1
    finally:
        acc._state = CSNumber(S, C, width)
        acc._ops += ops
    return acc
