"""NumPy lane backend for the carry-save FMA fast path.

This module evaluates whole *batches* of CS-FMA datapaths as ``uint64``
ndarray arithmetic, bit-identical to :class:`repro.batch.cskernel.
FastCSKernel` (and therefore to the faithful scalar unit).  The paper's
window datapath is a wide, regular integer pipeline, so every stage maps
onto array ops over a **digit representation**: a window value is stored
as ``window_blocks`` little-endian digits of ``block`` bits each, one
``np.uint64`` per digit (PCS: 7 x 55 bits; FCS: 13 x 29 bits -- in both
architectures ``block * window_blocks == window_width`` exactly, and the
PCS carry-spacing chunks divide the digit width, so the SWAR Carry
Reduce never rips across digits).

Why full-width trees are sound (mask elision, lane-parallel form)
-----------------------------------------------------------------
The scalar kernel compiles one Wallace tree per ``(rows, width)`` and
evaluates it at the exact modulus each operation needs (``W - p_pos``,
or ``product_width`` below the window).  Every CSA output bit ``j``
depends only on input bits ``<= j``, so masking commutes upward through
the tree: the tree evaluated at full window width ``W`` and masked down
equals the tree evaluated at the narrower modulus.  The vector engine
therefore compiles *one* stacked tree per row count (the popcount of the
``B`` significand), evaluates it at width ``W`` for every lane in the
group simultaneously, and lets the callers mask -- ``(S << p_pos) &
wmask`` and ``(S & pmask)`` recover exactly what the scalar kernel's
per-modulus trees produce.

Divergence policy
-----------------
Lanes the vector pipeline does not model -- NaN/Inf operands, non-
binary64 inputs, mid-chain overflow to infinity -- are masked out and
routed to the scalar kernel, element by element, so the result stream is
bit-identical lane for lane.  Armed probes / guard residue checkers are
handled one level up (:mod:`repro.batch.api` falls back to the tuple
kernel for the whole call, keeping every fault-injection site live);
this module assumes it runs disarmed and installs no hooks.
"""

from __future__ import annotations

import threading
from types import SimpleNamespace

from ..fp.formats import BINARY64
from ..fp.value import FpClass, FPValue
from ..telemetry import core as _tm
from .cskernel import (CS_INF, CS_NAN, CS_NORMAL, CS_ZERO, FastCSKernel,
                       bit_positions, kernel_for)

try:  # soft dependency: the dispatch layer degrades to the tuple kernel
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    np = None

__all__ = ["HAVE_NUMPY", "VectorCSKernel", "vector_kernel_for",
           "clear_vector_cache"]

HAVE_NUMPY = np is not None

_VECTORS: dict[int, "VectorCSKernel"] = {}


def vector_kernel_for(unit) -> "VectorCSKernel | None":
    """Vector kernel matching ``unit`` or ``None`` (strict / no numpy)."""
    if not HAVE_NUMPY:
        return None
    kernel = kernel_for(unit)
    if kernel is None:
        return None
    key = id(kernel)
    vk = _VECTORS.get(key)
    if vk is None:
        vk = VectorCSKernel(kernel)
        _VECTORS[key] = vk
    return vk


def clear_vector_cache() -> None:
    """Drop cached vector kernels (mainly for tests)."""
    _VECTORS.clear()


if HAVE_NUMPY:
    _U64 = np.uint64
    _ONE = np.uint64(1)
    _U63 = np.uint64(63)
    _M28 = np.uint64((1 << 28) - 1)

    if hasattr(np, "bitwise_count"):
        def _popcount(a):
            return np.bitwise_count(a).astype(np.int64)
    else:  # pragma: no cover - numpy < 2.0
        def _popcount(a):
            a = a.astype(np.uint64)
            m1 = np.uint64(0x5555555555555555)
            m2 = np.uint64(0x3333333333333333)
            m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
            h = np.uint64(0x0101010101010101)
            a = a - ((a >> _ONE) & m1)
            a = (a & m2) + ((a >> np.uint64(2)) & m2)
            a = (a + (a >> np.uint64(4))) & m4
            return ((a * h) >> np.uint64(56)).astype(np.int64)


class VectorCSKernel:
    """Lane-parallel twin of one :class:`FastCSKernel` configuration.

    Lane batches travel as plain dicts of aligned arrays ("cols"): a CS
    operand batch is ``{cls, exp, m, mc, rs, rc, sh}`` (``m``/``mc`` are
    ``(n, mant_blocks)`` digit arrays, the rest ``(n,)``), an IEEE ``B``
    batch is ``{cls, sign, exp, sig}``.  All integers are ``uint64``
    digits / fields except exponents and classes, which are ``int64``.
    """

    def __init__(self, kernel: FastCSKernel):
        if np is None:  # pragma: no cover
            raise RuntimeError("numpy is required for the vector backend")
        self.kernel = kernel
        p = kernel.params
        self.BB = BB = kernel.block
        self.D = D = p.window_blocks
        self.MD = MD = p.mant_blocks
        self.W = kernel.W
        if BB * D != kernel.W:
            raise ValueError("window width is not digit-aligned")
        if kernel.use_carry_reduce and BB % p.carry_spacing != 0:
            raise ValueError("carry-spacing chunks straddle digits")
        self.BBu = _U64(BB)
        self.BB1u = _U64(BB - 1)
        self.DMASK = _U64((1 << BB) - 1)
        self.frac = kernel.frac
        self.bsig = kernel.bsig
        self.plsb = kernel.plsb
        self.amax = kernel.amax
        self.max_skip = kernel.max_skip
        self.emin, self.emax = kernel.emin, kernel.emax
        self.ieee_shift = kernel.ieee_shift
        self.use_carry_reduce = kernel.use_carry_reduce
        self.selector = kernel.selector
        # per-digit constant planes
        self.Hd = self._const_digits(kernel.H, D)
        self.notHd = self._const_digits(kernel.notH, D)
        self.pmaskd = self._const_digits(kernel.pmask, D)
        self.pextd = self._const_digits(~kernel.pmask & kernel.wmask, D)
        self.mcmaskd = self._const_digits(kernel.mcmask, MD)
        self.nmcmaskd = self._const_digits(~kernel.mcmask & kernel.mmask, MD)
        self.rcmask1 = _U64(kernel.rcmask & kernel.bmask)
        self.topd = self._const_digits((1 << (self.W - 1)) - 1, D)
        pd, pb = divmod(p.product_width - 1, BB)
        self.psign_digit, self.psign_bit = pd, _U64(pb)
        # IEEE pack geometry: V = (mant_signed << block) + round_frac is
        # a (mant_width + block + 1)-bit signed value -> MD + 2 digits
        self.VD = MD + 2
        self.fbits = BINARY64.fraction_bits
        self.fmask = _U64((1 << 52) - 1)
        # scratch workspaces live per thread so the serve executor's
        # worker pool can share one kernel object
        self._tls = threading.local()
        self._jK = (np.arange(D) + D).astype(np.int64)
        self._mdr = np.arange(MD, dtype=np.int64)
        # the stacked trees run on 64-bit *limbs* rather than block-width
        # digits: fewer words per row (FCS: 6 vs 13) and no shl1 masking
        self.LB = (self.W + 63) // 64

    # -- small digit-array primitives (all little-endian, last axis) ----

    def _const_digits(self, x: int, k: int):
        m = (1 << self.BB) - 1
        return np.array([(x >> (self.BB * i)) & m for i in range(k)],
                        dtype=np.uint64)

    def _shift(self, x, s, fill=None):
        """``floor(x_ext * 2^s) mod 2^(K*BB)`` with per-lane shift ``s``
        of either sign; ``fill`` (``(n,)`` of 0/DMASK) extends above the
        top digit (two's-complement arithmetic right shifts)."""
        n, K = x.shape
        q = s // self.BB                       # floor division (int64)
        r = (s - q * self.BB).astype(np.uint64)[:, None]
        z = np.zeros((n, K), np.uint64)
        hi = z if fill is None else np.broadcast_to(fill[:, None], (n, K))
        cat = np.concatenate([z, x, hi], axis=1)
        j = np.arange(K, dtype=np.int64)
        idx = np.clip(j[None, :] - q[:, None] + K, 0, 3 * K - 1)
        idx = idx.astype(np.intp)
        lo = np.take_along_axis(cat, idx, axis=1)
        hm = np.take_along_axis(cat, np.maximum(idx - 1, 0), axis=1)
        return ((lo & (self.DMASK >> r)) << r) | (hm >> (self.BBu - r))

    def _shl1(self, c):
        out = (c << _ONE) & self.DMASK
        out[..., 1:] |= c[..., :-1] >> self.BB1u
        return out

    def _shr1(self, x):
        out = x >> _ONE
        out[..., :-1] |= (x[..., 1:] & _ONE) << self.BB1u
        return out

    def _csa(self, x, y, z):
        t = x ^ y
        return t ^ z, self._shl1((x & y) | (t & z))

    def _add(self, x, y):
        """Digit-wise ripple add, carry out of the top digit dropped."""
        out = np.empty_like(x)
        c = np.zeros(x.shape[:-1], np.uint64)
        for j in range(x.shape[-1]):
            s = x[..., j] + y[..., j] + c
            out[..., j] = s & self.DMASK
            c = s >> self.BBu
        return out

    def _add0(self, x, y0):
        """Add the sub-digit value ``y0`` (``(n,)`` uint64) at digit 0."""
        out = np.empty_like(x)
        c = y0
        for j in range(x.shape[-1]):
            s = x[..., j] + c
            out[..., j] = s & self.DMASK
            c = s >> self.BBu
        return out

    def _neg(self, x):
        return self._add0(x ^ self.DMASK, _ONE)

    @staticmethod
    def _bitlen_digit(d):
        """Exact bit length of digits ``< 2^56`` (split so the float64
        conversion in ``frexp`` never rounds)."""
        hi = d >> np.uint64(28)
        _, e_hi = np.frexp(hi.astype(np.float64))
        _, e_lo = np.frexp((d & _M28).astype(np.float64))
        return np.where(hi > 0, e_hi.astype(np.int64) + 28,
                        e_lo.astype(np.int64))

    def _bitlen(self, x):
        """Bit length of each lane's multi-digit value; 0 for zero.

        ``x`` must be a C-contiguous ``(n, K)`` array."""
        n, K = x.shape
        nz = x != 0
        top = (K - 1) - np.argmax(nz[:, ::-1], axis=-1)
        d = np.take(x.reshape(-1), top + np.arange(n, dtype=np.int64) * K)
        return np.where(nz.any(axis=-1),
                        top * self.BB + self._bitlen_digit(d), 0)

    # -- the stacked Wallace trees --------------------------------------

    #: lanes per tree tile -- sized so one tile's row stack stays
    #: cache-resident through all 3:2 levels while amortising ufunc
    #: dispatch (measured optimum on the dev box: 1024 beats 512/2048)
    TILE = 1024

    def _tree_bufs(self):
        """Preallocated flat scratch for one tile (views are carved out
        per level so every array stays C-contiguous -- non-contiguous
        inner axes cost ~4x on the carry pass)."""
        bufs = getattr(self._tls, "tbufs", None)
        if bufs is None:
            LB = self.LB
            big = 53 * self.TILE * LB
            sml = 18 * self.TILE * LB
            bufs = self._tls.tbufs = SimpleNamespace(
                Af=np.empty(big, np.uint64),
                Bf=np.empty(big, np.uint64),
                hmf=np.empty(big, np.uint64),
                scrf=np.empty(sml, np.uint64),
                csf=np.empty(sml, np.uint64),
                c2f=np.empty(sml, np.uint64),
                ruf=np.empty(53 * self.TILE, np.uint64),
                m2f=np.empty(53 * self.TILE, np.uint64),
            )
            # all-ones except at row boundaries (flat index % LB == 0):
            # ANDing the flat cross-limb carry with this kills the
            # garbage carried over from the previous row's top limb in
            # one contiguous SIMD pass (a strided fill walks the whole
            # array scalar-wise)
            bm = np.full(sml, ~np.uint64(0))
            bm[::LB] = 0
            bufs.bmf = bm
        return bufs

    def _digits_to_limbs(self, x):
        """Repack ``(n, D)`` block-width digits into ``(n, LB)`` 64-bit
        limbs (little-endian in both forms)."""
        n = x.shape[0]
        out = np.zeros((n, self.LB), np.uint64)
        for k in range(self.D):
            j, r = divmod(self.BB * k, 64)
            out[:, j] |= x[:, k] << _U64(r)
            if r and r + self.BB > 64 and j + 1 < self.LB:
                out[:, j + 1] |= x[:, k] >> _U64(64 - r)
        return out

    def _limbs_to_digits(self, x, out):
        """Repack ``(n, LB)`` limbs into ``(n, D)`` digits (bits at or
        above ``W`` are dropped, matching the mod-``2^W`` convention)."""
        for k in range(self.D):
            j, r = divmod(self.BB * k, 64)
            v = x[:, j] >> _U64(r)
            if r and r + self.BB > 64 and j + 1 < self.LB:
                v = v | (x[:, j + 1] << _U64(64 - r))
            out[:, k] = v & self.DMASK
        return out

    # -- per-batch-size scratch workspace -------------------------------

    def _ws(self, n):
        """Reusable buffers for one batch width ``n``.

        The window recurrence is dispatch-bound, not compute-bound: at
        chain widths every ndarray op costs microseconds of fixed
        overhead, so the hot path writes into preallocated scratch via
        ``out=`` instead of allocating ~150 temporaries per step."""
        wsmap = getattr(self._tls, "wsmap", None)
        if wsmap is None:
            wsmap = self._tls.wsmap = {}
        ws = wsmap.get(n)
        if ws is None:
            D = self.D
            m = 3 * n
            u64, i64 = np.uint64, np.int64
            ws = SimpleNamespace(
                cat=np.zeros((m, 3 * D), u64),
                s3=np.empty(m, i64),
                q=np.empty(m, i64),
                r3=np.empty(m, i64),
                ru=np.empty((m, 1), u64),
                m1=np.empty((m, 1), u64),
                m2=np.empty((m, 1), u64),
                idx=np.empty((m, D), i64),
                fidx=np.empty((m, D), i64),
                fidx2=np.empty((m, D), i64),
                rowoff3=(np.arange(m, dtype=i64) * (3 * D))[:, None],
                lo=np.empty((m, D), u64),
                hm=np.empty((m, D), u64),
                t1=np.empty((n, D), u64),
                t2=np.empty((n, D), u64),
                t3=np.empty((n, D), u64),
                t4=np.empty((n, D), u64),
                val=np.empty((n, D), u64),
                pw=np.empty((n, D), u64),
                c1=np.empty((n, D), u64),
                c2=np.empty((n, D), u64),
                ext=np.empty((n, D), u64),
                aun=np.empty((n, D), u64),
                gi=np.empty((n, self.MD + 1), i64),
                rowoffD=(np.arange(n, dtype=i64) * D)[:, None],
            )
            ws.catf = ws.cat.reshape(-1)
            wsmap[n] = ws
        return ws

    def _shift3(self, ws, s3):
        """Fused per-lane digit shift of the three rows staged in
        ``ws.cat`` (``[zeros | x | fill]`` per row); same semantics as
        :meth:`_shift` but allocation-free."""
        D = self.D
        np.floor_divide(s3, self.BB, out=ws.q)
        np.multiply(ws.q, self.BB, out=ws.r3)
        np.subtract(s3, ws.r3, out=ws.r3)
        ws.ru[:, 0] = ws.r3
        np.subtract(self._jK[None, :], ws.q[:, None], out=ws.idx)
        np.minimum(ws.idx, 3 * D - 1, out=ws.idx)
        np.maximum(ws.idx, 0, out=ws.idx)
        np.add(ws.idx, ws.rowoff3, out=ws.fidx)
        np.take(ws.catf, ws.fidx, out=ws.lo)
        np.subtract(ws.fidx, 1, out=ws.fidx2)
        np.maximum(ws.fidx2, ws.rowoff3, out=ws.fidx2)
        np.take(ws.catf, ws.fidx2, out=ws.hm)
        np.right_shift(self.DMASK, ws.ru, out=ws.m1)
        np.subtract(self.BBu, ws.ru, out=ws.m2)
        np.bitwise_and(ws.lo, ws.m1, out=ws.lo)
        np.left_shift(ws.lo, ws.ru, out=ws.lo)
        np.right_shift(ws.hm, ws.m2, out=ws.hm)
        np.bitwise_or(ws.lo, ws.hm, out=ws.lo)
        return ws.lo

    def _carry_fix(self, out, c, c2):
        """Fold per-digit carries upward until none remain (drops the
        carry out of the top digit, i.e. works mod ``2^W``)."""
        while c.any():
            c2[:, 0] = 0
            c2[:, 1:] = c[:, :-1]
            np.add(out, c2, out=out)
            np.right_shift(out, self.BBu, out=c)
            np.bitwise_and(out, self.DMASK, out=out)

    def _addf(self, x, y, out, c, c2):
        """Digit add into ``out`` -- same result as :meth:`_add` but
        carry-iteration instead of a D-long ripple (random digit sums
        almost never produce second-order carries)."""
        np.add(x, y, out=out)
        np.right_shift(out, self.BBu, out=c)
        np.bitwise_and(out, self.DMASK, out=out)
        self._carry_fix(out, c, c2)
        return out

    def products(self, cv, sig):
        """Full-width CS products ``(S, C)`` for every lane at once.

        ``cv`` is the wrapped multiplicand (``(n, D)`` digits of
        ``cv mod 2^W``), ``sig`` the ``B`` significands.  Lanes are
        grouped by popcount so each group shares one tree shape; every
        3:2 level runs as a handful of in-place array ops over the
        stacked ``(rows, tile, D)`` block, replicating the exact
        combination order of :func:`repro.cs.csa.reduce_rows` (triples
        in row order, sum/carry interleaved, remainders appended).
        Lanes are processed in cache-sized tiles through preallocated
        ping-pong buffers -- the tree is bandwidth-bound, not
        compute-bound."""
        n = cv.shape[0]
        S = np.zeros((n, self.D), np.uint64)
        C = np.zeros((n, self.D), np.uint64)
        if n == 0:
            return S, C
        tb = self._tree_bufs()
        LB = self.LB
        pop = _popcount(sig)
        if not pop.any():
            return S, C
        cvl_all = self._digits_to_limbs(cv)
        SL = np.zeros((n, LB), np.uint64)
        CL = np.zeros((n, LB), np.uint64)
        for R in np.unique(pop):
            if R == 0:
                continue
            idx = np.flatnonzero(pop == R)
            g = idx.size
            R = int(R)
            # ascending set-bit positions via iterative count-trailing-
            # zeros (same row order as the scalar ``bit_positions``)
            s = sig[idx].copy()
            pos = np.empty((R, g), np.int64)
            for l in range(R):
                low = s & (np.bitwise_not(s) + _ONE)
                pos[l] = _popcount(low - _ONE)
                s ^= low
            cvl = cvl_all[idx]                          # (g, LB)
            # bit positions are < 53 <= 64, so every row is a *sub-limb*
            # shift of cvl: row = (cvl << r) | (cvh >> (63 - r)), where
            # cvh is cvl moved down one limb pre-shifted right by 1 (the
            # extra >>1 keeps the r == 0 case inside uint64 shift range).
            # Bits at or above W stay garbage in the top limb; CSA carry
            # only flows upward, so they never reach bits < W and the
            # final repack drops them.
            cvh = np.zeros((g, LB), np.uint64)
            cvh[:, 1:] = cvl[:, :-1] >> _ONE
            if R == 1:
                ru1 = pos[0].astype(np.uint64)[:, None]
                SL[idx] = (cvl << ru1) | (cvh >> (_U63 - ru1))
                continue
            for a in range(0, g, self.TILE):
                b = min(a + self.TILE, g)
                gt = b - a
                k = gt * LB
                ru = tb.ruf[:R * gt].reshape(R, gt, 1)
                ru[:, :, 0] = pos[:, a:b]
                m2 = tb.m2f[:R * gt].reshape(R, gt, 1)
                np.subtract(_U63, ru, out=m2)
                lo = tb.Af[:R * k].reshape(R, gt, LB)
                hm = tb.hmf[:R * k].reshape(R, gt, LB)
                np.left_shift(cvl[a:b][None], ru, out=lo)
                np.right_shift(cvh[a:b][None], m2, out=hm)
                np.bitwise_or(lo, hm, out=lo)
                src_f, dst_f = tb.Af, tb.Bf
                L = R
                while L > 2:
                    T = L // 3
                    w = T * k
                    work = src_f[:L * k].reshape(L, gt, LB)
                    nxt = dst_f[:(L - T) * k].reshape(L - T, gt, LB)
                    x = work[0:3 * T:3]
                    y = work[1:3 * T:3]
                    z = work[2:3 * T:3]
                    t = tb.scrf[:w].reshape(T, gt, LB)
                    np.bitwise_xor(x, y, out=t)
                    np.bitwise_xor(t, z, out=nxt[0:2 * T:2])
                    cs = tb.csf[:w].reshape(T, gt, LB)
                    np.bitwise_and(x, y, out=cs)
                    np.bitwise_and(t, z, out=t)
                    np.bitwise_or(cs, t, out=t)         # majority
                    # shl1 straight into the interleaved carry slot
                    # (outer-axis stride only, inner axes contiguous);
                    # the cross-limb carry runs as one flat pass over
                    # the contiguous majority scratch, lane-boundary
                    # slots zeroed before the OR
                    nc = nxt[1:2 * T:2]
                    np.left_shift(t, _ONE, out=nc)
                    tf = t.reshape(-1)
                    cf = tb.c2f[:w]
                    np.right_shift(tf[:w - 1], _U63, out=cf[1:])
                    cf[0] = 0
                    np.bitwise_and(cf, tb.bmf[:w], out=cf)
                    np.bitwise_or(nc, cf.reshape(T, gt, LB), out=nc)
                    if L - 3 * T:
                        np.copyto(nxt[2 * T:], work[3 * T:L])
                    src_f, dst_f = dst_f, src_f
                    L = L - T
                res = src_f[:L * k].reshape(L, gt, LB)
                SL[idx[a:b]] = res[0]
                CL[idx[a:b]] = res[1]
        # limb->digit repack, chunked so the strided column reads stay
        # cache-resident
        for a in range(0, n, 8 * self.TILE):
            b = a + 8 * self.TILE
            self._limbs_to_digits(SL[a:b], S[a:b])
            self._limbs_to_digits(CL[a:b], C[a:b])
        return S, C

    # -- operand collapse ------------------------------------------------

    def _collapse(self, cols):
        """``(used, nonzero)``: each lane's ``a_used``/``c_used`` as a
        sign-extended two's-complement window-digit array."""
        n = cols["cls"].shape[0]
        dec = ((cols["rs"] + cols["rc"]) & self.DMASK) >> self.BB1u
        v = self._add(cols["m"], cols["mc"])
        neg = (v[:, self.MD - 1] >> self.BB1u) & _ONE
        ext = np.zeros((n, self.D), np.uint64)
        ext[:, :self.MD] = v
        ext[:, self.MD:] = np.where(neg.astype(bool), self.DMASK,
                                    _U64(0))[:, None]
        used = self._add0(ext, dec)
        normal = cols["cls"] == CS_NORMAL
        used &= np.where(normal, self.DMASK, _U64(0))[:, None]
        nonzero = normal & (used != 0).any(axis=1)
        return used, nonzero

    # -- stages 2-8 of the datapath (shared by fma_lanes / dot chain) ---

    def _window(self, S, C, u, p_nz, au, a_nz, aexp):
        """Window anchoring through the result slice for all lanes.

        ``S``/``C`` are the full-width products (zero where ``~p_nz``),
        ``u = e_f - (b_sig_bits - 1) - frac_bits`` the product anchor,
        ``au`` the collapsed addend (two's complement digits), ``aexp``
        its exponent.  Returns a dict of per-lane column arrays; callers
        classify (trivial / zero / overflow / underflow) on top.
        """
        n = u.shape[0]
        D, BB, MD = self.D, self.BB, self.MD
        ws = self._ws(n)
        aw = aexp - self.frac - self.amax
        w0 = np.where(p_nz,
                      np.where(a_nz, np.maximum(u - self.plsb, aw),
                               u - self.plsb),
                      aw)
        p_pos = u - w0
        # one fused digit shift: product sum, product carry, addend row
        a_neg = (au[:, D - 1] >> self.BB1u).astype(bool)
        afill = np.where(a_neg, self.DMASK, _U64(0))
        ws.cat[:n, D:2 * D] = S
        ws.cat[n:2 * n, D:2 * D] = C
        ws.cat[2 * n:, D:2 * D] = au
        ws.cat[2 * n:, 2 * D:] = afill[:, None]
        sp = np.maximum(p_pos, 0)
        ws.s3[:n] = sp
        ws.s3[n:2 * n] = sp
        ws.s3[2 * n:] = aexp - self.frac - w0
        lo = self._shift3(ws, ws.s3)
        r0, r1, a_row = lo[:n], lo[n:2 * n], lo[2 * n:]
        has_r1 = p_nz & (p_pos >= 0)
        below = p_nz & (p_pos < 0)
        if below.any():
            bi = np.flatnonzero(below)
            pv = self._add(S[bi] & self.pmaskd, C[bi] & self.pmaskd)
            pv &= self.pmaskd
            negb = ((pv[:, self.psign_digit] >> self.psign_bit)
                    & _ONE).astype(bool)
            pv |= np.where(negb[:, None], self.pextd, _U64(0))
            fill = np.where(negb, self.DMASK, _U64(0))
            r0[bi] = self._shift(pv, p_pos[bi], fill)
            r1[bi] = 0
        a_row &= np.where(a_nz, self.DMASK, _U64(0))[:, None]
        # 3:2 over at most three rows, then row-count-dependent wiring
        s3, c3 = self._csa(r0, r1, a_row)
        need3 = (has_r1 & a_nz)[:, None]
        w_sum = np.where(need3, s3, np.where(p_nz[:, None], r0, a_row))
        w_carry = np.where(
            need3, c3,
            np.where(has_r1[:, None], r1,
                     np.where((p_nz & a_nz)[:, None], a_row, _U64(0))))
        if self.use_carry_reduce:
            A, B = w_sum, w_carry
            np.bitwise_and(A, self.notHd, out=ws.t1)
            np.bitwise_and(B, self.notHd, out=ws.t2)
            z = np.add(ws.t1, ws.t2, out=ws.t1)
            axb = np.bitwise_xor(A, B, out=ws.t2)
            g = np.bitwise_and(A, B, out=ws.t3)
            np.bitwise_and(axb, z, out=ws.t4)
            np.bitwise_or(g, ws.t4, out=ws.t4)
            np.bitwise_and(ws.t4, self.Hd, out=ws.t4)
            np.left_shift(ws.t4, _ONE, out=ws.t3)
            np.bitwise_and(ws.t3, self.DMASK, out=ws.t3)
            ws.t3[:, 1:] |= ws.t4[:, :-1] >> self.BB1u
            w_carry = ws.t3
            np.bitwise_xor(z, axb, out=ws.t2)
            np.bitwise_and(ws.t2, self.Hd, out=ws.t2)
            np.bitwise_and(z, self.notHd, out=ws.t1)
            w_sum = np.bitwise_or(ws.t1, ws.t2, out=ws.t1)
        value = self._addf(w_sum, w_carry, ws.val, ws.c1, ws.c2)
        value_any = (value != 0).any(axis=1)
        vneg = (value[:, D - 1] >> self.BB1u).astype(bool)
        if self.selector == "zd":
            x = np.where(vneg[:, None], value ^ self.DMASK, value)
            rsb = self.W - self._bitlen(x)
            skipped = np.clip((rsb - 1) // BB, 0, self.max_skip)
        else:
            pw = self._addf(r0, r1, ws.pw, ws.c1, ws.c2)
            prod_word = np.where(has_r1[:, None], pw, r0)
            aa = a_row
            t = aa ^ prod_word
            g = aa & prod_word
            zz = (aa | prod_word) ^ self.DMASK
            t_up = self._shr1(t)
            z_dn = self._shl1(zz)
            z_dn[:, 0] |= _ONE
            g_dn = self._shl1(g)
            f = (t_up & ((g & ~z_dn) | (zz & ~g_dn))
                 | (t_up ^ self.DMASK) & ((zz & ~z_dn) | (g & ~g_dn)))
            f &= self.topd
            bl = self._bitlen(f)
            est = np.where(bl == 0, self.W - 1, self.W - bl)
            skipped = np.where(est > 1, (est - 1) // BB, 0)
            skipped = np.minimum(skipped, self.max_skip)
        j_lo = (D - 1 - skipped) - (MD - 1)
        gi = ws.gi
        gi[:, 0] = np.maximum(j_lo - 1, 0)
        gi[:, 1:] = j_lo[:, None] + self._mdr
        np.add(gi, ws.rowoffD, out=gi)
        g1 = np.take(w_sum.reshape(-1), gi)
        g2 = np.take(w_carry.reshape(-1), gi)
        m_sum = g1[:, 1:]
        mc_full = g2[:, 1:]
        m_carry = mc_full & self.mcmaskd
        in_w = j_lo >= 1
        r_sum = np.where(in_w, g1[:, 0], _U64(0))
        r_carry = np.where(in_w, g2[:, 0] & self.rcmask1, _U64(0))
        e_r = w0 + BB * j_lo + self.frac
        return {"value_any": value_any, "vneg": vneg, "stray": mc_full
                & self.nmcmaskd, "m": m_sum, "mc": m_carry, "rs": r_sum,
                "rc": r_carry, "e_r": e_r}

    @staticmethod
    def _check_stray(stray, active):
        # the scalar kernel's carry-plane assertion, batch granular
        if (stray & np.where(active, ~_U64(0), _U64(0))[:, None]).any():
            raise AssertionError("carry bit outside the operand format")

    # -- independent lanes (fma_batch) ----------------------------------

    def fma_lanes(self, a, b, c):
        """``a + b * c`` per lane; no NaN/Inf lanes (caller routes those
        to the scalar kernel).  Returns CS cols."""
        n = b["cls"].shape[0]
        cu, c_nz = self._collapse(c)
        au, a_nz = self._collapse(a)
        p_nz = (b["cls"] == CS_NORMAL) & c_nz
        trivial = ~p_nz & ~a_nz
        S = np.zeros((n, self.D), np.uint64)
        C = np.zeros((n, self.D), np.uint64)
        pidx = np.flatnonzero(p_nz)
        if pidx.size:
            cv = cu[pidx]
            neg = b["sign"][pidx].astype(bool)
            if neg.any():
                cv = np.where(neg[:, None], self._neg(cv), cv)
            S[pidx], C[pidx] = self.products(cv, b["sig"][pidx])
        e_f = b["exp"] + c["exp"]
        u = e_f - (self.bsig - 1) - self.frac
        w = self._window(S, C, u, p_nz, au, a_nz, a["exp"])
        active = ~trivial & w["value_any"]
        self._check_stray(w["stray"], active)
        e_r = w["e_r"]
        overflow = active & (e_r > self.emax)
        underflow = active & (e_r < self.emin)
        normal = active & ~overflow & ~underflow
        cls = np.where(normal, CS_NORMAL,
                       np.where(overflow, CS_INF, CS_ZERO))
        vsign = w["vneg"].astype(np.int64)
        sh = np.where(overflow | underflow, vsign, 0)
        sh = np.where(trivial & (a["cls"] == CS_ZERO), a["sh"], sh)
        nm = np.where(normal, self.DMASK, _U64(0))[:, None]
        return {"cls": cls, "exp": np.where(normal, e_r, 0),
                "m": w["m"] & nm, "mc": w["mc"] & nm,
                "rs": np.where(normal, w["rs"], _U64(0)),
                "rc": np.where(normal, w["rc"], _U64(0)), "sh": sh}

    # -- lifts / lowers --------------------------------------------------

    def lift_cs_lanes(self, values, unit):
        """CSFloat/FPValue sequence -> (cols, special mask)."""
        from ..fma.formats import CSFloat

        n = len(values)
        cls = np.zeros(n, np.int64)
        exp = np.zeros(n, np.int64)
        sh = np.zeros(n, np.int64)
        m = np.zeros((n, self.MD), np.uint64)
        mc = np.zeros((n, self.MD), np.uint64)
        rs = np.zeros(n, np.uint64)
        rc = np.zeros(n, np.uint64)
        special = np.zeros(n, bool)
        BB = self.BB
        dm = (1 << BB) - 1
        kernel = self.kernel
        for i, v in enumerate(values):
            if isinstance(v, CSFloat):
                t = kernel.lift_cs(v)
            else:
                t = kernel.lift_ieee(v)
            cls[i] = t[0]
            if t[0] == CS_NORMAL:
                exp[i] = t[1]
                ms, mcs = t[2], t[3]
                for j in range(self.MD):
                    m[i, j] = (ms >> (BB * j)) & dm
                    mc[i, j] = (mcs >> (BB * j)) & dm
                rs[i] = t[4]
                rc[i] = t[5]
            else:
                sh[i] = t[6]
                special[i] = t[0] in (CS_INF, CS_NAN)
        return ({"cls": cls, "exp": exp, "m": m, "mc": mc, "rs": rs,
                 "rc": rc, "sh": sh}, special)

    def lift_b_lanes(self, values):
        """IEEE ``B`` sequence -> (cols, special mask)."""
        n = len(values)
        cls = np.zeros(n, np.int64)
        sign = np.zeros(n, np.uint64)
        exp = np.zeros(n, np.int64)
        sig = np.zeros(n, np.uint64)
        special = np.zeros(n, bool)
        for i, v in enumerate(values):
            t = self.kernel.lift_b(v)
            cls[i] = t[0]
            sign[i] = t[1]
            exp[i] = t[2]
            sig[i] = t[3]
            special[i] = t[0] in (CS_INF, CS_NAN)
        return ({"cls": cls, "sign": sign, "exp": exp, "sig": sig},
                special)

    def lower_lanes(self, cols):
        """CS cols -> list of internal kernel tuples."""
        out = []
        BB = self.BB
        cls = cols["cls"]
        exp = cols["exp"]
        m, mc = cols["m"], cols["mc"]
        rs, rc = cols["rs"], cols["rc"]
        sh = cols["sh"]
        for i in range(cls.shape[0]):
            ci = int(cls[i])
            if ci != CS_NORMAL:
                out.append((ci, 0, 0, 0, 0, 0, int(sh[i])))
                continue
            ms = mcs = 0
            for j in range(self.MD):
                ms |= int(m[i, j]) << (BB * j)
                mcs |= int(mc[i, j]) << (BB * j)
            out.append((CS_NORMAL, int(exp[i]), ms, mcs, int(rs[i]),
                        int(rc[i]), 0))
        return out

    # -- fused dot products, lanes in parallel --------------------------

    def _dot_inputs(self, a_lanes, b_lanes):
        """Stage the per-(step, lane) element planes for :meth:`dot_many`.

        Returns ``None`` for lanes the chain does not model (non-finite
        or non-binary64 elements) via the ``defer`` mask, plus padded
        ``(T, N)`` element arrays and the precomputed full-width product
        planes."""
        N = len(a_lanes)
        lens = np.array([len(a) for a in a_lanes], np.int64)
        T = int(lens.max()) if N else 0
        defer = np.zeros(N, bool)
        asig = np.zeros((T, N), np.uint64)
        asign = np.zeros((T, N), np.uint64)
        aexp = np.zeros((T, N), np.int64)
        bsig = np.zeros((T, N), np.uint64)
        bsign = np.zeros((T, N), np.uint64)
        bexp = np.zeros((T, N), np.int64)
        one = 1 << 52
        for i, (av, bv) in enumerate(zip(a_lanes, b_lanes)):
            for t, (ai, bi) in enumerate(zip(av, bv)):
                if (ai.fmt is not BINARY64 or bi.fmt is not BINARY64
                        or ai.cls not in (FpClass.NORMAL, FpClass.ZERO)
                        or bi.cls not in (FpClass.NORMAL, FpClass.ZERO)):
                    defer[i] = True
                    break
                if ai.cls is FpClass.NORMAL:
                    asig[t, i] = ai.fraction | one
                    asign[t, i] = ai.sign
                    aexp[t, i] = ai.biased_exponent - 1023
                if bi.cls is FpClass.NORMAL:
                    bsig[t, i] = bi.fraction | one
                    bsign[t, i] = bi.sign
                    bexp[t, i] = bi.biased_exponent - 1023
        return lens, T, defer, asig, asign, aexp, bsig, bsign, bexp

    def _dot_products(self, asig, asign, bsig, bsign):
        """Precompute every step's full-width product planes.

        In the dot chain the multiplicand is the exact lift of ``b_i``
        (its rounding block is zero, so the deferred decision is zero)
        and the multiplier significand is ``a_i`` -- both independent of
        the accumulator, which is what makes the products batchable."""
        T, N = asig.shape
        flat_p = ((asig != 0) & (bsig != 0)).ravel()
        S = np.zeros((T * N, self.D), np.uint64)
        C = np.zeros((T * N, self.D), np.uint64)
        idx = np.flatnonzero(flat_p)
        # chunked so each slice's staging + tree working set stays
        # L3-resident (at millions of products the gathers/scatters
        # otherwise stream from DRAM)
        CH = 128 * self.TILE
        for a0 in range(0, idx.size, CH):
            sl = idx[a0:a0 + CH]
            bs = bsig.ravel()[sl]
            # mag = bs << ieee_shift with a *constant* shift: each digit
            # is a fixed-shift slice of the 53-bit significand
            mag = np.zeros((sl.size, self.D), np.uint64)
            for j in range(self.D):
                sh = self.BB * j - self.ieee_shift
                if -self.BB < sh < 53:
                    v = bs >> _U64(sh) if sh >= 0 else bs << _U64(-sh)
                    mag[:, j] = v & self.DMASK
            neg = ((asign.ravel()[sl] ^ bsign.ravel()[sl])
                   .astype(bool))
            cv = np.where(neg[:, None], self._neg(mag), mag)
            S[sl], C[sl] = self.products(cv, asig.ravel()[sl])
        return (S.reshape(T, N, self.D), C.reshape(T, N, self.D),
                flat_p.reshape(T, N))

    def _dot_run(self, lens, defer, planes, scalar_cb):
        """Shared chain driver for :meth:`dot_many` / :meth:`dot_many_words`:
        products, the sequential window chain, and scalar redo of
        deferred/overflowed lanes via ``scalar_cb(i)``."""
        asig, asign, aexp, bsig, bsign, bexp = planes
        N = lens.shape[0]
        T = asig.shape[0]
        if T == 0:
            defer = np.ones(N, bool)    # all-empty dots: trivial scalar
        n_spec = int(defer.sum())
        out = [None] * N
        live = np.flatnonzero(~defer)
        if live.size and T:
            if defer.any():
                sub = (asig[:, live], asign[:, live], aexp[:, live],
                       bsig[:, live], bsign[:, live], bexp[:, live])
                asig, asign, aexp, bsig, bsign, bexp = sub
            S_all, C_all, p_all = self._dot_products(asig, asign, bsig,
                                                     bsign)
            u_all = (aexp + bexp - (self.bsig - 1) - self.frac)
            res = self._dot_chain(lens[live], S_all, C_all, p_all, u_all)
            tuples, dead = res
            for k, i in enumerate(live):
                if dead[k]:
                    defer[i] = True
                else:
                    out[i] = tuples[k]
        tm = _tm.ACTIVE
        if tm is not None:
            n_def = int(defer.sum())
            tm.count("batch.vector.lanes", N - n_def)
            if n_def:
                tm.count("batch.vector.deferred", n_def)
                if n_spec:
                    tm.count("batch.vector.deferred.special", n_spec)
                if n_def - n_spec:
                    tm.count("batch.vector.deferred.window-overflow",
                             n_def - n_spec)
        for i in np.flatnonzero(defer):
            out[i] = scalar_cb(int(i))
        return out

    def dot_many(self, a_lanes, b_lanes):
        """Independent fused dot products, one lane per row; returns a
        list of internal accumulator tuples, each bit-identical to
        :meth:`FastCSKernel.dot_tuple` on the same lane."""
        N = len(a_lanes)
        if N == 0:
            return []
        (lens, T, defer, asig, asign, aexp, bsig, bsign,
         bexp) = self._dot_inputs(a_lanes, b_lanes)
        return self._dot_run(
            lens, defer, (asig, asign, aexp, bsig, bsign, bexp),
            lambda i: self.kernel.dot_tuple(a_lanes[i], b_lanes[i]))

    def _word_planes(self, w, live):
        """Classify one ``(T, N)`` word plane: ``(sig, sign, exp,
        special)`` with subnormals flushed to signed zero (the loader
        semantics of ``repro.serve.protocol.word_to_fp``)."""
        be = (w >> _U64(52)) & _U64(0x7FF)
        nrm = (be != 0) & (be != _U64(0x7FF)) & live
        spec = (be == _U64(0x7FF)) & live
        z = _U64(0)
        sig = np.where(nrm, (w & self.fmask) | _U64(1 << 52), z)
        sign = np.where(nrm, w >> _U64(63), z)
        exp = np.where(nrm, be.astype(np.int64) - 1023, 0)
        return sig, sign, exp, spec

    def dot_many_words(self, a_words, b_words, lens=None):
        """:meth:`dot_many` over padded ``(T, N)`` binary64 bit-word
        planes (step-major -- the serve wire format, fully vectorized
        staging).  Lane ``i`` consumes the first ``lens[i]`` steps; the
        result is bit-identical to ``dot_tuple`` over ``word_to_fp`` of
        each element (subnormal encodings flush to signed zero, lanes
        containing Inf/NaN defer to the scalar kernel)."""
        a_words = np.ascontiguousarray(a_words, np.uint64)
        b_words = np.ascontiguousarray(b_words, np.uint64)
        if a_words.shape != b_words.shape or a_words.ndim != 2:
            raise ValueError("word planes must share one (T, N) shape")
        T, N = a_words.shape
        if N == 0:
            return []
        if lens is None:
            lens = np.full(N, T, np.int64)
        else:
            lens = np.asarray(lens, np.int64)
        step_live = np.arange(T, dtype=np.int64)[:, None] < lens[None, :]
        asig, asign, aexp, spec_a = self._word_planes(a_words, step_live)
        bsig, bsign, bexp, spec_b = self._word_planes(b_words, step_live)
        defer = (spec_a | spec_b).any(axis=0)

        def scalar_cb(i):
            from ..serve.protocol import word_to_fp
            L = int(lens[i])
            av = [word_to_fp(int(a_words[t, i])) for t in range(L)]
            bv = [word_to_fp(int(b_words[t, i])) for t in range(L)]
            return self.kernel.dot_tuple(av, bv)

        return self._dot_run(
            lens, defer, (asig, asign, aexp, bsig, bsign, bexp),
            scalar_cb)

    def _dot_chain(self, lens, S_all, C_all, p_all, u_all):
        """The sequential accumulator chain over vectorized lanes."""
        T, n = p_all.shape
        D, MD = self.D, self.MD
        au = np.zeros((n, D), np.uint64)
        a_nz = np.zeros(n, bool)
        a_zero_cls = np.ones(n, bool)       # accumulator class is ZERO
        a_sh = np.zeros(n, np.int64)
        a_exp = np.zeros(n, np.int64)
        dead = np.zeros(n, bool)            # overflowed -> scalar redo
        fin_cls = np.zeros(n, np.int64)
        fin_exp = np.zeros(n, np.int64)
        fin_sh = np.zeros(n, np.int64)
        fin_m = np.zeros((n, MD), np.uint64)
        fin_mc = np.zeros((n, MD), np.uint64)
        fin_rs = np.zeros(n, np.uint64)
        fin_rc = np.zeros(n, np.uint64)
        for t in range(T):
            upd = (t < lens) & ~dead
            if not upd.any():
                break
            p_nz = p_all[t] & upd
            w = self._window(S_all[t], C_all[t], u_all[t], p_nz, au,
                             a_nz, a_exp)
            trivial = ~p_nz & ~a_nz
            active = ~trivial & w["value_any"]
            self._check_stray(w["stray"], active & upd)
            e_r = w["e_r"]
            overflow = active & (e_r > self.emax)
            underflow = active & (e_r < self.emin)
            normal = active & ~overflow & ~underflow
            vsign = w["vneg"].astype(np.int64)
            dead |= overflow & upd
            # next accumulator state (a_used = signed mant sum + dec)
            vm = self._add(w["m"], w["mc"])
            dec = ((w["rs"] + w["rc"]) & self.DMASK) >> self.BB1u
            neg = (vm[:, MD - 1] >> self.BB1u).astype(bool)
            ws = self._ws(n)
            au_new = ws.aun
            au_new[:, :MD] = vm
            au_new[:, MD:] = np.where(neg, self.DMASK, _U64(0))[:, None]
            au_new[:, 0] += dec
            np.right_shift(au_new, self.BBu, out=ws.c1)
            np.bitwise_and(au_new, self.DMASK, out=au_new)
            self._carry_fix(au_new, ws.c1, ws.c2)
            sel = (upd & normal)[:, None]
            au = np.where(sel, au_new, au)
            au &= np.where(upd & ~normal, _U64(0), self.DMASK)[:, None]
            a_exp = np.where(upd & normal, e_r, np.where(upd, 0, a_exp))
            new_sh = np.where(trivial & a_zero_cls, a_sh,
                              np.where(underflow, vsign, 0))
            a_sh = np.where(upd, new_sh, a_sh)
            a_zero_cls = np.where(upd, ~normal, a_zero_cls)
            a_nz = np.where(upd, normal & (au_new != 0).any(axis=1),
                            a_nz)
            fin = upd & (t == lens - 1)
            if fin.any():
                fcls = np.where(normal, CS_NORMAL,
                                np.where(overflow, CS_INF, CS_ZERO))
                fin_cls = np.where(fin, fcls, fin_cls)
                fin_exp = np.where(fin & normal, e_r, fin_exp)
                fin_sh = np.where(fin, new_sh, fin_sh)
                fsel = (fin & normal)[:, None]
                fin_m = np.where(fsel, w["m"], fin_m)
                fin_mc = np.where(fsel, w["mc"], fin_mc)
                fin_rs = np.where(fin & normal, w["rs"], fin_rs)
                fin_rc = np.where(fin & normal, w["rc"], fin_rc)
        cols = {"cls": fin_cls, "exp": fin_exp, "m": fin_m,
                "mc": fin_mc, "rs": fin_rs, "rc": fin_rc, "sh": fin_sh}
        zero_len = lens == 0
        if zero_len.any():
            cols["cls"] = np.where(zero_len, CS_ZERO, cols["cls"])
        return self.lower_lanes(cols), dead

    # -- single-dot hybrid ----------------------------------------------

    def dot_hybrid(self, a, b):
        """One fused dot product: the products (the dominant cost of the
        tuple chain) run vectorized across all steps; the ~35-op window
        recurrence stays scalar via product injection into
        :meth:`FastCSKernel.fma`.  Bit-identical to ``dot_tuple``."""
        kernel = self.kernel
        res = self._dot_inputs([a], [b])
        lens, T, defer, asig, asign, aexp, bsig, bsign, bexp = res
        if defer[0] or T == 0:
            return kernel.dot_tuple(a, b)
        S_all, C_all, p_all = self._dot_products(asig, asign, bsig,
                                                 bsign)
        BB = self.BB
        D = self.D
        fma = kernel.fma
        acc = (CS_ZERO, 0, 0, 0, 0, 0, 0)
        mmask = kernel.mmask
        shift = kernel.ieee_shift
        one = 1 << 52
        # one wholesale ndarray -> Python-int conversion (tolist) beats
        # T*D np-scalar ``int()`` calls by a wide margin
        S_rows = S_all[:, 0, :].tolist()
        C_rows = C_all[:, 0, :].tolist()
        p_rows = p_all[:, 0].tolist()
        for t in range(T):
            ai, bi = a[t], b[t]
            if not p_rows[t]:
                # zero product: no tree to inject, the scalar branch is
                # already product-free
                acc = fma(acc, kernel.lift_b(ai), kernel.lift_ieee(bi))
                continue
            m = (bi.fraction | one) << shift
            if bi.sign:
                m = -m
            ct = (CS_NORMAL, bi.biased_exponent - 1023, m & mmask,
                  0, 0, 0, 0)
            bt = (CS_NORMAL, ai.sign, ai.biased_exponent - 1023,
                  ai.fraction | one)
            Sv = 0
            Cv = 0
            sr = S_rows[t]
            cr = C_rows[t]
            for j in range(D - 1, -1, -1):
                Sv = (Sv << BB) | sr[j]
                Cv = (Cv << BB) | cr[j]
            acc = fma(acc, bt, ct, None, (Sv, Cv))
        return acc

    # -- vectorized IEEE word codecs ------------------------------------

    def lift_words(self, words):
        """binary64 bit patterns -> (a/c cols, b cols, special mask).

        Bit-identical to ``word_to_fp`` + ``lift_ieee``/``lift_b``:
        subnormal encodings flush to signed zero, the CS lift of a
        normal is exact."""
        words = np.asarray(words, np.uint64)
        n = words.shape[0]
        sign = (words >> np.uint64(63)) & _ONE
        be = ((words >> np.uint64(52)) & _U64(0x7FF)).astype(np.int64)
        frac = words & self.fmask
        is_nan = (be == 0x7FF) & (frac != 0)
        is_inf = (be == 0x7FF) & (frac == 0)
        is_zero = be == 0                     # incl. flushed subnormals
        normal = ~is_nan & ~is_inf & ~is_zero
        sig = np.where(normal, frac | (_ONE << np.uint64(52)), _U64(0))
        exp = np.where(normal, be - 1023, 0)
        cls = np.where(normal, CS_NORMAL,
                       np.where(is_nan, CS_NAN,
                                np.where(is_inf, CS_INF, CS_ZERO)))
        # exact CS lift: m = +-(sig << ieee_shift) mod 2^mant_width
        mag = np.zeros((n, self.MD), np.uint64)
        for j in range(self.MD):
            sh = self.BB * j
            if sh < 64:
                mag[:, j] = (sig >> _U64(sh)) & self.DMASK
        mag = self._shift(mag, np.full(n, self.ieee_shift, np.int64))
        m = np.where((sign == 1)[:, None], self._neg(mag), mag)
        m &= np.where(normal, self.DMASK, _U64(0))[:, None]
        zdig = np.zeros((n, self.MD), np.uint64)
        zlane = np.zeros(n, np.uint64)
        cs = {"cls": cls, "exp": exp, "m": m, "mc": zdig, "rs": zlane,
              "rc": zlane.copy(), "sh": sign.astype(np.int64)}
        bcols = {"cls": cls, "sign": sign, "exp": exp, "sig": sig}
        return cs, bcols, (is_nan | is_inf)

    def pack_words(self, cols):
        """CS cols -> binary64 bit patterns; bit-identical to
        ``fp_to_word(cs_to_ieee(lower(t)))`` per lane.

        The integer pack/round twin of the Fraction-based converter:
        ``V = (mant_signed << block) + round_frac`` rounded to 53
        significand bits (nearest-even), overflow to infinity, flush to
        zero below the normal range."""
        n = cols["cls"].shape[0]
        VD, MD, BB = self.VD, self.MD, self.BB
        vm = self._add(cols["m"], cols["mc"])
        rfrac = (cols["rs"] + cols["rc"]) & self.DMASK
        neg = (vm[:, MD - 1] >> self.BB1u).astype(bool)
        V = np.zeros((n, VD), np.uint64)
        V[:, 0] = rfrac
        V[:, 1:MD + 1] = vm
        V[:, MD + 1] = np.where(neg, self.DMASK, _U64(0))
        mag = np.where(neg[:, None], self._neg(V), V)
        vzero = ~(mag != 0).any(axis=1)
        bl = self._bitlen(mag)
        e2 = cols["exp"] - self.frac - BB
        e = bl - 1 + e2
        drop = bl - 1 - self.fbits
        # sig = bits [drop, drop+53) of mag; drop <= 0 only when the
        # whole value fits below 53 bits (then shift left, exact)
        sig_digits = self._shift(mag, -np.maximum(drop, 0))
        sig = sig_digits[:, 0]
        for j in range(1, VD):
            sh = BB * j
            if sh >= 64:
                break
            sig |= sig_digits[:, j] << _U64(sh)
        sig = np.where(drop <= 0,
                       (sig << np.maximum(-drop, 0).astype(np.uint64))
                       & _U64((1 << 54) - 1), sig)
        # nearest-even increment from the round bit + sticky tail
        dm1 = drop - 1
        qd = np.clip(dm1 // BB, 0, VD - 1)
        rb = np.clip(dm1 - qd * BB, 0, BB - 1).astype(np.uint64)
        rbit = (np.take_along_axis(mag, qd[:, None].astype(np.intp),
                                   1)[:, 0] >> rb) & _ONE
        tail = np.clip(dm1[:, None] - np.arange(VD) * BB, 0,
                       BB).astype(np.uint64)
        sticky = ((mag & ((_ONE << tail) - _ONE)) != 0).any(axis=1)
        inc = (drop > 0) & (rbit == 1) & (sticky | ((sig & _ONE) == 1))
        sig = sig + inc.astype(np.uint64)
        wide = (sig >> np.uint64(53)) == 1
        sig = np.where(wide, sig >> _ONE, sig)
        e = np.where(wide, e + 1, e)
        be = e + 1023
        sign = neg.astype(np.uint64)
        word = ((sign << np.uint64(63))
                | (np.where(be > 0, be, 0).astype(np.uint64)
                   << np.uint64(52))
                | (sig & self.fmask))
        word = np.where(be > 0x7FE, (sign << np.uint64(63))
                        | _U64(0x7FF0000000000000), word)
        word = np.where(be < 1, sign << np.uint64(63), word)
        word = np.where(vzero, _U64(0), word)
        # non-normal classes
        cls = cols["cls"]
        shs = cols["sh"].astype(np.uint64) << np.uint64(63)
        word = np.where(cls == CS_ZERO, shs, word)
        word = np.where(cls == CS_INF, shs | _U64(0x7FF0000000000000),
                        word)
        word = np.where(cls == CS_NAN, _U64(0x7FF8000000000000), word)
        return word
