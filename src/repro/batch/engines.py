"""Drop-in accelerated :class:`~repro.fma.chain.FmaEngine` twins.

Every engine here reports the *same* ``name`` and produces *bit-identical*
results to its faithful counterpart in :mod:`repro.fma.chain`; only the
evaluation machinery changes (tuple-based CS kernel, integer IEEE
kernels).  :func:`accelerate_engine` maps a stock engine to its fast twin
and is what the ``use_batch=`` switches in the HLS simulator/executor
and the Fig. 14 sweep call; engines it does not recognize (subclasses
with overridden behaviour, already-fast engines) pass through untouched.
"""

from __future__ import annotations

import os
from typing import Any

from ..fma.chain import (CSFmaEngine, DiscreteMulAddEngine, FmaEngine,
                         FusedIeeeEngine)
from ..fma.convert import cs_to_ieee
from ..fma.csfma import CSFmaUnit
from ..fp.formats import BINARY64, FloatFormat
from ..fp.rounding import RoundingMode
from ..fp.value import FPValue
from ..telemetry import core as _tm
from .cskernel import FastCSKernel, kernel_for
from .ieee_fast import as_format_fast, fp_add_fast, fp_fma_fast, fp_mul_fast

__all__ = ["FastCSFmaEngine", "FastDiscreteMulAddEngine",
           "FastFusedIeeeEngine", "accelerate_engine",
           "BACKENDS", "BACKEND_ENV", "requested_backend",
           "resolve_backend", "vector_available"]

# ---------------------------------------------------------------------------
# Backend dispatch
#
# Three evaluation machineries produce bit-identical results:
#
# ``faithful``   the digit-level reference models (``use_batch=False``);
# ``tuple``      the scalar fast kernels (:class:`FastCSKernel` tuples,
#                integer IEEE kernels) -- always available;
# ``vector``     the NumPy lane engine (:mod:`repro.batch.vector`) --
#                whole batches as ``uint64`` column arrays; requires
#                NumPy and defers armed/special lanes to ``tuple``.
#
# ``auto`` resolves to ``vector`` when NumPy is importable and to
# ``tuple`` otherwise.  The env var ``REPRO_BATCH_BACKEND`` overrides
# the default wherever a caller did not pin an explicit backend.

#: recognised backend names, in resolution-priority order.
BACKENDS = ("auto", "vector", "tuple", "faithful")

#: environment override consulted when no explicit backend is passed.
BACKEND_ENV = "REPRO_BATCH_BACKEND"


def vector_available() -> bool:
    """True when the NumPy vector engine can be used in this process."""
    try:
        from .vector import HAVE_NUMPY
    except ImportError:  # pragma: no cover - numpy missing entirely
        return False
    return HAVE_NUMPY


def requested_backend(backend: "str | None" = None) -> str:
    """The pre-resolution backend request, validated.

    The explicit argument wins, else :data:`BACKEND_ENV`, else
    ``auto``.  A request of ``vector`` (argument or environment) is a
    *pin*: the lane engine runs regardless of batch-size heuristics,
    whereas ``auto`` lets each entry point pick the profitable engine
    per call.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or "auto"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend


def resolve_backend(backend: "str | None" = None) -> str:
    """Resolve a backend request to a concrete engine name.

    ``None`` consults :data:`BACKEND_ENV`, then falls back to ``auto``;
    ``auto`` picks ``vector`` when available, else ``tuple``.  The
    return value is always one of ``vector``/``tuple``/``faithful``.
    """
    backend = requested_backend(backend)
    if backend == "auto":
        backend = "vector" if vector_available() else "tuple"
    elif backend == "vector" and not vector_available():
        raise ValueError("vector backend requested but NumPy is "
                         "unavailable in this process")
    return backend


class FastCSFmaEngine(FmaEngine):
    """Fast twin of :class:`CSFmaEngine`: chain values travel as plain
    tuples through :class:`FastCSKernel`."""

    def __init__(self, unit: CSFmaUnit, kernel: FastCSKernel | None = None):
        self.unit = unit
        self.kernel = kernel if kernel is not None else kernel_for(unit)
        if self.kernel is None:
            raise ValueError("unit configuration has no fast kernel; "
                             "use the faithful CSFmaEngine")
        self.name = unit.name

    def lift(self, x: FPValue) -> Any:
        return self.kernel.lift_ieee(x)

    def fma(self, a: Any, b: FPValue, c: Any) -> Any:
        if _tm.ACTIVE is not None:
            _tm.ACTIVE.count(f"batch.engine.fma.{self.name}")
        k = self.kernel
        return k.fma(a, k.lift_b(b), c)

    def lower(self, r: Any) -> FPValue:
        return cs_to_ieee(self.kernel.lower(r))


class FastFusedIeeeEngine(FmaEngine):
    """Fast twin of :class:`FusedIeeeEngine` (classic FMA baseline)."""

    def __init__(self, fmt: FloatFormat = BINARY64,
                 mode: RoundingMode = RoundingMode.NEAREST_EVEN):
        self.fmt = fmt
        self.mode = mode
        self.name = f"classic-fma-{fmt.name}"

    def lift(self, x: FPValue) -> FPValue:
        return as_format_fast(x, self.fmt)

    def fma(self, a: FPValue, b: FPValue, c: FPValue) -> FPValue:
        return fp_fma_fast(a, as_format_fast(b, self.fmt), c,
                           fmt=self.fmt, mode=self.mode)

    def lower(self, r: FPValue) -> FPValue:
        return as_format_fast(r, BINARY64)


class FastDiscreteMulAddEngine(FmaEngine):
    """Fast twin of :class:`DiscreteMulAddEngine` (two roundings per
    multiply-add, optionally widened format)."""

    def __init__(self, fmt: FloatFormat = BINARY64,
                 mode: RoundingMode = RoundingMode.NEAREST_EVEN):
        self.fmt = fmt
        self.mode = mode
        self.name = f"discrete-{fmt.name}"

    def lift(self, x: FPValue) -> FPValue:
        return as_format_fast(x, self.fmt, self.mode)

    def fma(self, a: FPValue, b: FPValue, c: FPValue) -> FPValue:
        prod = fp_mul_fast(as_format_fast(b, self.fmt, self.mode), c,
                           fmt=self.fmt, mode=self.mode)
        return fp_add_fast(a, prod, fmt=self.fmt, mode=self.mode)

    def lower(self, r: FPValue) -> FPValue:
        return as_format_fast(r, BINARY64, self.mode)


def accelerate_engine(engine: FmaEngine | None) -> FmaEngine | None:
    """Fast twin of a stock engine (same name, bit-identical results).

    Exact-type matching keeps behaviour-overriding subclasses on the
    faithful path; strict-mode CS units (which raise on architectural
    invariant violations the kernel does not model) also pass through.
    ``None`` (graphs without carry-save nodes) stays ``None``.
    """
    if engine is None:
        return None
    t = type(engine)
    tm = _tm.ACTIVE
    if t is CSFmaEngine:
        if kernel_for(engine.unit) is None:
            return engine
        if tm is not None:
            tm.count(f"batch.engine.accelerated.{engine.name}")
        return FastCSFmaEngine(engine.unit)
    if t is FusedIeeeEngine:
        if tm is not None:
            tm.count(f"batch.engine.accelerated.{engine.name}")
        return FastFusedIeeeEngine(engine.fmt, engine.unit.mode)
    if t is DiscreteMulAddEngine:
        if tm is not None:
            tm.count(f"batch.engine.accelerated.{engine.name}")
        return FastDiscreteMulAddEngine(engine.fmt, engine.mode)
    return engine
