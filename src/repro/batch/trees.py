"""Specialized straight-line Wallace trees for the batched fast path.

The scalar multiplier (:func:`repro.cs.multiplier.multiply_mantissa` over
:func:`repro.cs.csa.reduce_rows`) reduces one partial-product row list
with a generic loop: list churn, per-compressor masking, one Python-level
``csa3`` call per 3:2 level.  The *shape* of that tree, however, depends
only on the number of rows -- which for a multiplier is the popcount of
the ``B`` significand -- so the batched engine compiles one straight-line
Python function per row count and reuses it for every operation.

Two exactness-preserving shortcuts make the generated code cheaper than
a faithful transcription while remaining bit-identical:

* **Shared sub-expressions.**  ``x ^ y`` appears in both the sum
  (``x ^ y ^ z``) and the majority carry
  (``(x & y) | ((x ^ y) & z)``), so each 3:2 level costs six big-int
  operations instead of nine.
* **Mask elision (upward information flow).**  Every compressor output
  bit ``j`` depends only on input bits ``<= j`` (the operators are
  ``&``, ``|``, ``^`` and ``<< 1``), so truncating each level to the
  window modulus commutes with computing the whole tree unmasked and
  truncating once at the end.  When the common multiplicand is
  non-negative and narrow enough that no intermediate can reach the
  modulus (checked via :func:`tree_depth`), the per-level masks are
  dropped entirely.

The generated functions take ``(c_eff, mask, positions)`` -- the wrapped
common multiplicand, the width mask and the ascending set-bit positions
of the ``B`` significand -- and return the ``(sum, carry)`` pair the
faithful ``reduce_rows`` would produce (masked variant: exactly; unmasked
variant: equal after a final ``& mask``).
"""

from __future__ import annotations

__all__ = ["tree_fn", "tree_depth", "tree_source", "clear_tree_cache"]

#: Compiled (row_count, masked) -> function cache.  Populated on demand;
#: compilation costs a few hundred microseconds per variant and is
#: amortized over the process lifetime.
_TREES: dict[tuple[int, bool], object] = {}

_DEPTHS: dict[int, int] = {}


def tree_depth(rows: int) -> int:
    """3:2 levels needed for ``rows`` partial products (memoized twin of
    :func:`repro.cs.csa.csa_tree_depth`)."""
    d = _DEPTHS.get(rows)
    if d is None:
        n, d = rows, 0
        while n > 2:
            n = 2 * (n // 3) + (n % 3)
            d += 1
        _DEPTHS[rows] = d
    return d


def tree_source(rows: int, masked: bool) -> tuple[str, str]:
    """Source text of the specialized reduction for ``rows`` rows.

    Replicates the exact combination order of
    :func:`repro.cs.csa.reduce_rows`: triples ``(i, i+1, i+2)`` per
    level, remainders appended after the compressed pairs.
    """
    name = f"_tree{rows}{'m' if masked else 'u'}"
    lines = [f"def {name}(c_eff, mask, P):"]
    for i in range(rows):
        row = f"(c_eff << P[{i}])"
        lines.append(f"    r{i} = {row} & mask" if masked
                     else f"    r{i} = {row}")
    work = [f"r{i}" for i in range(rows)]
    tmp = 0
    while len(work) > 2:
        nxt = []
        for i in range(0, len(work) - 2, 3):
            x, y, z = work[i], work[i + 1], work[i + 2]
            t, s, c = f"t{tmp}", f"s{tmp}", f"c{tmp}"
            tmp += 1
            lines.append(f"    {t} = {x} ^ {y}")
            if masked:
                lines.append(f"    {s} = ({t} ^ {z}) & mask")
                lines.append(
                    f"    {c} = ((({x} & {y}) | ({t} & {z})) << 1) & mask")
            else:
                lines.append(f"    {s} = {t} ^ {z}")
                lines.append(
                    f"    {c} = (({x} & {y}) | ({t} & {z})) << 1")
            nxt.append(s)
            nxt.append(c)
        rem = len(work) % 3
        if rem:
            nxt.extend(work[-rem:])
        work = nxt
    s_out = work[0] if work else "0"
    c_out = work[1] if len(work) > 1 else "0"
    lines.append(f"    return {s_out}, {c_out}")
    return "\n".join(lines), name


def tree_fn(rows: int, masked: bool):
    """Compiled specialized reduction (cached)."""
    key = (rows, masked)
    fn = _TREES.get(key)
    if fn is None:
        src, name = tree_source(rows, masked)
        ns: dict[str, object] = {}
        exec(compile(src, f"<csa-tree {rows}{'m' if masked else 'u'}>",
                     "exec"), ns)
        fn = ns[name]
        _TREES[key] = fn
    return fn


def clear_tree_cache() -> None:
    """Drop all compiled trees (mainly for tests)."""
    _TREES.clear()
