"""LRU memoization for the hardware-model lookup paths.

The experiment drivers (`fig13`, `table1`, `ablation`, ...) re-derive
identical synthesis reports on every call -- ``synthesize_by_name`` walks
the whole netlist/pipeline model each time even though its inputs (unit
name, frozen :class:`FpgaDevice`, target clock) and its output (frozen
:class:`SynthesisReport`) are immutable values.  The caches installed by
:mod:`repro.hw` (see ``device_by_name`` / ``synthesize_by_name``) are
plain :func:`functools.lru_cache` wrappers; this module centralizes
introspection and invalidation so tests and long-running services can
manage them.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["hw_cache_info", "clear_hw_caches", "cached_lookups"]


def cached_lookups() -> dict[str, Callable]:
    """The memoized hw lookup functions currently installed."""
    from ..hw.synthesis import synthesize_by_name
    from ..hw.technology import device_by_name

    return {
        "device_by_name": device_by_name,
        "synthesize_by_name": synthesize_by_name,
    }


def hw_cache_info() -> dict[str, object]:
    """``lru_cache`` statistics per memoized lookup (hits/misses/size)."""
    return {name: fn.cache_info()
            for name, fn in cached_lookups().items()}


def clear_hw_caches() -> None:
    """Invalidate every hw lookup cache (e.g. after monkeypatching a
    device model in tests)."""
    for fn in cached_lookups().values():
        fn.cache_clear()
