"""LRU memoization for the hardware-model lookup paths.

The experiment drivers (`fig13`, `table1`, `ablation`, ...) re-derive
identical synthesis reports on every call -- ``synthesize_by_name`` walks
the whole netlist/pipeline model each time even though its inputs (unit
name, frozen :class:`FpgaDevice`, target clock) and its output (frozen
:class:`SynthesisReport`) are immutable values.  The caches installed by
:mod:`repro.hw` (see ``device_by_name`` / ``synthesize_by_name``) are
plain :func:`functools.lru_cache` wrappers; this module centralizes
introspection and invalidation so tests and long-running services can
manage them.
"""

from __future__ import annotations

from typing import Callable

from ..telemetry import core as _tm

__all__ = ["hw_cache_info", "clear_hw_caches", "cached_lookups",
           "publish_cache_stats"]


def cached_lookups() -> dict[str, Callable]:
    """The memoized hw lookup functions currently installed."""
    from ..hw.synthesis import synthesize_by_name
    from ..hw.technology import device_by_name

    return {
        "device_by_name": device_by_name,
        "synthesize_by_name": synthesize_by_name,
    }


def hw_cache_info() -> dict[str, object]:
    """``lru_cache`` statistics per memoized lookup (hits/misses/size)."""
    return {name: fn.cache_info()
            for name, fn in cached_lookups().items()}


def clear_hw_caches() -> None:
    """Invalidate every hw lookup cache (e.g. after monkeypatching a
    device model in tests)."""
    for fn in cached_lookups().values():
        fn.cache_clear()


def publish_cache_stats() -> dict[str, object]:
    """Push the current memo statistics into the active telemetry.

    ``lru_cache`` counters are absolute per-process readings, so they
    publish as high-water *gauges* (merged by ``max``), which keeps
    repeated publishing idempotent and the parallel merge deterministic.
    Returns the raw :func:`hw_cache_info` either way.
    """
    stats = hw_cache_info()
    t = _tm.ACTIVE
    if t is not None:
        for name, info in stats.items():
            t.gauge(f"batch.memo.{name}.hits", info.hits)
            t.gauge(f"batch.memo.{name}.misses", info.misses)
            t.gauge(f"batch.memo.{name}.size", info.currsize)
    return stats
