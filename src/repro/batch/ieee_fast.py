"""Integer fast path for the discrete IEEE operators.

:mod:`repro.fp.ops` computes every result through exact ``Fraction``
arithmetic -- a clean specification, but each operation pays for
numerator/denominator gcd normalization.  Every finite operand is
``+- sig * 2^e`` with an integer significand, so the exact sum/product
is itself an integer scaled by a power of two; these kernels do the
whole computation on machine integers and round with the same decision
procedure as :func:`repro.fp.rounding.round_scaled`.

Bit-identical by construction and by differential test
(``tests/test_batch_differential.py``): special-value handling is copied
branch-for-branch from the reference operators, and rounding reproduces
``_round_nonneg_q`` for every :class:`RoundingMode`, including the
overflow-to-infinity and flush-to-zero edges of
:meth:`FPValue.from_fraction`.
"""

from __future__ import annotations

from ..fp.formats import FloatFormat
from ..fp.rounding import RoundingMode
from ..fp.value import FpClass, FPValue

__all__ = ["fp_add_fast", "fp_mul_fast", "fp_fma_fast", "as_format_fast",
           "round_to_format"]

_NORMAL = FpClass.NORMAL
_NEAREST = RoundingMode.NEAREST_EVEN
_HALF_AWAY = RoundingMode.HALF_AWAY
_TRUNC = RoundingMode.TRUNCATE
_TO_POS = RoundingMode.TO_POS_INF
_TO_NEG = RoundingMode.TO_NEG_INF


def round_to_format(sign: int, mag: int, e2: int, fmt: FloatFormat,
                    mode: RoundingMode) -> FPValue:
    """Round the exact value ``(-1)^sign * mag * 2^e2`` (``mag > 0``).

    Matches ``FPValue.from_fraction(Fraction(mag) * 2**e2, fmt, mode)``
    bit for bit: one correct rounding to ``fmt.significand_bits``, then
    overflow saturation to infinity and flush-to-zero below the normal
    range.
    """
    bl = mag.bit_length()
    e = bl - 1 + e2
    drop = bl - 1 - fmt.fraction_bits
    if drop <= 0:
        sig = mag << (-drop)
    else:
        sig = mag >> drop
        rem = mag & ((1 << drop) - 1)
        if rem:
            if mode is _NEAREST:
                half = 1 << (drop - 1)
                if rem > half or (rem == half and (sig & 1)):
                    sig += 1
            elif mode is _HALF_AWAY:
                if rem >> (drop - 1):
                    sig += 1
            elif mode is _TO_POS:
                # from_fraction rounds the *magnitude* (negative=False in
                # _round_nonneg_q), so TO_POS_INF bumps it regardless of
                # sign and TO_NEG_INF truncates it
                sig += 1
            # TO_NEG_INF / TRUNCATE: nothing
        if sig >> fmt.significand_bits:
            sig >>= 1
            e += 1
    be = e + fmt.bias
    if be > fmt.max_biased_exponent:
        return FPValue.inf(fmt, sign)
    if be < 1:
        return FPValue.zero(fmt, sign)   # flush-to-zero
    return FPValue(fmt, _NORMAL, sign, be, sig & fmt.fraction_mask)


def _sig_exp(x: FPValue) -> tuple[int, int]:
    """Finite ``x`` as ``(signed_sig, e2)`` with value ``sig * 2^e2``."""
    fmt = x.fmt
    sig = x.fraction | (1 << fmt.fraction_bits)
    if x.sign:
        sig = -sig
    return sig, x.biased_exponent - fmt.bias - fmt.fraction_bits


def fp_add_fast(a: FPValue, b: FPValue, *, fmt: FloatFormat | None = None,
                mode: RoundingMode = _NEAREST) -> FPValue:
    """Integer twin of :func:`repro.fp.ops.fp_add`."""
    out = fmt if fmt is not None else a.fmt
    acls = a.cls
    bcls = b.cls
    if acls is FpClass.NAN or bcls is FpClass.NAN:
        return FPValue.nan(out)
    if acls is FpClass.INF or bcls is FpClass.INF:
        if acls is FpClass.INF and bcls is FpClass.INF:
            if a.sign != b.sign:
                return FPValue.nan(out)
            return FPValue.inf(out, a.sign)
        return FPValue.inf(out, a.sign if acls is FpClass.INF else b.sign)
    sa, ea = _sig_exp(a) if acls is _NORMAL else (0, 0)
    sb, eb = _sig_exp(b) if bcls is _NORMAL else (0, 0)
    if sa == 0 and sb == 0:
        if a.sign == b.sign:           # both zero here
            return FPValue.zero(out, a.sign)
        return FPValue.zero(out, 1 if mode is _TO_NEG else 0)
    if sa == 0:
        m, e2 = sb, eb
    elif sb == 0:
        m, e2 = sa, ea
    else:
        e2 = ea if ea < eb else eb
        m = (sa << (ea - e2)) + (sb << (eb - e2))
    if m == 0:
        # exact cancellation of two non-zero values: the reference
        # takes the zero-sum sign rule (not the both-zero branch)
        return FPValue.zero(out, 1 if mode is _TO_NEG else 0)
    if m < 0:
        return round_to_format(1, -m, e2, out, mode)
    return round_to_format(0, m, e2, out, mode)


def fp_mul_fast(a: FPValue, b: FPValue, *, fmt: FloatFormat | None = None,
                mode: RoundingMode = _NEAREST) -> FPValue:
    """Integer twin of :func:`repro.fp.ops.fp_mul`."""
    out = fmt if fmt is not None else a.fmt
    acls = a.cls
    bcls = b.cls
    if acls is FpClass.NAN or bcls is FpClass.NAN:
        return FPValue.nan(out)
    sign = a.sign ^ b.sign
    if acls is FpClass.INF or bcls is FpClass.INF:
        if acls is FpClass.ZERO or bcls is FpClass.ZERO:
            return FPValue.nan(out)    # 0 * inf
        return FPValue.inf(out, sign)
    if acls is FpClass.ZERO or bcls is FpClass.ZERO:
        return FPValue.zero(out, sign)
    afmt = a.fmt
    bfmt = b.fmt
    mag = ((a.fraction | (1 << afmt.fraction_bits))
           * (b.fraction | (1 << bfmt.fraction_bits)))
    e2 = ((a.biased_exponent - afmt.bias - afmt.fraction_bits)
          + (b.biased_exponent - bfmt.bias - bfmt.fraction_bits))
    return round_to_format(sign, mag, e2, out, mode)


def fp_fma_fast(a: FPValue, b: FPValue, c: FPValue, *,
                fmt: FloatFormat | None = None,
                mode: RoundingMode = _NEAREST) -> FPValue:
    """Integer twin of :func:`repro.fp.ops.fp_fma` (``a + b * c``)."""
    out = fmt if fmt is not None else a.fmt
    acls = a.cls
    bcls = b.cls
    ccls = c.cls
    if (acls is FpClass.NAN or bcls is FpClass.NAN
            or ccls is FpClass.NAN):
        return FPValue.nan(out)
    psign = b.sign ^ c.sign
    if bcls is FpClass.INF or ccls is FpClass.INF:
        if bcls is FpClass.ZERO or ccls is FpClass.ZERO:
            return FPValue.nan(out)
        if acls is FpClass.INF and a.sign != psign:
            return FPValue.nan(out)
        return FPValue.inf(out, psign)
    if acls is FpClass.INF:
        return FPValue.inf(out, a.sign)
    sa, ea = _sig_exp(a) if acls is _NORMAL else (0, 0)
    if bcls is _NORMAL and ccls is _NORMAL:
        sb, eb = _sig_exp(b)
        sc, ec = _sig_exp(c)
        sp, ep = sb * sc, eb + ec
    else:
        sp, ep = 0, 0
    if sa == 0 and sp == 0:
        # exact zero result with a zero addend and a zero product
        if a.sign == psign:
            return FPValue.zero(out, a.sign)
        return FPValue.zero(out, 1 if mode is _TO_NEG else 0)
    if sa == 0:
        m, e2 = sp, ep
    elif sp == 0:
        m, e2 = sa, ea
    else:
        e2 = ea if ea < ep else ep
        m = (sa << (ea - e2)) + (sp << (ep - e2))
    if m == 0:
        return FPValue.zero(out, 1 if mode is _TO_NEG else 0)
    if m < 0:
        return round_to_format(1, -m, e2, out, mode)
    return round_to_format(0, m, e2, out, mode)


def as_format_fast(x: FPValue, fmt: FloatFormat,
                   mode: RoundingMode = _NEAREST) -> FPValue:
    """Integer twin of :func:`repro.fp.ops.as_format`."""
    cls = x.cls
    if cls is FpClass.NAN:
        return FPValue.nan(fmt)
    if cls is FpClass.INF:
        return FPValue.inf(fmt, x.sign)
    if cls is FpClass.ZERO:
        return FPValue.zero(fmt, x.sign)
    if x.fmt is fmt or x.fmt == fmt:
        return x
    mag = x.fraction | (1 << x.fmt.fraction_bits)
    e2 = x.biased_exponent - x.fmt.bias - x.fmt.fraction_bits
    return round_to_format(x.sign, mag, e2, fmt, mode)
