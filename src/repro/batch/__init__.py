"""Batched fast-path execution engine.

The faithful models in :mod:`repro.fma` and :mod:`repro.fp` evaluate one
digit-level operation at a time; this subsystem executes the same
arithmetic *bit-identically* but orders of magnitude cheaper, so the
solver/HLS/experiment layers can push thousands of FMAs through one
call:

* :func:`fma_batch` / :func:`dot_batch` / :func:`accumulate_batch` --
  batched entry points over the carry-save units and the [12] MAC;
* :func:`accelerate_engine` plus the ``Fast*Engine`` classes -- drop-in
  fast twins of the :class:`~repro.fma.chain.FmaEngine` family, used by
  the ``use_batch=`` switches in ``hls.simulate``/``hls.execute`` and
  ``experiments.fig14``;
* :class:`FastCSKernel` -- the tuple-based PCS/FCS datapath kernel
  (compiled Wallace trees, SWAR Carry Reduce, closed-form Zero Detect);
* the integer IEEE kernels (:func:`fp_add_fast` & co.) backing the
  classic/discrete engines;
* cache management for the memoized hardware lookups
  (:func:`hw_cache_info`, :func:`clear_hw_caches`).

The scalar paths remain the reference model; every fast component is
pinned to them by the differential harness in
``tests/test_batch_differential.py``.
"""

from .api import accumulate_batch, dot_batch, fma_batch
from .cskernel import FastCSKernel, bit_positions, kernel_for
from .engines import (BACKENDS, FastCSFmaEngine, FastDiscreteMulAddEngine,
                      FastFusedIeeeEngine, accelerate_engine,
                      resolve_backend, vector_available)
from .ieee_fast import (as_format_fast, fp_add_fast, fp_fma_fast,
                        fp_mul_fast, round_to_format)
from .memo import clear_hw_caches, hw_cache_info
from .trees import clear_tree_cache, tree_depth, tree_fn
from .vector import VectorCSKernel, clear_vector_cache, vector_kernel_for

__all__ = [
    "fma_batch", "dot_batch", "accumulate_batch",
    "accelerate_engine", "FastCSFmaEngine", "FastDiscreteMulAddEngine",
    "FastFusedIeeeEngine", "FastCSKernel", "kernel_for", "bit_positions",
    "BACKENDS", "resolve_backend", "vector_available",
    "VectorCSKernel", "vector_kernel_for", "clear_vector_cache",
    "fp_add_fast", "fp_mul_fast", "fp_fma_fast", "as_format_fast",
    "round_to_format",
    "hw_cache_info", "clear_hw_caches",
    "tree_fn", "tree_depth", "clear_tree_cache",
]
