"""The SEU campaign engine: inject, run differentially, classify.

One *injection* arms a single transient fault (one or two bit flips at
one :class:`~repro.faults.sites.FaultSite`), evaluates the affected
artifact, and classifies the outcome against the golden (fault-free)
result:

``masked``
    The IEEE-converted value of the faulted result equals the golden
    value.  Two sub-cases are tracked: the flip never changed any raw
    bit of the result (absorbed by downstream logic or by the carry-save
    representation's redundancy -- ``bit_diff`` counts the latter), or
    the site was never exercised on this operand (``landed`` is False).
``detected``
    Something *locally deployable* caught the fault: the evaluation
    raised (an operand-format validity check, a datapath assertion), or
    -- for structural sites -- an analysis rule (``NL0xx`` /
    ``SCH0xx``) or :meth:`Pipeline.validate` fired.  The rule ids are
    recorded so the report can cross-reference which analyzers earn
    their keep.
``sdc``
    Silent data corruption: the value (or structural metric) changed
    and nothing local noticed.

Separately, ``differential_catch`` records whether the repo's bit-exact
differential harness *would* flag the outcome (any raw-field
difference) -- the campaign's measure of how much extra coverage the
conformance sweep buys over always-on checks.

Determinism is absolute: the injection plan, operand pools and
classifications are pure functions of the seed, the report contains no
timestamps or timings, and aggregation is fully sorted -- two runs with
the same seed produce byte-identical JSON, including runs resumed from
a JSONL checkpoint and parallel runs merged by injection id.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass
from pathlib import Path

from ..conformance.workunits import STRATA, draw_triple
from ..fma.convert import cs_to_ieee, ieee_to_cs
from ..fma.formats import CSFloat
from ..probes import Arm, armed
from ..telemetry import core as _tm
from .resilient import RetryPolicy, run_resilient
from .sites import (SITE_CLASSES, FaultSite, flip_word, make_transform,
                    params_for_unit, select_sites)

__all__ = ["CampaignConfig", "plan_injections", "run_injection",
           "run_campaign", "aggregate", "render_text",
           "load_checkpoint", "OUTCOMES"]

OUTCOMES = ("masked", "detected", "sdc")


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign, and nothing else."""

    seed: int = 0
    injections: int = 500
    operands: int = 24        # operand-pool size per unit flavor
    multi_bit: float = 0.15   # fraction of injections flipping two bits
    sites: tuple[str, ...] = ()
    classes: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        d = asdict(self)
        d["sites"] = list(self.sites)
        d["classes"] = list(self.classes)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignConfig":
        d = dict(d)
        d["sites"] = tuple(d.get("sites", ()))
        d["classes"] = tuple(d.get("classes", ()))
        return cls(**d)


def plan_injections(config: CampaignConfig) -> list[dict]:
    """The campaign's full injection plan -- pure in the config.

    Sites are covered round-robin (every site class appears in any
    campaign larger than the site list); bit positions and operand
    indices come from one seeded stream.
    """
    sites = select_sites(config.sites, config.classes)
    if not sites:
        raise ValueError("site/class filters selected no fault sites")
    rng = random.Random(f"{config.seed}:plan")
    plan = []
    for i in range(config.injections):
        site = sites[i % len(sites)]
        nbits = 2 if rng.random() < config.multi_bit else 1
        fracs = tuple(rng.random() for _ in range(nbits))
        plan.append({"id": i, "site": site.name, "fracs": fracs,
                     "operand": rng.randrange(config.operands)})
    return plan


# ---------------------------------------------------------------------------
# operand pools and golden results (memoized per process)

#: strata for campaign operands: the conformance sweep's, minus the
#: IEEE specials (which short-circuit before any probe fires and would
#: only dilute the landed count)
_CAMPAIGN_STRATA = tuple(s for s in STRATA if s != "specials")

_POOLS: dict = {}
_GOLDEN: dict = {}
_SCALAR_UNITS: dict = {}
_STRUCT_MEMO: dict = {}


def _pool(seed: int, unit: str, n: int) -> list[tuple[int, int, int]]:
    key = (seed, unit, n)
    pool = _POOLS.get(key)
    if pool is None:
        rng = random.Random(f"{seed}:operands:{unit}")
        pool = [draw_triple(rng, _CAMPAIGN_STRATA[k % len(_CAMPAIGN_STRATA)])
                for k in range(n)]
        _POOLS[key] = pool
    return pool


def _scalar_unit(unit: str):
    u = _SCALAR_UNITS.get(unit)
    if u is None:
        from ..fma.csfma import FcsFmaUnit, PcsFmaUnit

        u = PcsFmaUnit() if unit == "pcs" else FcsFmaUnit()
        _SCALAR_UNITS[unit] = u
    return u


def _from_bits(word: int):
    from ..conformance.checks import from_bits

    return from_bits(word)


def _scalar_operands(unit: str, triple: tuple[int, int, int]):
    params = params_for_unit(unit)
    a, b, c = (_from_bits(w) for w in triple)
    return ieee_to_cs(a, params), b, ieee_to_cs(c, params)


def _golden_scalar(config: CampaignConfig, unit: str, idx: int) -> CSFloat:
    key = ("scalar", config.seed, config.operands, unit, idx)
    g = _GOLDEN.get(key)
    if g is None:
        triple = _pool(config.seed, unit, config.operands)[idx]
        a, b, c = _scalar_operands(unit, triple)
        g = _scalar_unit(unit).fma(a, b, c)
        _GOLDEN[key] = g
    return g


def _batch_inputs(unit: str, triple: tuple[int, int, int]):
    from ..batch.cskernel import kernel_for

    kernel = kernel_for(_scalar_unit(unit))
    a, b, c = (_from_bits(w) for w in triple)
    return kernel, kernel.lift_ieee(a), kernel.lift_b(b), \
        kernel.lift_ieee(c)


def _golden_batch(config: CampaignConfig, unit: str, idx: int) -> tuple:
    key = ("batch", config.seed, config.operands, unit, idx)
    g = _GOLDEN.get(key)
    if g is None:
        triple = _pool(config.seed, unit, config.operands)[idx]
        kernel, at, bt, ct = _batch_inputs(unit, triple)
        g = kernel.fma(at, bt, ct)
        _GOLDEN[key] = g
    return g


# ---------------------------------------------------------------------------
# outcome classification


def _same_ieee(x, y) -> bool:
    if x.cls is not y.cls or x.sign != y.sign:
        return False
    if x.is_normal:
        return (x.biased_exponent == y.biased_exponent
                and x.fraction == y.fraction)
    return True


def _same_cs(x: CSFloat, y: CSFloat) -> bool:
    return (x.cls == y.cls and x.exp == y.exp
            and x.sign_hint == y.sign_hint
            and x.mant.sum == y.mant.sum and x.mant.carry == y.mant.carry
            and x.round_data.sum == y.round_data.sum
            and x.round_data.carry == y.round_data.carry)


def _classify_cs(golden: CSFloat, got: CSFloat, landed: bool) -> dict:
    if _same_cs(golden, got):
        return {"outcome": "masked", "detail": "identical",
                "landed": landed, "bit_diff": False,
                "differential_catch": False}
    if _same_ieee(cs_to_ieee(golden), cs_to_ieee(got)):
        # raw CS fields differ but the value is intact: the flip was
        # absorbed by the representation's redundancy
        return {"outcome": "masked", "detail": "representation",
                "landed": landed, "bit_diff": True,
                "differential_catch": True}
    return {"outcome": "sdc", "detail": "value-changed",
            "landed": landed, "bit_diff": True,
            "differential_catch": True}


def _detected(kind: str, landed: bool, rules: list[str] | None = None,
              caught: bool = True) -> dict:
    return {"outcome": "detected", "detail": kind, "landed": landed,
            "bit_diff": True, "differential_catch": caught,
            "rules": rules or []}


# ---------------------------------------------------------------------------
# per-kind evaluation


def _eval_data(config: CampaignConfig, site: FaultSite,
               inj: dict) -> dict:
    params = params_for_unit(site.unit)
    triple = _pool(config.seed, site.unit, config.operands)[inj["operand"]]
    arm = Arm(make_transform(site, tuple(inj["fracs"]), params))
    if site.site_class == "batch":
        golden = _golden_batch(config, site.unit, inj["operand"])
        kernel, at, bt, ct = _batch_inputs(site.unit, triple)
        try:
            with armed({site.tag: arm}):
                got = kernel.fma(at, bt, ct)
        except Exception as exc:
            return _detected(f"exception:{type(exc).__name__}",
                             arm.hits > 0)
        landed = arm.hits > 0
        if got == golden:
            return {"outcome": "masked", "detail": "identical",
                    "landed": landed, "bit_diff": False,
                    "differential_catch": False}
        try:
            return _classify_cs(kernel.lower(golden), kernel.lower(got),
                                landed)
        except Exception as exc:
            # the faulted tuple violates the operand format; the format
            # boundary (CSNumber validation) is the detector
            return _detected(f"format:{type(exc).__name__}", landed)
    golden = _golden_scalar(config, site.unit, inj["operand"])
    a, b, c = _scalar_operands(site.unit, triple)
    try:
        with armed({site.tag: arm}):
            got = _scalar_unit(site.unit).fma(a, b, c)
    except Exception as exc:
        return _detected(f"exception:{type(exc).__name__}", arm.hits > 0)
    return _classify_cs(golden, got, arm.hits > 0)


def _eval_operand(config: CampaignConfig, site: FaultSite,
                  inj: dict) -> dict:
    params = params_for_unit(site.unit)
    triple = _pool(config.seed, site.unit, config.operands)[inj["operand"]]
    golden = _golden_scalar(config, site.unit, inj["operand"])
    a, b, c = _scalar_operands(site.unit, triple)
    mask = (1 << (params.operand_bits + 2)) - 1
    w = flip_word(mask, tuple(inj["fracs"]))
    corrupt_a = inj["operand"] % 2 == 0
    try:
        faulted = CSFloat.unpack((a if corrupt_a else c).pack() ^ w,
                                 params)
    except Exception as exc:
        # the flip produced an invalid operand word; the format's
        # validity check on the receiving unit is the detector
        return _detected(f"format:{type(exc).__name__}", True)
    try:
        got = _scalar_unit(site.unit).fma(
            faulted if corrupt_a else a, b, c if corrupt_a else faulted)
    except Exception as exc:
        return _detected(f"exception:{type(exc).__name__}", True)
    return _classify_cs(golden, got, True)


def _rnd(site: FaultSite, inj: dict) -> random.Random:
    """Derived RNG for structural choices (component, field, mode)."""
    return random.Random(f"{site.name}:{inj['fracs']!r}:{inj['operand']}")


_NETLIST_FIELDS = ("luts", "reg_bits", "toggle_bits", "dsps",
                   "window_wires")


def _eval_netlist(site: FaultSite, inj: dict) -> dict:
    import dataclasses

    from ..analysis.netlist_lint import lint_design
    from ..hw.netlist import UnitDesign, design_by_name
    from ..hw.technology import VIRTEX6

    rnd = _rnd(site, inj)
    design = design_by_name(site.unit, VIRTEX6)
    base_key = ("netlist-baseline", site.unit)
    baseline = _STRUCT_MEMO.get(base_key)
    if baseline is None:
        baseline = frozenset(lint_design(design, VIRTEX6).rule_ids())
        _STRUCT_MEMO[base_key] = baseline
    field = _NETLIST_FIELDS[rnd.randrange(len(_NETLIST_FIELDS))]
    bit = rnd.randrange(12)
    if field == "window_wires":
        perturbed = UnitDesign(design.name, list(design.path),
                               list(design.offpath), design.fixed_cycles,
                               list(design.subunits),
                               design.window_wires ^ (1 << bit))
    else:
        comps = design.all_components()
        idx = rnd.randrange(len(comps))
        comp = dataclasses.replace(
            comps[idx], **{field: getattr(comps[idx], field) ^ (1 << bit)})
        path, offpath = list(design.path), list(design.offpath)
        if idx < len(path):
            path[idx] = comp
        else:
            offpath[idx - len(path)] = comp
        perturbed = UnitDesign(design.name, path, offpath,
                               design.fixed_cycles, list(design.subunits),
                               design.window_wires)
    report = lint_design(perturbed, VIRTEX6)
    fired = sorted(set(report.rule_ids()) - baseline)
    if fired:
        return _detected("rules:" + ",".join(fired), True, fired)
    if (perturbed.luts, perturbed.dsps) != (design.luts, design.dsps):
        detail = f"silent-structural:{field}"
    else:
        # only the activity model sees the field (e.g. toggle_bits):
        # still a silent corruption of a downstream metric
        detail = f"silent-metric:{field}"
    return {"outcome": "sdc", "detail": detail, "landed": True,
            "bit_diff": True, "differential_catch": False}


def _eval_pipeline(site: FaultSite, inj: dict) -> dict:
    from ..hw.netlist import design_by_name
    from ..hw.pipeline import Pipeline, cut_pipeline
    from ..hw.technology import VIRTEX6

    target = 200.0
    rnd = _rnd(site, inj)
    key = ("pipeline-golden", site.unit)
    memo = _STRUCT_MEMO.get(key)
    if memo is None:
        design = design_by_name(site.unit, VIRTEX6)
        memo = (design, cut_pipeline(design.path, VIRTEX6, target))
        _STRUCT_MEMO[key] = memo
    design, golden = memo
    stages = [list(s) for s in golden.stages]
    mode = rnd.randrange(4)
    if mode == 0 and len(stages) > 1:        # move a cut point
        b = rnd.randrange(1, len(stages))
        if rnd.random() < 0.5 and len(stages[b - 1]) > 0:
            stages[b].insert(0, stages[b - 1].pop())
        elif stages[b]:
            stages[b - 1].append(stages[b].pop(0))
    elif mode == 1:                          # drop a latched component
        s = rnd.randrange(len(stages))
        if stages[s]:
            stages[s].pop(rnd.randrange(len(stages[s])))
    elif mode == 2:                          # duplicate a register
        s = rnd.randrange(len(stages))
        if stages[s]:
            stages[s].append(stages[s][rnd.randrange(len(stages[s]))])
    else:                                    # cross-stage swap
        flat = [(i, j) for i, st in enumerate(stages)
                for j in range(len(st))]
        if len(flat) > 1:
            (i1, j1) = flat[rnd.randrange(len(flat))]
            (i2, j2) = flat[rnd.randrange(len(flat))]
            stages[i1][j1], stages[i2][j2] = \
                stages[i2][j2], stages[i1][j1]
    corrupted = Pipeline(stages=stages, device=golden.device)
    problems = corrupted.validate(design.path, target_mhz=target)
    if problems:
        return _detected("validate:" + problems[0], True,
                         ["PIPE-VALIDATE"])
    same = (corrupted.cycles == golden.cycles
            and corrupted.stage_delays == golden.stage_delays)
    if same:
        return {"outcome": "masked", "detail": "identical",
                "landed": True, "bit_diff": False,
                "differential_catch": False}
    return {"outcome": "sdc", "detail": "silent-repartition",
            "landed": True, "bit_diff": True,
            "differential_catch": False}


def _eval_schedule(site: FaultSite, inj: dict) -> dict:
    from ..analysis.schedule_check import check_schedule
    from ..hls.schedule import Schedule

    rnd = _rnd(site, inj)
    key = ("schedule-golden", site.unit)
    golden = _STRUCT_MEMO.get(key)
    if golden is None:
        from ..analysis.targets import _FMA_LIMIT, graph_targets
        from ..hls.fma_pass import run_fma_insertion
        from ..hls.operators import default_library
        from ..hls.schedule import list_schedule
        from ..hw.technology import VIRTEX6

        graph = graph_targets()[site.unit]()
        library = default_library(VIRTEX6, fma_flavor="pcs",
                                  fma_limit=_FMA_LIMIT)
        run_fma_insertion(graph, library)
        golden = list_schedule(graph, library)
        _STRUCT_MEMO[key] = golden
    nodes = sorted(golden.start)
    nid = nodes[rnd.randrange(len(nodes))]
    start = dict(golden.start)
    start[nid] ^= 1 << rnd.randrange(4)
    corrupted = Schedule(start, golden.graph, golden.library)
    report = check_schedule(corrupted, target=f"faulted:{site.unit}")
    fired = sorted(report.rule_ids())
    if fired:
        return _detected("rules:" + ",".join(fired), True, fired)
    return {"outcome": "sdc",
            "detail": ("silent-slack" if corrupted.length == golden.length
                       else "silent-length"),
            "landed": True, "bit_diff": True,
            "differential_catch": False}


# ---------------------------------------------------------------------------
# one injection, the campaign loop, checkpointing


def run_injection(config: CampaignConfig, site: FaultSite,
                  inj: dict) -> dict:
    """Evaluate one planned injection and return its outcome record."""
    if site.kind == "data":
        out = _eval_data(config, site, inj)
    elif site.kind == "operand":
        out = _eval_operand(config, site, inj)
    elif site.kind == "netlist":
        out = _eval_netlist(site, inj)
    elif site.kind == "pipeline":
        out = _eval_pipeline(site, inj)
    elif site.kind == "schedule":
        out = _eval_schedule(site, inj)
    else:  # pragma: no cover - registry invariant
        raise ValueError(f"unknown site kind {site.kind!r}")
    record = {
        "id": inj["id"],
        "site": site.name,
        "class": site.site_class,
        "stage": site.stage,
        "bits": len(inj["fracs"]),
        "rules": out.pop("rules", []),
    }
    record.update(out)
    return record


def _campaign_entry(payload: dict) -> list[dict]:
    """Picklable work unit: evaluate one contiguous plan slice."""
    config = CampaignConfig.from_dict(payload["config"])
    plan = plan_injections(config)
    from .sites import SITES

    return [run_injection(config, SITES[inj["site"]], inj)
            for inj in plan[payload["lo"]:payload["hi"]]]


def load_checkpoint(path: "str | Path") -> dict[int, dict]:
    """Read a JSONL checkpoint; torn trailing lines are ignored (the
    process may have died mid-write)."""
    records: dict[int, dict] = {}
    p = Path(path)
    if not p.exists():
        return records
    with p.open() as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                records[rec["id"]] = rec
            except (json.JSONDecodeError, KeyError, TypeError):
                continue
    return records


def run_campaign(config: CampaignConfig, *, workers: int = 1,
                 checkpoint: "str | Path | None" = None,
                 resume: bool = False, chunk: int = 50,
                 timeout_s: float | None = 120.0,
                 max_attempts: int = 3) -> dict:
    """Run the campaign and return the aggregated report.

    Serial by default; ``workers > 1`` fans plan slices across the
    resilient executor (:func:`repro.faults.resilient.run_resilient`)
    and merges records by injection id, so the report is identical to
    the serial run's.  With ``checkpoint`` every record is appended to
    a JSONL file as it completes; ``resume=True`` skips injection ids
    already present (the resumed report is byte-identical to an
    uninterrupted one).
    """
    plan = plan_injections(config)
    sites = select_sites(config.sites, config.classes)
    done: dict[int, dict] = {}
    ckpt_file = None
    if checkpoint is not None:
        if resume:
            done = {i: r for i, r in load_checkpoint(checkpoint).items()
                    if i < len(plan)}
        mode = "a" if resume else "w"
        ckpt_file = open(checkpoint, mode)

    todo = [inj for inj in plan if inj["id"] not in done]
    resilience = None
    try:
        if workers > 1 and len(todo) > chunk:
            # contiguous id ranges over the *pending* plan tail
            ids = [inj["id"] for inj in todo]
            payloads = []
            i = 0
            while i < len(ids):
                j = i
                while (j + 1 < len(ids) and j + 1 - i < chunk
                       and ids[j + 1] == ids[j] + 1):
                    j += 1
                payloads.append({"config": config.to_dict(),
                                 "lo": ids[i], "hi": ids[j] + 1})
                i = j + 1
            run = run_resilient(
                _campaign_entry, payloads, workers=workers,
                timeout_s=timeout_s,
                retry=RetryPolicy(max_attempts=max_attempts),
                rng_seed=config.seed)
            resilience = run.summary()
            leftovers = []
            for res, payload in zip(run.results, payloads):
                if res.ok:
                    for rec in res.value:
                        done[rec["id"]] = rec
                        if ckpt_file is not None:
                            _append_checkpoint(ckpt_file, rec)
                else:
                    leftovers.extend(range(payload["lo"], payload["hi"]))
            # a permanently failed slice is finished inline: the
            # campaign never loses injections to pool failures
            for i in leftovers:
                inj = plan[i]
                rec = run_injection(config, _site_of(sites, inj), inj)
                done[rec["id"]] = rec
                if ckpt_file is not None:
                    _append_checkpoint(ckpt_file, rec)
        else:
            for inj in todo:
                rec = run_injection(config, _site_of(sites, inj), inj)
                done[rec["id"]] = rec
                if ckpt_file is not None:
                    _append_checkpoint(ckpt_file, rec)
    finally:
        if ckpt_file is not None:
            ckpt_file.close()

    records = [done[i] for i in sorted(done)]
    report = aggregate(config, records, sites)
    if resilience is not None:
        report["resilience"] = resilience
    tm = _tm.ACTIVE
    if tm is not None:
        tm.count("faults.campaigns")
        tm.count("faults.injections", len(records))
        for rec in records:
            tm.count(f"faults.outcome.{rec['outcome']}")
            if rec.get("landed"):
                tm.count("faults.landed")
        if resilience is not None:
            tm.count("faults.retries", resilience["retries"])
            tm.count("faults.timeouts", resilience["timeouts"])
    return report


def _site_of(sites: list[FaultSite], inj: dict) -> FaultSite:
    return sites[inj["id"] % len(sites)]


def _append_checkpoint(f, record: dict) -> None:
    f.write(json.dumps(record, sort_keys=True) + "\n")
    f.flush()


# ---------------------------------------------------------------------------
# aggregation and rendering


def _bucket() -> dict:
    return {"injections": 0, "masked": 0, "detected": 0, "sdc": 0,
            "landed": 0, "bit_diff": 0, "differential_catch": 0}


def _feed(bucket: dict, rec: dict) -> None:
    bucket["injections"] += 1
    bucket[rec["outcome"]] += 1
    bucket["landed"] += 1 if rec["landed"] else 0
    bucket["bit_diff"] += 1 if rec["bit_diff"] else 0
    bucket["differential_catch"] += 1 if rec["differential_catch"] else 0


def _rates(bucket: dict) -> dict:
    n = bucket["injections"]
    landed = bucket["landed"]
    bucket["sdc_rate"] = round(bucket["sdc"] / n, 4) if n else 0.0
    bucket["sdc_rate_landed"] = (round(bucket["sdc"] / landed, 4)
                                 if landed else 0.0)
    return bucket


def aggregate(config: CampaignConfig, records: list[dict],
              sites: list[FaultSite]) -> dict:
    """Deterministic campaign report (no timestamps, sorted keys)."""
    by_site: dict[str, dict] = {}
    by_class: dict[str, dict] = {}
    by_stage: dict[str, dict] = {}
    rules: dict[str, int] = {}
    totals = _bucket()
    site_meta = {s.name: s for s in sites}
    for rec in records:
        _feed(totals, rec)
        _feed(by_site.setdefault(rec["site"], _bucket()), rec)
        _feed(by_class.setdefault(rec["class"], _bucket()), rec)
        _feed(by_stage.setdefault(rec["stage"], _bucket()), rec)
        for rule in rec.get("rules", []):
            rules[rule] = rules.get(rule, 0) + 1
    site_table = {}
    for name in sorted(by_site):
        meta = site_meta.get(name)
        entry = _rates(by_site[name])
        if meta is not None:
            entry["class"] = meta.site_class
            entry["stage"] = meta.stage
        site_table[name] = entry
    return {
        "config": config.to_dict(),
        "totals": _rates(totals),
        "classes": {c: _rates(by_class[c]) for c in SITE_CLASSES
                    if c in by_class},
        "stages": {s: _rates(by_stage[s]) for s in sorted(by_stage)},
        "sites": site_table,
        "rules": dict(sorted(rules.items())),
    }


def render_text(report: dict) -> str:
    """Human-readable campaign summary with the SDC-rate table."""
    t = report["totals"]
    rows = [
        f"SEU campaign: {t['injections']} injections "
        f"(seed {report['config']['seed']})",
        f"  masked   {t['masked']:>6}   "
        f"(of which representation-absorbed: {t['bit_diff'] - t['sdc']})",
        f"  detected {t['detected']:>6}",
        f"  SDC      {t['sdc']:>6}   rate {t['sdc_rate']:.4f} "
        f"({t['sdc_rate_landed']:.4f} of landed)",
        f"  differential harness would catch "
        f"{t['differential_catch']}/{t['injections']}",
        "",
        "site class    inject  masked  detect     sdc  sdc-rate  landed",
        "----------    ------  ------  ------  ------  --------  ------",
    ]
    for cls, b in report["classes"].items():
        rows.append(f"{cls:<12}  {b['injections']:>6}  {b['masked']:>6}  "
                    f"{b['detected']:>6}  {b['sdc']:>6}  "
                    f"{b['sdc_rate']:>8.4f}  {b['landed']:>6}")
    rows.append("")
    rows.append("per-site coverage:")
    for name, b in report["sites"].items():
        rows.append(f"  {name:<26} {b['injections']:>5} inj  "
                    f"m/d/s {b['masked']:>4}/{b['detected']:>4}/"
                    f"{b['sdc']:>4}  sdc-rate {b['sdc_rate']:.4f}")
    if report["rules"]:
        fired = ", ".join(f"{r}x{n}" for r, n in report["rules"].items())
        rows.append("")
        rows.append(f"analysis rules fired: {fired}")
    res = report.get("resilience")
    if res:
        rows.append("")
        rows.append(f"resilience: {res['retries']} retries, "
                    f"{res['timeouts']} timeouts, "
                    f"{res['pool_respawns']} pool respawns"
                    + (", serial fallback" if res["serial_fallback"]
                       else ""))
    return "\n".join(rows)
