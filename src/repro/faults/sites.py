"""Named fault sites of the SEU campaign.

A *fault site* is an architecturally named register or wire where a
single-event upset can land.  The registry below spans every datapath
of the repo plus its structural artifacts:

* **data sites** flip bits of live signals through the probe points of
  :mod:`repro.probes` -- the multiplier's CS product rows, the adder
  window's sum/carry planes, the PCS Carry Reduce output (carries only
  at the format's legal every-11th-bit positions), the Zero Detector's
  block-class input, the FCS unit's LZA anticipation inputs, the
  result mantissa slice, and the batch engine's SWAR lanes;
* **operand sites** flip bits of the packed 192-bit PCS (or FCS)
  operand word on the bus between fused operators -- exercising the
  format's own validity checks (exponent range, exception-class
  wires);
* **structural sites** corrupt configuration state instead of data:
  netlist component cost fields (detected -- or not -- by the
  ``NL0xx`` lint rules), pipeline stage-register partitions (detected
  by :meth:`repro.hw.pipeline.Pipeline.validate`), and schedule start
  times (detected by the ``SCH0xx`` checker).

Bit positions are chosen by *fraction*: the campaign draws floats in
``[0, 1)`` and the transform maps each onto the site's legal-position
list at fire time.  This keeps the plan deterministic under a seed
while adapting to signals whose width is only known at runtime (the
multiplier's output modulus depends on the window anchoring).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..cs.csnumber import CSNumber
from ..fma.formats import FCS_PARAMS, PCS_PARAMS, CSFmaParams

__all__ = ["FaultSite", "SITES", "SITE_CLASSES", "select_sites",
           "make_transform", "flip_word", "params_for_unit"]


@dataclass(frozen=True)
class FaultSite:
    """One named place a transient fault can strike."""

    name: str
    kind: str          # "data" | "operand" | "netlist" | "pipeline"
    #                  # | "schedule"
    site_class: str    # aggregation class for the SDC-rate table
    stage: str         # architectural stage the site belongs to
    unit: str = ""     # "pcs"/"fcs" for datapaths; target name otherwise
    tag: str = ""      # probe tag (kind == "data" only)
    plane: str = ""    # which element of the probed value is upset
    description: str = ""


def params_for_unit(unit: str) -> CSFmaParams:
    return PCS_PARAMS if unit == "pcs" else FCS_PARAMS


# ---------------------------------------------------------------------------
# the registry


def _data(name: str, cls: str, stage: str, unit: str, tag: str,
          plane: str, desc: str) -> FaultSite:
    return FaultSite(name, "data", cls, stage, unit, tag, plane, desc)


_SITE_LIST = [
    # -- PCS-FMA scalar datapath ---------------------------------------
    _data("pcs.product.sum", "pcs", "multiplier", "pcs",
          "cs.mult_product", "sum",
          "CS product row (sum word) out of the CSA tree"),
    _data("pcs.product.carry", "pcs", "multiplier", "pcs",
          "cs.mult_product", "carry",
          "CS product row (carry word) out of the CSA tree"),
    _data("pcs.window.sum", "pcs", "window-3to2", "pcs",
          "fma.window", "sum",
          "385b adder-window sum plane behind the 3:2 compressor"),
    _data("pcs.window.carry", "pcs", "window-3to2", "pcs",
          "fma.window", "carry",
          "385b adder-window carry plane behind the 3:2 compressor"),
    _data("pcs.carry_reduce.sum", "pcs", "carry-reduce", "pcs",
          "cs.carry_reduce", "sum",
          "chunk-sum register of the 11-bit Carry Reduce adders"),
    _data("pcs.carry_reduce.carry", "pcs", "carry-reduce", "pcs",
          "cs.carry_reduce", "carry",
          "explicit chunk-boundary carry bits after Carry Reduce "
          "(flips restricted to the format's legal positions)"),
    _data("pcs.zd.sum", "pcs", "zero-detect", "pcs",
          "cs.zd_input", "sum",
          "Zero Detector block-class input, sum plane (upsets the "
          "normalization select, not the window value)"),
    _data("pcs.zd.carry", "pcs", "zero-detect", "pcs",
          "cs.zd_input", "carry",
          "Zero Detector block-class input, carry plane"),
    _data("pcs.mant.sum", "pcs", "result-mux", "pcs",
          "fma.mant_slice", "w0",
          "result mantissa slice register, sum word"),
    _data("pcs.mant.carry", "pcs", "result-mux", "pcs",
          "fma.mant_slice", "w1",
          "result mantissa slice register, carry word (flips outside "
          "the chunk-carry mask violate the operand format)"),
    FaultSite("pcs.operand.word", "operand", "pcs", "operand-bus", "pcs",
              description="packed 192-bit PCS operand word on the bus "
              "between fused operators"),
    # -- FCS-FMA scalar datapath ---------------------------------------
    _data("fcs.product.sum", "fcs", "multiplier", "fcs",
          "cs.mult_product", "sum",
          "CS product row (sum word) out of the CSA tree"),
    _data("fcs.product.carry", "fcs", "multiplier", "fcs",
          "cs.mult_product", "carry",
          "CS product row (carry word) out of the CSA tree"),
    _data("fcs.window.sum", "fcs", "window-3to2", "fcs",
          "fma.window", "sum",
          "377-digit window sum plane (full carry save)"),
    _data("fcs.window.carry", "fcs", "window-3to2", "fcs",
          "fma.window", "carry",
          "377-digit window carry plane (full carry save)"),
    _data("fcs.lza.a", "fcs", "lza", "fcs",
          "cs.lza_input", "w0",
          "LZA anticipation input, addend row"),
    _data("fcs.lza.b", "fcs", "lza", "fcs",
          "cs.lza_input", "w1",
          "LZA anticipation input, collapsed product row"),
    _data("fcs.mant.sum", "fcs", "result-mux", "fcs",
          "fma.mant_slice", "w0",
          "result mantissa slice register, sum word"),
    _data("fcs.mant.carry", "fcs", "result-mux", "fcs",
          "fma.mant_slice", "w1",
          "result mantissa slice register, carry word"),
    FaultSite("fcs.operand.word", "operand", "fcs", "operand-bus", "fcs",
              description="packed FCS operand word on the bus between "
              "fused operators"),
    # -- batch (SWAR) engine -------------------------------------------
    _data("batch.pcs.product.sum", "batch", "multiplier", "pcs",
          "batch.product", "w0",
          "compiled-tree product row (sum), PCS kernel"),
    _data("batch.pcs.product.carry", "batch", "multiplier", "pcs",
          "batch.product", "w1",
          "compiled-tree product row (carry), PCS kernel"),
    _data("batch.pcs.window.sum", "batch", "carry-reduce", "pcs",
          "batch.window", "w0",
          "post-SWAR-Carry-Reduce window sum lane, PCS kernel"),
    _data("batch.pcs.window.carry", "batch", "carry-reduce", "pcs",
          "batch.window", "w1",
          "post-SWAR-Carry-Reduce window carry lane, PCS kernel"),
    _data("batch.fcs.product.sum", "batch", "multiplier", "fcs",
          "batch.product", "w0",
          "compiled-tree product row (sum), FCS kernel"),
    _data("batch.fcs.product.carry", "batch", "multiplier", "fcs",
          "batch.product", "w1",
          "compiled-tree product row (carry), FCS kernel"),
    _data("batch.fcs.window.sum", "batch", "window-3to2", "fcs",
          "batch.window", "w0",
          "raw 3:2 window sum lane, FCS kernel"),
    _data("batch.fcs.window.carry", "batch", "window-3to2", "fcs",
          "batch.window", "w1",
          "raw 3:2 window carry lane, FCS kernel"),
    # -- structural sites ----------------------------------------------
    FaultSite("netlist.pcs-fma", "netlist", "structural", "netlist",
              "pcs-fma",
              description="bit flip in a component cost field of the "
              "pcs-fma unit design (NL0xx lint is the detector)"),
    FaultSite("netlist.fcs-fma", "netlist", "structural", "netlist",
              "fcs-fma",
              description="bit flip in a component cost field of the "
              "fcs-fma unit design"),
    FaultSite("pipeline.pcs-fma", "pipeline", "structural",
              "pipeline-registers", "pcs-fma",
              description="corruption of the pcs-fma pipeline stage "
              "partition (Pipeline.validate is the detector)"),
    FaultSite("pipeline.fcs-fma", "pipeline", "structural",
              "pipeline-registers", "fcs-fma",
              description="corruption of the fcs-fma pipeline stage "
              "partition"),
    FaultSite("schedule.listing1", "schedule", "structural", "schedule",
              "listing1",
              description="bit flip in a start time of the Listing 1 "
              "list schedule (SCH0xx checker is the detector)"),
]

#: name -> :class:`FaultSite`, the full campaign surface.
SITES: dict[str, FaultSite] = {s.name: s for s in _SITE_LIST}

#: aggregation classes, in report order.
SITE_CLASSES = ("pcs", "fcs", "batch", "structural")


def select_sites(names: tuple[str, ...] = (),
                 classes: tuple[str, ...] = ()) -> list[FaultSite]:
    """Sites matching the filters, in deterministic (name) order."""
    for n in names:
        if n not in SITES:
            raise KeyError(f"unknown fault site {n!r}; known: "
                           + ", ".join(sorted(SITES)))
    for c in classes:
        if c not in SITE_CLASSES:
            raise KeyError(f"unknown site class {c!r}; known: "
                           + ", ".join(SITE_CLASSES))
    out = [SITES[n] for n in sorted(SITES)]
    if names:
        out = [s for s in out if s.name in names]
    if classes:
        out = [s for s in out if s.site_class in classes]
    return out


# ---------------------------------------------------------------------------
# bit selection and transforms


def flip_word(legal_mask: int, fracs: tuple[float, ...]) -> int:
    """XOR word flipping one bit per fraction, restricted to the legal
    positions of ``legal_mask`` (distinct fractions may collapse onto
    the same position; the XOR then flips fewer bits)."""
    positions = []
    m = legal_mask
    while m:
        low = m & -m
        positions.append(low.bit_length() - 1)
        m &= m - 1
    if not positions:
        return 0
    word = 0
    for f in fracs:
        word ^= 1 << positions[int(f * len(positions)) % len(positions)]
    return word


def _tuple_mask(site: FaultSite, params: CSFmaParams) -> int:
    """Legal flip positions for tuple-valued probe points."""
    if site.tag == "fma.mant_slice":
        # both words span the mantissa; carry flips may land outside
        # the chunk-carry mask on purpose -- the operand format's
        # validity check is then the detector
        return (1 << params.mant_width) - 1
    return (1 << params.window_width) - 1


def make_transform(site: FaultSite, fracs: tuple[float, ...],
                   params: CSFmaParams) -> Callable[[Any], Any]:
    """Build the value transform an :class:`~repro.probes.Arm` applies
    at ``site`` -- flipping one bit per fraction in the site's plane."""
    plane = site.plane
    if plane in ("sum", "carry"):
        def upset_cs(v: CSNumber) -> CSNumber:
            if plane == "sum":
                w = flip_word((1 << v.width) - 1, fracs)
                return CSNumber(v.sum ^ w, v.carry, v.width,
                                v.carry_mask)
            mask = (v.carry_mask if v.carry_mask is not None
                    else (1 << v.width) - 1)
            w = flip_word(mask, fracs)
            return CSNumber(v.sum, v.carry ^ w, v.width, v.carry_mask)
        return upset_cs
    if plane in ("w0", "w1"):
        idx = 0 if plane == "w0" else 1
        mask = _tuple_mask(site, params)

        def upset_pair(v: tuple) -> tuple:
            w = flip_word(mask, fracs)
            out = list(v)
            out[idx] ^= w
            return tuple(out)
        return upset_pair
    raise ValueError(f"site {site.name!r} has no data plane")
