"""CLI for the SEU fault-injection campaign: ``python -m repro.faults``.

The default invocation runs the standard seeded campaign (500
injections across every registered site) serially and prints the
coverage report with the per-class SDC-rate table.  Typical uses::

    python -m repro.faults --list-sites
    python -m repro.faults --injections 500 --seed 7 --json-out rep.json
    python -m repro.faults --classes pcs,batch --workers 4
    python -m repro.faults --checkpoint camp.jsonl --resume
    python -m repro.faults --guard --guard-mode tmr

Exit status is 0 when the campaign completed every planned injection
(and on ``--help``/``--list-sites``), 1 when the campaign could not
complete, and 2 on bad arguments (the argparse convention: usage goes
to stderr).
"""

from __future__ import annotations

import argparse
import json
import sys

from .campaign import CampaignConfig, render_text, run_campaign
from .sites import SITES, select_sites


def _csv(text: str) -> tuple[str, ...]:
    return tuple(t for t in (s.strip() for s in text.split(",")) if t)


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Transient-fault (SEU) injection campaign over the "
                    "carry-save FMA datapaths and their structural "
                    "artifacts.",
        epilog="exit status: 0 = campaign complete (or listing "
               "printed); 1 = campaign incomplete; 2 = bad arguments.")
    ap.add_argument("--seed", type=int, default=0,
                    help="campaign seed (default 0); same seed, same "
                         "report, byte for byte")
    ap.add_argument("--injections", type=int, default=500,
                    help="number of injections to plan (default 500)")
    ap.add_argument("--operands", type=int, default=24,
                    help="operand-pool size per unit flavor (default 24)")
    ap.add_argument("--multi-bit", type=float, default=0.15,
                    help="fraction of injections upsetting two bits "
                         "(default 0.15)")
    ap.add_argument("--sites", type=_csv, default=(),
                    help="comma-separated site names to restrict to")
    ap.add_argument("--classes", type=_csv, default=(),
                    help="comma-separated site classes "
                         "(pcs,fcs,batch,structural)")
    ap.add_argument("--list-sites", action="store_true",
                    help="print the fault-site registry and exit")
    ap.add_argument("--guard", action="store_true",
                    help="re-run the same plan with the repro.guard "
                         "detection/correction layer armed and report "
                         "baseline-vs-guarded coverage (see "
                         "python -m repro.guard for the full interface)")
    ap.add_argument("--guard-mode", choices=("residue", "dmr", "tmr"),
                    default="residue",
                    help="guard policy for --guard (default residue)")
    ap.add_argument("--workers", type=int, default=1,
                    help="parallel workers (default 1 = serial)")
    ap.add_argument("--timeout", type=float, default=120.0,
                    help="per-chunk wall-clock timeout in seconds for "
                         "parallel runs (default 120)")
    ap.add_argument("--retries", type=int, default=3,
                    help="max attempts per chunk in parallel runs "
                         "(default 3)")
    ap.add_argument("--checkpoint", default=None,
                    help="JSONL file to append each record to")
    ap.add_argument("--resume", action="store_true",
                    help="skip injection ids already in --checkpoint")
    ap.add_argument("--json-out", default=None,
                    help="write the full report as JSON to this path")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the text report")
    return ap


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_sites:
        for name in sorted(SITES):
            s = SITES[name]
            print(f"{name:<26} [{s.site_class}/{s.stage}] "
                  f"{s.description or s.kind}")
        return 0
    # bad arguments exit 2 (argparse convention), distinct from a
    # campaign that ran but could not complete (1)
    if args.injections < 1:
        parser.error("--injections must be >= 1")
    if args.operands < 1:
        parser.error("--operands must be >= 1")
    if not 0.0 <= args.multi_bit <= 1.0:
        parser.error("--multi-bit must be in [0, 1]")
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.timeout <= 0:
        parser.error("--timeout must be positive")
    if args.retries < 1:
        parser.error("--retries must be >= 1")
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint")
    if args.guard and args.checkpoint:
        parser.error("--guard does not support --checkpoint; use "
                     "python -m repro.guard")
    try:
        config = CampaignConfig(
            seed=args.seed, injections=args.injections,
            operands=args.operands, multi_bit=args.multi_bit,
            sites=args.sites, classes=args.classes)
        select_sites(config.sites, config.classes)  # validate filters
    except (KeyError, ValueError) as exc:
        parser.error(str(exc))
    if args.guard:
        # delegate to the CED layer: same plan, guard armed
        from ..guard.campaign import (render_guarded_text,
                                      run_guarded_campaign)
        from ..guard.voting import GuardPolicy

        report = run_guarded_campaign(
            config, GuardPolicy(mode=args.guard_mode,
                                max_executions=4),
            workers=args.workers, timeout_s=args.timeout,
            max_attempts=args.retries)
    else:
        report = run_campaign(config, workers=args.workers,
                              checkpoint=args.checkpoint,
                              resume=args.resume,
                              timeout_s=args.timeout,
                              max_attempts=args.retries)
    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
    if not args.quiet:
        print(render_guarded_text(report) if args.guard
              else render_text(report))
    done = report["totals"]["injections"]
    return 0 if done >= config.injections else 1


if __name__ == "__main__":
    sys.exit(main())
