"""Transient-fault (SEU) injection campaigns and resilient execution.

Two coupled halves:

* :mod:`repro.faults.campaign` + :mod:`repro.faults.sites` -- the SEU
  campaign engine: named fault sites across the PCS/FCS datapaths, the
  batch SWAR engine, the packed operand buses and the structural
  artifacts (netlists, pipelines, schedules); deterministic seeded
  injection plans; differential classification into masked / detected /
  silent-data-corruption with a per-site, per-stage coverage report.
* :mod:`repro.faults.resilient` -- the shared resilient executor
  (timeouts, bounded retry with backoff, broken-pool respawn, serial
  degradation) used by the conformance sweep, the experiment driver and
  the campaign itself.

Run a campaign with ``python -m repro.faults``; see ``docs/FAULTS.md``.
"""

from .campaign import (CampaignConfig, aggregate, load_checkpoint,
                       plan_injections, render_text, run_campaign,
                       run_injection)
from .resilient import ResilientRun, RetryPolicy, WorkResult, run_resilient
from .sites import (SITE_CLASSES, SITES, FaultSite, flip_word,
                    make_transform, select_sites)

__all__ = [
    "CampaignConfig", "plan_injections", "run_injection", "run_campaign",
    "aggregate", "render_text", "load_checkpoint",
    "FaultSite", "SITES", "SITE_CLASSES", "select_sites", "flip_word",
    "make_transform",
    "RetryPolicy", "WorkResult", "ResilientRun", "run_resilient",
]
