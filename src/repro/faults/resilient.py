"""Resilient parallel execution for every sharded runner in the repo.

``ProcessPoolExecutor`` alone is brittle in exactly the ways a
long-running sweep meets in practice: a hung worker blocks
``future.result()`` forever, an OOM-killed worker poisons the whole
pool with :class:`BrokenProcessPool`, and a transient failure loses the
shard with no retry.  This module wraps the pool with the recovery
policy the conformance sweep (:mod:`repro.conformance.runner`), the
experiment driver (:mod:`repro.experiments.runner`) and the
fault-injection campaign (:mod:`repro.faults.campaign`) all share:

* **per-item wall-clock timeouts** -- a deadline starts when the item
  is submitted into a bounded in-flight window (never more than
  ``workers`` items in flight, so queue wait does not eat the budget);
* **bounded retry** with exponential backoff plus deterministic
  jitter (seeded, so tests are reproducible);
* **broken-pool recovery** -- worker death is detected, the pool is
  respawned, and every lost in-flight item is re-dispatched (items
  that were merely collateral are not charged a retry attempt);
* **hung-worker reclaim** -- a timed-out worker cannot be cancelled
  through the executor API, so the pool is killed and respawned and
  the survivors re-dispatched;
* **graceful serial degradation** -- after ``serial_fallback_after``
  pool-level failures the remaining items run inline, one by one;
* **graceful drain** -- an optional run-wide ``deadline_s`` stops the
  run at a wall-clock budget: items still pending or mid-retry surface
  as structured ``drained`` error records (carrying the last failure,
  if any), never silently lost and never executed twice;
* **structured failure records** -- an item that exhausts its attempts
  produces a :class:`WorkResult` with a machine-readable error record
  instead of an exception that kills the sweep.

The work function must be a picklable module-level callable.  If it
accepts a second positional parameter it receives the zero-based
attempt number -- which the resilience tests use to build
deterministic "fail exactly once" workloads.
"""

from __future__ import annotations

import inspect
import os
import random
import time
import traceback
from collections import Counter, deque
from concurrent.futures import (FIRST_COMPLETED, CancelledError,
                                ProcessPoolExecutor, wait)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

__all__ = ["RetryPolicy", "WorkResult", "ResilientRun", "run_resilient"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry policy with exponential backoff and jitter."""

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    jitter: float = 0.25

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        base = min(self.backoff_cap_s,
                   self.backoff_base_s * (2 ** max(attempt - 1, 0)))
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class WorkResult:
    """Outcome of one work item after all recovery attempts."""

    index: int
    ok: bool
    value: object = None
    #: structured error record: ``kind`` is ``timeout`` /
    #: ``worker-died`` / ``exception``; exceptions add type, message
    #: and a trimmed traceback.
    error: dict | None = None
    attempts: int = 0
    ran_serial: bool = False


@dataclass
class ResilientRun:
    """Full account of a resilient run: results plus recovery events."""

    results: list[WorkResult] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    pool_failures: int = 0
    serial_fallback: bool = False

    @property
    def ok(self) -> bool:
        return all(r is not None and r.ok for r in self.results)

    def summary(self) -> dict:
        """Compact, JSON-ready recovery summary for sweep reports."""
        kinds = Counter(e["kind"] for e in self.events)
        return {
            "items": len(self.results),
            "ok": sum(1 for r in self.results if r is not None and r.ok),
            "failed": sorted(r.index for r in self.results
                             if r is None or not r.ok),
            "retries": kinds.get("retry", 0),
            "timeouts": kinds.get("timeout", 0),
            "worker_deaths": kinds.get("worker-died", 0),
            "drained": sum(1 for r in self.results
                           if r is not None and not r.ok and r.error
                           and r.error.get("kind") == "drained"),
            "pool_respawns": self.pool_failures,
            "serial_fallback": self.serial_fallback,
        }


# ---------------------------------------------------------------------------
# worker-side entry


def _pool_entry(fn, item, attempt: int, wants_attempt: bool):
    """Picklable pool trampoline (also used by the serial fallback)."""
    return fn(item, attempt) if wants_attempt else fn(item)


def _accepts_attempt(fn) -> bool:
    """Does ``fn`` take a second positional (attempt-number) argument?"""
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return False
    positional = 0
    for p in sig.parameters.values():
        if p.kind is inspect.Parameter.VAR_POSITIONAL:
            return True
        if p.kind in (inspect.Parameter.POSITIONAL_ONLY,
                      inspect.Parameter.POSITIONAL_OR_KEYWORD):
            positional += 1
    return positional >= 2


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly reclaim a pool whose workers may be hung.

    ``shutdown()`` alone would join the hung worker forever, so the
    worker processes are terminated first.  Reaching into
    ``_processes`` is unavoidable -- the executor API has no way to
    cancel a *running* future -- and is guarded so a future stdlib
    change degrades to a plain (non-blocking) shutdown.
    """
    procs = getattr(pool, "_processes", None)
    if procs:
        for proc in list(procs.values()):
            try:
                proc.terminate()
            except Exception:
                pass
    try:
        # The workers were just terminated, so the join is quick; waiting
        # reaps the management thread before the interpreter's atexit
        # hook can trip over its half-closed wakeup pipe.
        pool.shutdown(wait=True, cancel_futures=True)
    except Exception:
        pass


# ---------------------------------------------------------------------------
# the resilient loop


def run_resilient(fn, items, *, workers: int | None = None,
                  timeout_s: float | None = None,
                  retry: RetryPolicy | None = None,
                  serial_fallback_after: int = 2,
                  rng_seed: int = 0,
                  always_pool: bool = False,
                  deadline_s: float | None = None) -> ResilientRun:
    """Run ``fn`` over ``items`` with timeouts, retry, and pool recovery.

    ``workers=None`` uses ``os.cpu_count()``; ``workers<=1`` (or a
    single item) runs everything inline from the start, still with
    retry.  ``timeout_s`` bounds one attempt of one item (pool mode
    only -- the serial path cannot preempt a hung call and records
    that limitation in the run's events).  ``always_pool=True`` keeps
    even a single-item run in the process pool so it gets the full
    timeout/respawn treatment (the serving layer's per-batch isolation
    mode needs exactly that).  ``deadline_s`` is a run-wide wall-clock
    budget: when it expires the run drains -- no new dispatches, no
    further retries, and every unfinished item gets a structured
    ``drained`` error record.  Results preserve item order; the run
    never raises for item failures.
    """
    policy = retry if retry is not None else RetryPolicy()
    if policy.max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    items = list(items)
    n = len(items)
    run = ResilientRun(results=[None] * n)
    if n == 0:
        return run
    if workers is None:
        workers = os.cpu_count() or 1
    rng = random.Random(rng_seed)
    wants_attempt = _accepts_attempt(fn)
    run_deadline = (None if deadline_s is None
                    else time.monotonic() + deadline_s)
    attempts = [0] * n
    pending: deque[int] = deque(range(n))
    serial = workers <= 1 or (n <= 1 and not always_pool)
    if serial:
        run.serial_fallback = False  # inline by request, not degradation
    pool: ProcessPoolExecutor | None = None
    in_flight: dict = {}  # future -> (index, deadline | None)

    def record_failure(idx: int, kind: str,
                       exc: BaseException | None = None) -> None:
        err: dict = {"kind": kind}
        if exc is not None:
            err["type"] = type(exc).__name__
            err["message"] = str(exc)
            err["traceback"] = "".join(
                traceback.format_exception(type(exc), exc,
                                           exc.__traceback__))[-2000:]
        run.results[idx] = WorkResult(idx, False, None, err,
                                      attempts[idx], ran_serial=serial)
        run.events.append({"kind": "permanent-failure", "item": idx,
                           "after": kind})

    def drain_due() -> bool:
        return (run_deadline is not None
                and time.monotonic() >= run_deadline)

    def retry_or_fail(idx: int, kind: str,
                      exc: BaseException | None = None) -> None:
        if attempts[idx] < policy.max_attempts:
            if drain_due():
                # mid-retry at the drain deadline: a structured record
                # carrying the last failure, not a lost item
                record_failure(idx, "drained", exc)
                return
            run.events.append({"kind": "retry", "item": idx,
                               "after": kind})
            time.sleep(policy.backoff_s(attempts[idx], rng))
            pending.append(idx)
        else:
            record_failure(idx, kind, exc)

    def abandon_pool(reason: str) -> None:
        nonlocal pool, serial
        run.pool_failures += 1
        run.events.append({"kind": reason})
        # Collateral in-flight items were not at fault: refund the
        # attempt charged at submit time and re-dispatch them first.
        for _fut, (idx, _dl) in list(in_flight.items()):
            attempts[idx] -= 1
            pending.appendleft(idx)
        in_flight.clear()
        if pool is not None:
            _kill_pool(pool)
            pool = None
        if run.pool_failures >= serial_fallback_after:
            serial = True
            run.serial_fallback = True
            run.events.append({"kind": "serial-fallback"})

    def run_serial(idx: int) -> None:
        while True:
            attempts[idx] += 1
            try:
                value = _pool_entry(fn, items[idx], attempts[idx] - 1,
                                    wants_attempt)
            except Exception as exc:
                if attempts[idx] < policy.max_attempts:
                    if drain_due():
                        record_failure(idx, "drained", exc)
                        return
                    run.events.append({"kind": "retry", "item": idx,
                                       "after": "exception"})
                    time.sleep(policy.backoff_s(attempts[idx], rng))
                    continue
                record_failure(idx, "exception", exc)
                return
            run.results[idx] = WorkResult(idx, True, value, None,
                                          attempts[idx],
                                          ran_serial=True)
            return

    try:
        while pending or in_flight:
            if drain_due():
                run.events.append({"kind": "drain"})
                while pending:
                    record_failure(pending.popleft(), "drained")
                for _fut, (idx, _dl) in list(in_flight.items()):
                    record_failure(idx, "drained")
                in_flight.clear()
                if pool is not None:
                    _kill_pool(pool)
                    pool = None
                break
            if serial:
                while pending:
                    if drain_due():
                        run.events.append({"kind": "drain"})
                        while pending:
                            record_failure(pending.popleft(), "drained")
                        break
                    run_serial(pending.popleft())
                break
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=workers)
            # fill the in-flight window
            submit_failed = False
            while pending and len(in_flight) < workers:
                idx = pending.popleft()
                attempts[idx] += 1
                try:
                    fut = pool.submit(_pool_entry, fn, items[idx],
                                      attempts[idx] - 1, wants_attempt)
                except (BrokenProcessPool, RuntimeError):
                    attempts[idx] -= 1
                    pending.appendleft(idx)
                    submit_failed = True
                    break
                deadline = (None if timeout_s is None
                            else time.monotonic() + timeout_s)
                in_flight[fut] = (idx, deadline)
            if submit_failed:
                abandon_pool("broken-pool")
                continue
            if not in_flight:
                continue
            deadlines = [dl for (_i, dl) in in_flight.values()
                         if dl is not None]
            wait_s = (None if not deadlines
                      else max(0.0, min(deadlines) - time.monotonic())
                      + 0.01)
            if run_deadline is not None:
                drain_wait = max(0.0,
                                 run_deadline - time.monotonic()) + 0.01
                wait_s = (drain_wait if wait_s is None
                          else min(wait_s, drain_wait))
            done, _ = wait(list(in_flight), timeout=wait_s,
                           return_when=FIRST_COMPLETED)
            pool_broken = False
            for fut in done:
                idx, _dl = in_flight.pop(fut)
                try:
                    value = fut.result()
                except BrokenProcessPool as exc:
                    retry_or_fail(idx, "worker-died", exc)
                    pool_broken = True
                except CancelledError:
                    attempts[idx] -= 1
                    pending.append(idx)
                except Exception as exc:
                    retry_or_fail(idx, "exception", exc)
                else:
                    run.results[idx] = WorkResult(idx, True, value,
                                                  None, attempts[idx])
            if pool_broken:
                abandon_pool("broken-pool")
                continue
            now = time.monotonic()
            expired = [fut for fut, (idx, dl) in in_flight.items()
                       if dl is not None and now >= dl]
            if expired:
                for fut in expired:
                    idx, _dl = in_flight.pop(fut)
                    run.events.append({"kind": "timeout", "item": idx})
                    retry_or_fail(idx, "timeout")
                # The hung worker cannot be reclaimed individually:
                # recycle the whole pool and re-dispatch survivors.
                abandon_pool("pool-respawn")
    finally:
        if pool is not None:
            # All futures are resolved or cancelled here, so the join is
            # immediate -- and leaving the pool to wind down during
            # interpreter exit races the concurrent.futures atexit hook.
            pool.shutdown(wait=True, cancel_futures=True)

    for idx, result in enumerate(run.results):
        if result is None:  # defensive: never leave a hole
            record_failure(idx, "lost")
    return run
