"""Primal-dual interior-point QP solver (the CVXGEN-style algorithm).

A standard infeasible-start primal-dual method with Mehrotra-like
centering: each iteration assembles the regularized KKT system of
:mod:`repro.solvers.kkt`, factors it with the static-order LDL^T of
:mod:`repro.solvers.ldl`, and performs the triangular solves -- the
`ldlsolve()` kernel the paper accelerates.

The solve step is pluggable: the default runs the numeric
:func:`~repro.solvers.ldl.ldl_solve`; a :class:`KernelBackend` instead
executes the *generated* straight-line kernel through the HLS simulator,
optionally with the bit-accurate PCS/FCS FMA arithmetic -- demonstrating
end to end that the hardware numerics solve the control problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .codegen import SolverKernel, generate_kernel
from .kkt import assemble_kkt, kkt_sparsity
from .ldl import SymbolicLDL, ldl_solve, numeric_ldl, symbolic_ldl
from .qp import QPProblem

__all__ = ["IPMResult", "InteriorPointSolver", "KernelBackend"]

SolveFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class IPMResult:
    """Outcome of an interior-point solve."""

    z: np.ndarray
    converged: bool
    iterations: int
    objective: float
    duality_gap: float
    residual: float
    kkt_solves: int = 0


class KernelBackend:
    """Executes the generated `ldlsolve()` kernel for the solve phase.

    ``engine`` selects the arithmetic: ``None`` uses bit-accurate IEEE
    binary64 operators; a PCS/FCS chain engine runs the kernel after the
    FMA-insertion pass with carry-save arithmetic.
    """

    def __init__(self, kernel: SolverKernel, engine=None,
                 fma_flavor: str | None = None):
        from ..hls import default_library, parse_program, run_fma_insertion

        self.kernel = kernel
        self.engine = engine
        self.graph = parse_program(kernel.source,
                                   outputs=kernel.output_names)
        self.pass_report = None
        if engine is not None:
            flavor = fma_flavor or engine.unit.params.name
            library = default_library(fma_flavor=flavor)
            self.pass_report = run_fma_insertion(self.graph, library)

    def solve(self, L: dict, D: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        from ..hls import simulate

        binds = self.kernel.input_bindings(L, D, rhs)
        outs = simulate(self.graph, binds, engine=self.engine)
        return self.kernel.unpermute(outs)


@dataclass
class InteriorPointSolver:
    """Primal-dual IPM over a fixed QP structure."""

    problem: QPProblem
    max_iterations: int = 40
    tolerance: float = 1e-7
    regularization: float = 1e-7
    backend: KernelBackend | None = None
    use_batch: bool = True
    _symbolic: SymbolicLDL | None = field(default=None, repr=False)

    def _sym(self) -> SymbolicLDL:
        if self._symbolic is None:
            self._symbolic = symbolic_ldl(kkt_sparsity(self.problem))
        return self._symbolic

    @classmethod
    def with_kernel_backend(cls, problem: QPProblem, engine=None,
                            **kw) -> "InteriorPointSolver":
        """Construct a solver whose `ldlsolve` runs the generated kernel
        (optionally with carry-save FMA arithmetic)."""
        kernel = generate_kernel(problem)
        return cls(problem, backend=KernelBackend(kernel, engine), **kw)

    # ------------------------------------------------------------------

    def solve(self) -> IPMResult:
        p = self.problem
        n, m, q = p.n, p.n_eq, p.n_ineq
        z = np.zeros(n)
        nu = np.zeros(m)
        s = np.maximum(p.h - p.G @ z, 1.0)
        lam = np.ones(q)
        sym = self._sym()
        kkt_solves = 0

        for it in range(1, self.max_iterations + 1):
            rx = p.P @ z + p.q + p.A.T @ nu + p.G.T @ lam
            re = p.A @ z - p.b
            ri = p.G @ z + s - p.h
            mu = float(s @ lam / q) if q else 0.0
            res = max(np.max(np.abs(rx), initial=0.0),
                      np.max(np.abs(re), initial=0.0),
                      np.max(np.abs(ri), initial=0.0))
            if res < self.tolerance and mu < self.tolerance:
                return IPMResult(z, True, it - 1, p.objective(z), mu, res,
                                 kkt_solves)

            sigma = 0.1
            w = s / lam
            K = assemble_kkt(p, w, self.regularization)
            L, D = numeric_ldl(K, sym, use_batch=self.use_batch)

            # third block: G dz - W dlam = -ri + s - sigma*mu/lam
            # (substituting ds from the complementarity linearization)
            rhs = np.concatenate([
                -rx,
                -re,
                -ri + s - (sigma * mu) / lam,
            ])
            if self.backend is not None:
                step = self.backend.solve(L, D, rhs)
            else:
                step = ldl_solve(L, D, sym, rhs,
                                 use_batch=self.use_batch)
            kkt_solves += 1
            dz = step[:n]
            dnu = step[n:n + m]
            dlam = step[n + m:]
            # ds from the linearized complementarity condition
            # s.lam + s.dlam + lam.ds = sigma*mu
            ds = (sigma * mu - s * lam - s * dlam) / lam

            alpha = 1.0
            for vec, dvec in ((s, ds), (lam, dlam)):
                neg = dvec < 0
                if np.any(neg):
                    alpha = min(alpha,
                                float(np.min(-vec[neg] / dvec[neg])))
            alpha = min(1.0, 0.99 * alpha)

            z = z + alpha * dz
            nu = nu + alpha * dnu
            lam = np.maximum(lam + alpha * dlam, 1e-12)
            s = np.maximum(s + alpha * ds, 1e-12)

        rx = p.P @ z + p.q + p.A.T @ nu + p.G.T @ lam
        mu = float(s @ lam / q) if q else 0.0
        res = float(np.max(np.abs(rx), initial=0.0))
        return IPMResult(z, False, self.max_iterations, p.objective(z),
                         mu, res, kkt_solves)
