"""Sparse LDL^T factorization: ordering, symbolic analysis, numerics.

CVXGEN's generated solvers rely on an ahead-of-time *symbolic* LDL^T
factorization of the fixed-sparsity KKT matrix: the elimination order,
the fill-in pattern and therefore the full straight-line program of the
factor/solve phases are known at code-generation time.  This module
implements that pipeline:

* :func:`min_degree_order` -- a greedy minimum-degree fill-reducing
  permutation,
* :func:`symbolic_ldl` -- fill-in analysis for a fixed order,
* :func:`numeric_ldl` / :func:`ldl_solve` -- the actual factorization
  (no pivoting; the regularized quasidefinite KKT makes this sound) and
  the triangular solves,

and is the data source for the `ldlsolve()` code generator in
:mod:`repro.solvers.codegen`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "min_degree_order",
    "SymbolicLDL",
    "symbolic_ldl",
    "numeric_ldl",
    "ldl_solve",
    "ldl_solve_dense",
]


def min_degree_order(pattern: np.ndarray) -> np.ndarray:
    """Greedy minimum-degree ordering of a symmetric sparsity pattern.

    Simulates elimination on the boolean adjacency structure, always
    picking the node of least current degree (ties by index for
    determinism).  Returns the permutation ``order`` such that pivot
    ``k`` eliminates original row/column ``order[k]``.
    """
    n = pattern.shape[0]
    adj: list[set[int]] = [set(np.nonzero(pattern[i])[0].tolist()) - {i}
                           for i in range(n)]
    alive = set(range(n))
    order = np.empty(n, dtype=int)
    for k in range(n):
        pick = min(alive, key=lambda i: (len(adj[i] & alive), i))
        order[k] = pick
        alive.discard(pick)
        neigh = adj[pick] & alive
        for i in neigh:
            adj[i] |= neigh - {i}
            adj[i].discard(pick)
    return order


@dataclass(frozen=True)
class SymbolicLDL:
    """Result of the symbolic analysis.

    ``order`` maps pivot position -> original index; ``l_pattern`` holds
    the strictly-lower-triangular non-zero positions of L *in permuted
    coordinates*, row-major sorted.
    """

    n: int
    order: np.ndarray
    l_pattern: tuple[tuple[int, int], ...]

    @property
    def nnz(self) -> int:
        return len(self.l_pattern)

    def rows(self) -> list[list[int]]:
        """Column indices of L per row (permuted coordinates)."""
        out: list[list[int]] = [[] for _ in range(self.n)]
        for i, j in self.l_pattern:
            out[i].append(j)
        return out

    def cols(self) -> list[list[int]]:
        """Row indices of L per column (permuted coordinates)."""
        out: list[list[int]] = [[] for _ in range(self.n)]
        for i, j in self.l_pattern:
            out[j].append(i)
        return out


def symbolic_ldl(pattern: np.ndarray,
                 order: np.ndarray | None = None) -> SymbolicLDL:
    """Compute the fill-in pattern of L for a fixed elimination order."""
    n = pattern.shape[0]
    if pattern.shape != (n, n):
        raise ValueError("pattern must be square")
    if not np.array_equal(pattern, pattern.T):
        raise ValueError("pattern must be symmetric")
    if order is None:
        order = min_degree_order(pattern)
    perm = np.asarray(order)
    # permuted boolean matrix
    pat = pattern[np.ix_(perm, perm)].copy()
    np.fill_diagonal(pat, True)
    lpat: list[tuple[int, int]] = []
    for k in range(n):
        below = np.nonzero(pat[k + 1:, k])[0] + k + 1
        for i in below:
            lpat.append((int(i), k))
        # fill-in: eliminating k connects all its below-diagonal entries
        for a in below:
            for bidx in below:
                if bidx < a:
                    pat[a, bidx] = True
                    pat[bidx, a] = True
    lpat.sort()
    return SymbolicLDL(n, perm, tuple(lpat))


def _batch_plan(sym: SymbolicLDL) -> dict:
    """Static gather plan for the batched factor/solve kernels.

    Everything here depends only on the sparsity (the CVXGEN premise:
    the elimination schedule is known ahead of time), so it is computed
    once per :class:`SymbolicLDL` and cached on the instance:

    * per-row / per-column index arrays of L,
    * for every L entry ``(i, j)``, aligned gather positions of the
      update terms ``L[i,k] * L[j,k] * D[k]`` (``k`` in row ``i`` and
      row ``j``), in the same ``k`` order as the scalar loop.
    """
    plan = getattr(sym, "_batch_plan", None)
    if plan is not None:
        return plan
    rows = sym.rows()
    cols = sym.cols()
    entof = {ij: ent for ent, ij in enumerate(sym.l_pattern)}
    rowpos = [{k: t for t, k in enumerate(r)} for r in rows]
    by_col: list[list[tuple]] = [[] for _ in range(sym.n)]
    for ent, (i, j) in enumerate(sym.l_pattern):
        pos_i = rowpos[i]
        pi, pj, ks = [], [], []
        for t, k in enumerate(rows[j]):
            ti = pos_i.get(k)
            if ti is not None:
                pi.append(ti)
                pj.append(t)
                ks.append(k)
        by_col[j].append((i, ent,
                          np.asarray(pi, dtype=np.intp),
                          np.asarray(pj, dtype=np.intp),
                          np.asarray(ks, dtype=np.intp)))
    plan = {
        "rows": rows,
        "cols": cols,
        "row_idx": [np.asarray(r, dtype=np.intp) for r in rows],
        "col_idx": [np.asarray(c, dtype=np.intp) for c in cols],
        "row_ent": [np.asarray([entof[(i, j)] for j in rows[i]],
                               dtype=np.intp) for i in range(sym.n)],
        "col_ent": [np.asarray([entof[(i, j)] for i in cols[j]],
                               dtype=np.intp) for j in range(sym.n)],
        "by_col": by_col,
    }
    object.__setattr__(sym, "_batch_plan", plan)
    return plan


def numeric_ldl(K: np.ndarray, sym: SymbolicLDL, *, use_batch: bool = True,
                ) -> tuple[dict[tuple[int, int], float], np.ndarray]:
    """Factor ``K`` (symmetric, quasidefinite) as ``P' K P = L D L'``.

    Returns the sparse L entries (permuted coordinates) and the diagonal
    D.  No pivoting is performed -- exactly the static schedule the
    generated hardware/code uses.

    ``use_batch`` evaluates the inner-product update terms through
    vectorized elementwise gathers (:mod:`repro.batch` wiring).  The
    term products and the serial subtraction order are unchanged, so
    the factors are bit-identical to the scalar loop.
    """
    if use_batch:
        return _numeric_ldl_batch(K, sym)
    n = sym.n
    perm = sym.order
    Kp = K[np.ix_(perm, perm)]
    rows = sym.rows()
    L: dict[tuple[int, int], float] = {}
    D = np.zeros(n)
    for j in range(n):
        # d_j = K_jj - sum_k L_jk^2 d_k
        acc = Kp[j, j]
        for k in rows[j]:
            acc -= L[(j, k)] ** 2 * D[k]
        if acc == 0.0:
            raise ZeroDivisionError(
                f"zero pivot at position {j}; regularize the KKT system")
        D[j] = acc
        # column j of L
        for i, jj in sym.l_pattern:
            if jj != j:
                continue
            s = Kp[i, j]
            row_i = set(rows[i])
            for k in rows[j]:
                if k in row_i:
                    s -= L[(i, k)] * L[(j, k)] * D[k]
            L[(i, j)] = s / D[j]
    return L, D


def _numeric_ldl_batch(K: np.ndarray, sym: SymbolicLDL,
                       ) -> tuple[dict[tuple[int, int], float], np.ndarray]:
    """Batched twin of the scalar ``numeric_ldl`` loop.

    L values live in a flat array indexed by the static entry order;
    each update term ``(L[i,k] * L[j,k]) * D[k]`` is formed elementwise
    (same association as the scalar expression) and subtracted in the
    same serial order, keeping every rounding identical.
    """
    n = sym.n
    perm = sym.order
    Kp = K[np.ix_(perm, perm)]
    plan = _batch_plan(sym)
    lval = np.zeros(len(sym.l_pattern))
    D = np.zeros(n)
    by_col = plan["by_col"]
    row_ent = plan["row_ent"]
    row_idx = plan["row_idx"]
    for j in range(n):
        acc = Kp[j, j]
        ents = row_ent[j]
        if len(ents):
            ljk = lval[ents]
            for t in ((ljk * ljk) * D[row_idx[j]]).tolist():
                acc -= t
        if acc == 0.0:
            raise ZeroDivisionError(
                f"zero pivot at position {j}; regularize the KKT system")
        D[j] = acc
        for i, ent, pi, pj, ks in by_col[j]:
            s = Kp[i, j]
            if len(ks):
                li = lval[row_ent[i][pi]]
                lj = lval[row_ent[j][pj]]
                for t in ((li * lj) * D[ks]).tolist():
                    s -= t
            lval[ent] = s / D[j]
    L = {ij: lval[ent] for ent, ij in enumerate(sym.l_pattern)}
    return L, D


def ldl_solve(L: dict[tuple[int, int], float], D: np.ndarray,
              sym: SymbolicLDL, rhs: np.ndarray, *,
              use_batch: bool = True) -> np.ndarray:
    """Solve ``K x = rhs`` given the factorization.

    This is the numeric twin of the generated `ldlsolve()` kernel:
    forward substitution, diagonal scaling, backward substitution, all
    on the fixed sparsity -- long chains of multiply-add operations.

    ``use_batch`` gathers each substitution row's products elementwise
    before the (still serial, hence bit-identical) subtractions.
    """
    n = sym.n
    perm = sym.order
    b = rhs[perm].astype(float).copy()
    if use_batch:
        plan = _batch_plan(sym)
        row_idx, col_idx = plan["row_idx"], plan["col_idx"]
        lrow = [np.asarray([L[(i, j)] for j in plan["rows"][i]])
                for i in range(n)]
        lcol = [np.asarray([L[(j, i)] for j in plan["cols"][i]])
                for i in range(n)]
        y = np.zeros(n)
        for i in range(n):
            acc = b[i]
            if len(lrow[i]):
                for t in (lrow[i] * y[row_idx[i]]).tolist():
                    acc -= t
            y[i] = acc
        z = y / D
        x = np.zeros(n)
        for i in range(n - 1, -1, -1):
            acc = z[i]
            if len(lcol[i]):
                for t in (lcol[i] * x[col_idx[i]]).tolist():
                    acc -= t
            x[i] = acc
        out = np.zeros(n)
        out[perm] = x
        return out
    rows = sym.rows()
    cols = sym.cols()
    # forward: L y = b
    y = np.zeros(n)
    for i in range(n):
        acc = b[i]
        for j in rows[i]:
            acc -= L[(i, j)] * y[j]
        y[i] = acc
    # diagonal
    z = y / D
    # backward: L' x = z
    x = np.zeros(n)
    for i in range(n - 1, -1, -1):
        acc = z[i]
        for j in cols[i]:
            acc -= L[(j, i)] * x[j]
        x[i] = acc
    out = np.zeros(n)
    out[perm] = x
    return out


def ldl_solve_dense(K: np.ndarray, rhs: np.ndarray,
                    sym: SymbolicLDL | None = None) -> np.ndarray:
    """Convenience: symbolic (if needed) + numeric + solve in one call."""
    if sym is None:
        sym = symbolic_ldl(np.abs(K) > 0)
    L, D = numeric_ldl(K, sym)
    return ldl_solve(L, D, sym, rhs)
