"""KKT system assembly for the primal-dual interior-point method.

CVXGEN-generated solvers spend their time factoring and solving one
fixed-sparsity KKT system per IPM iteration.  Following CVXGEN, we use
the regularized symmetric quasidefinite form

    K = [ P + eps*I    A'         G'      ]
        [ A            -eps*I     0       ]
        [ G            0          -W      ]

with ``W = diag(s / lam)`` from the current iterate.  The *sparsity* of
K is fixed by the problem structure, which is what makes ahead-of-time
symbolic factorization (and hardware code generation) possible.
"""

from __future__ import annotations

import numpy as np

from .ldl import SymbolicLDL, ldl_solve, numeric_ldl, symbolic_ldl
from .qp import QPProblem

__all__ = ["assemble_kkt", "kkt_dimension", "kkt_sparsity", "kkt_solve"]


def kkt_dimension(problem: QPProblem) -> int:
    return problem.n + problem.n_eq + problem.n_ineq


def assemble_kkt(problem: QPProblem, w_diag: np.ndarray,
                 eps: float = 1e-7) -> np.ndarray:
    """Dense KKT matrix for the current scaling ``w_diag`` (length
    ``n_ineq``, strictly positive)."""
    n, m, p = problem.n, problem.n_eq, problem.n_ineq
    if w_diag.shape != (p,):
        raise ValueError("w_diag must have one entry per inequality")
    if np.any(w_diag <= 0):
        raise ValueError("w_diag must be strictly positive")
    N = n + m + p
    K = np.zeros((N, N))
    K[:n, :n] = problem.P + eps * np.eye(n)
    K[:n, n:n + m] = problem.A.T
    K[n:n + m, :n] = problem.A
    K[n:n + m, n:n + m] = -eps * np.eye(m)
    K[:n, n + m:] = problem.G.T
    K[n + m:, :n] = problem.G
    K[n + m:, n + m:] = -np.diag(w_diag)
    return K


def kkt_sparsity(problem: QPProblem, tol: float = 0.0) -> np.ndarray:
    """Boolean lower-triangle-inclusive sparsity pattern of K.

    The pattern is structural: any entry that can ever be non-zero for
    some iterate is marked (diagonal blocks are always present).
    """
    w = np.ones(problem.n_ineq)
    K = assemble_kkt(problem, w, eps=1.0)
    pattern = np.abs(K) > tol
    np.fill_diagonal(pattern, True)
    return pattern


def kkt_solve(problem: QPProblem, w_diag: np.ndarray, rhs: np.ndarray,
              sym: SymbolicLDL | None = None, *, eps: float = 1e-7,
              use_batch: bool = True) -> np.ndarray:
    """Assemble, factor and solve ``K x = rhs`` for one IPM iterate.

    Convenience wrapper over :func:`assemble_kkt` +
    :func:`~repro.solvers.ldl.numeric_ldl` +
    :func:`~repro.solvers.ldl.ldl_solve`; pass a precomputed ``sym`` to
    reuse the symbolic analysis (and its cached batch gather plan)
    across iterations.  ``use_batch`` selects the vectorized
    bit-identical fast path of :mod:`repro.batch`.
    """
    if sym is None:
        sym = symbolic_ldl(kkt_sparsity(problem))
    K = assemble_kkt(problem, w_diag, eps)
    L, D = numeric_ldl(K, sym, use_batch=use_batch)
    return ldl_solve(L, D, sym, rhs, use_batch=use_batch)
