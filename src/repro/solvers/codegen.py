"""CVXGEN-style code generation of the `ldlsolve()` kernel.

CVXGEN unrolls the KKT triangular solves into straight-line C code with
one statement per non-zero; the paper compiles exactly this function to
hardware ("The ldlsolve() function, which holds the core solver
algorithm, is selected for hardware compilation", Sec. IV-D).  The
generated source is plain C-like assignment code consumable by
:func:`repro.hls.parse_program`:

    y0 = b0;
    y5 = b5 - L5_0*y0 - L5_3*y3;
    z5 = y5*dinv5;
    x5 = z5 - L7_5*x7;

Forward substitution, diagonal scaling and backward substitution over
the fixed fill-in pattern -- long chains of dependent multiply-add
operations, the workload Fig. 15 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kkt import kkt_sparsity
from .ldl import SymbolicLDL, symbolic_ldl
from .qp import QPProblem

__all__ = ["SolverKernel", "generate_ldlsolve_source", "generate_kernel",
           "FactorKernel", "generate_ldlfactor_source",
           "generate_factor_kernel"]


def generate_ldlsolve_source(sym: SymbolicLDL) -> str:
    """Emit the straight-line `ldlsolve()` source for a symbolic
    factorization (permuted coordinates)."""
    rows = sym.rows()
    cols = sym.cols()
    lines: list[str] = [f"// ldlsolve: n={sym.n}, nnz(L)={sym.nnz}"]
    # forward substitution: L y = b
    for i in range(sym.n):
        terms = "".join(f" - L{i}_{j}*y{j}" for j in rows[i])
        lines.append(f"y{i} = b{i}{terms};")
    # backward substitution with the diagonal scaling folded in:
    #   x_i = dinv_i*y_i - sum_j L_ji*x_j
    # (inlining D^-1 keeps the whole chain in multiply-add form, so the
    # FMA pass can fuse the scale into the first subtraction)
    for i in range(sym.n - 1, -1, -1):
        terms = "".join(f" - L{j}_{i}*x{j}" for j in cols[i])
        lines.append(f"x{i} = dinv{i}*y{i}{terms};")
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class SolverKernel:
    """A generated `ldlsolve()` kernel plus its metadata."""

    name: str
    source: str
    symbolic: SymbolicLDL

    @property
    def output_names(self) -> list[str]:
        return [f"x{i}" for i in range(self.symbolic.n)]

    def input_bindings(self, L: dict[tuple[int, int], float],
                       D: np.ndarray,
                       rhs: np.ndarray) -> dict[str, float]:
        """Bind a concrete factorization + right-hand side to the
        kernel's input names (rhs given in *original* coordinates)."""
        sym = self.symbolic
        binds: dict[str, float] = {}
        permuted = rhs[sym.order]
        for i in range(sym.n):
            binds[f"b{i}"] = float(permuted[i])
            binds[f"dinv{i}"] = float(1.0 / D[i])
        for (i, j), v in L.items():
            binds[f"L{i}_{j}"] = float(v)
        return binds

    def unpermute(self, outputs: dict[str, float]) -> np.ndarray:
        """Map kernel outputs back to original variable order."""
        sym = self.symbolic
        x = np.zeros(sym.n)
        for i in range(sym.n):
            x[sym.order[i]] = outputs[f"x{i}"]
        return x

    @property
    def statement_count(self) -> int:
        return sum(1 for line in self.source.splitlines()
                   if line.strip().endswith(";"))


def generate_kernel(problem: QPProblem,
                    name: str | None = None) -> SolverKernel:
    """CVXGEN-like flow: problem -> KKT sparsity -> symbolic LDL ->
    generated `ldlsolve()` kernel."""
    pattern = kkt_sparsity(problem)
    sym = symbolic_ldl(pattern)
    return SolverKernel(
        name=name or f"ldlsolve_{problem.name}",
        source=generate_ldlsolve_source(sym),
        symbolic=sym,
    )


# ---------------------------------------------------------------------------
# ldlfactor(): the factorization phase (CVXGEN generates this too; the
# paper compiles only ldlsolve, but a full solver deployment needs both)
# ---------------------------------------------------------------------------

def generate_ldlfactor_source(sym: SymbolicLDL) -> str:
    """Emit the straight-line `ldlfactor()` source: the static-order
    LDL^T factorization unrolled over the fill-in pattern.

    Unlike `ldlsolve()`, the factorization contains *divisions*
    (``dinv_j = 1/d_j``), which is exactly why CVXGEN keeps it off the
    per-iteration hot path where possible and why the paper's FMA pass
    targets the solve phase.
    """
    rows = sym.rows()
    row_sets = [set(r) for r in rows]
    lines = [f"// ldlfactor: n={sym.n}, nnz(L)={sym.nnz}"]
    cols: list[list[int]] = [[] for _ in range(sym.n)]
    for i, j in sym.l_pattern:
        cols[j].append(i)
    for j in range(sym.n):
        terms = "".join(f" - L{j}_{k}*L{j}_{k}*d{k}" for k in rows[j])
        lines.append(f"d{j} = K{j}_{j}{terms};")
        lines.append(f"dinv{j} = 1.0/d{j};")
        for i in sorted(cols[j]):
            shared = [k for k in rows[j] if k in row_sets[i]]
            terms = "".join(f" - L{i}_{k}*L{j}_{k}*d{k}" for k in shared)
            lines.append(f"L{i}_{j} = (K{i}_{j}{terms})*dinv{j};")
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class FactorKernel:
    """A generated `ldlfactor()` kernel plus its metadata."""

    name: str
    source: str
    symbolic: SymbolicLDL

    @property
    def output_names(self) -> list[str]:
        names = [f"dinv{j}" for j in range(self.symbolic.n)]
        names += [f"L{i}_{j}" for i, j in self.symbolic.l_pattern]
        return names

    def input_bindings(self, K: np.ndarray) -> dict[str, float]:
        """Bind the (original-coordinates) KKT matrix to the kernel's
        ``K{i}_{j}`` inputs (permuted, lower triangle + diagonal)."""
        sym = self.symbolic
        Kp = K[np.ix_(sym.order, sym.order)]
        binds = {f"K{j}_{j}": float(Kp[j, j]) for j in range(sym.n)}
        for i, j in sym.l_pattern:
            binds[f"K{i}_{j}"] = float(Kp[i, j])
        return binds

    def extract(self, outputs: dict[str, float]
                ) -> tuple[dict[tuple[int, int], float], np.ndarray]:
        """Recover (L, D) in the shape :func:`repro.solvers.ldl_solve`
        expects."""
        sym = self.symbolic
        L = {(i, j): outputs[f"L{i}_{j}"] for i, j in sym.l_pattern}
        D = np.array([1.0 / outputs[f"dinv{j}"] for j in range(sym.n)])
        return L, D

    @property
    def statement_count(self) -> int:
        return sum(1 for line in self.source.splitlines()
                   if line.strip().endswith(";"))

    @property
    def division_count(self) -> int:
        return self.symbolic.n


def generate_factor_kernel(problem: QPProblem,
                           name: str | None = None) -> FactorKernel:
    """Problem -> KKT sparsity -> symbolic LDL -> `ldlfactor()` kernel."""
    pattern = kkt_sparsity(problem)
    sym = symbolic_ldl(pattern)
    return FactorKernel(
        name=name or f"ldlfactor_{problem.name}",
        source=generate_ldlfactor_source(sym),
        symbolic=sym,
    )
