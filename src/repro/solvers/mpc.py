"""Receding-horizon model-predictive control on the generated solver.

The paper's motivating application (Sec. I): "systems relying on
model-based/model-predictive control rules, which achieve much higher
quality than simple PID controllers".  An MPC controller re-solves its
trajectory QP at every tick from the current state and applies only the
first control input; the QP *structure* never changes, so the generated
fixed-sparsity solver (and its hardware schedule) is compiled once and
reused forever -- the deployment model that justifies hardware
`ldlsolve()` acceleration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .codegen import generate_kernel
from .ipm import InteriorPointSolver, KernelBackend
from .qp import QPProblem, trajectory_problem

__all__ = ["MPCController", "MPCStep", "simulate_closed_loop"]

_DT = 0.25
_NX, _NU = 4, 2


def _dynamics_matrices(dt: float) -> tuple[np.ndarray, np.ndarray]:
    Ad = np.eye(_NX)
    Ad[0, 2] = Ad[1, 3] = dt
    Bd = np.zeros((_NX, _NU))
    Bd[0, 0] = Bd[1, 1] = 0.5 * dt * dt
    Bd[2, 0] = Bd[3, 1] = dt
    return Ad, Bd


@dataclass
class MPCStep:
    """One closed-loop tick: the applied control and solver telemetry."""

    state: np.ndarray
    control: np.ndarray
    converged: bool
    iterations: int
    objective: float


@dataclass
class MPCController:
    """A receding-horizon controller over the trajectory QP family.

    ``engine`` (optional) is a carry-save FMA chain engine; when given,
    every KKT solve runs through the generated `ldlsolve()` kernel
    compiled by the FMA pass and executed with the bit-accurate
    datapath models.
    """

    horizon: int = 4
    n_obstacles: int = 1
    dt: float = _DT
    seed: int = 0
    engine: object | None = None
    _problem: QPProblem = field(init=False, repr=False)
    _backend: KernelBackend | None = field(init=False, repr=False,
                                           default=None)

    def __post_init__(self) -> None:
        self._problem = trajectory_problem(self.horizon,
                                           self.n_obstacles,
                                           dt=self.dt, seed=self.seed)
        if self.engine is not None:
            kernel = generate_kernel(self._problem)
            self._backend = KernelBackend(kernel, self.engine)

    @property
    def problem(self) -> QPProblem:
        return self._problem

    @property
    def pass_report(self):
        """The FMA-pass report of the compiled kernel (engine mode)."""
        return self._backend.pass_report if self._backend else None

    def plan(self, state: np.ndarray) -> MPCStep:
        """Solve the horizon problem from ``state``; return the first
        control input and telemetry."""
        state = np.asarray(state, dtype=float)
        if state.shape != (_NX,):
            raise ValueError(f"state must have shape ({_NX},)")
        Ad, _Bd = _dynamics_matrices(self.dt)
        # the only data that changes tick to tick: the first dynamics RHS
        self._problem.b[:_NX] = -(Ad @ state)
        solver = InteriorPointSolver(self._problem,
                                     backend=self._backend)
        res = solver.solve()
        u0 = res.z[self.horizon * _NX: self.horizon * _NX + _NU]
        return MPCStep(state=state.copy(), control=u0.copy(),
                       converged=res.converged,
                       iterations=res.iterations,
                       objective=res.objective)

    def step_dynamics(self, state: np.ndarray,
                      control: np.ndarray) -> np.ndarray:
        """Advance the plant one tick under ``control``."""
        Ad, Bd = _dynamics_matrices(self.dt)
        return Ad @ np.asarray(state, float) + Bd @ np.asarray(control,
                                                               float)


def simulate_closed_loop(controller: MPCController,
                         x0: np.ndarray, ticks: int) -> list[MPCStep]:
    """Run the plant + controller loop for ``ticks`` steps."""
    x = np.asarray(x0, dtype=float)
    steps: list[MPCStep] = []
    for _ in range(ticks):
        step = controller.plan(x)
        steps.append(step)
        x = controller.step_dynamics(x, step.control)
    return steps
