"""CVXGEN-like convex-solver substrate.

Trajectory-planning QPs (:mod:`~repro.solvers.qp`), KKT assembly
(:mod:`~repro.solvers.kkt`), static-order sparse LDL^T with symbolic
analysis (:mod:`~repro.solvers.ldl`), straight-line `ldlsolve()` code
generation (:mod:`~repro.solvers.codegen`) and a primal-dual
interior-point solver that can run its solve phase through the
generated kernel with carry-save FMA arithmetic
(:mod:`~repro.solvers.ipm`).
"""

from .codegen import (FactorKernel, SolverKernel, generate_factor_kernel,
                      generate_kernel, generate_ldlfactor_source,
                      generate_ldlsolve_source)
from .ipm import IPMResult, InteriorPointSolver, KernelBackend
from .kkt import assemble_kkt, kkt_dimension, kkt_sparsity
from .ldl import (SymbolicLDL, ldl_solve, ldl_solve_dense, min_degree_order,
                  numeric_ldl, symbolic_ldl)
from .mpc import MPCController, MPCStep, simulate_closed_loop
from .qp import BENCHMARK_SIZES, QPProblem, trajectory_problem

__all__ = [
    "QPProblem", "trajectory_problem", "BENCHMARK_SIZES",
    "assemble_kkt", "kkt_dimension", "kkt_sparsity",
    "SymbolicLDL", "symbolic_ldl", "numeric_ldl", "ldl_solve",
    "ldl_solve_dense", "min_degree_order",
    "SolverKernel", "generate_ldlsolve_source", "generate_kernel",
    "FactorKernel", "generate_ldlfactor_source", "generate_factor_kernel",
    "IPMResult", "InteriorPointSolver", "KernelBackend",
    "MPCController", "MPCStep", "simulate_closed_loop",
]
