"""Pipeline cutting: turn a combinational component chain into stages.

The paper's units are "manually pipelined to 200 MHz operation"
(Sec. IV-A); the baselines come out of CoreGen/FloPoCo with a latency
chosen to meet the same constraint.  We model this with a greedy cutter:
walk the critical-path component chain in order and start a new stage
whenever adding the next component would exceed the stage budget
(target period minus register overhead).

The resulting pipeline reports
* ``cycles`` -- number of stages (the unit's latency),
* ``fmax_mhz`` -- from the *longest* stage actually produced,
* ``stage_delays`` -- for inspection and tests,
* ``register_bits`` -- pipeline registers inserted (area/energy input).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .components import Component
from .technology import FpgaDevice

__all__ = ["Pipeline", "cut_pipeline", "cut_pipeline_fixed"]


@dataclass
class Pipeline:
    """A pipelined realization of a component chain."""

    stages: list[list[Component]] = field(default_factory=list)
    device: FpgaDevice | None = None

    @property
    def cycles(self) -> int:
        return len(self.stages)

    @property
    def stage_delays(self) -> list[float]:
        return [sum(c.delay_ns for c in s) for s in self.stages]

    @property
    def critical_stage_ns(self) -> float:
        return max(self.stage_delays) if self.stages else 0.0

    @property
    def fmax_mhz(self) -> float:
        if not self.stages or self.device is None:
            return float("inf")
        return self.device.max_frequency_mhz(self.critical_stage_ns)

    @property
    def register_bits(self) -> int:
        """Bits of pipeline registers: each stage boundary latches the
        output register width of its last component."""
        return sum(s[-1].reg_bits for s in self.stages if s)

    def meets(self, target_mhz: float) -> bool:
        return self.fmax_mhz >= target_mhz

    def validate(self, path: "list[Component] | None" = None,
                 target_mhz: float | None = None) -> list[str]:
        """Structural self-check; returns a list of problem strings.

        A clean pipeline returns ``[]``.  Checks: no empty stages, no
        negative/non-finite stage delays, the stages flatten back to
        exactly ``path`` (same components, same order -- a register
        file corrupted to drop or duplicate a component is caught
        here), and -- when ``target_mhz`` is given -- the timing the
        pipeline was cut for is still met.  The transient-fault
        campaign (:mod:`repro.faults`) uses this as the detector for
        stage-register corruption; a corruption it misses is silent.
        """
        problems: list[str] = []
        for i, stage in enumerate(self.stages):
            if not stage:
                problems.append(f"stage {i} is empty")
        for i, d in enumerate(self.stage_delays):
            if not (d >= 0.0) or d == float("inf"):
                problems.append(f"stage {i} delay {d!r} is implausible")
        if path is not None:
            flat = [c for stage in self.stages for c in stage]
            if len(flat) != len(path) or any(
                    a is not b for a, b in zip(flat, path)):
                problems.append(
                    "stages do not partition the component chain: "
                    f"{len(flat)} staged vs {len(path)} on the path")
        if target_mhz is not None and not self.meets(target_mhz):
            problems.append(
                f"achieved fmax {self.fmax_mhz:.1f} MHz misses the "
                f"{target_mhz:g} MHz target")
        return problems


def _greedy_stage_count(delays: list[float], budget: float) -> int:
    """Minimal number of contiguous stages with per-stage sum <= budget
    (components longer than the budget get a stage of their own)."""
    stages, used = 0, None
    for d in delays:
        if used is None or used + d > budget + 1e-9:
            stages += 1
            used = 0.0
        used += d
    return max(stages, 1)


def _balanced_partition(delays: list[float], k: int) -> list[int]:
    """Split the delay sequence into ``k`` contiguous stages minimizing
    the maximum stage delay (classic linear-partition DP).  Returns the
    end index (exclusive) of each stage."""
    n = len(delays)
    prefix = [0.0]
    for d in delays:
        prefix.append(prefix[-1] + d)

    INF = float("inf")
    # best[j][i]: minimal max-stage over the first i items in j stages
    best = [[INF] * (n + 1) for _ in range(k + 1)]
    cut = [[0] * (n + 1) for _ in range(k + 1)]
    best[0][0] = 0.0
    for j in range(1, k + 1):
        for i in range(1, n + 1):
            for m in range(j - 1, i):
                cost = max(best[j - 1][m], prefix[i] - prefix[m])
                if cost < best[j][i]:
                    best[j][i] = cost
                    cut[j][i] = m
    ends: list[int] = []
    i = n
    for j in range(k, 0, -1):
        ends.append(i)
        i = cut[j][i]
    return list(reversed(ends))


def cut_pipeline(path: list[Component], device: FpgaDevice,
                 target_mhz: float = 200.0) -> Pipeline:
    """Pipeline a component chain for a target clock.

    Components are atomic (a single adder or mux level is never split);
    a component longer than the whole stage budget gets a stage of its
    own -- exactly the situation of the un-splittable 385b adder the
    paper uses to motivate carry-save (Sec. III-D: 8.95 ns >> the 5 ns
    period), which then limits fmax below the target.

    Modeling the paper's "manually pipelined" units: first the minimal
    stage count that satisfies the budget is found (greedy), then the
    chain is re-partitioned into that many stages minimizing the longest
    stage (a designer balancing register placement by hand).  The unit's
    achieved fmax comes from the balanced longest stage.
    """
    if target_mhz <= 0:
        raise ValueError("target frequency must be positive")
    if not path:
        return Pipeline(device=device)
    budget = 1000.0 / target_mhz - device.reg_overhead_ns
    delays = [c.delay_ns for c in path]
    k = _greedy_stage_count(delays, budget)
    return cut_pipeline_fixed(path, device, k)


def cut_pipeline_fixed(path: list[Component], device: FpgaDevice,
                       cycles: int) -> Pipeline:
    """Balance the chain into exactly ``cycles`` stages (fixed-latency
    vendor IP configurations, e.g. the CoreGen 5-cycle multiplier)."""
    if not path:
        return Pipeline(device=device)
    cycles = min(max(cycles, 1), len(path))
    ends = _balanced_partition([c.delay_ns for c in path], cycles)
    pipe = Pipeline(device=device)
    start = 0
    for end in ends:
        if end > start:
            pipe.stages.append(list(path[start:end]))
        start = end
    return pipe
