"""Switching-activity-based energy estimation (Table II).

The paper measured energy with XPower on the *actual switching activity*
of the units while running the Sec. IV-B benchmark, and found that "most
of the energy was drawn in the large CSA trees of multiplication and
addition".  We follow the same methodology:

1. **Measure activity** -- run the Fig. 14 recurrence through the
   *functional* models and record the average toggle probability of the
   datapath signals (Hamming distance between consecutive operations on
   the window / result words).
2. **Propagate through the netlist** -- every component contributes
   ``toggle_bits * activity * glitch * lut_toggle_pj``.  Carry-save
   compressor trees receive a glitch multiplier: their outputs settle
   through several transient values per cycle (the classic CSA glitch
   cascade XPower sees), which is what makes the CS units 4-5x hungrier
   than the discrete baselines despite similar clock rates.
3. Add DSP, register and clock-tree energy from the device parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fma.chain import FmaEngine
from ..fp.value import FPValue
from .netlist import UnitDesign
from .synthesis import SynthesisReport
from .technology import VIRTEX6, FpgaDevice

__all__ = [
    "EnergyReport",
    "glitch_factor",
    "measure_toggle_activity",
    "estimate_energy",
]

#: Glitch multipliers per component class: how many transient toggles a
#: signal sees per functional toggle.  CSA trees glitch heavily (every
#: level re-evaluates as its inputs ripple); carry chains are glitch-damped
#: by the dedicated carry logic; muxes and control barely glitch.
_GLITCH = {
    "csa": 6.0,
    "adder": 1.6,
    "shifter": 1.4,
    "mux": 1.2,
    "default": 1.0,
}

_CSA_PREFIXES = ("csa", "csatree", "pp-", "window-3to2", "window-carry",
                 "karatsuba", "trunc", "carry-reduce-lanes", "pp-merge",
                 "addend-inject")
_ADDER_PREFIXES = ("add", "mant-add", "carry-reduce", "prod-add",
                   "carry-collapse", "complement", "round")
_SHIFT_PREFIXES = ("shift", "align", "normalize", "a-preshift")
_MUX_PREFIXES = ("mux", "result-mux")


def glitch_factor(component_name: str) -> float:
    """Classify a component by name into a glitch multiplier class."""
    n = component_name
    if n.startswith(_CSA_PREFIXES):
        return _GLITCH["csa"]
    if n.startswith(_ADDER_PREFIXES):
        return _GLITCH["adder"]
    if n.startswith(_SHIFT_PREFIXES):
        return _GLITCH["shifter"]
    if n.startswith(_MUX_PREFIXES):
        return _GLITCH["mux"]
    return _GLITCH["default"]


def _hamming(a: int, b: int) -> int:
    return bin(a ^ b).count("1")


@dataclass(frozen=True)
class ActivityProfile:
    """Measured per-bit toggle probabilities of the two signal classes
    XPower distinguishes in these datapaths.

    ``data_rate`` -- ordinary data signals (operands, products,
    shifters), measured on the packed results.
    ``window_rate`` -- the wide carry-save adder-window fabric; for the
    PCS unit the Carry Reduce stage *cleans* the representation (low
    rate), while the FCS unit's unreduced carry wires toggle ~2.4x as
    often -- the physical reason its energy nearly matches the larger
    PCS unit in Table II.
    """

    data_rate: float
    window_rate: float


def measure_toggle_activity(engine: FmaEngine, b1: list[FPValue],
                            b2: list[FPValue], x0: list[FPValue],
                            steps: int) -> ActivityProfile:
    """Run the Fig. 14 recurrence and record toggle probabilities.

    The data rate is measured on the packed (lowered) results; for
    carry-save engines the window rate is additionally measured on the
    actual internal window CS pair captured by :class:`FmaTrace`.
    """
    from ..fma.chain import CSFmaEngine
    from ..fma.csfma import FmaTrace

    xs = [engine.lift(v) for v in x0]
    prev_word: int | None = None
    prev_window: int | None = None
    toggles = samples = 0
    wtoggles = wsamples = 0
    is_cs = isinstance(engine, CSFmaEngine)
    W = engine.unit.params.window_width if is_cs else 0
    for n in range(steps):
        traces = (FmaTrace(), FmaTrace()) if is_cs else (None, None)
        if is_cs:
            t = engine.unit.fma(xs[-3], b2[n], xs[-2], traces[0])
            r = engine.unit.fma(t, b1[n], xs[-1], traces[1])
        else:
            t = engine.fma(xs[-3], b2[n], xs[-2])
            r = engine.fma(t, b1[n], xs[-1])
        xs.append(r)
        for value, tr in zip((t, r), traces):
            lowered = engine.lower(value)
            word = lowered.pack()
            if prev_word is not None:
                toggles += _hamming(word, prev_word)
                samples += lowered.packed_width
            prev_word = word
            if tr is not None:
                wword = tr.window_sum | (tr.window_carry << W)
                if prev_window is not None:
                    wtoggles += _hamming(wword, prev_window)
                    wsamples += 2 * W
                prev_window = wword
    data = toggles / samples if samples else 0.0
    window = wtoggles / wsamples if wsamples else data
    return ActivityProfile(data_rate=data, window_rate=window)


@dataclass(frozen=True)
class EnergyReport:
    """Energy per multiply-add operation, broken down by source (nJ)."""

    name: str
    logic_nj: float
    dsp_nj: float
    register_nj: float
    clock_nj: float
    activity: "ActivityProfile"

    @property
    def total_nj(self) -> float:
        return self.logic_nj + self.dsp_nj + self.register_nj + \
            self.clock_nj


#: Components consuming the window *after* any representation cleanup
#: (their toggle rate follows the measured window activity: low for the
#: carry-reduced PCS window, high for the raw FCS one).  Everything
#: upstream -- multiplier trees, the 3:2 compression, shifters -- runs at
#: the data rate.
_WINDOW_PREFIXES = ("zd", "result-mux", "round-data-slice")


def _component_rate(name: str, profile: "ActivityProfile") -> float:
    if name.startswith(_WINDOW_PREFIXES):
        return profile.window_rate
    return profile.data_rate


def estimate_energy(design: UnitDesign, report: SynthesisReport,
                    activity: "ActivityProfile | float",
                    device: FpgaDevice = VIRTEX6) -> EnergyReport:
    """Energy per operation from the netlist and measured activity.

    Every component's signal bits toggle at the measured rate of the
    signal class it processes (data vs window fabric), amplified by its
    glitch class; DSP, register and clock-tree energy come from the
    device parameters.
    """
    if isinstance(activity, float):
        activity = ActivityProfile(activity, activity)
    for rate in (activity.data_rate, activity.window_rate):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("activity rates must be probabilities")
    logic_pj = 0.0
    for comp in design.all_components():
        rate = _component_rate(comp.name, activity)
        logic_pj += (comp.toggle_bits * rate * glitch_factor(comp.name)
                     * device.lut_toggle_pj)
    # long-net routing energy of the wide window fabric (the paper's
    # XPower analysis attributed most of the energy to the large CS
    # structures; their wires span the whole unit)
    logic_pj += (design.window_wires * activity.window_rate
                 * device.net_toggle_pj)
    dsp_pj = report.dsps * device.dsp_op_pj
    reg_pj = report.register_bits * activity.data_rate * \
        device.ff_toggle_pj
    clock_pj = report.register_bits * device.clock_pj_per_ff
    return EnergyReport(
        name=design.name,
        logic_nj=logic_pj / 1000.0,
        dsp_nj=dsp_pj / 1000.0,
        register_nj=reg_pj / 1000.0,
        clock_nj=clock_pj / 1000.0,
        activity=activity,
    )
