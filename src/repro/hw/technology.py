"""FPGA device timing/area/energy parameters.

The paper evaluates on a Xilinx Virtex-6 (speed grade -1) with ISE 14.1
post-layout timing.  We model the device with a small set of parameters
calibrated against the timing data points the paper itself publishes:

* an 11-bit carry-chain adder: 1.742 ns register-to-register,
* a 5-bit adder: 1.650 ns,
* a 385-bit adder: 8.95 ns  (all Sec. III-D/III-E).

A linear carry-chain model ``d(w) = base + slope * w`` fitted through the
11b and 385b points gives ``base = 1.530 ns``, ``slope = 0.01927 ns/bit``
(the 5b point lands at 1.63 ns, within 1.5 % of the quoted 1.650 ns).

Devices differ in the features the paper cares about: the Virtex-6/7
DSP48E1 has the 25-bit pre-adder the FCS-FMA needs; the Virtex-5 DSP48E
does not (Sec. III-H).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

__all__ = ["FpgaDevice", "VIRTEX5", "VIRTEX6", "VIRTEX7", "device_by_name"]


@dataclass(frozen=True)
class FpgaDevice:
    """Timing/area/energy parameters of one FPGA family + speed grade."""

    name: str
    family: str
    # -- timing (ns) ---------------------------------------------------
    lut_level_ns: float          # one LUT6 + average local route
    carry_base_ns: float         # carry-chain adder: base term
    carry_per_bit_ns: float      # carry-chain adder: per-bit term
    dsp_mult_ns: float           # DSP multiplier array (unregistered)
    dsp_cascade_ns: float        # one DSP post-adder cascade hop
    dsp_preadd_ns: float         # DSP pre-adder stage (0 if absent)
    reg_overhead_ns: float       # clk->q + setup + clock skew
    # -- features --------------------------------------------------------
    has_dsp_preadder: bool
    dsp_a_width: int             # DSP multiplier port widths (signed)
    dsp_b_width: int
    # -- energy (pJ) -----------------------------------------------------
    lut_toggle_pj: float         # dynamic energy per LUT output toggle
    ff_toggle_pj: float          # per flip-flop toggle
    dsp_op_pj: float             # per DSP multiply-accumulate operation
    net_toggle_pj: float         # long-net routing energy per wire toggle
    clock_pj_per_ff: float       # clock-tree energy per FF per cycle

    # -- derived helpers ------------------------------------------------

    def adder_regreg_ns(self, width: int) -> float:
        """Register-to-register delay of a ``width``-bit carry-chain
        adder (the quantity the paper quotes)."""
        return self.carry_base_ns + self.carry_per_bit_ns * width

    def adder_comb_ns(self, width: int) -> float:
        """Combinational-only adder delay."""
        return self.adder_regreg_ns(width) - self.reg_overhead_ns

    def max_frequency_mhz(self, critical_path_ns: float) -> float:
        """Clock limit for a stage with the given combinational delay."""
        return 1000.0 / (critical_path_ns + self.reg_overhead_ns)


#: Virtex-5: DSP48E without pre-adder -- the PCS-FMA's porting target.
VIRTEX5 = FpgaDevice(
    name="virtex5",
    family="Virtex-5",
    lut_level_ns=1.00,
    carry_base_ns=1.60,
    carry_per_bit_ns=0.0215,
    dsp_mult_ns=2.95,
    dsp_cascade_ns=1.95,
    dsp_preadd_ns=0.0,
    reg_overhead_ns=0.55,
    has_dsp_preadder=False,
    dsp_a_width=25,
    dsp_b_width=18,
    lut_toggle_pj=0.22,
    ff_toggle_pj=0.06,
    dsp_op_pj=7.0,
    net_toggle_pj=3.4,
    clock_pj_per_ff=0.035,
)

#: Virtex-6 speed grade -1: the paper's evaluation device.  Carry-chain
#: parameters calibrated to the paper's own adder measurements.
VIRTEX6 = FpgaDevice(
    name="virtex6",
    family="Virtex-6",
    lut_level_ns=0.90,
    carry_base_ns=1.530,
    carry_per_bit_ns=0.019273,
    dsp_mult_ns=2.65,
    dsp_cascade_ns=1.75,
    dsp_preadd_ns=1.00,
    reg_overhead_ns=0.50,
    has_dsp_preadder=True,
    dsp_a_width=25,
    dsp_b_width=18,
    lut_toggle_pj=0.20,
    ff_toggle_pj=0.05,
    dsp_op_pj=6.0,
    net_toggle_pj=3.0,
    clock_pj_per_ff=0.030,
)

#: Virtex-7: same architecture generation as Virtex-6, slightly faster.
VIRTEX7 = FpgaDevice(
    name="virtex7",
    family="Virtex-7",
    lut_level_ns=0.80,
    carry_base_ns=1.38,
    carry_per_bit_ns=0.0174,
    dsp_mult_ns=2.40,
    dsp_cascade_ns=1.60,
    dsp_preadd_ns=0.90,
    reg_overhead_ns=0.45,
    has_dsp_preadder=True,
    dsp_a_width=25,
    dsp_b_width=18,
    lut_toggle_pj=0.18,
    ff_toggle_pj=0.045,
    dsp_op_pj=5.5,
    net_toggle_pj=2.7,
    clock_pj_per_ff=0.027,
)

_DEVICES = {d.name: d for d in (VIRTEX5, VIRTEX6, VIRTEX7)}


@lru_cache(maxsize=None)
def device_by_name(name: str) -> FpgaDevice:
    """Look up a device model by canonical name (memoized; the device
    models are frozen value objects, so sharing them is safe)."""
    try:
        return _DEVICES[name]
    except KeyError:
        raise KeyError(f"unknown device {name!r}; known: "
                       f"{sorted(_DEVICES)}") from None
