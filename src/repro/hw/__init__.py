"""FPGA technology / synthesis-estimate substrate.

Regenerates the paper's hardware numbers from a component-level model:
Table I (fmax/cycles/LUTs/DSPs), Fig. 13 (latency per multiply-add) and
Table II (energy per operation), calibrated against the timing data
points the paper itself publishes (see DESIGN.md).
"""

from .components import (Component, dsp_tiles, karatsuba_dsps,
                         lut_levels_for_mux, truncated_dsp_tiles)
from .energy import (EnergyReport, estimate_energy, glitch_factor,
                     measure_toggle_activity)
from .netlist import (UnitDesign, classic_fma_design, coregen_adder,
                      coregen_mul_add, coregen_multiplier,
                      cs_to_ieee_converter, design_by_name,
                      divider_design, fcs_fma_design, flopoco_fppipeline,
                      ieee_to_cs_converter, pcs_fma_design)
from .pipeline import Pipeline, cut_pipeline, cut_pipeline_fixed
from .synthesis import SynthesisReport, synthesize, synthesize_by_name
from .technology import (VIRTEX5, VIRTEX6, VIRTEX7, FpgaDevice,
                         device_by_name)

__all__ = [
    "FpgaDevice", "VIRTEX5", "VIRTEX6", "VIRTEX7", "device_by_name",
    "Component", "dsp_tiles", "karatsuba_dsps", "truncated_dsp_tiles",
    "lut_levels_for_mux",
    "UnitDesign", "design_by_name", "coregen_multiplier", "coregen_adder",
    "coregen_mul_add", "flopoco_fppipeline", "classic_fma_design",
    "pcs_fma_design", "fcs_fma_design", "divider_design",
    "ieee_to_cs_converter",
    "cs_to_ieee_converter",
    "Pipeline", "cut_pipeline", "cut_pipeline_fixed",
    "SynthesisReport", "synthesize", "synthesize_by_name",
    "EnergyReport", "estimate_energy", "glitch_factor",
    "measure_toggle_activity",
]
