"""Hardware component library: delay / LUT / DSP / FF cost per block.

Every datapath block that appears in one of the FMA architectures (or in
the baseline IP cores) is modeled as a :class:`Component` with a delay on
the given device, a LUT/DSP footprint and a register width (used by the
pipeline cutter for FF accounting and by the energy model for clock/FF
energy).

Cost formulas are first-principles FPGA estimates (one LUT6 per 3:2
compressor bit, ``ceil(log4)`` levels per wide multiplexer, DSP tile
counts from the 24x17 unsigned tiling of the DSP48E1), with the absolute
scale calibrated once against the paper's Table I (see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .technology import FpgaDevice

__all__ = [
    "Component",
    "lut_levels_for_mux",
    "dsp_tiles",
    "karatsuba_dsps",
    "truncated_dsp_tiles",
    "make_csa_tree",
    "make_adder",
    "make_csa_level",
    "make_mux",
    "make_shifter",
    "make_lza",
    "make_zero_detect",
    "make_rounder",
    "make_dsp_mult_stage",
    "make_dsp_cascade",
    "make_dsp_preadd",
    "make_unpack",
    "make_pack",
    "make_exponent_logic",
    "make_logic",
]


@dataclass(frozen=True)
class Component:
    """One combinational datapath block.

    ``delay_ns`` is the block's contribution to the critical path;
    blocks documented by the paper as running *in parallel* with the
    critical path (the pre-shifter, A's rounding unit, the early LZA)
    appear in a unit's off-path list with their area/energy only.
    """

    name: str
    delay_ns: float
    luts: int
    dsps: int = 0
    reg_bits: int = 0        # output register width when a cut lands here
    toggle_bits: int = 0     # signal width for the activity model

    def scaled(self, factor: float) -> "Component":
        return Component(self.name, self.delay_ns * factor, self.luts,
                         self.dsps, self.reg_bits, self.toggle_bits)


def lut_levels_for_mux(inputs: int) -> int:
    """LUT levels for an N-to-1 one-bit multiplexer.

    Virtex-class slices combine four LUT6 through the F7/F8 muxes into an
    8:1 select per logic level."""
    if inputs <= 1:
        return 0
    return max(1, math.ceil(math.log(inputs, 8)))


def dsp_tiles(wa: int, wb: int, device: FpgaDevice) -> int:
    """DSP blocks for a full ``wa x wb`` unsigned multiplier.

    The DSP48E1 multiplies 25x18 *signed*; unsigned tiling uses 24x17
    tiles.  One extra DSP absorbs the final partial-product accumulation
    (the Xilinx CoreGen "full usage" configuration).  Binary64 (53x53)
    gives 3*4 + 1 = 13 DSPs -- the Table I CoreGen figure; the PCS-FMA's
    53x110 multiplier gives 4*5 + 1 = 21.
    """
    ta = math.ceil(wa / (device.dsp_a_width - 1))
    tb = math.ceil(wb / (device.dsp_b_width - 1))
    return ta * tb + 1


def karatsuba_dsps(w: int, device: FpgaDevice) -> int:
    """DSP blocks for a Karatsuba-decomposed squarish multiplier
    (FloPoCo's DSP-saving strategy [11]): a k-way split needs
    ``k*(k+1)/2`` sub-products plus one accumulation DSP.  53x53 with
    k = ceil(53/18) = 3 gives 7 -- the Table I FloPoCo figure."""
    k = math.ceil(w / device.dsp_b_width)
    return k * (k + 1) // 2 + 1


def truncated_dsp_tiles(wa: int, wb: int, device: FpgaDevice) -> int:
    """DSP blocks for the FCS multiplier (CS-form output, truncated).

    Full tiling minus one tile column: the least-significant column's
    output lies entirely below the kept rounding-data block and is
    replaced by a constant correction; and because the product *stays in
    carry-save form* (it feeds the CS window directly), no final
    accumulation DSP is needed.  53x87 gives 4*4 - 4 = 12 -- the
    Table I FCS figure."""
    ta = math.ceil(wa / (device.dsp_a_width - 1))
    tb = math.ceil(wb / (device.dsp_b_width - 1))
    return max(ta * tb - tb, 1)


# ---------------------------------------------------------------------------
# component factories
# ---------------------------------------------------------------------------

def make_adder(width: int, device: FpgaDevice,
               name: str | None = None) -> Component:
    """A carry-chain ripple adder (the calibrated delay model)."""
    return Component(
        name or f"add{width}",
        delay_ns=device.adder_comb_ns(width),
        luts=width,
        reg_bits=width + 1,
        toggle_bits=width,
    )


def make_csa_level(width: int, device: FpgaDevice,
                   name: str | None = None) -> Component:
    """One 3:2 compressor level across ``width`` bits (one LUT6/bit)."""
    return Component(
        name or f"csa{width}",
        delay_ns=device.lut_level_ns,
        luts=width,
        reg_bits=2 * width,
        toggle_bits=2 * width,
    )


def make_mux(inputs: int, width: int, device: FpgaDevice,
             name: str | None = None) -> Component:
    """N-to-1 multiplexer, ``width`` bits wide.

    Wide multiplexers pay a routing/fan-out penalty proportional to the
    bus width -- the "routing difficulties" that forced the paper's FCS
    unit down to three 29c blocks (Sec. III-H).
    """
    levels = lut_levels_for_mux(inputs)
    routing = 0.0032 * width * max(1, levels)
    return Component(
        name or f"mux{inputs}x{width}",
        delay_ns=levels * device.lut_level_ns + routing,
        luts=width * max(1, (inputs - 1) // 2),
        reg_bits=width,
        toggle_bits=width,
    )


def make_shifter(width: int, positions: int, device: FpgaDevice,
                 name: str | None = None) -> Component:
    """Variable-distance barrel shifter: log4(positions) mux levels.

    This is the block the PCS/FCS normalization *eliminates*
    (Sec. III-D: the MSB depends on every input bit)."""
    levels = lut_levels_for_mux(positions)
    return Component(
        name or f"shift{width}x{positions}",
        delay_ns=levels * device.lut_level_ns,
        luts=width * levels,
        reg_bits=width,
        toggle_bits=width,
    )


def make_lza(width: int, device: FpgaDevice,
             name: str | None = None) -> Component:
    """Leading-zero anticipator: indicator string + priority encoder."""
    levels = 2 + lut_levels_for_mux(width)
    return Component(
        name or f"lza{width}",
        delay_ns=levels * device.lut_level_ns,
        luts=int(2.5 * width),
        reg_bits=math.ceil(math.log2(max(width, 2))),
        toggle_bits=width,
    )


def make_zero_detect(blocks: int, block_size: int, device: FpgaDevice,
                     name: str | None = None) -> Component:
    """Block Zero Detector: per-block digit pattern reduction (a LUT
    tree over 2*block_size bits, accelerated by the slice carry chains)
    plus the block-level carry/sign lookahead (Sec. III-F / Fig. 10).
    The paper notes this block "is now critical and determines the total
    FMA latency"."""
    per_block_levels = math.ceil(math.log(max(2 * block_size, 2), 8))
    chain_levels = math.ceil(math.log(max(blocks, 2), 4))
    levels = per_block_levels + chain_levels + 1
    return Component(
        name or f"zd{blocks}x{block_size}",
        delay_ns=levels * device.lut_level_ns,
        luts=blocks * (block_size + 20),
        reg_bits=blocks,
        toggle_bits=blocks * block_size,
    )


def make_rounder(width: int, device: FpgaDevice,
                 name: str | None = None) -> Component:
    """Rounding stage: decision logic plus a compound-adder select
    (sum and sum+1 are computed side by side, the decision picks one),
    so the delay is two LUT levels rather than another carry chain;
    area pays for the duplicated incrementer."""
    return Component(
        name or f"round{width}",
        delay_ns=2 * device.lut_level_ns,
        luts=int(1.5 * width),
        reg_bits=width,
        toggle_bits=width,
    )


def make_dsp_mult_stage(tiles: int, device: FpgaDevice,
                        name: str = "dsp-mult") -> Component:
    """The DSP multiplier array stage (all tiles in parallel)."""
    return Component(
        name,
        delay_ns=device.dsp_mult_ns,
        luts=0,
        dsps=tiles,
        reg_bits=tiles * 43,
        toggle_bits=tiles * 43,
    )


def make_dsp_cascade(hops: int, device: FpgaDevice,
                     name: str = "dsp-cascade") -> Component:
    """Post-adder cascade hops inside the DSP columns."""
    return Component(
        name,
        delay_ns=hops * device.dsp_cascade_ns,
        luts=0,
        reg_bits=48,
        toggle_bits=48 * hops,
    )


def make_dsp_preadd(device: FpgaDevice,
                    name: str = "dsp-preadd") -> Component:
    """The DSP48E1 pre-adder stage (Sec. III-H; Virtex-6 and later)."""
    if not device.has_dsp_preadder:
        raise ValueError(
            f"{device.family} has no DSP pre-adder; the FCS-FMA "
            "requires Virtex-6 or later (Sec. III-H)")
    return Component(name, delay_ns=device.dsp_preadd_ns, luts=0,
                     reg_bits=25, toggle_bits=25)


def make_unpack(width: int, device: FpgaDevice,
                name: str = "unpack") -> Component:
    """IEEE operand unpack: implied-1 insert, exception decode."""
    return Component(name, delay_ns=device.lut_level_ns,
                     luts=width // 4 + 8, reg_bits=width,
                     toggle_bits=width)


def make_pack(width: int, device: FpgaDevice,
              name: str = "pack") -> Component:
    """IEEE result pack: exception encode, field assembly."""
    return Component(name, delay_ns=device.lut_level_ns,
                     luts=width // 4 + 8, reg_bits=width,
                     toggle_bits=width)


def make_exponent_logic(device: FpgaDevice,
                        name: str = "exp-logic") -> Component:
    """Exponent add/compare/select path (narrow, runs alongside)."""
    return Component(name, delay_ns=device.adder_comb_ns(13),
                     luts=48, reg_bits=13, toggle_bits=13)


def make_logic(name: str, levels: float, luts: int, device: FpgaDevice,
               reg_bits: int = 0, toggle_bits: int = 0) -> Component:
    """Generic glue logic of a given LUT-level depth."""
    return Component(name, delay_ns=levels * device.lut_level_ns,
                     luts=luts, reg_bits=reg_bits,
                     toggle_bits=toggle_bits or luts)


def make_csa_tree(rows: int, width: int, device: FpgaDevice,
                  name: str | None = None,
                  on_path_levels: int | None = None) -> Component:
    """A full partial-product reduction tree: ``rows-2`` compressor rows
    of ``width`` LUTs each (one LUT6 per 3:2 compressor bit).

    ``on_path_levels`` caps the *delay* contribution: DSP cascades have
    usually absorbed most of the reduction by the time the LUT tree
    takes over, so only the trailing levels sit on the critical path
    while the full compressor area is paid.
    """
    from ..cs.csa import csa_tree_depth

    depth = csa_tree_depth(rows)
    levels = depth if on_path_levels is None else min(on_path_levels,
                                                      depth)
    return Component(
        name or f"csatree{rows}x{width}",
        delay_ns=levels * device.lut_level_ns,
        luts=max(rows - 2, 0) * width,
        reg_bits=2 * width,
        toggle_bits=max(rows - 2, 0) * width,
    )
