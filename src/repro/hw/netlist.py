"""Architecture netlists: the component chains of every evaluated unit.

Each function returns a :class:`UnitDesign`: the ordered critical-path
component chain (input of the pipeline cutter) plus the off-path blocks
that the paper explicitly runs in parallel with the critical path (the
addend pre-shifter, A's rounding unit, the early LZA, exponent logic).
Off-path blocks contribute area and energy but not latency.

Latency policy
--------------
* The paper's own units are "manually pipelined to 200 MHz" -- their
  cycle counts are *derived* by the pipeline cutter.
* The CoreGen IPs are fixed-latency vendor configurations; the paper
  names the ones it picked ("low latency" 5-cycle multiplier, 4-cycle
  adder), so those designs carry ``fixed_cycles`` and the model derives
  the fmax a balanced register placement achieves.
* FloPoCo's FPPipeline produced an 11-stage pipeline at the 200 MHz
  target (Table I); its un-retimed add/complement section is the stage
  that misses the target (190 MHz), which the model reproduces with an
  atomic add section.

DSP policy (see :mod:`repro.hw.components`): CoreGen/PCS use the full
24x17 tiling plus one accumulation DSP; FloPoCo uses a Karatsuba
decomposition; the FCS multiplier keeps its product in carry-save form
and truncates the lowest tile column.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fma.formats import CSFmaParams, FCS_PARAMS, PCS_PARAMS
from .components import (Component, dsp_tiles, karatsuba_dsps, make_adder,
                         make_csa_level, make_csa_tree, make_dsp_cascade,
                         make_dsp_mult_stage, make_dsp_preadd,
                         make_exponent_logic, make_logic, make_lza,
                         make_mux, make_pack, make_rounder, make_shifter,
                         make_unpack, make_zero_detect, truncated_dsp_tiles)
from .technology import FpgaDevice

__all__ = [
    "UnitDesign",
    "coregen_multiplier",
    "coregen_adder",
    "coregen_mul_add",
    "flopoco_fppipeline",
    "classic_fma_design",
    "pcs_fma_design",
    "fcs_fma_design",
    "divider_design",
    "ieee_to_cs_converter",
    "cs_to_ieee_converter",
    "design_by_name",
    "make_block_zero_detect",
]


@dataclass
class UnitDesign:
    """A unit's critical path + parallel blocks, ready for synthesis.

    ``fixed_cycles`` pins the latency of vendor IP configurations;
    ``subunits`` marks composites (discrete mul followed by add) whose
    parts are pipelined independently.
    """

    name: str
    path: list[Component]
    offpath: list[Component] = field(default_factory=list)
    fixed_cycles: int | None = None
    subunits: list["UnitDesign"] = field(default_factory=list)
    #: wires of the wide adder-window fabric routed across the unit
    #: (drives the long-net routing energy term; 0 for narrow datapaths)
    window_wires: int = 0

    @property
    def combinational_ns(self) -> float:
        return sum(c.delay_ns for c in self.path)

    @property
    def luts(self) -> int:
        return sum(c.luts for c in self.path) + \
            sum(c.luts for c in self.offpath)

    @property
    def dsps(self) -> int:
        return sum(c.dsps for c in self.path) + \
            sum(c.dsps for c in self.offpath)

    def all_components(self) -> list[Component]:
        return list(self.path) + list(self.offpath)


def make_block_zero_detect(blocks: int, block_size: int,
                           device: FpgaDevice) -> Component:
    """The PCS Zero Detector modeled as per-block digit-pattern LUT
    reduction plus a block-granular lookahead on the slice carry chain
    (Fig. 10 rules; "the latter is now critical and determines the total
    FMA latency", Sec. III-F)."""
    import math

    per_block_levels = math.ceil(math.log(max(2 * block_size, 2), 8))
    zd = make_zero_detect(blocks, block_size, device)
    delay = per_block_levels * device.lut_level_ns + \
        device.adder_comb_ns(blocks)
    return Component(zd.name, delay, zd.luts, 0, zd.reg_bits,
                     zd.toggle_bits)


# ---------------------------------------------------------------------------
# Xilinx CoreGen-like discrete IP (Table I row 1)
# ---------------------------------------------------------------------------

def coregen_multiplier(device: FpgaDevice) -> UnitDesign:
    """53x53 'low latency' 5-cycle double multiplier (full DSP usage)."""
    tiles = dsp_tiles(53, 53, device)
    path = [
        make_unpack(64, device),
        make_dsp_mult_stage(tiles, device),
        make_dsp_cascade(1, device, "dsp-cascade-a"),
        make_dsp_cascade(1, device, "dsp-cascade-b"),
        make_csa_level(106, device, "pp-merge"),
        make_adder(58, device, "mant-add"),
        make_logic("normalize1", 1.0, 60, device, reg_bits=54),
        make_rounder(53, device),
        make_pack(64, device),
    ]
    offpath = [make_csa_tree(5, 106, device, "pp-tree", on_path_levels=0),
               make_exponent_logic(device)]
    return UnitDesign("coregen-mul", path, offpath, fixed_cycles=5)


def coregen_adder(device: FpgaDevice) -> UnitDesign:
    """'Low latency' 4-cycle double adder."""
    path = [
        make_unpack(64, device),
        make_logic("swap-expdiff", 1.0, 90, device, reg_bits=120),
        make_shifter(56, 56, device, "align"),
        make_adder(57, device, "mant-add"),
        make_shifter(56, 56, device, "normalize"),
        make_rounder(53, device),
        make_pack(64, device),
    ]
    offpath = [make_lza(57, device), make_exponent_logic(device)]
    return UnitDesign("coregen-add", path, offpath, fixed_cycles=4)


def coregen_mul_add(device: FpgaDevice) -> UnitDesign:
    """The discrete multiply-then-add datapath Table I reports: the two
    IPs back to back (cycles add; fmax is the slower of the two)."""
    mul = coregen_multiplier(device)
    add = coregen_adder(device)
    return UnitDesign("coregen", mul.path + add.path,
                      mul.offpath + add.offpath,
                      subunits=[mul, add])


# ---------------------------------------------------------------------------
# FloPoCo FPPipeline (Table I row 2)
# ---------------------------------------------------------------------------

def flopoco_fppipeline(device: FpgaDevice) -> UnitDesign:
    """FloPoCo's fused mul+add pipeline (FPPipeline command, [24]).

    Karatsuba multiplier (fewest DSPs in the field), conservative
    per-operator registering (11 stages at the 200 MHz target), and an
    add/complement section that ISE could not retime apart -- the stage
    that limits the unit to 190 MHz in Table I.
    """
    dsps = karatsuba_dsps(53, device)
    add_section = Component(
        "add-complement-section",
        delay_ns=device.adder_comb_ns(110) + 1.8 * device.lut_level_ns,
        luts=110 + 130,
        reg_bits=112,
        toggle_bits=240,
    )
    path = [
        make_unpack(64, device, "unpack-bc"),
        make_dsp_mult_stage(dsps, device),
        make_dsp_cascade(1, device),
        make_csa_level(106, device, "karatsuba-recombine"),
        make_csa_level(106, device, "pp-merge"),
        make_adder(106, device, "prod-add"),
        make_logic("swap-expdiff", 1.0, 90, device, reg_bits=130),
        make_shifter(57, 108, device, "align"),
        add_section,
        make_shifter(108, 110, device, "normalize"),
        make_rounder(53, device),
        make_pack(64, device),
    ]
    offpath = [make_logic("lzc", 2.0, 120, device),
               make_exponent_logic(device),
               make_csa_tree(4, 106, device, "karatsuba-adders",
                             on_path_levels=0)]
    return UnitDesign("flopoco", path, offpath, fixed_cycles=11)


# ---------------------------------------------------------------------------
# Classic FMA baseline (Fig. 4; used by the HLS operator library)
# ---------------------------------------------------------------------------

def classic_fma_design(device: FpgaDevice) -> UnitDesign:
    """Classic 1990 FMA: CS product, 161b adder, LZA + full shifter."""
    tiles = dsp_tiles(53, 53, device)
    path = [
        make_unpack(64, device),
        make_dsp_mult_stage(tiles, device),
        make_dsp_cascade(1, device),
        make_csa_level(161, device, "addend-inject"),
        make_adder(161, device, "main-add"),
        make_logic("complement", 1.0, 161, device, reg_bits=161),
        make_shifter(161, 161, device, "normalize"),
        make_rounder(53, device),
        make_pack(64, device),
    ]
    offpath = [make_shifter(55, 161, device, "pre-align"),
               make_lza(161, device), make_exponent_logic(device),
               make_csa_tree(6, 161, device, "pp-tree", on_path_levels=0)]
    return UnitDesign("classic-fma", path, offpath)


# ---------------------------------------------------------------------------
# PCS-FMA (Fig. 9, Table I row 3)
# ---------------------------------------------------------------------------

def pcs_fma_design(device: FpgaDevice,
                   params: CSFmaParams = PCS_PARAMS) -> UnitDesign:
    """The PCS-FMA unit: 53 x 110 DSP multiplier with the integrated
    rounding row, 385b window 3:2 + Carry Reduce, ZD, 6:1 mux.

    The DSP cascades leave ~8 rows (tile column sums, PCS carry rows,
    the Fig. 6 correction row, the injected addend) for the LUT-side
    compressor tree; two of its levels land on the critical path.
    """
    W = params.window_width
    pw = params.product_width
    tiles = dsp_tiles(params.mant_width, 53, device)
    result_w = params.mant_width + params.block
    path = [
        make_dsp_mult_stage(tiles, device),
        make_dsp_cascade(1, device, "dsp-cascade-a"),
        make_dsp_cascade(1, device, "dsp-cascade-b"),
        make_csa_tree(8, pw, device, "pp-lut-tree", on_path_levels=2),
        make_csa_level(W, device, "window-3to2"),
        make_adder(params.carry_spacing, device, "carry-reduce"),
        make_block_zero_detect(params.window_blocks, params.block, device),
        make_mux(params.mux_positions, result_w, device, "result-mux"),
        make_logic("round-data-slice", 1.0, 140, device,
                   reg_bits=params.operand_bits),
    ]
    # Carry Reduce is physically 35 parallel 11b adders across the window
    cr_lanes = make_logic("carry-reduce-lanes", 0.0, W - params.carry_spacing,
                          device, toggle_bits=W)
    offpath = [
        make_shifter(result_w, params.addend_max_pos + 1, device,
                     "a-preshift"),
        make_rounder(params.mant_width, device),        # A's rounding unit
        make_logic("c-round-decide", 2.0, 110, device),  # Fig. 6 decision
        make_logic("operand-decode", 1.0, 2 * params.operand_bits // 4,
                   device),
        make_logic("deferred-round-datapath", 1.0, 300, device),
        cr_lanes,
        make_csa_tree(6, W, device, "window-carry-rows", on_path_levels=0),
        make_exponent_logic(device),
    ]
    # PCS window fabric: 385 sum wires + 35 explicit carries (cleaned by
    # Carry Reduce, so they toggle at the low post-reduce rate).
    return UnitDesign("pcs-fma", path, offpath,
                      window_wires=W + W // params.carry_spacing)


# ---------------------------------------------------------------------------
# FCS-FMA (Fig. 11, Table I row 4)
# ---------------------------------------------------------------------------

def fcs_fma_design(device: FpgaDevice,
                   params: CSFmaParams = FCS_PARAMS) -> UnitDesign:
    """The FCS-FMA unit: DSP pre-adders convert the FCS operand blocks,
    a truncated 53 x 87 carry-save-output multiplier, no Carry Reduce,
    early block LZA (off the critical path), 11:1 result mux over the
    13-block window -- the wide, high-fanout mux is what limits fmax
    (the paper's "routing difficulties")."""
    W = params.window_width
    tiles = truncated_dsp_tiles(params.mant_width, 53, device)
    result_w = 2 * (params.mant_width + params.block)  # FCS: sum + carry
    path = [
        make_dsp_preadd(device),
        make_dsp_mult_stage(tiles, device),
        make_dsp_cascade(1, device),
        make_csa_tree(6, params.product_width, device, "pp-lut-tree",
                      on_path_levels=1),
        make_csa_level(W, device, "window-3to2"),
        make_mux(params.mux_positions, result_w, device, "result-mux"),
        make_logic("round-data-slice", 1.0, 140, device,
                   reg_bits=result_w + 12),
    ]
    offpath = [
        make_shifter(result_w, params.addend_max_pos + 1, device,
                     "a-preshift"),
        make_rounder(params.mant_width, device),
        make_logic("c-round-decide", 2.0, 80, device),
        make_logic("operand-decode", 1.0, result_w // 3, device),
        make_lza(W, device),                   # early block LZA
        make_csa_tree(4, W, device, "window-carry-rows", on_path_levels=0),
        make_exponent_logic(device),
    ]
    # FCS window fabric: every digit is two physical wires (sum + carry)
    # and there is no Carry Reduce to clean them -- 754 high-activity
    # long nets, the dominant routing-energy term of Table II.
    return UnitDesign("fcs-fma", path, offpath, window_wires=2 * W)


# ---------------------------------------------------------------------------
# IEEE divider (used by the solver factorization phase, not by the
# multiply-add-shaped ldlsolve() the paper accelerates)
# ---------------------------------------------------------------------------

def divider_design(device: FpgaDevice) -> UnitDesign:
    """Binary64 divider: a radix-4 SRT pipeline.

    27 quotient-digit stages (two bits each) plus unpack, quotient
    conversion, rounding and pack.  Deep but narrow -- the reason solver
    generators like CVXGEN keep divisions out of the per-iteration
    `ldlsolve()` hot path.
    """
    path: list[Component] = [make_unpack(64, device)]
    for i in range(27):
        path.append(make_logic(f"srt-stage-{i}", 2.0, 70, device,
                               reg_bits=120))
    path.extend([
        make_logic("quotient-convert", 1.0, 60, device, reg_bits=56),
        make_rounder(53, device),
        make_pack(64, device),
    ])
    offpath = [make_exponent_logic(device)]
    return UnitDesign("divider", path, offpath)


# ---------------------------------------------------------------------------
# HLS format converters (Sec. III-I)
# ---------------------------------------------------------------------------

def ieee_to_cs_converter(device: FpgaDevice,
                         params: CSFmaParams = PCS_PARAMS) -> UnitDesign:
    """IEEE -> CS: conditional complement + fixed rewiring (cheap)."""
    path = [
        make_unpack(64, device),
        make_adder(params.mant_width, device, "complement"),
    ]
    return UnitDesign(f"ieee2{params.name}", path)


def cs_to_ieee_converter(device: FpgaDevice,
                         params: CSFmaParams = PCS_PARAMS) -> UnitDesign:
    """CS -> IEEE: carry collapse, sign, full normalization, rounding --
    the expensive direction the HLS pass tries to eliminate."""
    path = [
        make_adder(params.mant_width, device, "carry-collapse"),
        make_logic("complement", 1.0, params.mant_width, device,
                   reg_bits=params.mant_width),
        make_shifter(params.mant_width, params.mant_width, device,
                     "normalize"),
        make_rounder(53, device),
        make_pack(64, device),
    ]
    offpath = [make_exponent_logic(device)]
    return UnitDesign(f"{params.name}2ieee", path, offpath)


_FACTORIES = {
    "coregen-mul": coregen_multiplier,
    "coregen-add": coregen_adder,
    "coregen": coregen_mul_add,
    "flopoco": flopoco_fppipeline,
    "classic-fma": classic_fma_design,
    "divider": divider_design,
    "pcs-fma": pcs_fma_design,
    "fcs-fma": fcs_fma_design,
}


def design_by_name(name: str, device: FpgaDevice) -> UnitDesign:
    """Instantiate one of the evaluated architectures on a device."""
    try:
        return _FACTORIES[name](device)
    except KeyError:
        raise KeyError(f"unknown design {name!r}; known: "
                       f"{sorted(_FACTORIES)}") from None
