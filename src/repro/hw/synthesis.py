"""Synthesis estimation: the Table I / Fig. 13 front-end.

``synthesize`` pipelines a unit design for a target clock and reports
the quantities of the paper's Table I: achieved fmax, pipeline cycles,
LUTs and DSP blocks.  Fig. 13's metric -- the minimum computation time
of a single multiply-add -- is ``cycles * min clock period``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from .netlist import UnitDesign, design_by_name
from .pipeline import cut_pipeline, cut_pipeline_fixed
from .technology import VIRTEX6, FpgaDevice

__all__ = ["SynthesisReport", "synthesize", "synthesize_by_name",
           "latency_ns"]


@dataclass(frozen=True)
class SynthesisReport:
    """Post-'layout' summary of one unit (one row of Table I)."""

    name: str
    device: str
    fmax_mhz: float
    cycles: int
    luts: int
    dsps: int
    register_bits: int
    target_mhz: float

    @property
    def min_period_ns(self) -> float:
        return 1000.0 / self.fmax_mhz

    @property
    def latency_ns(self) -> float:
        """Fig. 13: minimum clock period times pipeline length."""
        return self.min_period_ns * self.cycles

    @property
    def meets_target(self) -> bool:
        return self.fmax_mhz >= self.target_mhz

    def row(self) -> tuple:
        """(architecture, fmax, cycles, LUTs, DSPs) -- Table I order."""
        return (self.name, round(self.fmax_mhz), self.cycles,
                self.luts, self.dsps)


def synthesize(design: UnitDesign, device: FpgaDevice = VIRTEX6,
               target_mhz: float = 200.0) -> SynthesisReport:
    """Pipeline the design for the target clock and report the result.

    Composites (``subunits``) are pipelined part by part: the discrete
    CoreGen multiply-then-add has 5 + 4 cycles and runs at the fmax of
    its slower member.  Fixed-latency vendor configurations are balanced
    into exactly their rated stage count.
    """
    if design.subunits:
        parts = [synthesize(s, device, target_mhz)
                 for s in design.subunits]
        return SynthesisReport(
            name=design.name,
            device=device.name,
            fmax_mhz=min(p.fmax_mhz for p in parts),
            cycles=sum(p.cycles for p in parts),
            luts=sum(p.luts for p in parts),
            dsps=sum(p.dsps for p in parts),
            register_bits=sum(p.register_bits for p in parts),
            target_mhz=target_mhz,
        )
    if design.fixed_cycles is not None:
        pipe = cut_pipeline_fixed(design.path, device, design.fixed_cycles)
    else:
        pipe = cut_pipeline(design.path, device, target_mhz)
    return SynthesisReport(
        name=design.name,
        device=device.name,
        fmax_mhz=pipe.fmax_mhz,
        cycles=pipe.cycles,
        luts=design.luts + pipe.register_bits // 16,  # pipeline glue
        dsps=design.dsps,
        register_bits=pipe.register_bits,
        target_mhz=target_mhz,
    )


@lru_cache(maxsize=256)
def synthesize_by_name(name: str, device: FpgaDevice = VIRTEX6,
                       target_mhz: float = 200.0) -> SynthesisReport:
    """Memoized synthesis lookup: the arguments and the returned report
    are immutable value objects, and the experiment drivers re-query the
    same (unit, device, clock) points on every table/figure rebuild.
    Manage the cache via :mod:`repro.batch.memo` if a device model is
    monkeypatched."""
    return synthesize(design_by_name(name, device), device, target_mhz)


def latency_ns(report: SynthesisReport) -> float:
    """Convenience alias for the Fig. 13 metric."""
    return report.latency_ns
