"""Named fault-injection probe points threaded through the datapaths.

The SEU campaign engine (:mod:`repro.faults`) needs to flip individual
bits of *internal* datapath signals -- the PCS carry plane after Carry
Reduce, the window CS pair behind the 3:2 compressor, the Zero
Detector's block-class input, the LZA anticipation inputs, the batch
kernel's SWAR lanes.  Monkey-patching is too fragile for that (most of
those signals are locals inside one long function), so the datapath
modules call :func:`probe` at each architecturally named register/wire
and this module decides -- in O(1), with a single global ``None`` check
on the fast path -- whether a transient fault is armed there.

Disarmed (the default, and the only state outside a campaign) a probe
is ``return value`` behind one global load, so the faithful units and
the batch kernels keep their performance profile.  Armed, the
:class:`Arm` for the tag counts dynamic occurrences and applies its
transform exactly at the requested occurrence -- a *transient* upset of
one register on one clock edge, not a stuck-at fault.

This module is deliberately dependency-free: it is imported by
``repro.cs``/``repro.fma``/``repro.batch`` and *used* by
``repro.faults``, and must never create an import cycle between them.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterator

__all__ = ["Arm", "armed", "probe", "probe_active"]

#: tag -> Arm while a fault is armed; ``None`` always means "fast path".
ARMED: "dict[str, Arm] | None" = None


class Arm:
    """One armed transient fault: a transform applied at one occurrence.

    ``at_call`` selects which dynamic occurrence of the probe tag is
    upset (0 = the first time the signal is latched during the armed
    region); every other occurrence passes through untouched.  ``hits``
    records whether the fault actually landed -- a campaign uses it to
    distinguish "masked by logic" from "the site was never exercised".
    """

    __slots__ = ("transform", "at_call", "calls", "hits")

    def __init__(self, transform: Callable[[Any], Any],
                 at_call: int = 0):
        self.transform = transform
        self.at_call = at_call
        self.calls = 0
        self.hits = 0

    def fire(self, value: Any) -> Any:
        i = self.calls
        self.calls = i + 1
        if i == self.at_call:
            self.hits += 1
            return self.transform(value)
        return value


def probe(tag: str, value: Any) -> Any:
    """Pass ``value`` through the probe point named ``tag``.

    Identity unless a campaign armed a fault at this tag; hot paths may
    guard the call with :func:`probe_active` to skip even the call.
    """
    if ARMED is None:
        return value
    arm = ARMED.get(tag)
    if arm is None:
        return value
    return arm.fire(value)


def probe_active() -> bool:
    """True while any fault is armed (hot-path call guard)."""
    return ARMED is not None


@contextlib.contextmanager
def armed(arms: "dict[str, Arm]") -> Iterator["dict[str, Arm]"]:
    """Arm the given faults for the duration of the context.

    Arming is process-global (the datapaths read one module global) and
    intentionally non-reentrant: campaigns evaluate one faulted
    configuration at a time, and nesting would make "which fault caused
    this outcome" ambiguous.
    """
    global ARMED
    if ARMED is not None:
        raise RuntimeError("fault probes are already armed")
    ARMED = arms
    try:
        yield arms
    finally:
        ARMED = None
