"""repro -- reproduction of *Architecture Exploration of High-Performance
Floating-Point Fused Multiply-Add Units and their Automatic Use in
High-Level Synthesis* (Liebig, Huthmann, Koch; 2013).

The package is organized bottom-up, mirroring the paper:

* :mod:`repro.fp` -- IEEE-754 substrate: formats, bit-accurate values,
  rounding, discrete (CoreGen-like) operators, exact oracle.
* :mod:`repro.cs` -- carry-save arithmetic: CS numbers, compressor trees,
  chunked carry reduction, the Fig. 6 multiplier, LZA, the Fig. 10 block
  Zero Detector.
* :mod:`repro.fma` -- the contribution: classic-FMA baseline, PCS-FMA and
  FCS-FMA units, operand formats and converters, chain engines.
* :mod:`repro.hw` -- FPGA technology model: delays, areas, pipelining,
  energy; regenerates the synthesis-style numbers of Table I/II, Fig. 13.
* :mod:`repro.hls` -- Nymble-like HLS core: CDFG IR, frontend, scheduler,
  and the Fig. 12 FMA-insertion pass.
* :mod:`repro.solvers` -- CVXGEN-like convex-solver substrate: trajectory
  QPs, KKT assembly, symbolic LDL and `ldlsolve` code generation.
* :mod:`repro.experiments` -- one module per paper table/figure.

Quick start::

    from repro import quick_fma
    print(quick_fma(1.5, 2.0, 3.25))   # 1.5 + 2.0 * 3.25 via PCS-FMA
"""

from .fma import (FcsFmaUnit, PcsFmaUnit, cs_to_ieee, fcs_engine,
                  ieee_to_cs, pcs_engine)
from .fp import BINARY64, FPValue, double

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "FPValue", "BINARY64", "double",
    "PcsFmaUnit", "FcsFmaUnit", "ieee_to_cs", "cs_to_ieee",
    "pcs_engine", "fcs_engine",
    "quick_fma",
]


def quick_fma(a: float, b: float, c: float, *, unit: str = "pcs") -> float:
    """Compute ``a + b * c`` through one of the paper's FMA units.

    Convenience entry point: lifts the Python floats into the carry-save
    operand format, runs the unit, and lowers the result back to a float.
    ``unit`` is ``"pcs"``, ``"fcs"`` or ``"classic"``.
    """
    from .fma import ClassicFmaUnit

    fa, fb, fc = double(a), double(b), double(c)
    if unit == "classic":
        return ClassicFmaUnit().fma(fa, fb, fc).to_float()
    u = PcsFmaUnit() if unit == "pcs" else FcsFmaUnit()
    r = u.fma(ieee_to_cs(fa, u.params), fb, ieee_to_cs(fc, u.params))
    return cs_to_ieee(r).to_float()
