"""CLI driver: ``python -m repro.analysis``.

Modes
-----
* ``--all`` (default): analyze every shipped target -- example and
  experiment-built CDFGs (as parsed and after the FMA-insertion pass,
  with their schedules), every hardware netlist, and the operator
  libraries.  Exits non-zero when any diagnostic at or above
  ``--fail-on`` severity is found: shipped artifacts must be clean.
* ``--target NAME`` (repeatable): analyze a subset.
* ``--selfcheck``: run the seeded-violation detection suite; every
  corruption must yield exactly its expected rule ids.
* ``--list-rules`` / ``--list-targets``: registry introspection.
"""

from __future__ import annotations

import argparse
import sys

from ..hw.technology import VIRTEX5, VIRTEX6, VIRTEX7
from .diagnostics import Severity
from .reporters import render_json, render_rules, render_text
from .targets import analyze_all, target_names
from .violations import run_detection_suite

_DEVICES = {"virtex5": VIRTEX5, "virtex6": VIRTEX6, "virtex7": VIRTEX7}


def _run_selfcheck(device, fmt: str) -> int:
    results = run_detection_suite(device)
    missed = [r for r in results if not r.detected]
    if fmt == "json":
        import json

        print(json.dumps({
            "violations": [{
                "name": r.name,
                "expected": sorted(r.expected),
                "found": sorted(r.found),
                "detected": r.detected,
            } for r in results],
            "ok": not missed,
        }, indent=2, sort_keys=True))
    else:
        for r in results:
            verdict = "detected" if r.detected else "MISSED"
            print(f"{r.name:28s} expected {sorted(r.expected)} "
                  f"found {sorted(r.found)}: {verdict}")
        print(f"{len(results) - len(missed)}/{len(results)} seeded "
              "violations detected with exact rule ids")
    return 1 if missed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static datapath verifier: CS format-flow, netlist "
                    "consistency and schedule validity analysis.")
    parser.add_argument("--all", action="store_true",
                        help="analyze every shipped target (default "
                             "when no target is named)")
    parser.add_argument("--target", action="append", default=[],
                        metavar="NAME",
                        help="analyze one named target (repeatable)")
    parser.add_argument("--selfcheck", action="store_true",
                        help="run the seeded-violation detection suite")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--list-targets", action="store_true",
                        help="print the analyzable targets and exit")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt")
    parser.add_argument("--output", metavar="FILE",
                        help="write the report to FILE instead of "
                             "stdout")
    parser.add_argument("--device", choices=sorted(_DEVICES),
                        default="virtex6")
    parser.add_argument("--fail-on",
                        choices=("error", "warning", "never"),
                        default="warning",
                        help="lowest severity that fails the run "
                             "(default: warning -- shipped artifacts "
                             "must be clean)")
    parser.add_argument("--verbose", action="store_true",
                        help="also list clean targets in text output")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rules())
        return 0
    if args.list_targets:
        print("\n".join(target_names()))
        return 0
    device = _DEVICES[args.device]
    if args.selfcheck:
        return _run_selfcheck(device, args.fmt)

    names = args.target or None
    try:
        reports = analyze_all(device, names)
    except KeyError as exc:
        parser.error(str(exc.args[0]))
    text = (render_json(reports) if args.fmt == "json"
            else render_text(reports, verbose=args.verbose))
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    else:
        print(text)

    if args.fail_on == "never":
        return 0
    threshold = (Severity.ERROR if args.fail_on == "error"
                 else Severity.WARNING)
    return 1 if any(r.worst_at_least(threshold) for r in reports) else 0


if __name__ == "__main__":
    sys.exit(main())
