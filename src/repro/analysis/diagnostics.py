"""Diagnostic model of the static datapath verifier.

Every analyzer in :mod:`repro.analysis` reports findings as
:class:`Diagnostic` records tagged with a *stable rule id* drawn from
the registry below.  Rule ids never change meaning once shipped: tests,
CI gates and the seeded-violation suite key on them, exactly like
compiler warning flags.

Rule families
-------------
* ``CSxxx`` -- CS format-flow rules over the HLS CDFG (the Fig. 12
  invariant: carry-save values may exist *only* between fused operators;
  every CS edge must be produced by an FMA/I2C node and reconverted by
  C2I before reaching an ordinary operator or an output).
* ``NLxxx`` -- hardware netlist consistency rules over
  :class:`repro.hw.netlist.UnitDesign` (stage widths, Zero-Detector
  geometry, alignment-window sizes against :mod:`repro.fma.formats`,
  pipeline depths against the HLS operator library).
* ``SCHxxx`` -- schedule validity rules over
  :class:`repro.hls.schedule.Schedule` (operand ready-times, resource
  limits).

See ``docs/ANALYSIS.md`` for the full catalogue with paper grounding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Severity", "Rule", "RULES", "Diagnostic", "Report",
           "rules_by_family"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make a graph/netlist/schedule unusable (silently
    wrong results or undefined hardware); ``WARNING`` findings are
    legal but wasteful or suspicious (a redundant converter pair burns
    a full C2I normalization pipeline for nothing); ``INFO`` is
    advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def at_least(self, other: "Severity") -> bool:
        order = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}
        return order[self] >= order[other]


@dataclass(frozen=True)
class Rule:
    """One registered check with a stable id."""

    id: str
    title: str
    severity: Severity
    description: str

    @property
    def family(self) -> str:
        return self.id.rstrip("0123456789")


_RULE_DEFS = [
    # -- CS format-flow rules (Fig. 12 invariants) ----------------------
    Rule("CS001", "dangling operand id", Severity.ERROR,
         "A node references an operand id that is not present in the "
         "graph; the edge has no producer."),
    Rule("CS002", "cycle in datapath", Severity.ERROR,
         "The CDFG contains a dependence cycle; a straight-line "
         "datapath must be acyclic to be schedulable."),
    Rule("CS003", "IEEE value on a CS port (missing I2C)", Severity.ERROR,
         "A carry-save operand port (FMA A/C or C2I input) is fed by an "
         "IEEE-producing node; an I2C converter is missing on the edge."),
    Rule("CS004", "CS value on an IEEE port (missing C2I)", Severity.ERROR,
         "An IEEE operand port of an ordinary operator is fed by a "
         "CS-producing node (FMA or I2C); a C2I converter is missing "
         "on the edge."),
    Rule("CS005", "CS value reaches an output", Severity.ERROR,
         "An OUTPUT node is fed directly by a CS-producing node; "
         "results must be reconverted to IEEE 754 before leaving the "
         "datapath (Fig. 12: deviation from IEEE is allowed only "
         "*between* fused operators)."),
    Rule("CS006", "redundant I2C(C2I(x)) converter pair", Severity.WARNING,
         "An I2C converter whose input is a C2I converter: the value "
         "round-trips CS -> IEEE -> CS; the Fig. 12c cleanup should "
         "have forwarded the CS value directly."),
    Rule("CS007", "redundant C2I(I2C(x)) converter pair", Severity.WARNING,
         "A C2I converter whose input is an I2C converter: the value "
         "round-trips IEEE -> CS -> IEEE for no reason."),
    Rule("CS008", "unreachable node", Severity.WARNING,
         "A node has no path to any OUTPUT; dead hardware that the "
         "pass should have pruned."),
    Rule("CS009", "wrong operand count", Severity.ERROR,
         "A node has a different number of operands than its kind's "
         "port list requires."),
    Rule("CS010", "graph has no outputs", Severity.WARNING,
         "The CDFG declares no OUTPUT node; nothing it computes is "
         "observable."),
    Rule("CS011", "source node with operands", Severity.ERROR,
         "An INPUT or CONST node lists operands; sources must be "
         "nullary."),
    Rule("CS012", "negate_b outside an FMA", Severity.WARNING,
         "The negate_b flag (the pass's SUB absorption, a - b*c = "
         "a + (-b)*c) is set on a non-FMA node where it has no effect."),
    # -- NL netlist consistency rules ----------------------------------
    Rule("NL001", "adder-window stage width mismatch", Severity.ERROR,
         "The window 3:2 compressor stage is not as wide as the "
         "format's adder window (385b for PCS, 377c for FCS, "
         "Sec. III-F/III-H)."),
    Rule("NL002", "Zero-Detector geometry mismatch", Severity.ERROR,
         "The block Zero Detector does not match the format's "
         "window-block count and block size (7 x 55b for PCS, "
         "Fig. 10), or is missing/misplaced for the unit flavor."),
    Rule("NL003", "Carry-Reduce stage mismatch", Severity.ERROR,
         "The Carry Reduce adder is not carry-spacing bits wide (11b "
         "for PCS), or is present in a full-carry-save unit that has "
         "no Carry Reduce stage (Sec. III-H)."),
    Rule("NL004", "result-mux geometry mismatch", Severity.ERROR,
         "The final block multiplexer does not cover the format's "
         "result positions (6:1 for PCS, 11:1 for FCS) at the "
         "format's result width."),
    Rule("NL005", "alignment-window size mismatch", Severity.ERROR,
         "The addend pre-shifter does not span the format's alignment "
         "window (addend_max_pos + 1 positions)."),
    Rule("NL006", "window wire count mismatch", Severity.ERROR,
         "The unit's long-net window fabric width disagrees with the "
         "format (W + W/spacing wires for PCS, 2W for FCS; the "
         "Table II routing-energy term)."),
    Rule("NL007", "implausible component cost", Severity.ERROR,
         "A component carries a negative or non-finite delay, or a "
         "negative LUT/DSP/register count."),
    Rule("NL008", "pipeline depth disagrees with operator library",
         Severity.ERROR,
         "The latency the HLS operator library schedules with differs "
         "from the pipeline depth the hardware model synthesizes for "
         "the same unit at the same clock target."),
    # -- SCH schedule validity rules -----------------------------------
    Rule("SCH001", "operand not ready at start time", Severity.ERROR,
         "A node starts before one of its operands has finished "
         "(start[n] < start[op] + latency[op])."),
    Rule("SCH002", "schedule/graph node-set mismatch", Severity.ERROR,
         "The schedule is missing a start time for a graph node, or "
         "carries a start time for a node not in the graph."),
    Rule("SCH003", "negative start time", Severity.ERROR,
         "A node is scheduled before cycle 0."),
    Rule("SCH004", "resource limit exceeded", Severity.ERROR,
         "More operations of a limited class issue in one cycle than "
         "the library's unit pool admits (Fig. 15's time-multiplexed "
         "FMA pool)."),
    Rule("SCH005", "schedule lacks graph/library context", Severity.ERROR,
         "The Schedule object is detached from its CDFG or operator "
         "library and cannot be validated."),
]

#: Stable rule registry, id -> :class:`Rule`.
RULES: dict[str, Rule] = {r.id: r for r in _RULE_DEFS}


def rules_by_family() -> dict[str, list[Rule]]:
    """Registry grouped by family prefix (``CS`` / ``NL`` / ``SCH``)."""
    out: dict[str, list[Rule]] = {}
    for rule in RULES.values():
        out.setdefault(rule.family, []).append(rule)
    return out


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation at a concrete location."""

    rule: str
    severity: Severity
    message: str
    target: str = ""
    location: str = ""

    def format(self) -> str:
        where = f" [{self.target}]" if self.target else ""
        at = f" at {self.location}" if self.location else ""
        return f"{self.rule} {self.severity.value}{where}{at}: " \
            f"{self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "target": self.target,
            "location": self.location,
        }


@dataclass
class Report:
    """A set of diagnostics produced by one (or several) analyzers."""

    target: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def emit(self, rule_id: str, message: str, location: str = "",
             target: str | None = None) -> Diagnostic:
        """Record one finding; the severity comes from the registry."""
        rule = RULES.get(rule_id)
        if rule is None:
            raise KeyError(f"unregistered rule id {rule_id!r}")
        diag = Diagnostic(rule_id, rule.severity, message,
                          self.target if target is None else target,
                          location)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "Report") -> None:
        self.diagnostics.extend(other.diagnostics)

    # -- queries ---------------------------------------------------------

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity findings were recorded."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when *no* findings at all were recorded."""
        return not self.diagnostics

    def rule_ids(self) -> set[str]:
        return {d.rule for d in self.diagnostics}

    def by_rule(self) -> dict[str, list[Diagnostic]]:
        out: dict[str, list[Diagnostic]] = {}
        for d in self.diagnostics:
            out.setdefault(d.rule, []).append(d)
        return out

    def worst_at_least(self, threshold: Severity) -> bool:
        return any(d.severity.at_least(threshold)
                   for d in self.diagnostics)

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "ok": self.ok,
            "clean": self.clean,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "total": len(self.diagnostics),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def __len__(self) -> int:
        return len(self.diagnostics)
