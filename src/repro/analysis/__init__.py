"""Static datapath verification: the mechanical proof layer.

The paper's HLS claim (Fig. 12) rests on an invariant no runtime test
can prove by sampling: the compiler pass may deviate from IEEE 754
*only between fused operators* -- every carry-save value must be
produced by an FMA or I2C node and reconverted by C2I before reaching
an ordinary operator or an output.  This package checks that invariant
(and its hardware and scheduling counterparts) statically:

* :mod:`~repro.analysis.format_flow` -- CS format-flow dataflow pass
  over the HLS CDFG (rules ``CS001+``),
* :mod:`~repro.analysis.netlist_lint` -- unit-netlist consistency
  against the operand-format constants and the operator library
  (rules ``NL001+``),
* :mod:`~repro.analysis.schedule_check` -- schedule validity
  (rules ``SCH001+``),
* :mod:`~repro.analysis.violations` -- seeded corruptions proving the
  detectors fire with exactly the expected rule ids,
* ``python -m repro.analysis`` -- the CLI the CI gate runs.

See ``docs/ANALYSIS.md`` for the rule catalogue.
"""

from .diagnostics import RULES, Diagnostic, Report, Rule, Severity
from .format_flow import verify_format_flow
from .netlist_lint import lint_design, lint_library
from .reporters import render_json, render_rules, render_text
from .schedule_check import check_schedule
from .targets import (analyze_all, graph_targets, netlist_targets,
                      target_names)
from .violations import (SeededViolation, ViolationResult,
                         all_violations, run_detection_suite)

__all__ = [
    "Severity", "Rule", "RULES", "Diagnostic", "Report",
    "verify_format_flow", "lint_design", "lint_library",
    "check_schedule",
    "analyze_all", "graph_targets", "netlist_targets", "target_names",
    "SeededViolation", "ViolationResult", "all_violations",
    "run_detection_suite",
    "render_text", "render_json", "render_rules",
]
