"""Schedule validity checks (``SCH001+``).

A schedule is a claim: "every operand of every operation has finished
by the cycle the operation starts, and no more units issue per cycle
than physically exist."  The ASAP/ALAP/list schedulers are supposed to
guarantee this by construction; this validator re-proves it for any
:class:`~repro.hls.schedule.Schedule`, so the experiment drivers can
gate on it after every reschedule.
"""

from __future__ import annotations

from ..hls.schedule import Schedule
from .diagnostics import Report

__all__ = ["check_schedule"]


def check_schedule(schedule: Schedule,
                   target: str = "schedule") -> Report:
    """Validate operand ready-times, node coverage, start-time domain
    and resource-pool limits of one schedule."""
    report = Report(target=target)
    graph, library = schedule.graph, schedule.library
    if graph is None or library is None:
        report.emit("SCH005",
                    "schedule carries no graph/library context")
        return report

    start = schedule.start
    # SCH002 -- the schedule must cover exactly the graph's node set
    for nid in graph.nodes:
        if nid not in start:
            report.emit("SCH002", "graph node has no start time",
                        f"node {nid} ({graph.nodes[nid].kind.value})")
    for nid in start:
        if nid not in graph.nodes:
            report.emit("SCH002",
                        "scheduled node is not in the graph",
                        f"node {nid}")

    issues: dict[tuple[str, int], int] = {}
    for nid, t in start.items():
        node = graph.nodes.get(nid)
        if node is None:
            continue
        # SCH003 -- start times live in [0, inf)
        if t < 0:
            report.emit("SCH003", f"starts at cycle {t}",
                        f"node {nid} ({node.kind.value})")
        # SCH001 -- every operand finished before we start
        for op in node.operands:
            if op not in start or op not in graph.nodes:
                continue        # reported as SCH002/CS001 already
            ready = start[op] + library.latency(graph.nodes[op])
            if t < ready:
                report.emit(
                    "SCH001",
                    f"starts at cycle {t} but operand {op} "
                    f"({graph.nodes[op].kind.value}) is ready at "
                    f"cycle {ready}",
                    f"node {nid} ({node.kind.value})")
        res = library.resource_class(node)
        if res is not None:
            issues[(res, t)] = issues.get((res, t), 0) + 1

    # SCH004 -- issue-rate limits of bounded unit pools
    for (res, t), n in sorted(issues.items()):
        limit = library.limit_for(res)
        if limit is not None and n > limit:
            report.emit("SCH004",
                        f"{n} {res!r} operations issue in cycle {t}, "
                        f"pool admits {limit}", f"cycle {t}")
    return report
