"""CS format-flow verification over the HLS CDFG (rules ``CS001+``).

The Fig. 12 pass may deviate from IEEE 754 *only between fused
operators on the critical path*: every carry-save value must be
produced by an FMA or I2C node and reconverted by a C2I before it
reaches an ordinary operator or an output.  This pass proves that
invariant by abstract interpretation: it propagates the
:class:`~repro.hls.ir.ValueType` abstract domain (``IEEE`` / ``CS`` /
unknown) along every edge in topological order and checks each
consumer port against the kind's port signature.

Unlike :meth:`CDFG.validate` -- which raises on the first problem --
the verifier is total: it never throws on a malformed graph, it keeps
going and reports *every* violation as a :class:`Diagnostic`, which is
what a post-pass gate and a CI lint need.
"""

from __future__ import annotations

from ..hls.ir import _PORT_TYPES, _RESULT_TYPES, CDFG, OpKind, ValueType
from .diagnostics import Report

__all__ = ["verify_format_flow"]

#: kinds whose results are carry-save words travelling between fused
#: operators (the only legal CS producers, Fig. 12)
_CS_PRODUCERS = (OpKind.FMA, OpKind.I2C)


def _describe(graph: CDFG, nid: int) -> str:
    node = graph.nodes.get(nid)
    if node is None:
        return f"node {nid}"
    label = f" {node.name!r}" if node.name else ""
    return f"node {nid} ({node.kind.value}{label})"


def _cycle_members(graph: CDFG) -> set[int]:
    """Node ids on (or downstream of) a dependence cycle: the residue
    of Kahn's algorithm once all acyclic nodes are peeled off."""
    indeg = {nid: 0 for nid in graph.nodes}
    succs: dict[int, list[int]] = {nid: [] for nid in graph.nodes}
    for n in graph.nodes.values():
        for op in n.operands:
            if op in graph.nodes:
                succs[op].append(n.id)
                indeg[n.id] += 1
    ready = [nid for nid, d in indeg.items() if d == 0]
    seen = 0
    while ready:
        nid = ready.pop()
        seen += 1
        for s in succs[nid]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    if seen == len(graph.nodes):
        return set()
    return {nid for nid, d in indeg.items() if d > 0}


def verify_format_flow(graph: CDFG, target: str = "cdfg") -> Report:
    """Run every CS format-flow rule over ``graph``.

    Returns a :class:`Report`; a graph that satisfies the Fig. 12
    invariant (and carries no dead or redundant structure) yields an
    empty one.
    """
    report = Report(target=target)
    nodes = graph.nodes

    # CS001 -- dangling operand references; the offending edges carry
    # the abstract value "unknown" and are excluded from type checks
    dangling: set[tuple[int, int]] = set()
    for n in nodes.values():
        for port, op in enumerate(n.operands):
            if op not in nodes:
                dangling.add((n.id, port))
                report.emit(
                    "CS001",
                    f"operand port {port} references missing node {op}",
                    _describe(graph, n.id))

    # CS002 -- dependence cycles
    cyclic = _cycle_members(graph)
    if cyclic:
        members = ", ".join(_describe(graph, nid)
                            for nid in sorted(cyclic)[:6])
        more = "" if len(cyclic) <= 6 else f" (+{len(cyclic) - 6} more)"
        report.emit("CS002",
                    f"dependence cycle through {members}{more}",
                    f"{len(cyclic)} nodes")

    # abstract interpretation of ValueType along every edge: a node's
    # abstract output is its kind's result type; dangling edges are
    # unknown (None) and skipped by the port checks below
    abstract: dict[int, ValueType] = {
        nid: _RESULT_TYPES[n.kind] for nid, n in nodes.items()}

    for n in nodes.values():
        # CS011 -- sources must be nullary
        if n.kind in (OpKind.INPUT, OpKind.CONST):
            if n.operands:
                report.emit("CS011",
                            f"{n.kind.value} node lists "
                            f"{len(n.operands)} operand(s)",
                            _describe(graph, n.id))
            continue

        ports = _PORT_TYPES[n.kind]
        # CS009 -- arity
        if len(n.operands) != len(ports):
            report.emit("CS009",
                        f"{n.kind.value} takes {len(ports)} operand(s), "
                        f"node has {len(n.operands)}",
                        _describe(graph, n.id))

        # CS003/CS004/CS005 -- per-edge format check
        for port, (op, want) in enumerate(zip(n.operands, ports)):
            if (n.id, port) in dangling:
                continue
            got = abstract[op]
            if got is want:
                continue
            edge = (f"{_describe(graph, op)} -> port {port} of "
                    f"{_describe(graph, n.id)}")
            if n.kind is OpKind.OUTPUT:
                report.emit("CS005",
                            "carry-save value leaves the datapath "
                            "unconverted", edge)
            elif want is ValueType.IEEE:
                report.emit("CS004",
                            "carry-save value feeds an IEEE port "
                            "without a C2I converter", edge)
            else:
                report.emit("CS003",
                            "IEEE value feeds a carry-save port "
                            "without an I2C converter", edge)

        # CS006/CS007 -- redundant converter round-trips
        if n.operands and (n.id, 0) not in dangling:
            src = nodes[n.operands[0]]
            if n.kind is OpKind.I2C and src.kind is OpKind.C2I:
                report.emit("CS006",
                            "I2C fed by C2I: CS value round-trips "
                            "through IEEE (Fig. 12c cleanup missed it)",
                            _describe(graph, n.id))
            elif n.kind is OpKind.C2I and src.kind is OpKind.I2C:
                report.emit("CS007",
                            "C2I fed by I2C: IEEE value round-trips "
                            "through CS for no reason",
                            _describe(graph, n.id))

        # CS012 -- stray negate_b flags
        if n.negate_b and n.kind is not OpKind.FMA:
            report.emit("CS012",
                        f"negate_b set on a {n.kind.value} node",
                        _describe(graph, n.id))

    # CS008/CS010 -- reachability
    outputs = graph.outputs()
    if not outputs:
        if nodes:
            report.emit("CS010", "graph declares no OUTPUT node")
    else:
        live: set[int] = set()
        work = list(outputs)
        while work:
            nid = work.pop()
            if nid in live:
                continue
            live.add(nid)
            work.extend(op for op in nodes[nid].operands if op in nodes)
        for nid in sorted(set(nodes) - live):
            report.emit("CS008", "no path to any output",
                        _describe(graph, nid))

    return report
