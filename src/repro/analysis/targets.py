"""Analysis targets: every graph, netlist and schedule the repo ships.

The CI gate (``python -m repro.analysis --all``) must hold two
properties at once: every *shipped* artifact verifies clean, and every
*seeded violation* is detected (see :mod:`repro.analysis.violations`).
This module enumerates the shipped side:

* the example kernels (the paper's Listing 1, the FIR tap loop of
  ``examples/fir_filter.py``, Horner evaluation, a fused dot product,
  a mixed-operator expression), each analyzed as parsed *and* after
  the Fig. 12 FMA-insertion pass for both carry-save flavors, with
  their ASAP and resource-constrained list schedules validated;
* the experiment-built graphs: the generated ``ldlsolve()`` solver
  kernels that Fig. 15 schedules;
* every hardware netlist the synthesis front-end knows, plus the
  operator libraries derived from them.
"""

from __future__ import annotations

from typing import Callable

from ..hls.fma_pass import FmaPassVerificationError, run_fma_insertion
from ..hls.frontend import parse_program
from ..hls.ir import CDFG
from ..hls.operators import default_library
from ..hls.schedule import asap_schedule, list_schedule
from ..hw.netlist import _FACTORIES, design_by_name
from ..hw.technology import VIRTEX6, FpgaDevice
from .diagnostics import Report
from .format_flow import verify_format_flow
from .netlist_lint import lint_design, lint_library
from .schedule_check import check_schedule

__all__ = ["graph_targets", "netlist_targets", "analyze_graph_target",
           "analyze_netlist_target", "analyze_library_target",
           "analyze_all", "target_names"]

#: Fig. 15 resource bound used for the list-schedule validation
_FMA_LIMIT = 39

_LISTING1 = """
x[1] = a*b + c*d;
x[2] = e*f + g*x[1];
x[3] = h*i + k*x[2];
"""

_FIR16 = """
acc[0] = 0;
for (i = 0; i < 16; i++) {
    acc[i+1] = acc[i] + h[i]*x[i];
}
y = acc[16];
"""

_HORNER8 = """
p[0] = c[8];
for (i = 0; i < 8; i++) {
    p[i+1] = p[i]*x + c[7-i];
}
y = p[8];
"""

_DOT8 = """
s[0] = 0;
for (i = 0; i < 8; i++) {
    s[i+1] = s[i] + a[i]*b[i];
}
y = s[8];
"""

_MIXED = """
t = (a - b*c) / d;
u = -t + e*f;
v = u*u - g;
y = v + t*h;
"""


def _parse(src: str, outputs: list[str] | None = None
           ) -> Callable[[], CDFG]:
    return lambda: parse_program(src, outputs=outputs)


def _solver_kernel(horizon: int, obstacles: int) -> Callable[[], CDFG]:
    def build() -> CDFG:
        from ..solvers import generate_kernel, trajectory_problem

        kernel = generate_kernel(trajectory_problem(horizon, obstacles))
        return parse_program(kernel.source,
                             outputs=kernel.output_names)
    return build


def graph_targets() -> dict[str, Callable[[], CDFG]]:
    """Named CDFG builders (each call returns a fresh graph)."""
    return {
        "listing1": _parse(_LISTING1),
        "fir16": _parse(_FIR16, outputs=["y"]),
        "horner8": _parse(_HORNER8, outputs=["y"]),
        "dot8": _parse(_DOT8, outputs=["y"]),
        "mixed-ops": _parse(_MIXED, outputs=["y"]),
        "ldlsolve-small": _solver_kernel(2, 1),
        "ldlsolve-medium": _solver_kernel(4, 1),
    }


def netlist_targets() -> list[str]:
    """Every named unit design of the synthesis front-end."""
    return sorted(_FACTORIES)


def target_names() -> list[str]:
    """All analyzable target names (graphs, netlists, libraries)."""
    return (sorted(graph_targets())
            + [f"netlist:{n}" for n in netlist_targets()]
            + ["library:pcs", "library:fcs"])


def analyze_graph_target(name: str, build: Callable[[], CDFG],
                         device: FpgaDevice = VIRTEX6) -> list[Report]:
    """Full analysis of one kernel: format-flow on the graph as
    parsed, then -- per carry-save flavor -- after the FMA-insertion
    pass, plus schedule validation of its ASAP and bounded list
    schedules."""
    reports: list[Report] = []
    baseline = build()
    reports.append(verify_format_flow(baseline, target=f"{name}"))
    for flavor in ("pcs", "fcs"):
        tag = f"{name}/{flavor}"
        graph = build()
        library = default_library(device, fma_flavor=flavor,
                                  fma_limit=_FMA_LIMIT)
        try:
            run_fma_insertion(graph, library)
        except FmaPassVerificationError as exc:
            reports.append(exc.report)
            continue
        reports.append(verify_format_flow(graph, target=tag))
        reports.append(check_schedule(
            asap_schedule(graph, library), target=f"{tag}/asap"))
        reports.append(check_schedule(
            list_schedule(graph, library), target=f"{tag}/list"))
    return reports


def analyze_netlist_target(name: str,
                           device: FpgaDevice = VIRTEX6) -> Report:
    return lint_design(design_by_name(name, device), device)


def analyze_library_target(flavor: str,
                           device: FpgaDevice = VIRTEX6) -> Report:
    report = lint_library(default_library(device, fma_flavor=flavor),
                          device)
    report.target = f"library:{flavor}"
    return report


def analyze_all(device: FpgaDevice = VIRTEX6,
                names: list[str] | None = None) -> list[Report]:
    """Analyze every shipped target (or the named subset)."""
    graphs = graph_targets()
    selected = set(names) if names is not None else None

    def wanted(name: str) -> bool:
        return selected is None or name in selected

    reports: list[Report] = []
    for name, build in sorted(graphs.items()):
        if wanted(name):
            reports.extend(analyze_graph_target(name, build, device))
    for name in netlist_targets():
        if wanted(f"netlist:{name}"):
            reports.append(analyze_netlist_target(name, device))
    for flavor in ("pcs", "fcs"):
        if wanted(f"library:{flavor}"):
            reports.append(analyze_library_target(flavor, device))
    if selected is not None:
        known = set(target_names())
        for name in sorted(selected - known):
            raise KeyError(f"unknown target {name!r}; known: "
                           f"{', '.join(target_names())}")
    return reports
