"""Seeded violations: proof that the verifier has teeth.

A static analyzer that never fires is indistinguishable from one that
cannot fire (the same argument as the conformance mutation checks,
``docs/TESTING.md``).  Each seeded violation here constructs a
*minimally corrupted* artifact -- a graph with a deleted converter, an
FMA with swapped ports, a netlist with a narrowed window stage, a
schedule with an advanced start time -- and asserts that the analyzer
reports **exactly** the expected rule ids: no miss, and no collateral
noise.

The corruptions bypass the constructive checks on purpose (direct
operand mutation instead of :meth:`CDFG.add_op`), because the analyzer
exists precisely to catch graphs that were mutated behind the type
checker's back -- which is what a buggy compiler pass would produce.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from ..hls.frontend import parse_program
from ..hls.ir import CDFG, OpKind
from ..hls.operators import default_library
from ..hls.schedule import asap_schedule
from ..hw.components import make_csa_level, make_zero_detect
from ..hw.netlist import pcs_fma_design
from ..hw.technology import VIRTEX6, FpgaDevice
from .diagnostics import Report
from .format_flow import verify_format_flow
from .netlist_lint import lint_design, lint_library
from .schedule_check import check_schedule

__all__ = ["SeededViolation", "ViolationResult", "all_violations",
           "run_detection_suite"]


@dataclass(frozen=True)
class SeededViolation:
    """One corrupted artifact and the exact rule ids it must trigger."""

    name: str
    description: str
    expected: frozenset[str]
    run: Callable[[FpgaDevice], Report]


@dataclass(frozen=True)
class ViolationResult:
    name: str
    expected: frozenset[str]
    found: frozenset[str]
    report: Report

    @property
    def detected(self) -> bool:
        return self.found == self.expected


# ---------------------------------------------------------------------------
# graph corruption helpers
# ---------------------------------------------------------------------------

def _fused_chain() -> tuple[CDFG, dict[str, int]]:
    """A hand-built, well-formed fused datapath:
    ``y = (a + b*c  [as FMA]) + d`` with explicit converters."""
    g = CDFG()
    a = g.add_input("a")
    b = g.add_input("b")
    c = g.add_input("c")
    d = g.add_input("d")
    a_cs = g.add_op(OpKind.I2C, a)
    c_cs = g.add_op(OpKind.I2C, c)
    fma = g.add_op(OpKind.FMA, a_cs, b, c_cs, name="fma0")
    back = g.add_op(OpKind.C2I, fma)
    s = g.add_op(OpKind.ADD, back, d)
    out = g.add_output(s, "y")
    ids = {"a": a, "b": b, "c": c, "d": d, "a_cs": a_cs, "c_cs": c_cs,
           "fma": fma, "c2i": back, "add": s, "out": out}
    return g, ids


def _missing_converter(device: FpgaDevice) -> Report:
    """Delete the C2I between the FMA and the consuming adder."""
    g, ids = _fused_chain()
    g.rewire(ids["c2i"], ids["fma"])
    g.remove(ids["c2i"])
    return verify_format_flow(g, target="seed:missing-converter")


def _redundant_pair(device: FpgaDevice) -> Report:
    """Chain two FMAs through a C2I -> I2C round-trip the Fig. 12c
    cleanup should have collapsed."""
    g = CDFG()
    a = g.add_input("a")
    b = g.add_input("b")
    c = g.add_input("c")
    e = g.add_input("e")
    f = g.add_input("f")
    fma1 = g.add_op(OpKind.FMA, g.add_op(OpKind.I2C, a), b,
                    g.add_op(OpKind.I2C, c))
    back = g.add_op(OpKind.C2I, fma1)
    again = g.add_op(OpKind.I2C, back)          # the redundant pair
    fma2 = g.add_op(OpKind.FMA, again, e, g.add_op(OpKind.I2C, f))
    g.add_output(g.add_op(OpKind.C2I, fma2), "y")
    return verify_format_flow(g, target="seed:redundant-pair")


def _cs_to_output(device: FpgaDevice) -> Report:
    """Route the raw FMA result straight to an OUTPUT node."""
    g, ids = _fused_chain()
    # bypass every IEEE consumer: the output reads the CS word itself
    g.nodes[ids["out"]].operands = [ids["fma"]]
    g.prune_dead()
    return verify_format_flow(g, target="seed:cs-to-output")


def _swapped_fma_ports(device: FpgaDevice) -> Report:
    """Swap the FMA's A (CS) and B (IEEE) operand ports."""
    g, ids = _fused_chain()
    fma = g.nodes[ids["fma"]]
    fma.operands[0], fma.operands[1] = fma.operands[1], fma.operands[0]
    return verify_format_flow(g, target="seed:swapped-fma-ports")


def _dangling_operand(device: FpgaDevice) -> Report:
    """Point an operand at a node id that does not exist.

    ``a`` keeps its second consumer so the corruption orphans nothing
    -- the report must contain CS001 and only CS001."""
    g = CDFG()
    a = g.add_input("a")
    b = g.add_input("b")
    m = g.add_op(OpKind.MUL, a, b)
    s = g.add_op(OpKind.ADD, m, a)
    g.add_output(s, "y")
    g.nodes[s].operands[1] = 9999
    return verify_format_flow(g, target="seed:dangling-operand")


def _graph_cycle(device: FpgaDevice) -> Report:
    """Close a dependence cycle between a multiplier and its adder
    (``a`` stays live through the adder, so only CS002 may fire)."""
    g = CDFG()
    a = g.add_input("a")
    b = g.add_input("b")
    m = g.add_op(OpKind.MUL, a, b)
    s = g.add_op(OpKind.ADD, m, a)
    g.add_output(s, "y")
    g.nodes[m].operands[0] = s
    return verify_format_flow(g, target="seed:graph-cycle")


def _unreachable_node(device: FpgaDevice) -> Report:
    """Leave a dead multiplier behind (a pass that forgot prune_dead)."""
    g, ids = _fused_chain()
    g.add_op(OpKind.MUL, ids["a"], ids["b"], name="dead")
    return verify_format_flow(g, target="seed:unreachable-node")


# ---------------------------------------------------------------------------
# netlist / library corruptions
# ---------------------------------------------------------------------------

def _netlist_width(device: FpgaDevice) -> Report:
    """Narrow the PCS window 3:2 stage by one carry chunk."""
    design = pcs_fma_design(device)
    path = [make_csa_level(374, device, "window-3to2")
            if c.name == "window-3to2" else c for c in design.path]
    return lint_design(dataclasses.replace(design, path=path), device)


def _netlist_zd_blocks(device: FpgaDevice) -> Report:
    """Shrink the Zero Detector by one window block."""
    design = pcs_fma_design(device)
    path = [make_zero_detect(6, 55, device)
            if c.name.startswith("zd") else c for c in design.path]
    return lint_design(dataclasses.replace(design, path=path), device)


def _library_latency_drift(device: FpgaDevice) -> Report:
    """Hand-edit the scheduler's FMA latency away from the hardware."""
    library = default_library(device, fma_flavor="pcs")
    spec = library.specs["fma-pcs"]
    library.specs["fma-pcs"] = dataclasses.replace(
        spec, latency=spec.latency + 2)
    return lint_library(library, device)


# ---------------------------------------------------------------------------
# schedule corruptions
# ---------------------------------------------------------------------------

_TWO_MACS = """
y1 = a*b + c;
y2 = d*e + f;
"""


def _schedule_ready_time(device: FpgaDevice) -> Report:
    """Advance one operation to start before its operand finishes."""
    graph = parse_program(_TWO_MACS)
    library = default_library(device)
    sched = asap_schedule(graph, library)
    victim = max((nid for nid in graph.nodes
                  if graph.nodes[nid].operands),
                 key=lambda nid: sched.start[nid])
    sched.start[victim] -= 1
    return check_schedule(sched, target="seed:schedule-ready-time")


def _schedule_negative_start(device: FpgaDevice) -> Report:
    """Push a source node before cycle 0."""
    graph = parse_program(_TWO_MACS)
    library = default_library(device)
    sched = asap_schedule(graph, library)
    sched.start[graph.inputs()[0]] = -3
    return check_schedule(sched, target="seed:schedule-negative-start")


def _schedule_oversubscribed(device: FpgaDevice) -> Report:
    """Issue two FMAs in one cycle against a one-unit pool."""
    from ..hls.fma_pass import run_fma_insertion

    graph = parse_program(_TWO_MACS)
    library = default_library(device, fma_flavor="pcs")
    run_fma_insertion(graph, library)
    library.fma_limit = 1
    sched = asap_schedule(graph, library)   # ASAP ignores the pool
    return check_schedule(sched, target="seed:schedule-oversubscribed")


def all_violations() -> list[SeededViolation]:
    return [
        SeededViolation(
            "missing-converter",
            "C2I deleted between an FMA and an IEEE adder",
            frozenset({"CS004"}), _missing_converter),
        SeededViolation(
            "redundant-converter-pair",
            "C2I -> I2C round-trip left between chained FMAs",
            frozenset({"CS006"}), _redundant_pair),
        SeededViolation(
            "cs-to-output",
            "raw CS FMA result wired to an OUTPUT node",
            frozenset({"CS005"}), _cs_to_output),
        SeededViolation(
            "swapped-fma-ports",
            "FMA A (CS) and B (IEEE) operand ports exchanged",
            frozenset({"CS003", "CS004"}), _swapped_fma_ports),
        SeededViolation(
            "dangling-operand",
            "operand id points at a node that does not exist",
            frozenset({"CS001"}), _dangling_operand),
        SeededViolation(
            "graph-cycle",
            "dependence cycle between a multiplier and its adder",
            frozenset({"CS002"}), _graph_cycle),
        SeededViolation(
            "unreachable-node",
            "dead multiplier with no path to an output",
            frozenset({"CS008"}), _unreachable_node),
        SeededViolation(
            "netlist-stage-width",
            "PCS window 3:2 stage narrowed below the 385b window",
            frozenset({"NL001"}), _netlist_width),
        SeededViolation(
            "netlist-zd-blocks",
            "PCS Zero Detector covers 6 blocks instead of 7",
            frozenset({"NL002"}), _netlist_zd_blocks),
        SeededViolation(
            "library-latency-drift",
            "operator library schedules the PCS-FMA 2 cycles slow",
            frozenset({"NL008"}), _library_latency_drift),
        SeededViolation(
            "schedule-ready-time",
            "operation starts before its operand finishes",
            frozenset({"SCH001"}), _schedule_ready_time),
        SeededViolation(
            "schedule-negative-start",
            "input scheduled before cycle 0",
            frozenset({"SCH003"}), _schedule_negative_start),
        SeededViolation(
            "schedule-oversubscribed",
            "two FMA issues in one cycle against a one-unit pool",
            frozenset({"SCH004"}), _schedule_oversubscribed),
    ]


def run_detection_suite(device: FpgaDevice = VIRTEX6
                        ) -> list[ViolationResult]:
    """Run every seeded violation; each must yield exactly its
    expected rule ids."""
    results = []
    for v in all_violations():
        report = v.run(device)
        results.append(ViolationResult(
            v.name, v.expected, frozenset(report.rule_ids()), report))
    return results
