"""Text and JSON rendering of analysis reports."""

from __future__ import annotations

import json

from .diagnostics import Report, rules_by_family

__all__ = ["render_text", "render_json", "render_rules"]


def render_text(reports: list[Report], verbose: bool = False) -> str:
    """Human-readable summary: one line per diagnostic, grouped per
    analyzed target, then a one-line verdict."""
    lines: list[str] = []
    errors = warnings = 0
    for rep in reports:
        if rep.clean:
            if verbose:
                lines.append(f"{rep.target or '<unnamed>'}: clean")
            continue
        lines.append(f"{rep.target or '<unnamed>'}:")
        for diag in rep.diagnostics:
            lines.append(f"  {diag.format()}")
        errors += len(rep.errors)
        warnings += len(rep.warnings)
    total = sum(len(r) for r in reports)
    lines.append(
        f"{len(reports)} target(s) analyzed: {errors} error(s), "
        f"{warnings} warning(s), {total} diagnostic(s)")
    return "\n".join(lines)


def render_json(reports: list[Report]) -> str:
    """Machine-readable report for the CI gate."""
    payload = {
        "targets": [r.to_dict() for r in reports],
        "summary": {
            "targets": len(reports),
            "errors": sum(len(r.errors) for r in reports),
            "warnings": sum(len(r.warnings) for r in reports),
            "diagnostics": sum(len(r) for r in reports),
            "ok": all(r.ok for r in reports),
            "clean": all(r.clean for r in reports),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rules() -> str:
    """The rule catalogue (``--list-rules``)."""
    lines: list[str] = []
    for family, rules in sorted(rules_by_family().items()):
        lines.append(f"{family} rules:")
        for rule in sorted(rules, key=lambda r: r.id):
            lines.append(f"  {rule.id} [{rule.severity.value:7s}] "
                         f"{rule.title}")
    return "\n".join(lines)
