"""Netlist consistency lint over hardware unit designs (``NL001+``).

The :mod:`repro.hw.netlist` factories assemble each FMA unit's
component chain by hand; nothing forces the stage geometry to agree
with the operand-format constants of :mod:`repro.fma.formats` (the
110-bit / 11-bit-chunk PCS mantissa, the 87-digit / 29-digit-block FCS
mantissa, the 7x55b and 13x29c adder windows).  This lint re-derives
the expected geometry of every named stage from the
:class:`~repro.fma.formats.CSFmaParams` and reports any drift, plus
generic cost-sanity checks, plus a cross-check of the HLS operator
library's latencies against the pipeline depths the hardware model
actually synthesizes.
"""

from __future__ import annotations

import math

from ..fma.formats import CSFmaParams, FCS_PARAMS, PCS_PARAMS
from ..hw.components import Component, lut_levels_for_mux
from ..hw.netlist import UnitDesign
from ..hw.technology import VIRTEX6, FpgaDevice
from .diagnostics import Report

__all__ = ["lint_design", "lint_library", "params_for_design"]


def params_for_design(design: UnitDesign) -> CSFmaParams | None:
    """The operand format a carry-save unit implements, by name."""
    return {"pcs-fma": PCS_PARAMS, "fcs-fma": FCS_PARAMS}.get(design.name)


def _find(components: list[Component], name: str) -> Component | None:
    for c in components:
        if c.name == name:
            return c
    return None


def _find_prefix(components: list[Component],
                 prefix: str) -> Component | None:
    for c in components:
        if c.name.startswith(prefix):
            return c
    return None


def _check_sanity(report: Report, design: UnitDesign) -> None:
    """NL007: component costs must be physically plausible."""
    if not design.path:
        report.emit("NL007", "design has an empty critical path")
    for c in design.all_components():
        problems = []
        if not math.isfinite(c.delay_ns) or c.delay_ns < 0:
            problems.append(f"delay {c.delay_ns!r} ns")
        if c.luts < 0:
            problems.append(f"{c.luts} LUTs")
        if c.dsps < 0:
            problems.append(f"{c.dsps} DSPs")
        if c.reg_bits < 0:
            problems.append(f"{c.reg_bits} register bits")
        if c.toggle_bits < 0:
            problems.append(f"{c.toggle_bits} toggle bits")
        if problems:
            report.emit("NL007",
                        "implausible cost: " + ", ".join(problems),
                        f"component {c.name!r}")


def _check_cs_geometry(report: Report, design: UnitDesign,
                       params: CSFmaParams) -> None:
    """NL001-NL006: stage geometry against the format constants."""
    W = params.window_width
    full_cs = params.carry_spacing == 1
    result_w = params.mant_width + params.block
    if full_cs:
        result_w *= 2          # FCS results travel as sum + carry words

    # NL001 -- window 3:2 compressor spans the whole adder window
    win = _find(design.path, "window-3to2")
    if win is None:
        report.emit("NL001", "no window-3to2 stage on the critical path")
    elif win.luts != W:
        report.emit("NL001",
                    f"window 3:2 stage is {win.luts} bits wide, format "
                    f"window is {W} ({params.window_blocks} x "
                    f"{params.block})", "component 'window-3to2'")

    # NL002 -- zero-detection geometry per flavor
    zd = _find_prefix(design.path, "zd")
    if full_cs:
        if zd is not None:
            report.emit("NL002",
                        "full-carry-save unit carries a block Zero "
                        "Detector on its critical path; the FCS unit "
                        "uses an early off-path block LZA (Sec. III-H)",
                        f"component {zd.name!r}")
        lza = _find_prefix(design.offpath, "lza")
        want_lza = f"lza{W}"
        if lza is None:
            report.emit("NL002",
                        f"no early block LZA ({want_lza!r}) in the "
                        "off-path blocks")
        elif lza.name != want_lza:
            report.emit("NL002",
                        f"early block LZA is {lza.name!r}, format "
                        f"window needs {want_lza!r}",
                        f"component {lza.name!r}")
    else:
        want_zd = f"zd{params.window_blocks}x{params.block}"
        if zd is None:
            report.emit("NL002",
                        f"no block Zero Detector ({want_zd!r}) on the "
                        "critical path (Fig. 10: the ZD determines the "
                        "total FMA latency)")
        elif zd.name != want_zd:
            report.emit("NL002",
                        f"Zero Detector is {zd.name!r}, format window "
                        f"is {params.window_blocks} blocks of "
                        f"{params.block} digits ({want_zd!r})",
                        f"component {zd.name!r}")

    # NL003 -- Carry Reduce: spacing-wide for PCS, absent for FCS
    cr = _find(design.path, "carry-reduce")
    if full_cs:
        if cr is not None:
            report.emit("NL003",
                        "full-carry-save unit has a Carry Reduce "
                        "stage; FCS keeps explicit carries everywhere "
                        "(Sec. III-H)", "component 'carry-reduce'")
    else:
        if cr is None:
            report.emit("NL003",
                        "no Carry Reduce stage on the critical path")
        elif cr.luts != params.carry_spacing:
            report.emit("NL003",
                        f"Carry Reduce adder is {cr.luts} bits wide, "
                        f"carry spacing is {params.carry_spacing}",
                        "component 'carry-reduce'")

    # NL004 -- final block multiplexer geometry
    mux = _find(design.path, "result-mux")
    want_luts = result_w * max(1, (params.mux_positions - 1) // 2)
    if mux is None:
        report.emit("NL004", "no result-mux stage on the critical path")
    else:
        if mux.reg_bits != result_w:
            report.emit("NL004",
                        f"result mux is {mux.reg_bits} bits wide, "
                        f"format result is {result_w}",
                        "component 'result-mux'")
        if mux.luts != want_luts:
            report.emit("NL004",
                        f"result mux area ({mux.luts} LUTs) does not "
                        f"match a {params.mux_positions}:1 select over "
                        f"{result_w} bits ({want_luts} LUTs)",
                        "component 'result-mux'")

    # NL005 -- addend pre-shifter spans the alignment window
    positions = params.addend_max_pos + 1
    want_shift = result_w * lut_levels_for_mux(positions)
    pre = _find(design.offpath, "a-preshift")
    if pre is None:
        report.emit("NL005",
                    "no addend pre-shifter in the off-path blocks")
    elif pre.luts != want_shift:
        report.emit("NL005",
                    f"pre-shifter area ({pre.luts} LUTs) does not "
                    f"match the {positions}-position alignment window "
                    f"over {result_w} bits ({want_shift} LUTs)",
                    "component 'a-preshift'")

    # NL006 -- window fabric wire count (the routing-energy term)
    want_wires = 2 * W if full_cs else W + W // params.carry_spacing
    if design.window_wires != want_wires:
        report.emit("NL006",
                    f"window fabric has {design.window_wires} wires, "
                    f"format implies {want_wires}")


def lint_design(design: UnitDesign, device: FpgaDevice = VIRTEX6,
                params: CSFmaParams | None = None) -> Report:
    """Lint one unit design.

    Carry-save units (``pcs-fma`` / ``fcs-fma``, or any design with an
    explicit ``params``) get the full NL001-NL006 geometry check
    against their operand format; every design gets the NL007 cost
    sanity check.
    """
    report = Report(target=f"netlist:{design.name}")
    _check_sanity(report, design)
    if params is None:
        params = params_for_design(design)
    if params is not None:
        _check_cs_geometry(report, design, params)
    for sub in design.subunits:
        report.extend(lint_design(sub, device))
    return report


#: operator-library spec key -> netlist design name
_SPEC_DESIGNS = {
    "mul": "coregen-mul",
    "add": "coregen-add",
    "fma-pcs": "pcs-fma",
    "fma-fcs": "fcs-fma",
}


def lint_library(library, device: FpgaDevice = VIRTEX6,
                 target_mhz: float = 200.0) -> Report:
    """NL008: the latencies the scheduler plans with must equal the
    pipeline depths the hardware model synthesizes for the same units
    at the same clock target (:func:`repro.hls.operators.default_library`
    derives them that way; hand-edited specs drift)."""
    from ..hw.netlist import (cs_to_ieee_converter, divider_design,
                              ieee_to_cs_converter)
    from ..hw.synthesis import synthesize, synthesize_by_name

    report = Report(target="operator-library")
    params = PCS_PARAMS if library.fma_flavor == "pcs" else FCS_PARAMS
    for key, spec in library.specs.items():
        if key in _SPEC_DESIGNS:
            synth = synthesize_by_name(_SPEC_DESIGNS[key], device,
                                       target_mhz)
        elif key == "div":
            synth = synthesize(divider_design(device), device,
                               target_mhz)
        elif key == "i2c":
            synth = synthesize(ieee_to_cs_converter(device, params),
                               device, target_mhz)
        elif key == "c2i":
            synth = synthesize(cs_to_ieee_converter(device, params),
                               device, target_mhz)
        else:
            continue
        if spec.latency != synth.cycles:
            report.emit("NL008",
                        f"library schedules {key!r} at {spec.latency} "
                        f"cycle(s); the hardware model pipelines "
                        f"{synth.name!r} to {synth.cycles} cycle(s) at "
                        f"{target_mhz:g} MHz", f"operator {key!r}")
    return report
