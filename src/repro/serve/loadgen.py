"""Seeded open-loop load generation for tests and benchmarks.

An *open-loop* generator submits request ``i`` at its scheduled offset
``i / rate_hz`` (plus seeded jitter) regardless of whether earlier
responses have arrived -- the arrival process does not slow down when
the server does, which is what makes overload behaviour observable.
Workloads are pure functions of the seed: the same
:class:`LoadSpec` always produces the same request stream, so latency
and loss numbers are comparable across runs.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from ..fp.formats import BINARY64
from ..fp.value import FPValue
from .protocol import Request, Response, fp_to_word
from .server import FmaServer

__all__ = ["LoadSpec", "LoadReport", "make_requests", "run_open_loop",
           "percentile"]


@dataclass(frozen=True)
class LoadSpec:
    """One reproducible workload."""

    n_requests: int = 1000
    rate_hz: float = 20000.0         # arrival rate (open loop)
    seed: int = 0
    jitter: float = 0.2              # +- fraction of the inter-arrival
    #: (op, fmt, weight); vector ops draw lengths from ``vec_len``.
    mix: tuple = (("fma", "pcs", 4), ("fma", "fcs", 2),
                  ("fma", "classic", 2), ("dot", "fcs", 1),
                  ("acc", "pcs", 1))
    vec_len: tuple[int, int] = (4, 16)
    exp_spread: int = 24             # operand exponent spread
    timeout_s: float | None = None   # per-request budget


@dataclass
class LoadReport:
    """Outcome of one open-loop run."""

    responses: dict = field(default_factory=dict)   # req_id -> Response
    duplicates: list = field(default_factory=list)
    latencies_s: list = field(default_factory=list)  # admitted ok/error
    wall_s: float = 0.0

    @property
    def n_ok(self) -> int:
        return sum(1 for r in self.responses.values() if r.ok)

    @property
    def n_rejected(self) -> int:
        return sum(1 for r in self.responses.values()
                   if r.status == "rejected")

    @property
    def n_error(self) -> int:
        return sum(1 for r in self.responses.values()
                   if r.status == "error")

    def throughput(self) -> float:
        return self.n_ok / self.wall_s if self.wall_s > 0 else 0.0


def percentile(values: list[float], p: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(p / 100.0 * len(ordered))) - 1))
    return ordered[rank]


def _word(rng: random.Random, spread: int) -> int:
    x = (rng.choice([-1.0, 1.0]) * rng.uniform(1.0, 2.0)
         * 2.0 ** rng.randint(-spread, spread))
    return fp_to_word(FPValue.from_float(x, BINARY64))


def make_requests(spec: LoadSpec) -> "list[tuple[float, Request]]":
    """The deterministic request stream: ``(arrival_offset_s, request)``
    pairs in submission order."""
    rng = random.Random(spec.seed)
    weighted = [(op, fmt) for op, fmt, w in spec.mix for _ in range(w)]
    period = 1.0 / spec.rate_hz if spec.rate_hz > 0 else 0.0
    out = []
    offset = 0.0
    for i in range(spec.n_requests):
        op, fmt = rng.choice(weighted)
        if op == "fma":
            req = Request(req_id=i, op=op, fmt=fmt,
                          a=_word(rng, spec.exp_spread),
                          b=_word(rng, spec.exp_spread),
                          c=_word(rng, spec.exp_spread),
                          timeout_s=spec.timeout_s)
        else:
            n = rng.randint(*spec.vec_len)
            req = Request(
                req_id=i, op=op, fmt=fmt,
                a=tuple(_word(rng, spec.exp_spread) for _ in range(n)),
                b=tuple(_word(rng, spec.exp_spread) for _ in range(n)),
                timeout_s=spec.timeout_s)
        out.append((offset, req))
        offset += period * (1.0 + spec.jitter * (2 * rng.random() - 1))
    return out


async def run_open_loop(server: FmaServer, spec: LoadSpec,
                        ) -> LoadReport:
    """Drive ``server`` with the spec's stream; collect every response.

    Submission times follow the schedule (open loop); responses are
    recorded as they land, flagging duplicates (the differential tests
    assert there are none and nothing is lost).
    """
    loop = asyncio.get_running_loop()
    report = LoadReport()
    stream = make_requests(spec)
    t_start = loop.time()

    async def one(offset: float, req: Request) -> None:
        delay = (t_start + offset) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        t0 = loop.time()
        resp: Response = await server.submit(req)
        if req.req_id in report.responses:
            report.duplicates.append(req.req_id)
        report.responses[req.req_id] = resp
        if resp.status != "rejected":
            report.latencies_s.append(loop.time() - t0)

    await asyncio.gather(*(one(off, req) for off, req in stream))
    report.wall_s = loop.time() - t_start
    return report
