"""Request/response model and JSON-lines wire format for ``repro.serve``.

Operands travel as binary64 **bit patterns** (hex strings on the wire,
plain ints in process), exactly like the golden-vector corpus -- the
serving layer never passes through ``float`` and therefore never loses
a payload NaN or a signed zero.  Three operations are served:

``fma``
    scalar ``r = a + b*c`` through one unit (``classic``/``pcs``/``fcs``;
    the CS units lift ``a``/``c`` exactly via ``ieee_to_cs`` and lower
    the result once, as the conformance oracle does);
``dot``
    fused inner product over equal-length vectors (``pcs``/``fcs``);
``acc``
    a [12]-style PCS accumulation of all products ``a[i]*b[i]``,
    normalized once at the end.

A response is exactly one of three shapes (``status`` field):

* ``ok`` -- carries ``result`` (one hex word);
* ``rejected`` -- the request was **never executed**: admission or the
  queue shed it (``reason`` in :data:`REJECT_REASONS`); safe to retry;
* ``error`` -- the request was attempted and failed (``kind`` +
  ``message``); ``kind`` mirrors the structured error records of
  :mod:`repro.faults.resilient` (``timeout`` / ``worker-died`` /
  ``exception``) plus ``bad-request`` for malformed input and
  ``uncorrectable`` for a guarded batch the CED layer rejected.

A request may opt into concurrent error detection with ``verify``
(one of :data:`VERIFY_LEVELS`): its batch then executes under the
:mod:`repro.guard` residue checkers and redundant-execution voting,
and an ``ok`` response carries the guard classification (``clean`` or
``corrected``) in the ``guard`` field.  An ``uncorrectable`` batch is
*never* returned as data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..batch.engines import BACKENDS
from ..fp.formats import BINARY64
from ..fp.value import FPValue

__all__ = ["Request", "Response", "OPS", "FORMATS", "REJECT_REASONS",
           "VERIFY_LEVELS", "word_to_hex", "hex_to_word",
           "encode_request", "decode_request", "encode_response",
           "decode_response", "ProtocolError", "fp_to_word",
           "word_to_fp"]

#: served operations and the operand formats each accepts.
OPS: dict[str, tuple[str, ...]] = {
    "fma": ("classic", "pcs", "fcs"),
    "dot": ("pcs", "fcs"),
    "acc": ("pcs",),
}
FORMATS = ("classic", "pcs", "fcs")

#: structured rejection reasons (the overload policy's vocabulary).
REJECT_REASONS = ("queue-full", "slow-start", "deadline", "draining")

#: per-request verification levels (the guard's policy modes).
VERIFY_LEVELS = ("residue", "dmr", "tmr")

_WORD_MASK = (1 << 64) - 1


class ProtocolError(ValueError):
    """Malformed request or response (wire or in-process)."""


def word_to_hex(word: int) -> str:
    return "0x%016x" % (word & _WORD_MASK)


def hex_to_word(text: str) -> int:
    try:
        word = int(text, 16)
    except (TypeError, ValueError):
        raise ProtocolError(f"not a binary64 bit pattern: {text!r}")
    if not 0 <= word <= _WORD_MASK:
        raise ProtocolError(f"bit pattern out of range: {text!r}")
    return word


_FRAC_MASK = (1 << 52) - 1
_QNAN = 0x7FF8000000000000


def fp_to_word(x: FPValue) -> int:
    """IEEE binary64 bit pattern of ``x`` (NaN canonicalized to the
    quiet NaN, matching the golden-vector corpus; *not* the FloPoCo
    ``FPValue.pack`` word, which carries two extra exception bits)."""
    if x.is_nan:
        return _QNAN
    if x.is_inf:
        return (x.sign << 63) | 0x7FF0000000000000
    if x.is_zero:
        return x.sign << 63
    return ((x.sign << 63) | (x.biased_exponent << 52) | x.fraction)


def word_to_fp(word: int) -> FPValue:
    """Decode an IEEE binary64 bit pattern exactly.

    Subnormal encodings flush to signed zero -- the same loader
    semantics as ``FPValue.from_float`` and the FloPoCo-style models.
    """
    word &= _WORD_MASK
    sign = (word >> 63) & 1
    be = (word >> 52) & 0x7FF
    frac = word & _FRAC_MASK
    if be == 0x7FF:
        return (FPValue.nan(BINARY64) if frac
                else FPValue.inf(BINARY64, sign))
    if be == 0:  # subnormal or zero: flush, preserving the sign
        return FPValue.zero(BINARY64, sign)
    return FPValue.from_parts(BINARY64, sign, be, frac)


@dataclass(frozen=True)
class Request:
    """One serving request, operands as binary64 bit words.

    ``a``/``b``/``c`` are single words for ``fma`` and equal-length word
    tuples (``a``, ``b``; no ``c``) for ``dot``/``acc``.  ``timeout_s``
    is the client's deadline budget, measured from admission; the
    micro-batcher sheds the request (``rejected``/``deadline``) if it is
    still queued when the budget runs out.  ``verify`` opts the request
    into the guarded execution path (:data:`VERIFY_LEVELS`); verified
    requests only coalesce with batchmates at the same level.
    ``backend`` pins the evaluation machinery for this request
    (:data:`repro.batch.engines.BACKENDS`; ``None`` uses the server
    default); requests only coalesce with batchmates on the same
    backend, since the backend is a batch-level execution property.
    """

    req_id: int | str
    op: str
    fmt: str = "pcs"
    a: "int | tuple[int, ...]" = 0
    b: "int | tuple[int, ...]" = 0
    c: int | None = None
    timeout_s: float | None = None
    verify: str | None = None
    backend: str | None = None

    def validate(self) -> None:
        if self.op not in OPS:
            raise ProtocolError(f"unknown op {self.op!r}")
        if self.fmt not in OPS[self.op]:
            raise ProtocolError(
                f"op {self.op!r} does not accept format {self.fmt!r}")
        if self.op == "fma":
            for name, v in (("a", self.a), ("b", self.b), ("c", self.c)):
                if not isinstance(v, int):
                    raise ProtocolError(f"fma operand {name} must be one "
                                        f"binary64 word")
        else:
            if self.c is not None:
                raise ProtocolError(f"{self.op} takes no c operand")
            if (not isinstance(self.a, tuple)
                    or not isinstance(self.b, tuple)
                    or len(self.a) != len(self.b)):
                raise ProtocolError(
                    f"{self.op} needs equal-length a/b vectors")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ProtocolError("timeout_s must be positive")
        if self.verify is not None and self.verify not in VERIFY_LEVELS:
            raise ProtocolError(
                f"verify must be one of {VERIFY_LEVELS}")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ProtocolError(
                f"backend must be one of {BACKENDS}")

    @property
    def n_elements(self) -> int:
        return 1 if self.op == "fma" else len(self.a)


@dataclass(frozen=True)
class Response:
    """Outcome of one request (see module docstring for the shapes)."""

    req_id: int | str
    status: str                      # "ok" | "rejected" | "error"
    result: int | None = None        # ok: binary64 word
    reason: str | None = None        # rejected: REJECT_REASONS entry
    kind: str | None = None          # error: timeout/worker-died/...
    message: str | None = None
    attempts: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


# ---------------------------------------------------------------------------
# JSON-lines wire codec


def _words(value, what: str) -> "int | tuple[int, ...]":
    if isinstance(value, str):
        return hex_to_word(value)
    if isinstance(value, (list, tuple)):
        return tuple(hex_to_word(w) if isinstance(w, str) else _int_word(w)
                     for w in value)
    return _int_word(value, what)


def _int_word(value, what: str = "operand") -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{what} must be a hex string or int word")
    if not 0 <= value <= _WORD_MASK:
        raise ProtocolError(f"{what} out of 64-bit range")
    return value


def decode_request(obj: dict) -> Request:
    """Build a validated :class:`Request` from a decoded JSON object."""
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    if "id" not in obj:
        raise ProtocolError("request needs an id")
    req_id = obj["id"]
    if not isinstance(req_id, (int, str)):
        raise ProtocolError("id must be an int or string")
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request needs an op")
    fmt = obj.get("fmt", "pcs")
    timeout = obj.get("timeout_s")
    if timeout is not None and not isinstance(timeout, (int, float)):
        raise ProtocolError("timeout_s must be a number")
    verify = obj.get("verify")
    if verify is not None and not isinstance(verify, str):
        raise ProtocolError("verify must be a string")
    backend = obj.get("backend")
    if backend is not None and not isinstance(backend, str):
        raise ProtocolError("backend must be a string")
    c = obj.get("c")
    req = Request(
        req_id=req_id, op=op, fmt=fmt,
        a=_words(obj.get("a", 0), "a"), b=_words(obj.get("b", 0), "b"),
        c=None if c is None else _int_word(
            hex_to_word(c) if isinstance(c, str) else c, "c"),
        timeout_s=None if timeout is None else float(timeout),
        verify=verify, backend=backend)
    req.validate()
    return req


def encode_request(req: Request) -> dict:
    """JSON-ready dict for one request (hex operand encoding)."""
    def enc(v):
        if isinstance(v, tuple):
            return [word_to_hex(w) for w in v]
        return word_to_hex(v)

    obj: dict = {"id": req.req_id, "op": req.op, "fmt": req.fmt,
                 "a": enc(req.a), "b": enc(req.b)}
    if req.c is not None:
        obj["c"] = word_to_hex(req.c)
    if req.timeout_s is not None:
        obj["timeout_s"] = req.timeout_s
    if req.verify is not None:
        obj["verify"] = req.verify
    if req.backend is not None:
        obj["backend"] = req.backend
    return obj


def encode_response(resp: Response) -> dict:
    obj: dict = {"id": resp.req_id, "status": resp.status}
    if resp.status == "ok":
        obj["result"] = word_to_hex(resp.result)
    elif resp.status == "rejected":
        obj["reason"] = resp.reason
    else:
        obj["kind"] = resp.kind
        obj["message"] = resp.message or ""
    if resp.attempts:
        obj["attempts"] = resp.attempts
    if resp.meta.get("guard"):
        obj["guard"] = resp.meta["guard"]
    return obj


def decode_response(obj: dict) -> Response:
    if not isinstance(obj, dict) or "status" not in obj:
        raise ProtocolError("response must be an object with a status")
    status = obj["status"]
    meta = {"guard": obj["guard"]} if "guard" in obj else {}
    if status == "ok":
        return Response(obj.get("id"), "ok",
                        result=hex_to_word(obj["result"]),
                        attempts=obj.get("attempts", 0), meta=meta)
    if status == "rejected":
        return Response(obj.get("id"), "rejected",
                        reason=obj.get("reason"))
    if status == "error":
        return Response(obj.get("id"), "error", kind=obj.get("kind"),
                        message=obj.get("message"),
                        attempts=obj.get("attempts", 0), meta=meta)
    raise ProtocolError(f"unknown response status {status!r}")


def pack_sequence(xs: Sequence[FPValue]) -> tuple[int, ...]:
    """Convenience: FPValues -> wire words (used by clients/tests)."""
    return tuple(fp_to_word(x) for x in xs)


__all__.append("pack_sequence")
