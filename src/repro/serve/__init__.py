"""Async micro-batching FMA serving layer (docs/SERVING.md).

Turns the batched carry-save kernels into a request-serving path:

* :class:`~repro.serve.server.FmaServer` -- in-process asyncio API
  (``submit`` / ``drain``) plus a TCP/JSON-lines frontend
  (``serve_tcp``; CLI: ``python -m repro.serve``);
* :class:`~repro.serve.server.ServeConfig` -- micro-batch, worker-pool
  and overload-policy knobs;
* :mod:`~repro.serve.protocol` -- the wire model (binary64 bit words,
  structured ``ok``/``rejected``/``error`` responses);
* :mod:`~repro.serve.loadgen` -- seeded open-loop load generation.

Guarantees: every admitted request gets exactly one response, results
are bit-identical to calling the engines directly for any batch split
and arrival order, and overload is shed with structured rejections
instead of unbounded queueing.
"""

from .admission import AdmissionController
from .batcher import Entry, MicroBatcher
from .executor import BatchExecutor, execute_payload, reference_result
from .loadgen import (LoadReport, LoadSpec, make_requests, percentile,
                      run_open_loop)
from .protocol import (OPS, REJECT_REASONS, ProtocolError, Request,
                       Response, decode_request, decode_response,
                       encode_request, encode_response, hex_to_word,
                       word_to_hex)
from .server import FmaServer, ServeConfig

__all__ = [
    "FmaServer", "ServeConfig",
    "Request", "Response", "ProtocolError",
    "OPS", "REJECT_REASONS",
    "encode_request", "decode_request",
    "encode_response", "decode_response",
    "word_to_hex", "hex_to_word",
    "MicroBatcher", "Entry", "AdmissionController",
    "BatchExecutor", "execute_payload", "reference_result",
    "LoadSpec", "LoadReport", "make_requests", "run_open_loop",
    "percentile",
]
