"""Batch execution for the serving layer.

The unit of execution is a **payload**: one coalesced micro-batch of
same-``(op, fmt)`` requests, flattened to plain ints so it crosses a
process boundary cheaply.  :func:`execute_payload` is the module-level
(picklable) work function; :class:`BatchExecutor` routes every payload
through :func:`repro.faults.resilient.run_resilient`, so one shared
recovery policy covers the whole repo:

* ``isolation="inline"`` (default): the payload runs in the calling
  (worker-pool) thread -- ``run_resilient`` still provides bounded
  retry with backoff and structured failure records;
* ``isolation="process"``: the payload runs in a child process with the
  full per-attempt wall-clock timeout, hung-worker reclaim and
  broken-pool respawn machinery (slower: a pool is spawned per payload;
  meant for untrusted/long batches, and for the resilience tests).

Payloads carrying a ``verify`` level instead route through the
:class:`repro.guard.voting.GuardedExecutor`: the whole batch executes
under the armed residue checkers and, on a flag (or unconditionally in
DMR/TMR mode), is re-executed and voted on.  Process isolation composes:
guard replicas then run on distinct pool workers.

Failures are two-level by design.  A *request* that cannot be computed
(accumulator overflow, malformed operands) yields a per-item error
record inside an otherwise successful payload -- it never fails its
batchmates and is never retried.  Only *infrastructure* failures (hang,
crash, worker death) fail the payload and engage retry; after the last
attempt every request in the batch gets a structured ``error`` response
carrying the resilient error record's ``kind``.
"""

from __future__ import annotations

from ..batch import dot_batch, fma_batch
from ..fma.accumulator import PcsAccumulator
from ..fma.classic import ClassicFmaUnit
from ..fma.convert import cs_to_ieee, ieee_to_cs
from ..fma.csfma import FcsFmaUnit, PcsFmaUnit
from ..fma.dotprod import FusedDotProductUnit
from ..fp.formats import BINARY64
from ..faults.resilient import RetryPolicy, run_resilient
from .protocol import Request, fp_to_word, word_to_fp

__all__ = ["execute_payload", "reference_result", "BatchExecutor",
           "payload_from_requests"]


def _units():
    """Per-process unit singletons (compiled kernels are cached per
    params, so workers pay the warm-up once)."""
    global _UNIT_CACHE
    try:
        return _UNIT_CACHE
    except NameError:
        _UNIT_CACHE = {"classic": ClassicFmaUnit(BINARY64),
                       "pcs": PcsFmaUnit(), "fcs": FcsFmaUnit()}
        return _UNIT_CACHE


def payload_from_requests(op: str, fmt: str, requests: "list[Request]",
                          use_batch: bool = True,
                          verify: str | None = None,
                          backend: str | None = None) -> dict:
    """Flatten one coalesced batch into a picklable payload dict."""
    payload = {"op": op, "fmt": fmt, "use_batch": use_batch,
               "items": [(r.a, r.b, r.c) for r in requests]}
    if verify is not None:
        payload["verify"] = verify
    if backend is not None:
        payload["backend"] = backend
    return payload


def _exec_fma(fmt: str, items, use_batch: bool,
              backend: str | None = None) -> list:
    unit = _units()[fmt]
    if fmt == "classic":
        out = []
        for a, b, c in items:
            r = unit.fma(word_to_fp(a), word_to_fp(b), word_to_fp(c))
            out.append(("ok", fp_to_word(r)))
        return out
    a = [word_to_fp(w) for w, _b, _c in items]
    b = [word_to_fp(w) for _a, w, _c in items]
    c = [word_to_fp(w) for _a, _b, w in items]
    results = fma_batch(a, b, c, unit=unit, use_batch=use_batch,
                        backend=backend)
    return [("ok", fp_to_word(cs_to_ieee(r))) for r in results]


#: below this lane count the vector dot engine's per-step ndarray
#: overhead loses to per-lane tuple evaluation, so the payload falls
#: through to :func:`repro.batch.dot_batch` (which dispatches per lane).
VECTOR_MIN_DOT_LANES = 32


def _exec_dot_vector(unit, items) -> "list | None":
    """Whole-payload vector evaluation of a coalesced dot batch: the
    word vectors go straight into :meth:`VectorCSKernel.dot_many_words`
    (no per-element ``word_to_fp``).  ``None`` -> caller falls through
    to the per-lane path (vector unavailable or armed probes/guard)."""
    from .. import probes
    from ..guard import residue as _gd

    if probes.ARMED is not None or _gd.ACTIVE is not None:
        return None
    from ..batch.vector import np, vector_kernel_for

    vk = vector_kernel_for(unit)
    if vk is None:
        return None
    lens = [len(aw) for aw, _bw, _c in items]
    T = max(lens)
    N = len(items)
    a = np.zeros((T, N), np.uint64)
    b = np.zeros((T, N), np.uint64)
    for i, (aw, bw, _c) in enumerate(items):
        if lens[i]:
            a[:lens[i], i] = aw
            b[:lens[i], i] = bw
    tuples = vk.dot_many_words(a, b, lens=np.asarray(lens, np.int64))
    lower = vk.kernel.lower
    return [("ok", fp_to_word(cs_to_ieee(lower(t)))) for t in tuples]


def _exec_dot(fmt: str, items, use_batch: bool,
              backend: str | None = None) -> list:
    unit = _units()[fmt]
    if use_batch and items:
        from ..batch.engines import requested_backend, resolve_backend

        requested = requested_backend(backend)
        if (resolve_backend(requested) == "vector"
                and (requested == "vector"
                     or len(items) >= VECTOR_MIN_DOT_LANES)):
            out = _exec_dot_vector(unit, items)
            if out is not None:
                return out
    out = []
    for aw, bw, _c in items:
        a = [word_to_fp(w) for w in aw]
        b = [word_to_fp(w) for w in bw]
        out.append(("ok", fp_to_word(dot_batch(
            a, b, unit=unit, use_batch=use_batch, backend=backend))))
    return out


def _exec_acc(items, use_batch: bool) -> list:
    from ..batch import accumulate_batch

    out = []
    for aw, bw, _c in items:
        a = [word_to_fp(w) for w in aw]
        b = [word_to_fp(w) for w in bw]
        try:
            acc = accumulate_batch(a, b, use_batch=use_batch)
            out.append(("ok", fp_to_word(acc.result())))
        except ArithmeticError as exc:
            out.append(("error", "exception",
                        f"{type(exc).__name__}: {exc}"))
    return out


def execute_payload(payload: dict) -> list:
    """Execute one payload; returns one record per item, in order.

    Records are ``("ok", result_word)`` or
    ``("error", kind, message)``.  Request-level failures are captured
    per item; anything else propagates (and becomes an infrastructure
    failure handled by the resilient wrapper).
    """
    op = payload["op"]
    fmt = payload["fmt"]
    items = payload["items"]
    use_batch = payload.get("use_batch", True)
    backend = payload.get("backend")
    if op == "fma":
        return _exec_fma(fmt, items, use_batch, backend)
    if op == "dot":
        return _exec_dot(fmt, items, use_batch, backend)
    if op == "acc":
        return _exec_acc(items, use_batch)
    raise ValueError(f"unknown op {op!r}")


def reference_result(req: Request) -> "tuple":
    """The oracle for one request: the faithful scalar models, no batch
    kernels, no serving layer.  Differential tests compare every served
    response against this, bit for bit."""
    units = _units()
    if req.op == "fma":
        if req.fmt == "classic":
            r = units["classic"].fma(word_to_fp(req.a), word_to_fp(req.b),
                                     word_to_fp(req.c))
            return ("ok", fp_to_word(r))
        unit = units[req.fmt]
        r = unit.fma(ieee_to_cs(word_to_fp(req.a), unit.params),
                     word_to_fp(req.b),
                     ieee_to_cs(word_to_fp(req.c), unit.params))
        return ("ok", fp_to_word(cs_to_ieee(r)))
    a = [word_to_fp(w) for w in req.a]
    b = [word_to_fp(w) for w in req.b]
    if req.op == "dot":
        return ("ok",
                fp_to_word(FusedDotProductUnit(units[req.fmt]).dot(a, b)))
    acc = PcsAccumulator()
    try:
        for ai, bi in zip(a, b):
            acc.accumulate(ai, bi)
    except ArithmeticError as exc:
        return ("error", "exception", f"{type(exc).__name__}: {exc}")
    return ("ok", fp_to_word(acc.result()))


# ---------------------------------------------------------------------------


class _GuardedPayload:
    """Picklable work unit for :class:`repro.guard.voting.GuardedExecutor`:
    one full payload execution per guard replica (the batch is the unit
    of detection -- a flagged check re-executes the whole payload)."""

    def __init__(self, work_fn, payload: dict):
        self.work_fn = work_fn
        self.payload = payload

    def __call__(self, execution: int) -> list:
        return self.work_fn(self.payload)


class BatchExecutor:
    """Synchronous payload runner with the shared recovery policy.

    One instance is owned by the server and invoked from its bounded
    worker-pool threads; :meth:`run` blocks the calling thread, never
    the event loop.  ``work_fn`` is injectable (module-level picklable
    callable) so the resilience tests can substitute hanging or
    crashing workloads without touching the datapath.
    """

    def __init__(self, *, isolation: str = "inline",
                 timeout_s: float | None = None,
                 retry: RetryPolicy | None = None,
                 rng_seed: int = 0, work_fn=None):
        if isolation not in ("inline", "process"):
            raise ValueError("isolation must be 'inline' or 'process'")
        self.isolation = isolation
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=2, backoff_base_s=0.001, backoff_cap_s=0.01)
        self.rng_seed = rng_seed
        self.work_fn = work_fn if work_fn is not None else execute_payload
        self._calls = 0

    def run(self, payload: dict,
            ) -> "tuple[list | None, dict | None, int, str | None]":
        """Run one payload; returns ``(records, error, attempts, guard)``.

        Exactly one of ``records``/``error`` is ``None``; ``error`` is
        the structured record from :class:`~repro.faults.resilient.
        WorkResult` (``kind`` = timeout / worker-died / exception).
        ``guard`` is ``None`` for plain payloads and the guard
        classification (``clean``/``corrected``/``uncorrectable``) for
        payloads carrying a ``verify`` level.
        """
        self._calls += 1
        verify = payload.get("verify")
        if verify:
            return self._run_guarded(payload, verify)
        process = self.isolation == "process"
        run = run_resilient(
            self.work_fn, [payload],
            workers=2 if process else 1,
            timeout_s=self.timeout_s if process else None,
            retry=self.retry,
            rng_seed=self.rng_seed + self._calls,
            always_pool=process)
        result = run.results[0]
        if result.ok:
            return result.value, None, result.attempts, None
        return None, result.error or {"kind": "lost"}, result.attempts, None

    def _run_guarded(self, payload: dict, verify: str,
                     ) -> "tuple[list | None, dict | None, int, str]":
        """Verified path: residue checkers armed, re-execution + voting
        on a flag.  An ``uncorrectable`` outcome carries no records --
        the caller must answer every batchmate with an error, never
        with data."""
        from ..guard.voting import GuardedExecutor, GuardPolicy

        process = self.isolation == "process"
        policy = GuardPolicy(
            mode=verify,
            workers=2 if process else 1,
            timeout_s=self.timeout_s if process else None)
        executor = GuardedExecutor(policy,
                                   rng_seed=self.rng_seed + self._calls)
        outcome = executor.run(_GuardedPayload(self.work_fn, payload))
        if outcome.ok:
            return outcome.value, None, outcome.executions, outcome.status
        flagged = outcome.flagged
        return None, {
            "kind": "uncorrectable",
            "message": f"no clean quorum within {outcome.executions} "
                       f"execution(s) ({flagged} flagged)",
        }, outcome.executions, outcome.status
