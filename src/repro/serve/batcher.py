"""The adaptive micro-batcher: per-``(op, fmt)`` coalescing queues.

Requests for the same operation and operand format coalesce into one
kernel invocation.  A queue flushes when either knob trips:

* **max-batch-size** -- the queue reached ``max_batch`` entries; the
  batch leaves immediately (no timer fires for a full batch);
* **max-wait-deadline** -- the *oldest* entry has waited ``max_wait_s``.

The wait timer is adaptive in two ways.  It is armed only while a
partial batch exists (an idle queue costs nothing), and its duration is
clipped so the flush lands ``shed_margin_s`` *before* the earliest
client deadline in the queue -- a request on a tight budget drags its
batchmates out early rather than expiring while the batcher dawdles.

The batcher only *forms* batches; execution, admission accounting and
deadline shedding of already-formed batches belong to the server.  All
methods must be called from the event-loop thread.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from .protocol import Request

__all__ = ["Entry", "MicroBatcher"]


@dataclass
class Entry:
    """One queued request with its completion future and timing."""

    req: Request
    fut: object                      # asyncio.Future[Response]
    t_enqueue: float = 0.0           # loop.time() at admission
    deadline: float | None = None    # absolute loop.time() budget
    meta: dict = field(default_factory=dict)


class MicroBatcher:
    def __init__(self, *, max_batch: int, max_wait_s: float,
                 shed_margin_s: float = 0.0005,
                 clock: Callable[[], float],
                 schedule: Callable[[float, Callable], object],
                 on_batch: Callable[[str, list], None]):
        """``clock`` is ``loop.time``; ``schedule(delay, cb)`` must
        return a cancellable timer handle (``loop.call_later``);
        ``on_batch(key, entries)`` receives each formed batch."""
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.shed_margin_s = shed_margin_s
        self._clock = clock
        self._schedule = schedule
        self._on_batch = on_batch
        self._queues: dict[str, deque[Entry]] = {}
        self._timers: dict[str, object] = {}

    # ------------------------------------------------------------------

    @staticmethod
    def key_for(req: Request) -> str:
        # verified requests must not coalesce with unverified ones (the
        # guard policy is batch-level), so the level is part of the key;
        # likewise a pinned backend is a batch-level execution property,
        # so backend-pinned requests coalesce only among themselves
        key = f"{req.op}.{req.fmt}"
        if req.verify is not None:
            key = f"{key}.{req.verify}"
        if req.backend is not None:
            key = f"{key}.b:{req.backend}"
        return key

    def depth(self, key: str) -> int:
        q = self._queues.get(key)
        return len(q) if q else 0

    def depths(self) -> dict[str, int]:
        return {k: len(q) for k, q in self._queues.items() if q}

    def put(self, entry: Entry) -> str:
        """Enqueue one admitted request; returns its queue key."""
        key = self.key_for(entry.req)
        q = self._queues.get(key)
        if q is None:
            q = self._queues[key] = deque()
        q.append(entry)
        if len(q) >= self.max_batch:
            self._fire(key)
        else:
            self._arm(key)
        return key

    def flush_all(self) -> None:
        """Drain every queue now (shutdown / test hook)."""
        for key in list(self._queues):
            while self._queues.get(key):
                self._fire(key)

    # ------------------------------------------------------------------

    def _arm(self, key: str) -> None:
        if key in self._timers:
            return
        q = self._queues.get(key)
        if not q:
            return
        now = self._clock()
        oldest_wait = now - q[0].t_enqueue
        delay = max(0.0, self.max_wait_s - oldest_wait)
        deadlines = [e.deadline for e in q if e.deadline is not None]
        if deadlines:
            # flush early enough that the tightest budget still makes
            # it into an execution slot
            slack = min(deadlines) - now - self.shed_margin_s
            delay = max(0.0, min(delay, slack))
        self._timers[key] = self._schedule(delay, lambda: self._expire(key))

    def _expire(self, key: str) -> None:
        self._timers.pop(key, None)
        if self._queues.get(key):
            self._fire(key)

    def _fire(self, key: str) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            try:
                timer.cancel()
            except (KeyboardInterrupt, SystemExit):
                raise  # interruption must win over the flush
            except Exception:
                pass  # a dead timer handle must not block the flush
        q = self._queues.get(key)
        if not q:
            return
        batch = [q.popleft() for _ in range(min(len(q), self.max_batch))]
        if q:
            # leftovers (burst larger than max_batch): keep the pipeline
            # moving without waiting a fresh full max_wait
            if len(q) >= self.max_batch:
                self._schedule(0.0, lambda: self._expire(key))
            else:
                self._arm(key)
        self._on_batch(key, batch)

    # ------------------------------------------------------------------

    def earliest_deadline(self) -> float | None:
        pending = [e.deadline for q in self._queues.values() for e in q
                   if e.deadline is not None]
        return min(pending) if pending else None

    def cancel_timers(self) -> None:
        for timer in self._timers.values():
            try:
                timer.cancel()
            except (KeyboardInterrupt, SystemExit):
                raise  # interruption must win over shutdown cleanup
            except Exception:
                pass  # a dead timer handle must not block shutdown
        self._timers.clear()
