"""The asyncio FMA serving core and its TCP/JSON-lines frontend.

``FmaServer`` turns the batched kernels of :mod:`repro.batch` into a
request-serving path: requests are admitted (bounded queue + slow-start
window, :mod:`repro.serve.admission`), coalesced per ``(op, fmt)`` by
the adaptive micro-batcher (:mod:`repro.serve.batcher`), executed on a
bounded worker pool through the shared resilient machinery
(:mod:`repro.serve.executor`), and resolved back onto per-request
futures -- every admitted request receives **exactly one** response.

Bit-identity guarantee: for any batch split and any arrival order, an
``ok`` response carries exactly the word the faithful scalar models
produce for that request (see ``tests/test_serve_differential.py``).
The serving layer only ever *groups* requests; it never reassociates
work across them.

Telemetry (armed via ``repro.telemetry.collecting()``; all serve-layer
instruments fire on the event-loop thread):

=============================== ====== ==============================
``serve.requests.admitted``     count  requests past admission
``serve.requests.rejected.<r>`` count  per rejection reason
``serve.responses.ok``          count
``serve.responses.error``       count  attempted but failed
``serve.shed.deadline``         count  queued past their budget
``serve.batches`` / ``.<key>``  count  formed batches (per class)
``serve.batch.size_le.<n>``     count  batch-size histogram (pow-2)
``serve.exec.retries``          count  resilient retry attempts
``serve.exec.failures``         count  payloads failed after retry
``serve.guard.<status>``        count  verified batches per guard
                                       classification (``clean`` /
                                       ``corrected``/``uncorrectable``)
``serve.pending``               gauge  high-water queued+in-flight
``serve.queue.depth.<key>``     gauge  high-water per-class depth
``serve.admission.window``      gauge  high-water slow-start window
``serve.stage.queue``           span   admission -> execution slot
``serve.stage.exec``            span   worker-pool execution
``serve.request.total``         span   admission -> response
=============================== ====== ==============================
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..faults.resilient import RetryPolicy
from ..telemetry import core as _tm
from .admission import AdmissionController
from .batcher import Entry, MicroBatcher
from .executor import BatchExecutor, payload_from_requests
from .protocol import (ProtocolError, Request, Response, decode_request,
                       encode_response)

__all__ = ["ServeConfig", "FmaServer"]


@dataclass
class ServeConfig:
    """Tuning knobs for one server (documented in docs/SERVING.md)."""

    max_batch: int = 64              # micro-batch size cap
    max_wait_s: float = 0.002        # micro-batch wait deadline
    workers: int = 4                 # concurrent batch executions
    max_pending: int = 1024          # hard bound, queued + in-flight
    slow_start: bool = True          # admission window ramp on/off
    initial_window: int = 64
    min_window: int = 8
    default_timeout_s: float | None = None   # per-request budget
    use_batch: bool = True           # fast kernels vs faithful loop
    backend: str | None = None       # default batch backend (None=auto)
    isolation: str = "inline"        # "inline" | "process"
    exec_timeout_s: float | None = None      # per-attempt (process mode)
    tcp_line_limit: int = 1 << 20    # max request line on the wire
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        max_attempts=2, backoff_base_s=0.001, backoff_cap_s=0.01))
    rng_seed: int = 0
    work_fn: object = None           # test hook: picklable payload fn

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.backend is not None:
            from ..batch.engines import BACKENDS
            if self.backend not in BACKENDS:
                raise ValueError(
                    f"backend must be one of {BACKENDS}")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.tcp_line_limit < 1024:
            raise ValueError("tcp_line_limit must be >= 1024")


class FmaServer:
    """In-process serving API; also hosts the TCP frontend.

    Use as an async context manager::

        async with FmaServer(ServeConfig(max_batch=32)) as srv:
            resp = await srv.submit(req)

    ``submit`` resolves when the request's micro-batch completes (or
    immediately with a structured rejection).  ``drain`` stops
    admission, flushes the queues, and waits for in-flight batches.
    """

    def __init__(self, config: ServeConfig | None = None):
        self.config = config if config is not None else ServeConfig()
        self._started = False
        self._draining = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._sem: asyncio.Semaphore | None = None
        self._batcher: MicroBatcher | None = None
        self._tasks: set[asyncio.Task] = set()
        self._tcp_server: asyncio.Server | None = None
        self.admission = AdmissionController(
            max_pending=self.config.max_pending,
            initial_window=self.config.initial_window,
            min_window=self.config.min_window,
            slow_start=self.config.slow_start)
        self.executor = BatchExecutor(
            isolation=self.config.isolation,
            timeout_s=self.config.exec_timeout_s,
            retry=self.config.retry, rng_seed=self.config.rng_seed,
            work_fn=self.config.work_fn)
        self.stats: dict[str, int] = {
            "admitted": 0, "ok": 0, "error": 0, "batches": 0,
            "shed_deadline": 0, "exec_failures": 0, "retries": 0,
            "max_batch_size": 0}
        for reason in ("queue-full", "slow-start", "deadline", "draining"):
            self.stats[f"rejected.{reason}"] = 0
        for status in ("clean", "corrected", "uncorrectable"):
            self.stats[f"guard.{status}"] = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "FmaServer":
        if self._started:
            return self
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve")
        self._sem = asyncio.Semaphore(self.config.workers)
        self._batcher = MicroBatcher(
            max_batch=self.config.max_batch,
            max_wait_s=self.config.max_wait_s,
            clock=loop.time,
            schedule=lambda delay, cb: loop.call_later(delay, cb),
            on_batch=self._launch_batch)
        self._started = True
        self._draining = False
        return self

    async def __aenter__(self) -> "FmaServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.drain()

    async def drain(self) -> None:
        """Graceful shutdown: reject new work, finish admitted work."""
        if not self._started:
            return
        self._draining = True
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        self._batcher.flush_all()
        self._batcher.cancel_timers()
        while self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)
        self._pool.shutdown(wait=True)
        self._started = False

    # -- the in-process API --------------------------------------------

    async def submit(self, req: Request) -> Response:
        """Serve one request; always returns exactly one response."""
        if not self._started:
            raise RuntimeError("server not started")
        try:
            req.validate()
        except ProtocolError as exc:
            return Response(req.req_id, "error", kind="bad-request",
                            message=str(exc))
        rejection = self._admit(req)
        if rejection is not None:
            return rejection
        loop = self._loop
        now = loop.time()
        timeout = (req.timeout_s if req.timeout_s is not None
                   else self.config.default_timeout_s)
        entry = Entry(req=req, fut=loop.create_future(), t_enqueue=now,
                      deadline=None if timeout is None else now + timeout)
        key = self._batcher.put(entry)
        tm = _tm.ACTIVE
        if tm is not None:
            tm.gauge(f"serve.queue.depth.{key}", self._batcher.depth(key))
        return await entry.fut

    def _admit(self, req: Request) -> Response | None:
        tm = _tm.ACTIVE
        if self._draining:
            reason = "draining"
        elif (req.timeout_s is not None and req.timeout_s <= 0):
            reason = "deadline"
        else:
            reason = self.admission.try_admit()
        if reason is not None:
            self.stats[f"rejected.{reason}"] += 1
            if tm is not None:
                tm.count(f"serve.requests.rejected.{reason}")
            return Response(req.req_id, "rejected", reason=reason)
        self.stats["admitted"] += 1
        if tm is not None:
            tm.count("serve.requests.admitted")
            tm.gauge("serve.pending", self.admission.pending)
            tm.gauge("serve.admission.window",
                     int(self.admission.window))
        return None

    # -- batch execution -----------------------------------------------

    def _launch_batch(self, key: str, entries: list[Entry]) -> None:
        task = self._loop.create_task(self._run_batch(key, entries))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_batch(self, key: str, entries: list[Entry]) -> None:
        async with self._sem:
            loop = self._loop
            now = loop.time()
            live = self._shed_expired(entries, now)
            if not live:
                return
            tm = _tm.ACTIVE
            n = len(live)
            self.stats["batches"] += 1
            if n > self.stats["max_batch_size"]:
                self.stats["max_batch_size"] = n
            if tm is not None:
                tm.count("serve.batches")
                tm.count(f"serve.batches.{key}")
                bucket = 1
                while bucket < n:
                    bucket <<= 1
                tm.count(f"serve.batch.size_le.{bucket}")
                for e in live:
                    tm.observe("serve.stage.queue",
                               int((now - e.t_enqueue) * 1e9))
            op, fmt = key.split(".")[:2]  # key may carry a verify level
            payload = payload_from_requests(
                op, fmt, [e.req for e in live],
                use_batch=self.config.use_batch,
                verify=live[0].req.verify,
                backend=live[0].req.backend or self.config.backend)
            t0 = time.perf_counter_ns()
            records, error, attempts, guard = await loop.run_in_executor(
                self._pool, self.executor.run, payload)
            if tm is not None:
                tm.observe("serve.stage.exec",
                           time.perf_counter_ns() - t0)
            if guard is not None:
                self.stats[f"guard.{guard}"] += 1
                if tm is not None:
                    tm.count(f"serve.guard.{guard}")
            meta = {} if guard is None else {"guard": guard}
            if guard is None and attempts > 1:
                self.stats["retries"] += attempts - 1
                if tm is not None:
                    tm.count("serve.exec.retries", attempts - 1)
            if error is not None:
                self.stats["exec_failures"] += 1
                if tm is not None:
                    tm.count("serve.exec.failures")
                self.admission.on_failure()
                for e in live:
                    self._resolve(e, Response(
                        e.req.req_id, "error",
                        kind=error.get("kind", "exception"),
                        message=error.get("message", ""),
                        attempts=attempts, meta=meta))
                return
            self.admission.on_batch_ok(n)
            for e, rec in zip(live, records):
                if rec[0] == "ok":
                    self._resolve(e, Response(e.req.req_id, "ok",
                                              result=rec[1],
                                              attempts=attempts,
                                              meta=meta))
                else:
                    self._resolve(e, Response(e.req.req_id, "error",
                                              kind=rec[1],
                                              message=rec[2],
                                              attempts=attempts,
                                              meta=meta))

    def _shed_expired(self, entries: list[Entry], now: float,
                      ) -> list[Entry]:
        live: list[Entry] = []
        shed = 0
        for e in entries:
            if e.deadline is not None and now >= e.deadline:
                shed += 1
                self._resolve(e, Response(e.req.req_id, "rejected",
                                          reason="deadline"))
            else:
                live.append(e)
        if shed:
            self.stats["shed_deadline"] += shed
            tm = _tm.ACTIVE
            if tm is not None:
                tm.count("serve.shed.deadline", shed)
            self.admission.on_failure()
        return live

    def _resolve(self, entry: Entry, resp: Response) -> None:
        self.admission.release()
        if resp.status == "ok":
            self.stats["ok"] += 1
        elif resp.status == "error":
            self.stats["error"] += 1
        tm = _tm.ACTIVE
        if tm is not None:
            if resp.status == "ok":
                tm.count("serve.responses.ok")
            elif resp.status == "error":
                tm.count("serve.responses.error")
            tm.observe("serve.request.total",
                       int((self._loop.time() - entry.t_enqueue) * 1e9))
        if not entry.fut.done():
            entry.fut.set_result(resp)

    # -- TCP/JSON-lines frontend ---------------------------------------

    async def serve_tcp(self, host: str = "127.0.0.1",
                        port: int = 0) -> asyncio.Server:
        """Start the JSON-lines frontend; returns the asyncio server
        (``.sockets[0].getsockname()`` for the bound port)."""
        if not self._started:
            await self.start()
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, host, port,
            limit=self.config.tcp_line_limit)
        return self._tcp_server

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        conn_tasks: set[asyncio.Task] = set()

        async def write_obj(obj: dict) -> None:
            async with write_lock:
                writer.write(json.dumps(obj, sort_keys=True).encode()
                             + b"\n")
                await writer.drain()

        async def handle_line(line: bytes) -> None:
            req_id = None
            try:
                obj = json.loads(line)
                if isinstance(obj, dict):
                    req_id = obj.get("id")
                req = decode_request(obj)
            except (json.JSONDecodeError, ProtocolError) as exc:
                await write_obj({"id": req_id, "status": "error",
                                 "kind": "bad-request",
                                 "message": str(exc)})
                return
            resp = await self.submit(req)
            await write_obj(encode_response(resp))

        async def discard_oversized() -> bool:
            """Drop the rest of an oversized request line, exactly up
            to its terminating newline (bytes after the newline are the
            next request and stay buffered); ``False`` means EOF (the
            line never ended and the client is gone)."""
            while True:
                try:
                    await reader.readuntil(b"\n")
                    return True
                except asyncio.LimitOverrunError as exc:
                    try:
                        await reader.readexactly(max(exc.consumed, 1))
                    except asyncio.IncompleteReadError:
                        return False
                except asyncio.IncompleteReadError:
                    return False

        try:
            while True:
                at_eof = False
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as exc:
                    line = exc.partial   # unterminated final line
                    at_eof = True
                except asyncio.LimitOverrunError:
                    # a request line beyond the stream limit must not
                    # kill the connection without a response: answer
                    # with a structured error, discard the rest of the
                    # line, and keep serving
                    try:
                        await write_obj({
                            "id": None, "status": "error",
                            "kind": "bad-request",
                            "message": "request line exceeds the "
                                       "stream limit"})
                    except (ConnectionError, OSError):
                        break
                    if not await discard_oversized():
                        break
                    continue
                if line.strip():
                    task = asyncio.ensure_future(handle_line(line))
                    conn_tasks.add(task)
                    task.add_done_callback(conn_tasks.discard)
                if at_eof:
                    break
            while conn_tasks:
                await asyncio.gather(*list(conn_tasks),
                                     return_exceptions=True)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
