"""CLI for the serving layer: ``python -m repro.serve``.

Default action starts the TCP/JSON-lines frontend and runs until
interrupted (SIGINT triggers a graceful drain).  ``--self-test`` spins
the server in-process, drives it with a seeded open-loop workload, and
prints a JSON summary -- the CI smoke mode, no sockets needed.

Exit status: 0 on success (including ``--help``), 1 when a run fails
(self-test lost responses or server crash), 2 on bad arguments.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from ..faults.resilient import RetryPolicy
from .loadgen import LoadSpec, percentile, run_open_loop
from .server import FmaServer, ServeConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Async micro-batching FMA serving frontend "
                    "(JSON lines over TCP; see docs/SERVING.md).")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8571,
                    help="TCP port (default 8571; 0 = ephemeral)")
    ap.add_argument("--max-batch", type=int, default=64,
                    help="micro-batch size cap (default 64)")
    ap.add_argument("--max-wait-ms", type=float, default=2.0,
                    help="micro-batch wait deadline (default 2ms)")
    ap.add_argument("--workers", type=int, default=4,
                    help="concurrent batch executions (default 4)")
    ap.add_argument("--max-pending", type=int, default=1024,
                    help="hard bound on queued+in-flight requests")
    ap.add_argument("--no-slow-start", action="store_true",
                    help="disable the slow-start admission window")
    ap.add_argument("--default-timeout-ms", type=float, default=None,
                    help="per-request budget when the client sends none")
    ap.add_argument("--isolation", choices=("inline", "process"),
                    default="inline",
                    help="batch execution isolation (default inline)")
    ap.add_argument("--exec-timeout", type=float, default=None,
                    help="per-attempt execution timeout in seconds "
                         "(process isolation only)")
    ap.add_argument("--retries", type=int, default=2,
                    help="max attempts per batch (default 2)")
    ap.add_argument("--no-kernels", action="store_true",
                    help="serve through the faithful scalar models "
                         "instead of the repro.batch kernels")
    ap.add_argument("--backend", choices=("auto", "vector", "tuple",
                                          "faithful"), default=None,
                    help="default batch backend for requests that do "
                         "not pin one (default: auto, which prefers "
                         "the NumPy vector engine)")
    ap.add_argument("--self-test", action="store_true",
                    help="run a seeded in-process workload and exit")
    ap.add_argument("--self-test-requests", type=int, default=500)
    ap.add_argument("--seed", type=int, default=0)
    return ap


def _config(args) -> ServeConfig:
    return ServeConfig(
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1000.0,
        workers=args.workers,
        max_pending=args.max_pending,
        slow_start=not args.no_slow_start,
        default_timeout_s=(None if args.default_timeout_ms is None
                           else args.default_timeout_ms / 1000.0),
        use_batch=not args.no_kernels,
        backend=args.backend,
        isolation=args.isolation,
        exec_timeout_s=args.exec_timeout,
        retry=RetryPolicy(max_attempts=args.retries,
                          backoff_base_s=0.001, backoff_cap_s=0.05),
        rng_seed=args.seed)


async def _self_test(config: ServeConfig, n: int, seed: int) -> int:
    spec = LoadSpec(n_requests=n, seed=seed)
    async with FmaServer(config) as srv:
        report = await run_open_loop(srv, spec)
        summary = {
            "requests": n,
            "responses": len(report.responses),
            "ok": report.n_ok,
            "rejected": report.n_rejected,
            "errors": report.n_error,
            "duplicates": len(report.duplicates),
            "throughput_rps": round(report.throughput(), 1),
            "p50_ms": round(percentile(report.latencies_s, 50) * 1e3, 3),
            "p99_ms": round(percentile(report.latencies_s, 99) * 1e3, 3),
            "stats": srv.stats,
        }
    print(json.dumps(summary, indent=2, sort_keys=True))
    lost = n - len(report.responses)
    return 0 if (lost == 0 and not report.duplicates
                 and report.n_error == 0) else 1


async def _serve(config: ServeConfig, host: str, port: int) -> int:
    async with FmaServer(config) as srv:
        tcp = await srv.serve_tcp(host, port)
        addr = tcp.sockets[0].getsockname()
        print(f"repro.serve listening on {addr[0]}:{addr[1]} "
              f"(max_batch={config.max_batch}, "
              f"max_wait={config.max_wait_s * 1e3:g}ms, "
              f"workers={config.workers})", flush=True)
        try:
            await asyncio.Event().wait()   # until cancelled
        except asyncio.CancelledError:
            pass
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.max_batch < 1:
        parser.error("--max-batch must be >= 1")
    if args.max_wait_ms < 0:
        parser.error("--max-wait-ms must be >= 0")
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.max_pending < 1:
        parser.error("--max-pending must be >= 1")
    if args.retries < 1:
        parser.error("--retries must be >= 1")
    if not 0 <= args.port <= 65535:
        parser.error("--port must be in [0, 65535]")
    if args.self_test_requests < 1:
        parser.error("--self-test-requests must be >= 1")
    config = _config(args)
    try:
        if args.self_test:
            return asyncio.run(_self_test(config, args.self_test_requests,
                                          args.seed))
        return asyncio.run(_serve(config, args.host, args.port))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
