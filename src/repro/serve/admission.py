"""Overload policy: bounded queues plus slow-start admission control.

The server tracks one global ``pending`` count (queued + in-flight
requests).  Admission is governed by two limits:

* ``max_pending`` -- the hard queue bound; beyond it every request is
  rejected with reason ``queue-full``;
* an **admission window** that slow-starts: it opens at
  ``initial_window`` and grows by the batch size on every successfully
  completed batch (TCP-style: each in-flight "round trip" roughly
  doubles the window) up to ``max_pending``.  Any execution failure or
  deadline shed halves it, never below ``min_window``.  Requests beyond
  the current window are rejected with reason ``slow-start`` -- the
  structured backpressure signal that tells a well-behaved client to
  ease off while the server warms up or recovers.

The controller is plain synchronous state; the asyncio server calls it
only from the event-loop thread, so no locking is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdmissionController"]


@dataclass
class AdmissionController:
    max_pending: int = 1024
    initial_window: int = 64
    min_window: int = 8
    slow_start: bool = True

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.min_window < 1:
            raise ValueError("min_window must be >= 1")
        # the window floor can never exceed the hard bound
        self.min_window = min(self.min_window, self.max_pending)
        self.pending = 0
        self.window = (float(min(self.initial_window, self.max_pending))
                       if self.slow_start else float(self.max_pending))

    # -- admission -----------------------------------------------------

    def try_admit(self, n: int = 1) -> str | None:
        """Admit ``n`` pending slots; returns a rejection reason or
        ``None`` on success."""
        if self.pending + n > self.max_pending:
            return "queue-full"
        if self.slow_start and self.pending + n > self.window:
            return "slow-start"
        self.pending += n
        return None

    def release(self, n: int = 1) -> None:
        """A request left the system (response sent, any status)."""
        self.pending -= n
        if self.pending < 0:  # defensive: never go negative
            self.pending = 0

    # -- feedback ------------------------------------------------------

    def on_batch_ok(self, batch_size: int) -> None:
        """Successful batch completion widens the window additively by
        the batch size (≈ doubling per full in-flight window)."""
        if self.slow_start and self.window < self.max_pending:
            self.window = min(float(self.max_pending),
                              self.window + batch_size)

    def on_failure(self) -> None:
        """Execution failure or deadline shed halves the window."""
        if self.slow_start:
            self.window = max(float(self.min_window), self.window / 2.0)
