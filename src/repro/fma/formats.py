"""Carry-save floating-point operand formats (Fig. 8, Sec. III-E/III-H).

The time-critical FMA operands ``A`` and ``C`` (and the result ``R``)
travel between fused operators in a non-standard format:

* **PCS operand (192 bits total)** -- 12b exponent in excess-2047
  notation, 110b two's-complement mantissa with 10 explicit carry bits
  (one per 11-bit chunk), and 55b+5b of *rounding data*: the unrounded
  trailing block the successor needs for its deferred rounding decision.
* **FCS operand** -- 12b exponent, 87-digit full-carry-save mantissa
  (87b sum + 87b carry), 29 digits of rounding data.

Chunk-carry convention
----------------------
Each ``spacing``-bit chunk stores its *carry-in* explicitly at its least
significant position: carry bits live at positions ``{0, s, 2s, ...}``.
The mantissa LSB's carry-in (position 0) is exactly the carry that
rippled out of the rounding block below it in the adder window, so no
information is lost at the mantissa/rounding-data boundary; a carry
rippling out of the *rounding block itself* (all 55 bits, Sec. III-E) is
the paper's documented misrounding source and is dropped by
:func:`round_decision`.

The numeric value of a finite operand is::

    value = M_signed * 2^(E - bias - frac_bits)

with ``M_signed`` the two's-complement collapse of the mantissa CS pair
and ``frac_bits = mantissa_width - 3`` (explicit leading 1, sign bit and
overflow guard occupy the top three digit positions of a block-normalized
mantissa, Sec. III-D).  The rounding data contributes
``round_value / 2^block`` ULPs of additional (unrounded) precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..cs.csnumber import CSNumber
from ..fp.formats import BINARY64
from ..fp.value import FpClass, FPValue

__all__ = [
    "CSFmaParams",
    "PCS_PARAMS",
    "FCS_PARAMS",
    "CSFloat",
    "chunk_carry_mask",
    "round_decision",
]


def chunk_carry_mask(width: int, spacing: int) -> int:
    """Carry-in positions ``{0, spacing, 2*spacing, ...}`` below ``width``."""
    mask = 0
    pos = 0
    while pos < width:
        mask |= 1 << pos
        pos += spacing
    return mask


@dataclass(frozen=True)
class CSFmaParams:
    """Architecture parameters shared by an FMA unit and its operand format.

    The two instances used in the paper are :data:`PCS_PARAMS`
    (Sec. III-F) and :data:`FCS_PARAMS` (Sec. III-H); both are freely
    parameterizable ("our architectures are freely parametrizable",
    Sec. III).
    """

    name: str
    block: int             # digits per normalization block
    mant_blocks: int       # blocks in the operand mantissa
    window_blocks: int     # blocks in the adder window
    right_blocks: int      # blocks right of the product (for A shifted low)
    carry_spacing: int     # explicit-carry spacing (1 = full carry save)
    exp_bits: int = 12
    exp_bias: int = 2047
    b_sig_bits: int = 53   # significand width of the IEEE-format B input

    # -- derived ------------------------------------------------------

    @property
    def mant_width(self) -> int:
        return self.block * self.mant_blocks

    @property
    def frac_bits(self) -> int:
        """Fraction bits below the nominal leading-1 position (guard +
        sign occupy the two digits above it)."""
        return self.mant_width - 3

    @property
    def window_width(self) -> int:
        return self.block * self.window_blocks

    @property
    def product_lsb(self) -> int:
        """Window position of the product's least significant bit."""
        return self.block * self.right_blocks

    @property
    def product_width(self) -> int:
        """Signed width of ``B_M * (C_M + 1)``."""
        return self.b_sig_bits + self.mant_width + 1

    @property
    def addend_max_pos(self) -> int:
        """Highest window position of the addend's LSB."""
        return self.window_width - self.mant_width

    @property
    def mux_positions(self) -> int:
        """Number of result positions of the final block multiplexer
        (6 for the PCS unit, 11 for the FCS unit)."""
        return self.window_blocks - self.mant_blocks + 1

    @property
    def mant_carry_mask(self) -> int:
        return chunk_carry_mask(self.mant_width, self.carry_spacing)

    @property
    def round_carry_mask(self) -> int:
        return chunk_carry_mask(self.block, self.carry_spacing)

    @property
    def mant_carry_bits(self) -> int:
        return bin(self.mant_carry_mask).count("1")

    @property
    def round_carry_bits(self) -> int:
        return bin(self.round_carry_mask).count("1")

    @property
    def operand_bits(self) -> int:
        """Total operand word width (exponent + mantissa + carries +
        rounding data + its carries).

        For the paper's PCS parameters this is the quoted 192 bits:
        12 + 110 + 10 + 55 + 5.
        """
        return (self.exp_bits + self.mant_width + self.mant_carry_bits
                + self.block + self.round_carry_bits)

    @property
    def exp_min(self) -> int:
        """Smallest representable unbiased exponent."""
        return 1 - self.exp_bias

    @property
    def exp_max(self) -> int:
        """Largest representable unbiased exponent."""
        return ((1 << self.exp_bits) - 2) - self.exp_bias


#: Parameters of the PCS-FMA (Sec. III-F): 55b blocks, two-block (110b)
#: mantissa, 7-block (385b) adder window, carries every 11th bit, 6-to-1
#: result multiplexer.  Operand word: 192 bits.
PCS_PARAMS = CSFmaParams(
    name="pcs",
    block=55,
    mant_blocks=2,
    window_blocks=7,
    right_blocks=2,
    carry_spacing=11,
)

#: Parameters of the FCS-FMA (Sec. III-H): 29-digit blocks, three-block
#: (87c) mantissa, 13-block (377c) window, full carry save, 11-to-1
#: result multiplexer.
FCS_PARAMS = CSFmaParams(
    name="fcs",
    block=29,
    mant_blocks=3,
    window_blocks=13,
    right_blocks=3,
    carry_spacing=1,
)


def round_decision(round_data: CSNumber, block: int) -> int:
    """The deferred round-half-away decision of Sec. III-C/III-E.

    Inspects only the single rounding-data block: the block's CS digits
    are summed *within* the block (modulo ``2^block``); the decision is
    its top bit, i.e. whether the truncated trailing fraction is >= 1/2
    ULP.  A carry that would ripple out of the whole block is lost --
    exactly the bounded misrounding the paper accepts ("the largest
    number that would be erroneously rounded down is
    0.50000000000000083d", Sec. III-E).
    """
    local = (round_data.sum + round_data.carry) & ((1 << block) - 1)
    return (local >> (block - 1)) & 1


@dataclass(frozen=True)
class CSFloat:
    """A floating-point value in PCS/FCS operand format.

    Attributes
    ----------
    params:
        The architecture parameters (block size, widths, ...).
    cls:
        FloPoCo-style exception class on side wires.
    exp:
        *Unbiased* exponent (the stored field is ``exp + params.exp_bias``
        in excess notation); meaningful for NORMAL values only.
    mant:
        Two's-complement carry-save mantissa (``params.mant_width`` digits,
        carries restricted to the chunk carry-in mask).
    round_data:
        The unrounded trailing block (``params.block`` digits).
    sign_hint:
        Sign for ZERO/INF classes (NORMAL values carry their sign in the
        two's-complement mantissa).
    """

    params: CSFmaParams
    cls: FpClass
    exp: int = 0
    mant: CSNumber = None  # type: ignore[assignment]
    round_data: CSNumber = None  # type: ignore[assignment]
    sign_hint: int = 0

    def __post_init__(self) -> None:
        p = self.params
        if self.mant is None:
            object.__setattr__(
                self, "mant",
                CSNumber.zero(p.mant_width, p.mant_carry_mask))
        if self.round_data is None:
            object.__setattr__(
                self, "round_data",
                CSNumber.zero(p.block, p.round_carry_mask))
        if self.mant.width != p.mant_width:
            raise ValueError("mantissa width mismatch")
        if self.round_data.width != p.block:
            raise ValueError("rounding-data width mismatch")
        if self.cls is FpClass.NORMAL and not (
                p.exp_min <= self.exp <= p.exp_max):
            raise ValueError(
                f"exponent {self.exp} outside representable range "
                f"[{p.exp_min}, {p.exp_max}]")

    # -- constructors ----------------------------------------------------

    @classmethod
    def zero(cls, params: CSFmaParams, sign: int = 0) -> "CSFloat":
        return cls(params, FpClass.ZERO, sign_hint=sign)

    @classmethod
    def inf(cls, params: CSFmaParams, sign: int = 0) -> "CSFloat":
        return cls(params, FpClass.INF, sign_hint=sign)

    @classmethod
    def nan(cls, params: CSFmaParams) -> "CSFloat":
        return cls(params, FpClass.NAN)

    @classmethod
    def from_ieee(cls, x: FPValue, params: CSFmaParams) -> "CSFloat":
        """Exact IEEE -> CS conversion (the cheap converter direction).

        The significand (with explicit leading 1) is placed so the
        leading 1 sits at digit position ``frac_bits`` -- inside the top
        block, below the sign and guard digits; negative values are
        two's-complement encoded.  No rounding data, no carry bits.
        """
        p = params
        if x.is_nan:
            return cls.nan(p)
        if x.is_inf:
            return cls.inf(p, x.sign)
        if x.is_zero:
            return cls.zero(p, x.sign)
        if x.fmt.significand_bits > p.frac_bits + 1:
            raise ValueError(
                f"{x.fmt.name} significand too wide for {p.name} operand")
        shift = p.frac_bits - x.fmt.fraction_bits
        m = x.significand << shift
        if x.sign:
            m = -m
        mant = CSNumber(m & ((1 << p.mant_width) - 1), 0, p.mant_width,
                        p.mant_carry_mask)
        return cls(p, FpClass.NORMAL, x.unbiased_exponent, mant,
                   CSNumber.zero(p.block, p.round_carry_mask))

    @classmethod
    def from_float(cls, x: float, params: CSFmaParams) -> "CSFloat":
        return cls.from_ieee(FPValue.from_float(x, BINARY64), params)

    # -- observers --------------------------------------------------------

    @property
    def is_zero(self) -> bool:
        return self.cls is FpClass.ZERO

    @property
    def is_normal(self) -> bool:
        return self.cls is FpClass.NORMAL

    @property
    def is_nan(self) -> bool:
        return self.cls is FpClass.NAN

    @property
    def is_inf(self) -> bool:
        return self.cls is FpClass.INF

    @property
    def biased_exponent(self) -> int:
        """The stored excess-``bias`` exponent field."""
        return self.exp + self.params.exp_bias

    def mant_signed(self) -> int:
        """Two's-complement collapse of the mantissa CS pair."""
        return self.mant.signed_value()

    def rounded_mantissa(self) -> int:
        """Mantissa with the deferred rounding decision applied -- the
        value a successor FMA (or the output converter) actually uses."""
        return self.mant_signed() + round_decision(self.round_data,
                                                   self.params.block)

    def to_fraction(self, *, unrounded: bool = True) -> Fraction:
        """Exact value of the operand.

        With ``unrounded=True`` (default) the rounding-data block
        contributes its sub-ULP fraction (modulo the block, matching the
        hardware's bounded inspection); with ``False`` the deferred
        rounding decision is applied instead.
        """
        if self.is_zero:
            return Fraction(0)
        if not self.is_normal:
            raise ValueError(f"no finite value for {self.cls}")
        p = self.params
        if unrounded:
            frac = (self.round_data.sum + self.round_data.carry) & (
                (1 << p.block) - 1)
            m = Fraction(self.mant_signed()) + Fraction(frac, 1 << p.block)
        else:
            m = Fraction(self.rounded_mantissa())
        scale = self.exp - p.frac_bits
        if scale >= 0:
            return m * (1 << scale)
        return m / (1 << (-scale))

    @property
    def sign(self) -> int:
        """Effective sign bit (from the mantissa for NORMAL values)."""
        if self.is_normal:
            return 1 if self.mant_signed() < 0 else 0
        return self.sign_hint

    # -- operand-word packing (the 192-bit PCS words of Sec. III-F) -----

    def pack(self) -> int:
        """Pack into the operand word the units exchange.

        Layout, MSB first: 2 exception-class bits, the excess-``bias``
        exponent field, the mantissa sum bits, the mantissa carry bits
        (compacted to their legal positions), the rounding-data sum
        bits, and its carry bits.  For the paper's PCS parameters the
        payload below the exception wires is exactly 192 bits.
        """
        p = self.params
        word = self.cls.value
        word = (word << p.exp_bits) | (self.biased_exponent
                                       if self.is_normal else 0)
        word = (word << p.mant_width) | self.mant.sum
        word = (word << p.mant_carry_bits) | _compact(
            self.mant.carry, p.mant_carry_mask)
        word = (word << p.block) | self.round_data.sum
        word = (word << p.round_carry_bits) | _compact(
            self.round_data.carry, p.round_carry_mask)
        return word

    @classmethod
    def unpack(cls, word: int, params: CSFmaParams) -> "CSFloat":
        """Inverse of :meth:`pack`."""
        p = params
        rc = _expand(word & ((1 << p.round_carry_bits) - 1),
                     p.round_carry_mask)
        word >>= p.round_carry_bits
        rs = word & ((1 << p.block) - 1)
        word >>= p.block
        mc = _expand(word & ((1 << p.mant_carry_bits) - 1),
                     p.mant_carry_mask)
        word >>= p.mant_carry_bits
        ms = word & ((1 << p.mant_width) - 1)
        word >>= p.mant_width
        biased = word & ((1 << p.exp_bits) - 1)
        word >>= p.exp_bits
        fpclass = FpClass(word & 3)
        if fpclass is not FpClass.NORMAL:
            return cls(p, fpclass)
        return cls(p, FpClass.NORMAL, biased - p.exp_bias,
                   CSNumber(ms, mc, p.mant_width, p.mant_carry_mask),
                   CSNumber(rs, rc, p.block, p.round_carry_mask))

    @property
    def packed_width(self) -> int:
        """Width of the packed word: operand bits + 2 exception wires."""
        return self.params.operand_bits + 2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_normal:
            return (f"CSFloat[{self.params.name}](m={self.mant_signed()}, "
                    f"e={self.exp})")
        return f"CSFloat[{self.params.name}]({self.cls.name})"


def _compact(bits: int, mask: int) -> int:
    """Gather the bits at the mask's positions into a dense word."""
    out = 0
    idx = 0
    pos = 0
    m = mask
    while m:
        if m & 1:
            out |= ((bits >> pos) & 1) << idx
            idx += 1
        m >>= 1
        pos += 1
    return out


def _expand(dense: int, mask: int) -> int:
    """Inverse of :func:`_compact`."""
    out = 0
    idx = 0
    pos = 0
    m = mask
    while m:
        if m & 1:
            out |= ((dense >> idx) & 1) << pos
            idx += 1
        m >>= 1
        pos += 1
    return out
