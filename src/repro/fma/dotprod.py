"""Fused dot products on carry-save mantissas (Sec. V future work).

The paper closes with: "the concept of mantissas represented in
partial/full carry save formats could [be] applied to other
floating-point operations."  The most natural target -- and the one its
related work singles out ([9, 10], fused dot products) -- is the inner
product: a chain of multiply-adds sharing one accumulator.

A :class:`FusedDotProductUnit` keeps the running sum in the CS operand
format across the whole vector: every step is one P/FCS-FMA evaluation
(``acc + a_i * b_i`` with the accumulator on the carry-save ``A`` port
and one factor on the carry-save ``C`` port), and a single conversion
rounds the result at the end -- the "normalize once per fused region"
principle of Fig. 3 applied to a reduction.

For comparison the module also provides the software baselines a
practitioner would reach for: the naive binary64 loop and Kahan
compensated summation of products.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from ..fp.formats import BINARY64
from ..fp.ops import fp_add, fp_fma, fp_mul, fp_sub
from ..fp.value import FPValue
from ..telemetry import core as _tm
from .convert import cs_to_ieee, ieee_to_cs
from .csfma import CSFmaUnit, FcsFmaUnit, PcsFmaUnit

__all__ = [
    "FusedDotProductUnit",
    "naive_dot",
    "kahan_dot",
    "exact_dot",
    "DotProductComparison",
    "compare_dot_products",
]


class FusedDotProductUnit:
    """A fused dot product built on a carry-save FMA unit.

    ``dot(a, b)`` evaluates ``sum_i a[i] * b[i]`` with the accumulator
    held in the unit's operand format; only the final result is
    normalized and rounded back to IEEE.
    """

    def __init__(self, unit: CSFmaUnit | None = None):
        self.unit = unit if unit is not None else FcsFmaUnit()

    @property
    def name(self) -> str:
        return f"fused-dot-{self.unit.params.name}"

    def dot(self, a: Sequence[FPValue], b: Sequence[FPValue]) -> FPValue:
        """Fused inner product of two IEEE vectors."""
        if len(a) != len(b):
            raise ValueError("vector length mismatch")
        tm = _tm.ACTIVE
        if tm is not None:
            tm.count("fma.dot.scalar.calls")
            tm.count("fma.dot.scalar.elements", len(a))
        params = self.unit.params
        acc = ieee_to_cs(FPValue.zero(BINARY64), params)
        for ai, bi in zip(a, b):
            acc = self.unit.fma(acc, ai, ieee_to_cs(bi, params))
        return cs_to_ieee(acc)

    def dot_floats(self, a: Sequence[float], b: Sequence[float]) -> float:
        return self.dot([FPValue.from_float(x) for x in a],
                        [FPValue.from_float(x) for x in b]).to_float()


def naive_dot(a: Sequence[FPValue], b: Sequence[FPValue]) -> FPValue:
    """The discrete baseline: one rounding per multiply and per add."""
    acc = FPValue.zero(BINARY64)
    for ai, bi in zip(a, b):
        acc = fp_add(acc, fp_mul(ai, bi))
    return acc


def fma_dot(a: Sequence[FPValue], b: Sequence[FPValue]) -> FPValue:
    """Binary64 FMA loop: one rounding per element (no fused
    accumulator)."""
    acc = FPValue.zero(BINARY64)
    for ai, bi in zip(a, b):
        acc = fp_fma(acc, ai, bi)
    return acc


__all__.insert(2, "fma_dot")


def kahan_dot(a: Sequence[FPValue], b: Sequence[FPValue]) -> FPValue:
    """Kahan-compensated summation of (singly rounded) products -- the
    classic software answer to accumulation error."""
    s = FPValue.zero(BINARY64)
    comp = FPValue.zero(BINARY64)
    for ai, bi in zip(a, b):
        prod = fp_mul(ai, bi)
        y = fp_sub(prod, comp)
        t = fp_add(s, y)
        comp = fp_sub(fp_sub(t, s), y)
        s = t
    return s


def exact_dot(a: Sequence[FPValue], b: Sequence[FPValue]) -> Fraction:
    """Exact rational inner product (oracle)."""
    total = Fraction(0)
    for ai, bi in zip(a, b):
        total += ai.to_fraction() * bi.to_fraction()
    return total


@dataclass(frozen=True)
class DotProductComparison:
    """Errors of each implementation on one input pair, in ULPs of the
    correctly rounded binary64 result."""

    exact: Fraction
    errors_ulp: dict[str, float]

    def best(self) -> str:
        return min(self.errors_ulp, key=lambda k: self.errors_ulp[k])


def compare_dot_products(a: Sequence[FPValue], b: Sequence[FPValue],
                         ) -> DotProductComparison:
    """Run every implementation and measure against the exact value."""
    exact = exact_dot(a, b)
    correctly_rounded = FPValue.from_fraction(exact, BINARY64)
    if correctly_rounded.is_normal:
        e = correctly_rounded.unbiased_exponent - 52
        ulp = Fraction(1 << e) if e >= 0 else Fraction(1, 1 << (-e))
    else:
        ulp = Fraction(1, 1 << 1074)

    impls = {
        "naive": naive_dot(a, b),
        "fma-loop": fma_dot(a, b),
        "kahan": kahan_dot(a, b),
        "fused-pcs": FusedDotProductUnit(PcsFmaUnit()).dot(a, b),
        "fused-fcs": FusedDotProductUnit(FcsFmaUnit()).dot(a, b),
    }
    errors = {}
    for name, v in impls.items():
        if v.is_finite:
            errors[name] = float(abs(v.to_fraction() - exact) / ulp)
        else:
            errors[name] = float("inf")
    return DotProductComparison(exact, errors)
