"""FMA-chain engines: a uniform interface over every implementation.

The paper's accuracy experiment (Fig. 14) runs the same recurrence

    x[n] = B1 * x[n-1] + B2 * x[n-2] + x[n-3]

through a *pair of chained FMA units* per step and compares the
implementations.  An :class:`FmaEngine` abstracts "a datapath that keeps
chain values in its own internal format": values are lifted once at the
start, flow through ``fma`` calls in internal format (the critical ``A``
and ``C`` inputs), and are lowered back to IEEE at the end -- mirroring
how the HLS pass wires converters only at chain boundaries.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Sequence

from ..fp.formats import BINARY64, FloatFormat
from ..fp.ops import as_format, fp_add, fp_mul
from ..fp.rounding import RoundingMode
from ..fp.value import FPValue
from .classic import ClassicFmaUnit
from .convert import cs_to_ieee, ieee_to_cs
from .csfma import CSFmaUnit, FcsFmaUnit, PcsFmaUnit

__all__ = [
    "FmaEngine",
    "DiscreteMulAddEngine",
    "FusedIeeeEngine",
    "CSFmaEngine",
    "pcs_engine",
    "fcs_engine",
    "run_recurrence",
    "RecurrenceResult",
]


class FmaEngine(ABC):
    """A multiply-add datapath with an internal chain format."""

    #: human-readable identifier used by experiments and benchmarks
    name: str = "engine"

    @abstractmethod
    def lift(self, x: FPValue) -> Any:
        """Convert an IEEE binary64 value into the internal format."""

    @abstractmethod
    def fma(self, a: Any, b: FPValue, c: Any) -> Any:
        """``a + b * c`` with ``a``/``c`` internal and ``b`` IEEE."""

    @abstractmethod
    def lower(self, r: Any) -> FPValue:
        """Convert an internal value back to IEEE binary64."""


class DiscreteMulAddEngine(FmaEngine):
    """Discrete multiplier + adder IP (CoreGen-like): two roundings per
    multiply-add, optionally on a widened format (the 68b/75b reference
    datapaths of Fig. 14)."""

    def __init__(self, fmt: FloatFormat = BINARY64,
                 mode: RoundingMode = RoundingMode.NEAREST_EVEN):
        self.fmt = fmt
        self.mode = mode
        self.name = f"discrete-{fmt.name}"

    def lift(self, x: FPValue) -> FPValue:
        return as_format(x, self.fmt, self.mode)

    def fma(self, a: FPValue, b: FPValue, c: FPValue) -> FPValue:
        prod = fp_mul(as_format(b, self.fmt, self.mode), c,
                      fmt=self.fmt, mode=self.mode)
        return fp_add(a, prod, fmt=self.fmt, mode=self.mode)

    def lower(self, r: FPValue) -> FPValue:
        return as_format(r, BINARY64, self.mode)


class FusedIeeeEngine(FmaEngine):
    """The classic FMA baseline: one correct rounding per multiply-add,
    IEEE format between operations."""

    def __init__(self, fmt: FloatFormat = BINARY64):
        self.unit = ClassicFmaUnit(fmt)
        self.fmt = fmt
        self.name = f"classic-fma-{fmt.name}"

    def lift(self, x: FPValue) -> FPValue:
        return as_format(x, self.fmt)

    def fma(self, a: FPValue, b: FPValue, c: FPValue) -> FPValue:
        return self.unit.fma(a, as_format(b, self.fmt), c)

    def lower(self, r: FPValue) -> FPValue:
        return as_format(r, BINARY64)


class CSFmaEngine(FmaEngine):
    """A chain of P/FCS-FMA units: values stay in carry-save operand
    format; only ``B`` coefficients remain IEEE binary64."""

    def __init__(self, unit: CSFmaUnit):
        self.unit = unit
        self.name = unit.name

    def lift(self, x: FPValue) -> Any:
        return ieee_to_cs(x, self.unit.params)

    def fma(self, a: Any, b: FPValue, c: Any) -> Any:
        return self.unit.fma(a, b, c)

    def lower(self, r: Any) -> FPValue:
        return cs_to_ieee(r)


def pcs_engine() -> CSFmaEngine:
    """Chain engine over the paper's PCS-FMA unit."""
    return CSFmaEngine(PcsFmaUnit())


def fcs_engine() -> CSFmaEngine:
    """Chain engine over the paper's FCS-FMA unit."""
    return CSFmaEngine(FcsFmaUnit())


@dataclass
class RecurrenceResult:
    """Trajectory of the Fig. 14 recurrence under one engine."""

    engine: str
    values: list[FPValue]          # lowered to binary64 after the run

    @property
    def final(self) -> FPValue:
        return self.values[-1]


def run_recurrence(engine: FmaEngine, b1: Sequence[FPValue],
                   b2: Sequence[FPValue], x0: Sequence[FPValue],
                   steps: int) -> RecurrenceResult:
    """Run ``x[n] = B1[n]*x[n-1] + B2[n]*x[n-2] + x[n-3]`` for ``steps``
    steps through a pair of chained FMA operations per step:

        t    = x[n-3] + B2[n] * x[n-2]
        x[n] = t      + B1[n] * x[n-1]

    ``x0`` supplies ``x[0..2]``; coefficients are IEEE binary64.  The
    returned trajectory is lowered to binary64 (one conversion per value,
    applied after the chain, like the HLS converter placement).
    """
    if len(x0) != 3:
        raise ValueError("the recurrence needs exactly three seed values")
    xs = [engine.lift(v) for v in x0]
    for n in range(steps):
        t = engine.fma(xs[-3], b2[n], xs[-2])
        xs.append(engine.fma(t, b1[n], xs[-1]))
    return RecurrenceResult(engine.name, [engine.lower(v) for v in xs])


def reference_recurrence(b1: Sequence[FPValue], b2: Sequence[FPValue],
                         x0: Sequence[FPValue], steps: int):
    """Exact rational trajectory of the same recurrence *with the same
    two-FMA association*, for error measurement."""
    xs = [v.to_fraction() for v in x0]
    for n in range(steps):
        t = xs[-3] + b2[n].to_fraction() * xs[-2]
        xs.append(t + b1[n].to_fraction() * xs[-1])
    return xs


__all__.append("reference_recurrence")

