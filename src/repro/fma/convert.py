"""IEEE 754 <-> carry-save format converters.

These are the conversion blocks the HLS pass wraps around every inserted
FMA unit (Sec. III-I, Fig. 12): cheap in the IEEE -> CS direction (a
fixed shift, exact) and expensive in the CS -> IEEE direction (a full
carry-propagating add, a variable-distance normalizer and a rounder --
which is precisely why the pass removes redundant back-to-back
conversions between chained FMA units).
"""

from __future__ import annotations

from ..fp.formats import BINARY64, FloatFormat
from ..fp.rounding import RoundingMode
from ..fp.value import FPValue
from ..telemetry import core as _tm
from .formats import CSFloat, CSFmaParams

__all__ = ["ieee_to_cs", "cs_to_ieee"]


def ieee_to_cs(x: FPValue, params: CSFmaParams) -> CSFloat:
    """Convert an IEEE value to the CS operand format (exact).

    Hardware cost: a constant re-wiring of the significand into the top
    mantissa block plus two's-complement negation for negative values --
    one adder of ``mant_width`` bits in the worst case, no rounding.
    """
    if _tm.ACTIVE is not None:
        _tm.ACTIVE.count("fma.convert.ieee_to_cs")
    return CSFloat.from_ieee(x, params)


def cs_to_ieee(x: CSFloat, fmt: FloatFormat = BINARY64,
               mode: RoundingMode = RoundingMode.NEAREST_EVEN) -> FPValue:
    """Convert a CS operand back to an IEEE format.

    The converter sees the mantissa CS pair and the rounding-data block;
    it collapses the carries (full addition), normalizes with a true
    variable-distance shifter and performs one correct rounding of the
    information it has.  The bounded rounding-data inspection means the
    value being rounded may already deviate from the exact result by the
    documented misrounding (Sec. III-E); no *additional* error is
    introduced here.
    """
    if _tm.ACTIVE is not None:
        # the expensive direction: full carry collapse + true
        # variable-distance normalization (the "slow normalize" path)
        _tm.ACTIVE.count("fma.convert.cs_to_ieee")
    if x.is_nan:
        return FPValue.nan(fmt)
    if x.is_inf:
        return FPValue.inf(fmt, x.sign)
    if x.is_zero:
        return FPValue.zero(fmt, x.sign)
    v = x.to_fraction(unrounded=True)
    if v == 0:
        return FPValue.zero(fmt)
    return FPValue.from_fraction(v, fmt, mode)
