"""The classic FMA baseline (Hokenek/Montoye/Cook 1990, Fig. 4).

IEEE-compliant operands and result; internally the multiplier output
stays in carry-save form, the addend is pre-shifted in parallel with the
multiplication, a wide (161b for binary64) adder collapses the sum, an
LZA steers the variable-distance normalization shifter, and a final
rounding (+ conditional post-normalization right shift) produces the
IEEE result.

Because the internal datapath is wide enough to be exact, the classic
unit returns the *correctly rounded* fused result -- functionally
identical to :func:`repro.fp.ops.fp_fma`.  The value of this module is
(a) the architectural constants the synthesis model needs and (b) the
datapath trace (shift distance, LZA output) for the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fp.formats import BINARY64, FloatFormat
from ..fp.ops import fp_fma
from ..fp.rounding import RoundingMode
from ..fp.value import FPValue
from ..guard import residue as _gd
from ..telemetry import core as _tm

__all__ = ["ClassicFmaUnit", "ClassicTrace"]


@dataclass
class ClassicTrace:
    """Internal signals of one classic-FMA evaluation."""

    align_shift: int = 0
    lza_shift: int = 0
    post_normalize: bool = False


class ClassicFmaUnit:
    """Classic fused multiply-add, ``R = A + B * C``, IEEE in / IEEE out.

    Architectural constants (binary64 instance):

    * multiplier: 53x53 partial products in CS form,
    * addend pre-shifter: 161 positions (3 * 53 + 2),
    * main adder: 161 bits followed by conditional complement,
    * LZA + variable-distance left shifter over 161 bits,
    * rounder + 1-bit post-normalization shift.
    """

    #: adder width for a given significand width s: 3*s + 2
    @staticmethod
    def adder_width(significand_bits: int) -> int:
        return 3 * significand_bits + 2

    def __init__(self, fmt: FloatFormat = BINARY64,
                 mode: RoundingMode = RoundingMode.NEAREST_EVEN):
        self.fmt = fmt
        self.mode = mode

    def fma(self, a: FPValue, b: FPValue, c: FPValue,
            trace: ClassicTrace | None = None) -> FPValue:
        """Correctly rounded ``a + b * c``."""
        if _tm.ACTIVE is not None:
            _tm.ACTIVE.count("fma.scalar.call.classic")
        r = fp_fma(a, b, c, fmt=self.fmt, mode=self.mode)
        g = _gd.ACTIVE
        if g is not None:
            # The classic unit's exact rational datapath has no wrapped
            # CS stages for a residue checker to shadow; its guard mode
            # is duplicate-and-compare (time redundancy).
            g.check_equal("classic",
                          fp_fma(a, b, c, fmt=self.fmt, mode=self.mode), r)
        if trace is not None and a.is_normal and b.is_normal \
                and c.is_normal:
            e_prod = b.unbiased_exponent + c.unbiased_exponent
            trace.align_shift = max(
                min(e_prod - a.unbiased_exponent
                    + 2 * self.fmt.significand_bits,
                    self.adder_width(self.fmt.significand_bits)), 0)
            if r.is_normal:
                trace.lza_shift = max(e_prod + 1 - r.unbiased_exponent, 0)
                trace.post_normalize = r.unbiased_exponent == e_prod + 2
        return r

    @property
    def name(self) -> str:
        return "classic-fma"
