"""The paper's core contribution: carry-save fused multiply-add units.

* :class:`~repro.fma.classic.ClassicFmaUnit` -- the 1990 baseline
  architecture (Fig. 4), IEEE in/out, correctly rounded.
* :class:`~repro.fma.csfma.PcsFmaUnit` -- partial carry save, 55b blocks,
  Zero-Detector normalization (Fig. 9).
* :class:`~repro.fma.csfma.FcsFmaUnit` -- full carry save, 29-digit
  blocks, early block LZA, DSP pre-adders (Fig. 11).
* Operand formats and converters (Fig. 8), and chain engines for running
  whole multiply-add chains in any implementation.
"""

from .accumulator import AccumulatorOverflow, PcsAccumulator
from .chain import (CSFmaEngine, DiscreteMulAddEngine, FmaEngine,
                    FusedIeeeEngine, RecurrenceResult, fcs_engine,
                    pcs_engine, reference_recurrence, run_recurrence)
from .classic import ClassicFmaUnit, ClassicTrace
from .convert import cs_to_ieee, ieee_to_cs
from .csfma import CSFmaUnit, FcsFmaUnit, FmaTrace, PcsFmaUnit
from .dotprod import (DotProductComparison, FusedDotProductUnit,
                      compare_dot_products, exact_dot, fma_dot, kahan_dot,
                      naive_dot)
from .formats import (CSFloat, CSFmaParams, FCS_PARAMS, PCS_PARAMS,
                      chunk_carry_mask, round_decision)

__all__ = [
    "ClassicFmaUnit", "ClassicTrace",
    "CSFmaUnit", "PcsFmaUnit", "FcsFmaUnit", "FmaTrace",
    "CSFloat", "CSFmaParams", "PCS_PARAMS", "FCS_PARAMS",
    "chunk_carry_mask", "round_decision",
    "ieee_to_cs", "cs_to_ieee",
    "FmaEngine", "DiscreteMulAddEngine", "FusedIeeeEngine", "CSFmaEngine",
    "pcs_engine", "fcs_engine", "run_recurrence", "RecurrenceResult",
    "reference_recurrence",
    "FusedDotProductUnit", "naive_dot", "fma_dot", "kahan_dot",
    "exact_dot", "compare_dot_products", "DotProductComparison",
    "PcsAccumulator", "AccumulatorOverflow",
]
