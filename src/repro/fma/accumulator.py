"""The PCS multiply-accumulate baseline ([12], de Dinechin & Pasca).

Sec. III opens by *eliminating* this design from consideration for the
solver datapaths: "the MAC unit proposed in [12] ... only exploits low
latency addition.  However, the idea of a mantissa in PCS format, which
we exploit in our FMA designs, originates in that work."

The unit is still the right tool for the job it was built for -- long
*independent* accumulations (sums of products into one register) -- so
the reproduction includes it both as the historical baseline and as a
foil for the ablation that explains the paper's choice:

* the accumulator is a wide **fixed-point** window in partial carry
  save; adding a product is carry-propagation-free (one 3:2 level plus
  the chunked carry reduce), so its *addition* latency is one cycle;
* but each product still comes from an ordinary IEEE multiplier, and
  the conversion of a dependent result back to a multiplier input costs
  the full normalization -- which is why chained multiply-adds (the
  solver pattern of Listing 1) see no benefit.

The window uses application-specified range parameters ``max_exp`` /
``lsb_exp`` ("relies on application-specific knowledge of the input and
output value ranges", Sec. II).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..cs.adders import carry_reduce
from ..cs.csnumber import CSNumber
from ..fp.formats import BINARY64
from ..fp.ops import fp_mul
from ..fp.rounding import RoundingMode
from ..fp.value import FPValue

__all__ = ["PcsAccumulator", "AccumulatorOverflow"]


class AccumulatorOverflow(ArithmeticError):
    """A product fell outside the configured accumulator window."""


@dataclass
class PcsAccumulator:
    """A fixed-point partial-carry-save accumulator (the [12] MAC).

    Parameters
    ----------
    max_exp:
        Weight of the window's most significant bit (products whose
        magnitude exceeds ``2^max_exp`` overflow).
    lsb_exp:
        Weight of the window's least significant bit (product bits below
        it are truncated).
    carry_spacing:
        Chunk width of the explicit carries (the paper's 11).
    guard_bits:
        Extra sign/overflow headroom at the top of the window.
    """

    max_exp: int = 64
    lsb_exp: int = -64
    carry_spacing: int = 11
    guard_bits: int = 8

    def __post_init__(self) -> None:
        if self.max_exp <= self.lsb_exp:
            raise ValueError("max_exp must exceed lsb_exp")
        self._width = self.max_exp - self.lsb_exp + self.guard_bits
        self._state = CSNumber.zero(self._width)
        self._ops = 0

    # ------------------------------------------------------------------

    @property
    def width(self) -> int:
        """Window width in bits (the fixed-point precision carried)."""
        return self._width

    @property
    def operations(self) -> int:
        return self._ops

    def reset(self) -> None:
        self._state = CSNumber.zero(self._width)
        self._ops = 0

    def accumulate(self, a: FPValue, b: FPValue) -> None:
        """Add ``a * b`` into the window (one singly-rounded IEEE
        multiply feeding the carry-free accumulate)."""
        prod = fp_mul(a, b, fmt=BINARY64)
        self.accumulate_value(prod)

    def accumulate_value(self, x: FPValue) -> None:
        """Add an IEEE value into the window."""
        if x.is_nan or x.is_inf:
            raise AccumulatorOverflow("non-finite addend")
        if x.is_zero:
            self._ops += 1
            return
        shift = x.unbiased_exponent - 52 - self.lsb_exp
        mant = x.significand if not x.sign else -x.significand
        if shift >= 0:
            addend = mant << shift
        else:
            addend = mant >> (-shift)        # truncate below the window
        top = addend.bit_length()
        if top >= self._width:
            raise AccumulatorOverflow(
                f"|x| = 2^{x.unbiased_exponent} exceeds the window "
                f"(max_exp={self.max_exp})")
        wrapped = addend & ((1 << self._width) - 1)
        # carry-free add: one 3:2 level over {sum, carry, addend}, then
        # the chunked carry reduce of Sec. III-E
        from ..cs.csa import csa3

        s, c = csa3(self._state.sum, self._state.carry, wrapped)
        mask = (1 << self._width) - 1
        self._state = carry_reduce(CSNumber(s & mask, c & mask,
                                            self._width),
                                   self.carry_spacing)
        self._state = CSNumber(self._state.sum,
                               self._state.carry
                               & ((1 << self._width) - 1),
                               self._width)
        self._ops += 1

    # ------------------------------------------------------------------

    def exact_value(self) -> Fraction:
        """The window contents as an exact rational."""
        v = self._state.signed_value()
        scale = self.lsb_exp
        return Fraction(v) * (Fraction(2) ** scale)

    def result(self, mode: RoundingMode = RoundingMode.NEAREST_EVEN,
               ) -> FPValue:
        """Normalize once, at the very end (the Fig. 3 principle)."""
        v = self.exact_value()
        if v == 0:
            return FPValue.zero(BINARY64)
        return FPValue.from_fraction(v, BINARY64, mode)

    def result_float(self) -> float:
        return self.result().to_float()
