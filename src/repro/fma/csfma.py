"""The carry-save FMA datapath: PCS-FMA (Fig. 9) and FCS-FMA (Fig. 11).

Both units compute ``R = A + B * C`` with the time-critical operands
``A``/``C`` in carry-save format and ``B`` in IEEE 754 binary64.  The
datapath stages model the paper's architecture faithfully at digit level:

1. **Deferred rounding of C** (Fig. 6): the multiplier uses the
   *unrounded* ``C_M``; when the bounded inspection of C's rounding-data
   block says "round up", one extra ``B_M`` row enters the CSA tree
   (``B*(C+1) = B*C + B``).
2. **Dedicated rounding + pre-shift of A** (Fig. 5/9): A's rounding adder
   collapses its CS pair to plain two's complement in parallel with the
   multiplication; the alignment shifter then places it in the adder
   window (truncating bits shifted past either end).
3. **Wide carry-save addition**: product-sum, product-carry and the
   aligned addend reduce through a 3:2 level into the window's CS pair.
4. **Carry Reduce** (PCS only, Sec. III-E): independent 11-bit chunk
   adders leave one explicit carry per chunk.
5. **Block normalization**: the Zero Detector (PCS, Fig. 10 rules) or the
   early block-granular LZA (FCS, Sec. III-G) picks the most significant
   non-skippable block; a 6-to-1 / 11-to-1 multiplexer emits the
   ``mant_blocks``-block result plus the next block as rounding data.
   There is no variable-distance shifter anywhere (Sec. III-D).

Modeling liberties (documented in DESIGN.md):

* When the addend is so much larger than the product that the product
  falls below the window, the product is floor-shifted as a collapsed
  value (hardware would truncate the two CS words separately; the
  difference is at most one window-LSB ULP, below the rounding block).
* The FCS unit's per-input block LZA is modeled by one Schmookler-style
  anticipator over the aligned addend and the collapsed product, which
  has a *tighter* (<= 1 bit) error than the <= 3-bit budget the paper
  sizes its blocks for -- a legal instance of the architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cs.adders import carry_reduce
from ..cs.csa import csa_tree_depth, reduce_rows
from ..cs.csnumber import CSNumber
from ..cs.lza import lza_estimate
from ..cs.multiplier import multiply_mantissa
from ..cs.zero_detect import count_skippable_blocks
from ..fp.value import FpClass, FPValue
from ..guard import residue as _gd
from ..probes import probe
from ..telemetry import core as _tm
from .formats import (CSFloat, CSFmaParams, FCS_PARAMS, PCS_PARAMS,
                      round_decision)

__all__ = ["CSFmaUnit", "PcsFmaUnit", "FcsFmaUnit", "FmaTrace"]


@dataclass
class FmaTrace:
    """Internal datapath signals of one FMA evaluation.

    Consumed by the switching-activity energy model and by tests that
    assert architectural invariants (e.g. that the ZD never skips a
    value-changing block).
    """

    dec_a: int = 0
    dec_c: int = 0
    product_rows: int = 0
    tree_depth: int = 0
    a_pos: int = 0
    p_pos: int = 0
    window_sum: int = 0
    window_carry: int = 0
    skipped_blocks: int = 0
    lza_estimate: int | None = None
    result_exp: int | None = None
    toggled_words: list[int] = field(default_factory=list)


class CSFmaUnit:
    """A fused multiply-add unit over a carry-save operand format.

    Parameters
    ----------
    params:
        Architecture parameters (:data:`~repro.fma.formats.PCS_PARAMS` or
        :data:`~repro.fma.formats.FCS_PARAMS` for the paper's units).
    selector:
        ``"zd"`` -- exact block Zero Detector with the Fig. 10 rules
        (PCS-FMA); ``"lza"`` -- early leading-zero anticipation at block
        granularity (FCS-FMA, Sec. III-G).
    use_carry_reduce:
        Run the Carry Reduce stage after the adder (PCS); the FCS unit
        eliminates it via the DSP48E1 pre-adders (Sec. III-H).
    strict:
        When True, raise if an architectural invariant would be violated
        (e.g. a result block index beyond the hardware multiplexer).
    """

    def __init__(self, params: CSFmaParams, *, selector: str = "zd",
                 use_carry_reduce: bool = True, strict: bool = False):
        if selector not in ("zd", "lza"):
            raise ValueError("selector must be 'zd' or 'lza'")
        self.params = params
        self.selector = selector
        self.use_carry_reduce = use_carry_reduce
        self.strict = strict

    # ------------------------------------------------------------------

    def fma(self, a: CSFloat, b: FPValue, c: CSFloat,
            trace: FmaTrace | None = None) -> CSFloat:
        """Compute ``a + b * c`` in the unit's operand format."""
        p = self.params
        if a.params is not p or c.params is not p:
            raise ValueError("operand format does not match this unit")

        tm = _tm.ACTIVE
        g = _gd.ACTIVE
        if tm is not None:
            tm.count(f"fma.scalar.call.{p.name}")

        special = self._special_case(a, b, c)
        if special is not None:
            if tm is not None:
                tm.count("fma.scalar.special.nan" if special.is_nan
                         else "fma.scalar.special.inf")
            return special

        t = trace if trace is not None else FmaTrace()

        # --- stage 1: deferred rounding decisions -----------------------
        dec_c = (round_decision(c.round_data, p.block)
                 if c.is_normal else 0)
        dec_a = (round_decision(a.round_data, p.block)
                 if a.is_normal else 0)
        t.dec_a, t.dec_c = dec_a, dec_c

        c_used = c.mant_signed() + dec_c if c.is_normal else 0
        a_used = a.mant_signed() + dec_a if a.is_normal else 0
        p_nonzero = b.is_normal and c.is_normal and c_used != 0
        a_nonzero = a.is_normal and a_used != 0

        if not p_nonzero and not a_nonzero:
            if tm is not None:
                tm.count("fma.scalar.trivial_zero")
            sign = a.sign if a.is_zero else 0
            return CSFloat.zero(p, sign)

        W = p.window_width
        wmask = (1 << W) - 1

        # --- stage 2: window anchoring ----------------------------------
        # w0 = unbiased weight exponent of window bit 0.
        if p_nonzero:
            e_f = b.unbiased_exponent + c.exp
            w0 = e_f - (p.b_sig_bits - 1) - p.frac_bits - p.product_lsb
            if a_nonzero:
                w0 = max(w0, a.exp - p.frac_bits - p.addend_max_pos)
        else:
            e_f = 0
            w0 = a.exp - p.frac_bits - p.addend_max_pos

        # --- stage 3: the multiplier (Fig. 6) ----------------------------
        rows: list[int] = []
        product_row_words: list[int] = []
        a_row_word = 0
        if p_nonzero:
            p_pos = (e_f - (p.b_sig_bits - 1) - p.frac_bits) - w0
            t.p_pos = p_pos
            c_tc = c.mant.sum  # raw words; wrap-encoded two's complement
            c_tc = (c_tc + c.mant.carry) & ((1 << p.mant_width) - 1)
            if p_pos >= 0:
                # Multiply directly into the (window - shift) modulus so
                # the left shift commutes with the two's-complement wrap.
                mres = multiply_mantissa(
                    b.significand, p.b_sig_bits, c_tc, p.mant_width,
                    negate=bool(b.sign), round_up_c=bool(dec_c),
                    out_width=W - p_pos)
                rows.append((mres.product.sum << p_pos) & wmask)
                rows.append((mres.product.carry << p_pos) & wmask)
            else:
                # Product below the window (huge addend): floor-shift the
                # collapsed product (documented modeling liberty).
                if tm is not None:
                    tm.count("fma.scalar.product_below_window")
                mres = multiply_mantissa(
                    b.significand, p.b_sig_bits, c_tc, p.mant_width,
                    negate=bool(b.sign), round_up_c=bool(dec_c),
                    out_width=p.product_width)
                pv = mres.product.signed_value() >> (-p_pos)
                rows.append(pv & wmask)
            product_row_words = list(rows)
            t.product_rows = mres.rows
            t.tree_depth = csa_tree_depth(mres.rows)

        # --- stage 4: addend rounding + pre-shift ------------------------
        if a_nonzero:
            a_pos = (a.exp - p.frac_bits) - w0
            t.a_pos = a_pos
            if a_pos >= 0:
                if a_pos > p.addend_max_pos:
                    raise AssertionError("window anchoring failed")
                a_row_word = (a_used << a_pos) & wmask
            else:
                a_row_word = (a_used >> (-a_pos)) & wmask
            rows.append(a_row_word)

        # --- stage 5: wide carry-save addition ---------------------------
        red = reduce_rows(rows, width=W)
        window = CSNumber(red.sum, red.carry & wmask, W)
        # fault-injection probe: the window digit sum/carry planes
        window = probe("fma.window", window)

        # --- stage 6: carry reduce (PCS) ---------------------------------
        if self.use_carry_reduce:
            window = carry_reduce(window, p.carry_spacing)
            window = CSNumber(window.sum, window.carry & wmask, W)

        value = (window.sum + window.carry) & wmask
        t.window_sum, t.window_carry = window.sum, window.carry
        if g is not None:
            # residue shadow: the 3:2 compressor and the Carry Reduce
            # stage both conserve the row sum under the window wrap
            g.check_window(window.sum, window.carry, sum(rows), W)
        if value == 0:
            if tm is not None:
                tm.count("fma.scalar.cancel_to_zero")
            return CSFloat.zero(p)

        # --- stage 7: block normalization --------------------------------
        max_skip = p.window_blocks - p.mant_blocks
        if self.selector == "zd":
            skipped = count_skippable_blocks(window, p.block,
                                             max_skip=max_skip)
        else:
            prod_word = sum(product_row_words) & wmask
            est = lza_estimate(a_row_word, prod_word, W)
            t.lza_estimate = est
            # Keep at least one redundant sign bit in the selected window:
            # skipping exactly `est` bits could place the value's MSB at
            # the slice's sign position and flip the result's sign.
            skipped = min(max(est - 1, 0) // p.block, max_skip)
        t.skipped_blocks = skipped
        if g is not None:
            # normalization shadow: an independent skip-count recompute
            # (closed-form sign-bit count for the ZD, a probe-free second
            # anticipator pass for the LZA)
            if self.selector == "zd":
                shadow = _gd.zd_shadow(value, W, p.block, max_skip)
            else:
                est_ref = _gd.lza_shadow(a_row_word, prod_word, W)
                shadow = min(max(est_ref - 1, 0) // p.block, max_skip)
            g.check_norm(skipped, shadow, self.selector)
        if tm is not None:
            # which normalization path produced the block-skip decision
            tm.count("fma.scalar.norm.zd" if self.selector == "zd"
                     else "fma.scalar.norm.lza")
            if skipped == max_skip:
                tm.count("fma.scalar.norm.max_skip")

        j_top = p.window_blocks - 1 - skipped
        lo = p.block * (j_top - (p.mant_blocks - 1))
        if self.strict and skipped < 0:
            raise AssertionError("negative skip count")

        # --- stage 8: result and rounding-data slice ---------------------
        mant_mask = (1 << p.mant_width) - 1
        m_sum = (window.sum >> lo) & mant_mask
        m_carry = (window.carry >> lo) & mant_mask & p.mant_carry_mask
        dropped_carry = ((window.carry >> lo) & mant_mask) & ~p.mant_carry_mask
        if dropped_carry:
            # Cannot happen for a carry-reduced window sliced at a block
            # boundary; full-CS windows allow carries everywhere.
            raise AssertionError("carry bit outside the operand format")
        # fault-injection probe: the result mantissa slice registers
        m_sum, m_carry = probe("fma.mant_slice", (m_sum, m_carry))
        if g is not None:
            g.check_slice(m_sum, m_carry, window.sum, window.carry, lo,
                          mant_mask, p.mant_carry_mask)
        mant = CSNumber(m_sum, m_carry, p.mant_width, p.mant_carry_mask)

        rlo = lo - p.block
        bmask = (1 << p.block) - 1
        if rlo >= 0:
            r_sum = (window.sum >> rlo) & bmask
            r_carry = (window.carry >> rlo) & bmask & p.round_carry_mask
        else:
            r_sum = r_carry = 0
        rnd = CSNumber(r_sum, r_carry, p.block, p.round_carry_mask)

        # --- stage 9: exponent update and range check --------------------
        e_r = w0 + lo + p.frac_bits
        t.result_exp = e_r
        sign = 1 if (value >> (W - 1)) else 0
        if e_r > p.exp_max:
            if tm is not None:
                tm.count("fma.scalar.overflow")
            return CSFloat.inf(p, sign)
        if e_r < p.exp_min:
            if tm is not None:
                tm.count("fma.scalar.flush_to_zero")
            return CSFloat.zero(p, sign)  # flush-to-zero

        return CSFloat(p, FpClass.NORMAL, e_r, mant, rnd)

    # ------------------------------------------------------------------

    def _special_case(self, a: CSFloat, b: FPValue,
                      c: CSFloat) -> CSFloat | None:
        """IEEE special-value logic on the FloPoCo-style flag wires."""
        p = self.params
        if a.is_nan or b.is_nan or c.is_nan:
            return CSFloat.nan(p)
        psign = b.sign ^ c.sign
        if b.is_inf or c.is_inf:
            if b.is_zero or c.is_zero:
                return CSFloat.nan(p)          # 0 * inf
            if a.is_inf and a.sign != psign:
                return CSFloat.nan(p)          # inf - inf
            return CSFloat.inf(p, psign)
        if a.is_inf:
            return CSFloat.inf(p, a.sign)
        return None

    # -- convenience ----------------------------------------------------

    @property
    def name(self) -> str:
        return f"{self.params.name}-fma"

    def __repr__(self) -> str:  # pragma: no cover
        return (f"CSFmaUnit({self.params.name}, selector={self.selector}, "
                f"carry_reduce={self.use_carry_reduce})")


class PcsFmaUnit(CSFmaUnit):
    """The PCS-FMA of Sec. III-F: ZD selection, Carry Reduce stage,
    55b blocks with carries every 11th bit.  Portable to older FPGAs
    (no DSP pre-adder required)."""

    def __init__(self, params: CSFmaParams = PCS_PARAMS, **kw):
        kw.setdefault("selector", "zd")
        kw.setdefault("use_carry_reduce", True)
        super().__init__(params, **kw)


class FcsFmaUnit(CSFmaUnit):
    """The FCS-FMA of Sec. III-H: early block-granular LZA, no Carry
    Reduce (DSP48E1 pre-adders), 29-digit blocks in full carry save.
    Requires Virtex-6 or newer fabric."""

    def __init__(self, params: CSFmaParams = FCS_PARAMS, **kw):
        kw.setdefault("selector", "lza")
        kw.setdefault("use_carry_reduce", False)
        super().__init__(params, **kw)
