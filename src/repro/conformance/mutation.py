"""Mutation smoke-checks: prove the conformance harness has teeth.

A differential harness that never fires is indistinguishable from one
that cannot fire.  This module injects *known single-bit faults* into
the fast CS kernel (:class:`repro.batch.cskernel.FastCSKernel`) and the
runner then asserts the sweep reports mismatches.  If a registered fault
survives a sweep undetected, the harness -- not the datapath -- is
broken.

Faults are applied by monkey-patching the kernel class inside a context
manager (the worker applies it per shard and always restores, because
pool processes are reused).  The kernel memo table is cleared on both
entry and exit so no pre-built clean kernel leaks into a mutated run or
vice versa.

Registered faults
-----------------
``carry-chunk-boundary``
    Flips the mid-window marker bit of the SWAR Carry Reduce constant
    ``H`` (and recomputes ``notH``): two adjacent 11-bit chunks in the
    product region merge, so their chunk carry propagates instead of
    being re-emitted as an explicit carry bit.  PCS only -- the FCS
    unit has no Carry Reduce stage, exactly like the hardware.
``mant-lsb``
    XORs bit 0 into the mantissa sum word of every normal result -- a
    stuck-at fault on the result bus, the loudest possible mutant.
``round-data-drop``
    Zeroes the rounding-data carry word: silently degrades the deferred
    rounding information a downstream fused consumer would use.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from ..batch import cskernel
from ..batch.cskernel import CS_NORMAL, FastCSKernel

__all__ = ["MUTATIONS", "injected", "mutation_units"]


def _patch_carry_chunk(cls) -> dict:
    orig_init = cls.__init__

    def init(self, params, selector, use_carry_reduce):
        orig_init(self, params, selector, use_carry_reduce)
        if self.H:
            # the marker nearest mid-window: inside the product span,
            # where chunk carries are actually generated (the lowest
            # chunks sit below the product anchor and stay silent)
            sp = params.carry_spacing
            pos = sp - 1 + sp * ((self.W // 2) // sp)
            bit = 1 << pos
            if not self.H & bit:
                bit = self.H & -self.H
            self.H ^= bit
            self.notH = ~self.H & self.wmask

    cls.__init__ = init
    return {"__init__": orig_init}


def _patch_mant_lsb(cls) -> dict:
    orig_fma = cls.fma

    def fma(self, a, b, c, pos=None):
        r = orig_fma(self, a, b, c, pos)
        if r[0] == CS_NORMAL:
            return (r[0], r[1], r[2] ^ 1, r[3], r[4], r[5], r[6])
        return r

    cls.fma = fma
    return {"fma": orig_fma}


def _patch_round_drop(cls) -> dict:
    orig_fma = cls.fma

    def fma(self, a, b, c, pos=None):
        r = orig_fma(self, a, b, c, pos)
        if r[0] == CS_NORMAL and r[5]:
            return (r[0], r[1], r[2], r[3], r[4], 0, r[6])
        return r

    cls.fma = fma
    return {"fma": orig_fma}


#: name -> (patch function, units the fault is observable on)
MUTATIONS = {
    "carry-chunk-boundary": (_patch_carry_chunk, ("pcs",)),
    "mant-lsb": (_patch_mant_lsb, ("pcs", "fcs")),
    "round-data-drop": (_patch_round_drop, ("pcs", "fcs")),
}


def mutation_units(name: str) -> tuple[str, ...]:
    """The FMA units on which ``name``'s fault is observable."""
    return MUTATIONS[name][1]


@contextlib.contextmanager
def injected(name: str) -> Iterator[None]:
    """Apply one registered fault to the fast kernel for the duration.

    Clears the process-wide kernel memo on entry *and* exit so clean and
    mutated kernels never mix; restores the patched attributes even when
    the body raises.
    """
    try:
        patch, _ = MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; registered: "
            f"{sorted(MUTATIONS)}") from None
    saved_kernels = dict(cskernel._KERNELS)
    cskernel._KERNELS.clear()
    originals = patch(FastCSKernel)
    try:
        yield
    finally:
        for attr, value in originals.items():
            setattr(FastCSKernel, attr, value)
        cskernel._KERNELS.clear()
        cskernel._KERNELS.update(saved_kernels)
