"""Deterministic conformance work units.

A *shard* is the unit of distribution of the conformance sweep: a fully
self-describing, picklable :class:`ShardSpec` from which every operand
of every case can be regenerated bit-for-bit.  Reproducibility is the
design center -- the whole shard is a pure function of
``(seed, shard_id, config)``:

* random families draw from ``random.Random(f"{seed}:{shard_id}")``,
  nothing else (no time, no global RNG state);
* the golden-vector family partitions ``tests/vectors`` round-robin by
  ``case_index % num_shards == shard_id``;
* every generated case is folded into a SHA-256 ``case digest`` so two
  runs (or two hosts) can prove they executed identical work.

Operand *stratification* follows the structure of the FMA window rather
than uniform exponents: each stratum pins the relative anchoring of the
addend and the product (balanced, addend-dominant, product-dominant,
massive cancellation, flush/overflow edges, subnormal bit patterns that
flush on load, and IEEE specials including payload NaNs), which is where
the carry-save datapaths historically disagree with the oracle.
"""

from __future__ import annotations

import hashlib
import json
import random
import struct
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = [
    "FAMILIES",
    "UNITS",
    "STRATA",
    "ShardSpec",
    "Case",
    "draw_triple",
    "generate_cases",
    "shard_rng",
    "golden_vector_path",
    "load_golden_cases",
]

#: differential case families a shard can run
FAMILIES = ("stratified", "golden", "chain", "dot")

#: FMA flavors under test
UNITS = ("classic", "pcs", "fcs")

#: operand-class strata for the random family (cycled deterministically)
STRATA = (
    "balanced",            # all exponents comparable
    "addend-dominant",     # |A| >> |B*C|: product sinks toward/below window
    "product-dominant",    # |B*C| >> |A|: addend aligned low
    "cancellation",        # A ~ -B*C: leading-zero / ZD stress
    "flush-edge",          # results straddling the flush-to-zero boundary
    "overflow-edge",       # results straddling binary64 overflow
    "subnormal-bits",      # raw subnormal encodings (flush on load)
    "specials",            # zeros / infs / payload NaNs mixed in
)

_EXP_BITS = 0x7FF
_FRAC_MASK = (1 << 52) - 1


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a conformance sweep (picklable, fully deterministic).

    ``cases`` is the target count for each *random* family; the golden
    family's size is fixed by the vector file and the shard count.
    """

    shard_id: int
    num_shards: int
    seed: int
    cases: int = 64
    families: tuple[str, ...] = FAMILIES
    units: tuple[str, ...] = UNITS
    mutation: str | None = None
    shrink: bool = True

    def __post_init__(self) -> None:
        if not (0 <= self.shard_id < self.num_shards):
            raise ValueError("shard_id out of range")
        bad = set(self.families) - set(FAMILIES)
        if bad:
            raise ValueError(f"unknown families: {sorted(bad)}")
        bad = set(self.units) - set(UNITS)
        if bad:
            raise ValueError(f"unknown units: {sorted(bad)}")

    def to_dict(self) -> dict:
        d = asdict(self)
        d["families"] = list(self.families)
        d["units"] = list(self.units)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ShardSpec":
        d = dict(d)
        d["families"] = tuple(d["families"])
        d["units"] = tuple(d["units"])
        return cls(**d)


@dataclass(frozen=True)
class Case:
    """One differential case: a family tag plus binary64 bit patterns.

    ``operands`` is a tuple of 64-bit integers; its interpretation is
    family-specific (a flat ``(a, b, c)`` triple for ``stratified`` and
    ``golden``, an interleaved stream for ``chain``/``dot``).
    """

    family: str
    stratum: str
    operands: tuple[int, ...]
    case_id: str = ""
    expected: dict = field(default_factory=dict)

    def digest_token(self) -> bytes:
        return (self.family + ":" + self.stratum + ":" + self.case_id
                + ":" + ",".join("%016x" % w for w in self.operands)
                ).encode()


def shard_rng(seed: int, shard_id: int) -> random.Random:
    """The one true RNG of a shard: seeded by the pair, nothing else."""
    return random.Random(f"{seed}:{shard_id}")


# ---------------------------------------------------------------------------
# operand drawing


def _bits(sign: int, biased_exp: int, frac: int) -> int:
    return ((sign << 63) | ((biased_exp & _EXP_BITS) << 52)
            | (frac & _FRAC_MASK))


def _draw_normal(rng: random.Random, lo_exp: int, hi_exp: int) -> int:
    """A normal binary64 bit pattern with unbiased exponent in range."""
    lo = max(lo_exp + 1023, 1)
    hi = min(hi_exp + 1023, 2046)
    return _bits(rng.getrandbits(1), rng.randint(lo, hi),
                 rng.getrandbits(52))


def _bits_to_float(word: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", word))[0]


def _float_to_bits(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def _draw_specials(rng: random.Random) -> int:
    kind = rng.randrange(6)
    if kind == 0:
        return rng.getrandbits(1) << 63                         # +-0
    if kind == 1:
        return _bits(rng.getrandbits(1), _EXP_BITS, 0)          # +-inf
    if kind == 2:                                               # payload NaN
        return _bits(rng.getrandbits(1), _EXP_BITS,
                     rng.randint(1, _FRAC_MASK))
    if kind == 3:                                               # subnormal
        return _bits(rng.getrandbits(1), 0, rng.randint(1, _FRAC_MASK))
    return _draw_normal(rng, -64, 64)


def _draw_triple(rng: random.Random, stratum: str) -> tuple[int, int, int]:
    """One ``(a, b, c)`` operand triple for ``R = A + B*C``."""
    if stratum == "balanced":
        return (_draw_normal(rng, -200, 200), _draw_normal(rng, -200, 200),
                _draw_normal(rng, -200, 200))
    if stratum == "addend-dominant":
        # the product sits 100..400 binades below the addend: sweeps the
        # addend pre-shift across (and past) the window's right edge
        a = _draw_normal(rng, -200, 400)
        gap = rng.randint(100, 400)
        ae = ((a >> 52) & _EXP_BITS) - 1023
        be = rng.randint(-200, 200)
        ce = ae - gap - be
        return (a, _draw_normal(rng, be, be), _draw_normal(rng, ce, ce))
    if stratum == "product-dominant":
        b = _draw_normal(rng, -200, 200)
        c = _draw_normal(rng, -200, 200)
        pe = ((b >> 52) & _EXP_BITS) + ((c >> 52) & _EXP_BITS) - 2046
        gap = rng.randint(60, 400)
        ae = max(min(pe - gap, 1000), -1000)
        return (_draw_normal(rng, ae, ae), b, c)
    if stratum == "cancellation":
        a = _draw_normal(rng, -40, 40)
        b = _draw_normal(rng, -40, 40)
        c = _float_to_bits(-_bits_to_float(a) / _bits_to_float(b))
        # optionally perturb the last few ULPs of C so the cancellation
        # is near-total rather than exact
        c ^= rng.getrandbits(2)
        return (a, b, c)
    if stratum == "flush-edge":
        # products / sums in the last ~60 binades above binary64 flush
        e = rng.randint(-1022, -962)
        half = e // 2
        return (_draw_normal(rng, e, e + 4),
                _draw_normal(rng, half - 2, half + 2),
                _draw_normal(rng, e - half - 2, e - half + 2))
    if stratum == "overflow-edge":
        e = rng.randint(960, 1023)
        half = e // 2
        return (_draw_normal(rng, e - 4, e),
                _draw_normal(rng, half - 2, half + 2),
                _draw_normal(rng, e - half - 2, e - half + 2))
    if stratum == "subnormal-bits":
        words = [_bits(rng.getrandbits(1), 0, rng.randint(1, _FRAC_MASK))
                 for _ in range(3)]
        # keep at least one normal operand so the case is not trivially 0
        words[rng.randrange(3)] = _draw_normal(rng, -900, 900)
        rng.shuffle(words)
        return tuple(words)
    if stratum == "specials":
        return (_draw_specials(rng), _draw_specials(rng),
                _draw_specials(rng))
    raise ValueError(f"unknown stratum: {stratum}")


#: public alias -- the fault-injection campaign reuses the stratified
#: operand generator so its workload matches the conformance sweep's
draw_triple = _draw_triple


# ---------------------------------------------------------------------------
# golden vectors


def golden_vector_path() -> Path:
    """``tests/vectors/fma_hard_cases.json`` resolved from the repo root
    (the conformance runner executes from a source checkout)."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "tests" / "vectors" / "fma_hard_cases.json"
        if candidate.is_file():
            return candidate
    raise FileNotFoundError("tests/vectors/fma_hard_cases.json not found")


def load_golden_cases(path: Path | None = None) -> list[dict]:
    p = path if path is not None else golden_vector_path()
    return json.loads(p.read_text())["cases"]


# ---------------------------------------------------------------------------
# case generation


def generate_cases(spec: ShardSpec) -> list[Case]:
    """All cases of one shard, in execution order (pure in ``spec``)."""
    rng = shard_rng(spec.seed, spec.shard_id)
    out: list[Case] = []
    for family in spec.families:
        if family == "stratified":
            for i in range(spec.cases):
                stratum = STRATA[i % len(STRATA)]
                out.append(Case("stratified", stratum,
                                _draw_triple(rng, stratum),
                                case_id=f"s{spec.shard_id}-r{i}"))
        elif family == "golden":
            for i, case in enumerate(load_golden_cases()):
                if i % spec.num_shards != spec.shard_id:
                    continue
                out.append(Case(
                    "golden", case["category"],
                    tuple(int(case[k], 16) for k in "abc"),
                    case_id=case["id"], expected=case["expected"]))
        elif family == "chain":
            n_chains = max(1, spec.cases // 8)
            for i in range(n_chains):
                length = rng.randint(3, 12)
                words = [_draw_normal(rng, -10, 10) for _ in range(3)]
                words += [_draw_normal(rng, -60, 60) for _ in range(length)]
                out.append(Case("chain", f"len-{length}", tuple(words),
                                case_id=f"s{spec.shard_id}-c{i}"))
        elif family == "dot":
            n_dots = max(1, spec.cases // 8)
            for i in range(n_dots):
                length = rng.randint(1, 24)
                words = []
                for _ in range(length):
                    words.append(_draw_normal(rng, -80, 80))
                    words.append(_draw_normal(rng, -80, 80))
                out.append(Case("dot", f"len-{length}", tuple(words),
                                case_id=f"s{spec.shard_id}-d{i}"))
    return out


def case_digest(cases: list[Case]) -> str:
    """SHA-256 over the ordered case stream -- the shard's identity
    proof, compared across runs/hosts by the reproducibility tests."""
    h = hashlib.sha256()
    for c in cases:
        h.update(c.digest_token())
        h.update(b"\n")
    return h.hexdigest()
