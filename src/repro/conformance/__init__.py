"""Sharded parallel conformance testing of the FMA datapaths.

The subsystem answers one question at scale: *do the fast carry-save
datapaths stay bit-identical to their faithful oracles across the whole
operand space?*  It decomposes the question into deterministic,
independently executable shards (:mod:`.workunits`), checks each case
differentially (:mod:`.checks`), fans shards across processes with a
content-hash result cache so unchanged work is never repeated
(:mod:`.runner`, :mod:`.cache`), shrinks counterexamples to minimal
triples (:mod:`.shrink`), and proves its own sensitivity by injecting
known faults (:mod:`.mutation`).

Command line::

    python -m repro.conformance --shards 8 --workers 4 --seed 42
    python -m repro.conformance --repro 3 --seed 42   # replay one shard
    python -m repro.conformance --mutation-check      # harness has teeth
"""

from .cache import ResultCache, code_fingerprint, shard_key
from .mutation import MUTATIONS, injected
from .runner import (format_summary, main, run_mutation_check, run_shard,
                     run_sweep)
from .shrink import shrink_stream, shrink_triple
from .workunits import (FAMILIES, STRATA, UNITS, Case, ShardSpec,
                        case_digest, generate_cases, shard_rng)

__all__ = [
    "FAMILIES",
    "STRATA",
    "UNITS",
    "Case",
    "ShardSpec",
    "MUTATIONS",
    "ResultCache",
    "case_digest",
    "code_fingerprint",
    "format_summary",
    "generate_cases",
    "injected",
    "main",
    "run_mutation_check",
    "run_shard",
    "run_sweep",
    "shard_key",
    "shard_rng",
    "shrink_stream",
    "shrink_triple",
]
