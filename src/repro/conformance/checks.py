"""Differential checks: the fast path against the faithful oracle.

One function per (family, unit) pairing.  Every comparison is *bit
exact* -- IEEE results compare on class/sign/exponent/fraction, CS
results on every raw sum/carry word of the mantissa and rounding-data
blocks -- and every case runs under a try/except so a crashing datapath
(e.g. a mutation tripping an internal assertion) is reported as a
mismatch instead of killing the shard.

The oracle side is always the faithful scalar model
(:class:`repro.fma.csfma.CSFmaUnit`, :func:`repro.fp.ops.fp_fma`,
:class:`repro.fma.dotprod.FusedDotProductUnit`); the candidate side is
the :mod:`repro.batch` fast path.  ``golden`` cases additionally pin the
*oracle itself* to the stored expectation, so a regression in the
faithful model is caught even when both paths drift together.
"""

from __future__ import annotations

import struct
import traceback

from ..batch import fma_batch, fp_fma_fast, kernel_for
from ..batch.api import dot_batch
from ..fma.convert import cs_to_ieee, ieee_to_cs
from ..fma.csfma import CSFmaUnit, FcsFmaUnit, PcsFmaUnit
from ..fma.dotprod import FusedDotProductUnit
from ..fp.formats import BINARY64
from ..fp.ops import fp_fma
from ..fp.value import FPValue
from .workunits import Case

__all__ = [
    "unit_by_name",
    "from_bits",
    "to_bits",
    "describe_ieee",
    "describe_cs",
    "check_case",
]

_UNIT_CACHE: dict[str, CSFmaUnit] = {}


def unit_by_name(name: str) -> CSFmaUnit | None:
    """Faithful scalar unit for a conformance unit tag (None = classic)."""
    if name == "classic":
        return None
    u = _UNIT_CACHE.get(name)
    if u is None:
        u = PcsFmaUnit() if name == "pcs" else FcsFmaUnit()
        _UNIT_CACHE[name] = u
    return u


def from_bits(word: int) -> FPValue:
    x = struct.unpack("<d", struct.pack("<Q", word))[0]
    return FPValue.from_float(x, BINARY64)


def to_bits(v: FPValue) -> int:
    return struct.unpack("<Q", struct.pack("<d", v.to_float()))[0]


def describe_ieee(v: FPValue) -> str:
    return "0x%016x" % to_bits(v)


def describe_cs(x) -> str:
    """Raw-field rendering of a CSFloat (full CS words, not collapsed)."""
    return (f"cls={x.cls.name} exp={x.exp} "
            f"msum=0x{x.mant.sum:x} mcarry=0x{x.mant.carry:x} "
            f"rsum=0x{x.round_data.sum:x} rcarry=0x{x.round_data.carry:x} "
            f"sign_hint={x.sign_hint}")


def _same_ieee(x: FPValue, y: FPValue) -> bool:
    if x.cls is not y.cls or x.sign != y.sign:
        return False
    if x.is_normal:
        return (x.biased_exponent == y.biased_exponent
                and x.fraction == y.fraction)
    return True


def _same_cs(x, y) -> bool:
    return (x.cls == y.cls and x.exp == y.exp
            and x.sign_hint == y.sign_hint
            and x.mant.sum == y.mant.sum and x.mant.carry == y.mant.carry
            and x.round_data.sum == y.round_data.sum
            and x.round_data.carry == y.round_data.carry)


def _mismatch(case: Case, unit: str, got: str, want: str,
              detail: str = "") -> dict:
    return {
        "family": case.family,
        "stratum": case.stratum,
        "case_id": case.case_id,
        "unit": unit,
        "operands": ["0x%016x" % w for w in case.operands],
        "got": got,
        "want": want,
        "detail": detail,
    }


# ---------------------------------------------------------------------------
# per-family checks (each returns a list of mismatch dicts)


def _check_triple(case: Case, unit_name: str) -> list[dict]:
    a, b, c = (from_bits(w) for w in case.operands[:3])
    out: list[dict] = []
    if unit_name == "classic":
        ref = fp_fma(a, b, c, fmt=BINARY64)
        fast = fp_fma_fast(a, b, c, fmt=BINARY64)
        if not _same_ieee(fast, ref):
            out.append(_mismatch(case, unit_name, describe_ieee(fast),
                                 describe_ieee(ref),
                                 "fp_fma_fast vs fp_fma"))
        expect = case.expected.get("classic-fma")
        if expect is not None and to_bits(ref) != int(expect, 16):
            out.append(_mismatch(case, unit_name, describe_ieee(ref),
                                 expect, "oracle vs golden vector"))
        return out
    unit = unit_by_name(unit_name)
    ref = unit.fma(ieee_to_cs(a, unit.params), b,
                   ieee_to_cs(c, unit.params))
    (fast,) = fma_batch([a], [b], [c], unit=unit)
    if not _same_cs(fast, ref):
        out.append(_mismatch(case, unit_name, describe_cs(fast),
                             describe_cs(ref), "kernel vs faithful unit"))
    expect = case.expected.get(unit.name)
    if expect is not None and to_bits(cs_to_ieee(ref)) != int(expect, 16):
        out.append(_mismatch(case, unit_name,
                             describe_ieee(cs_to_ieee(ref)), expect,
                             "oracle vs golden vector"))
    return out


def _check_chain(case: Case, unit_name: str) -> list[dict]:
    """Dependent FMA chain: CS results feed the next A/C operands."""
    seeds = [from_bits(w) for w in case.operands[:3]]
    bs = [from_bits(w) for w in case.operands[3:]]
    if unit_name == "classic":
        acc, acc2 = seeds[0], seeds[1]
        facc, facc2 = seeds[0], seeds[1]
        for i, b in enumerate(bs):
            acc = fp_fma(acc, b, acc2, fmt=BINARY64)
            facc = fp_fma_fast(facc, b, facc2, fmt=BINARY64)
            acc, acc2 = acc2, acc
            facc, facc2 = facc2, facc
            if not _same_ieee(facc2, acc2):
                return [_mismatch(case, unit_name, describe_ieee(facc2),
                                  describe_ieee(acc2), f"chain step {i}")]
        return []
    unit = unit_by_name(unit_name)
    kernel = kernel_for(unit)
    ref = ieee_to_cs(seeds[0], unit.params)
    ref2 = ieee_to_cs(seeds[1], unit.params)
    fast = kernel.lift_cs(ref)
    fast2 = kernel.lift_cs(ref2)
    for i, b in enumerate(bs):
        ref = unit.fma(ref, b, ref2)
        fast = kernel.fma(fast, kernel.lift_b(b), fast2)
        ref, ref2 = ref2, ref
        fast, fast2 = fast2, fast
        if not _same_cs(kernel.lower(fast2), ref2):
            return [_mismatch(case, unit_name,
                              describe_cs(kernel.lower(fast2)),
                              describe_cs(ref2), f"chain step {i}")]
    return []


def _check_dot(case: Case, unit_name: str) -> list[dict]:
    a = [from_bits(w) for w in case.operands[0::2]]
    b = [from_bits(w) for w in case.operands[1::2]]
    if unit_name == "classic":
        return []  # the fused dot product only exists on the CS units
    unit = unit_by_name(unit_name)
    ref = FusedDotProductUnit(unit).dot(a, b)
    fast = dot_batch(a, b, unit=unit)
    if not _same_ieee(fast, ref):
        return [_mismatch(case, unit_name, describe_ieee(fast),
                          describe_ieee(ref), f"dot len {len(a)}")]
    return []


_CHECKS = {
    "stratified": _check_triple,
    "golden": _check_triple,
    "chain": _check_chain,
    "dot": _check_dot,
}


def check_case(case: Case, units: tuple[str, ...]) -> list[dict]:
    """Run one case through every requested unit; crashes become
    mismatches of kind ``exception``."""
    out: list[dict] = []
    fn = _CHECKS[case.family]
    for unit_name in units:
        try:
            out.extend(fn(case, unit_name))
        except Exception:
            out.append(_mismatch(
                case, unit_name, "<exception>", "<result>",
                traceback.format_exc(limit=4)))
    return out
