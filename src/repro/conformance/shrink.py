"""Failure shrinker: minimize a mismatching case before reporting.

A raw conformance counterexample is a triple (or stream) of arbitrary
64-bit patterns -- unreadable and over-specified.  The shrinker performs
greedy delta-debugging against a caller-supplied predicate ("does this
input still mismatch?"), which for the conformance runner is simply a
re-run of the differential check:

* **streams** (chains, dot products) first drop elements one at a time
  (ddmin with chunk size 1 is enough at conformance lengths);
* **operands** then shrink individually through a move ladder ordered by
  how much each move simplifies the value: replace with 1.0, clear the
  sign, zero the fraction, clear the low half of the remaining fraction
  bits, and halve the exponent's distance from 0.

The loop re-applies the ladder until a full pass makes no progress, so
the result is 1-minimal with respect to the moves.  Shrinking is bounded
by ``max_evals`` predicate calls -- a mismatch found by a mutation run
can fire on *every* case, and the shrinker must not turn a smoke check
into a long search.
"""

from __future__ import annotations

from typing import Callable, Sequence

__all__ = ["shrink_triple", "shrink_stream", "simplicity_score"]

_ONE = 0x3FF0000000000000       # binary64 1.0
_SIGN = 1 << 63
_FRAC = (1 << 52) - 1
_EXPF = 0x7FF


def simplicity_score(words: Sequence[int]) -> tuple[int, int, int]:
    """Lexicographic cost: (stream length, set fraction bits, total
    exponent distance from bias).  Lower is simpler."""
    frac_bits = sum(bin(w & _FRAC).count("1") for w in words)
    exp_dist = 0
    for w in words:
        e = (w >> 52) & _EXPF
        if 0 < e < _EXPF:
            exp_dist += abs(e - 1023)
    return (len(words), frac_bits, exp_dist)


def _operand_moves(w: int):
    """Candidate simplifications of one operand, most aggressive first."""
    if w != _ONE:
        yield _ONE
    if w & _SIGN:
        yield w & ~_SIGN
    frac = w & _FRAC
    if frac:
        yield w & ~_FRAC
        # clear the low half of the set fraction bits
        kept = frac
        for _ in range(bin(frac).count("1") // 2):
            kept &= kept - 1
        if kept != frac:
            yield (w & ~_FRAC) | kept
    e = (w >> 52) & _EXPF
    if 0 < e < _EXPF and e != 1023:
        mid = 1023 + (e - 1023) // 2
        yield (w & ~(_EXPF << 52)) | (mid << 52)
        step = e - 1 if e > 1023 else e + 1
        yield (w & ~(_EXPF << 52)) | (step << 52)


class _Budget:
    def __init__(self, max_evals: int):
        self.left = max_evals

    def spend(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        return True


def _shrink_words(words: list[int],
                  predicate: Callable[[Sequence[int]], bool],
                  budget: _Budget) -> tuple[list[int], int]:
    evals = 0
    progress = True
    while progress:
        progress = False
        for i in range(len(words)):
            for candidate in _operand_moves(words[i]):
                if not budget.spend():
                    return words, evals
                evals += 1
                trial = list(words)
                trial[i] = candidate
                if predicate(trial):
                    words = trial
                    progress = True
                    break
    return words, evals


def shrink_triple(a: int, b: int, c: int,
                  predicate: Callable[[int, int, int], bool],
                  max_evals: int = 400) -> dict:
    """Minimize an ``(a, b, c)`` bit-pattern triple.

    ``predicate`` must return True while the input still reproduces the
    failure; the original triple is assumed to (and never re-checked).
    Returns a report dict with the minimized triple, the number of
    predicate evaluations, and before/after simplicity scores.
    """
    budget = _Budget(max_evals)
    words, evals = _shrink_words(
        [a, b, c], lambda ws: predicate(ws[0], ws[1], ws[2]), budget)
    return {
        "shrunk": ["0x%016x" % w for w in words],
        "evals": evals,
        "score_before": list(simplicity_score([a, b, c])),
        "score_after": list(simplicity_score(words)),
    }


def shrink_stream(words: Sequence[int],
                  predicate: Callable[[Sequence[int]], bool],
                  *, head: int = 0, group: int = 1,
                  max_evals: int = 400) -> dict:
    """Minimize an operand stream (chain/dot case).

    ``head`` operands are structural (chain seeds) and never dropped;
    the tail is removed ``group`` elements at a time (2 for dot pairs),
    then every surviving operand shrinks through the move ladder.
    """
    budget = _Budget(max_evals)
    words = list(words)
    dropped = True
    while dropped and len(words) - head > group:
        dropped = False
        i = head
        while i < len(words):
            trial = words[:i] + words[i + group:]
            if len(trial) <= head:
                break
            if not budget.spend():
                break
            if predicate(trial):
                words = trial
                dropped = True
            else:
                i += group
    words, _ = _shrink_words(words, predicate, budget)
    return {
        "shrunk": ["0x%016x" % w for w in words],
        "evals": max_evals - budget.left,
        "score_after": list(simplicity_score(words)),
    }
