"""``python -m repro.conformance`` entry point."""

import sys

from .runner import main

sys.exit(main())
