"""Sharded parallel conformance runner.

Orchestrates a sweep: builds :class:`ShardSpec` work units, consults the
content-hash :class:`ResultCache`, fans the remaining shards across a
``ProcessPoolExecutor``, shrinks any counterexample, and aggregates
per-shard structured metrics (cases/s, cache hit rate, mismatch count)
into one JSON-serializable report.

Three entry points:

* :func:`run_shard` -- one shard, inline, in this process (also what
  ``--repro`` uses to replay a failing shard from its ``(seed, id)``);
* :func:`run_sweep` -- the full cached/parallel sweep;
* :func:`run_mutation_check` -- the smoke-check that injects each
  registered fault and asserts the sweep reports mismatches.

``python -m repro.conformance`` exposes all three on the command line.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from ..faults.resilient import RetryPolicy, run_resilient
from ..telemetry import core as _tm
from . import mutation as mutation_mod
from .cache import ResultCache, code_fingerprint, default_cache_dir, shard_key
from .checks import check_case
from .shrink import shrink_stream, shrink_triple
from .workunits import (FAMILIES, UNITS, Case, ShardSpec, case_digest,
                        generate_cases)

__all__ = ["run_shard", "run_sweep", "run_mutation_check",
           "format_summary", "main"]

_SHRINK_BUDGET = 200      # predicate evaluations per counterexample
_SHRINK_CAP = 5           # counterexamples shrunk per shard


# ---------------------------------------------------------------------------
# one shard


def _still_fails(mismatch: dict, case: Case, operands: tuple[int, ...],
                 ) -> bool:
    trial = Case(case.family, case.stratum, tuple(operands),
                 case_id=case.case_id)
    return any(m["unit"] == mismatch["unit"]
               for m in check_case(trial, (mismatch["unit"],)))


def _shrink_mismatch(mismatch: dict, case: Case) -> None:
    ops = tuple(int(w, 16) for w in mismatch["operands"])
    if case.family in ("stratified", "golden"):
        report = shrink_triple(
            ops[0], ops[1], ops[2],
            lambda a, b, c: _still_fails(mismatch, case, (a, b, c)),
            max_evals=_SHRINK_BUDGET)
    elif case.family == "chain":
        report = shrink_stream(
            ops, lambda ws: _still_fails(mismatch, case, tuple(ws)),
            head=3, group=1, max_evals=_SHRINK_BUDGET)
    else:  # dot: operands are (a_i, b_i) pairs
        report = shrink_stream(
            ops, lambda ws: _still_fails(mismatch, case, tuple(ws)),
            head=0, group=2, max_evals=_SHRINK_BUDGET)
    mismatch["shrink"] = report


def run_shard(spec: ShardSpec) -> dict:
    """Execute one shard inline and return its structured result."""
    t0 = time.perf_counter()
    with _tm.span("conformance.shard"):
        cases = generate_cases(spec)
        mismatches: list[dict] = []
        checks = 0
        for case in cases:
            units = spec.units
            if case.family == "dot":  # classic has no fused dot datapath
                units = tuple(u for u in units if u != "classic")
            checks += len(units)
            mismatches.extend(check_case(case, units))
        if spec.shrink:
            for m in mismatches[:_SHRINK_CAP]:
                matching = [c for c in cases if c.case_id == m["case_id"]
                            and c.family == m["family"]]
                if matching:
                    _shrink_mismatch(m, matching[0])
    elapsed = time.perf_counter() - t0
    tm = _tm.ACTIVE
    if tm is not None:
        tm.count("conformance.shards")
        tm.count("conformance.cases", len(cases))
        tm.count("conformance.checks", checks)
        tm.count("conformance.mismatches", len(mismatches))
    return {
        "shard_id": spec.shard_id,
        "seed": spec.seed,
        "spec": spec.to_dict(),
        "case_digest": case_digest(cases),
        "cases": len(cases),
        "checks": checks,
        "mismatches": mismatches,
        "mismatch_count": len(mismatches),
        "elapsed_s": round(elapsed, 6),
        "cases_per_s": round(len(cases) / elapsed, 2) if elapsed else 0.0,
        "cached": False,
    }


def _shard_entry(spec_dict: dict) -> dict:
    """Picklable pool entry point.

    Pool processes are reused across shards, so a mutation is applied
    strictly within the context manager and always unwound.
    """
    spec = ShardSpec.from_dict(spec_dict)
    if spec.mutation is None:
        return run_shard(spec)
    with mutation_mod.injected(spec.mutation):
        return run_shard(spec)


# ---------------------------------------------------------------------------
# the sweep


def _failed_shard_record(spec: ShardSpec, wr) -> dict:
    """Structured stand-in for a shard whose worker died / hung / raised
    past all recovery attempts -- the sweep degrades instead of hanging
    on ``future.result()`` or losing the shard silently."""
    return {
        "shard_id": spec.shard_id,
        "seed": spec.seed,
        "spec": spec.to_dict(),
        "failed": True,
        "error": wr.error if wr is not None else {"kind": "lost"},
        "attempts": wr.attempts if wr is not None else 0,
        "case_digest": None,
        "cases": 0,
        "checks": 0,
        "mismatches": [],
        "mismatch_count": 0,
        "elapsed_s": 0.0,
        "cases_per_s": 0.0,
        "cached": False,
    }


def run_sweep(shards: int = 8, workers: int | None = None, seed: int = 0, *,
              cases: int = 64, families: tuple[str, ...] = FAMILIES,
              units: tuple[str, ...] = UNITS, mutation: str | None = None,
              shrink: bool = True, use_cache: bool = True,
              cache_dir: "str | os.PathLike | None" = None,
              fingerprint_extra: str = "", cache_salt: str = "",
              shard_timeout_s: float | None = 300.0,
              retries: int = 3) -> dict:
    """Run the sharded conformance sweep and return the full report.

    ``workers=None`` uses ``os.cpu_count()``; ``workers<=1`` runs inline
    (no pool), which is also the mode every shard re-runs in under
    ``--repro``.  Shard results are served from the content-hash cache
    whenever code, vectors, and spec are unchanged; mutation sweeps
    bypass the cache entirely.

    Parallel shards run under the resilient executor
    (:func:`repro.faults.resilient.run_resilient`): each shard gets a
    ``shard_timeout_s`` wall-clock budget and up to ``retries``
    attempts; a worker death respawns the pool and re-dispatches the
    survivors.  A shard that fails every attempt becomes a structured
    ``failed`` record (counted in ``totals.failed_shards``, never
    cached) rather than a hung or crashed sweep.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    if workers is None:
        workers = os.cpu_count() or 1
    if mutation is not None:
        use_cache = False
        if units == UNITS:
            units = mutation_mod.mutation_units(mutation)
    t0 = time.perf_counter()
    specs = [ShardSpec(shard_id=i, num_shards=shards, seed=seed,
                       cases=cases, families=tuple(families),
                       units=tuple(units), mutation=mutation,
                       shrink=shrink)
             for i in range(shards)]

    cache = None
    keys: dict[int, str] = {}
    results: dict[int, dict] = {}
    pending: list[ShardSpec] = []
    if use_cache:
        cache = ResultCache(cache_dir if cache_dir is not None
                            else default_cache_dir())
        fp = code_fingerprint(fingerprint_extra)
        for spec in specs:
            key = shard_key(spec, fp, salt=cache_salt)
            keys[spec.shard_id] = key
            hit = cache.get(key)
            if hit is not None:
                hit = dict(hit)
                hit["cached"] = True
                results[spec.shard_id] = hit
            else:
                pending.append(spec)
    else:
        pending = list(specs)

    resilience = None
    if workers > 1 and len(pending) > 1:
        run = run_resilient(
            _shard_entry, [s.to_dict() for s in pending],
            workers=min(workers, len(pending)),
            timeout_s=shard_timeout_s,
            retry=RetryPolicy(max_attempts=max(retries, 1)),
            rng_seed=seed)
        resilience = run.summary()
        for spec, wr in zip(pending, run.results):
            if wr is not None and wr.ok:
                results[spec.shard_id] = wr.value
            else:
                results[spec.shard_id] = _failed_shard_record(spec, wr)
    else:
        for spec in pending:
            results[spec.shard_id] = _shard_entry(spec.to_dict())

    if cache is not None:
        for spec in pending:
            res = results[spec.shard_id]
            if res.get("failed"):
                continue  # a failed shard must never poison the cache
            res["cache_key"] = keys[spec.shard_id]
            cache.put(keys[spec.shard_id], res)

    wall = time.perf_counter() - t0
    ordered = [results[i] for i in range(shards)]
    total_cases = sum(r["cases"] for r in ordered)
    hits = sum(1 for r in ordered if r["cached"])
    all_mismatches = [m for r in ordered for m in r["mismatches"]]
    failed = [r["shard_id"] for r in ordered if r.get("failed")]
    report = {
        "config": {
            "shards": shards, "workers": workers, "seed": seed,
            "cases": cases, "families": list(families),
            "units": list(units), "mutation": mutation,
            "cache": use_cache, "shrink": shrink,
        },
        "shards": ordered,
        "mismatches": all_mismatches,
        "totals": {
            "cases": total_cases,
            "checks": sum(r["checks"] for r in ordered),
            "mismatches": len(all_mismatches),
            "failed_shards": failed,
            "cache_hits": hits,
            "cache_hit_rate": round(hits / shards, 4),
            "wall_s": round(wall, 6),
            "cases_per_s": round(total_cases / wall, 2) if wall else 0.0,
        },
    }
    if resilience is not None:
        report["resilience"] = resilience
    tm = _tm.ACTIVE
    if tm is not None:
        tm.count("conformance.sweeps")
        tm.count("conformance.cache.hit", hits)
        tm.count("conformance.cache.miss", shards - hits)
        tm.count("conformance.shard.failed", len(failed))
        tm.observe("conformance.sweep", int(wall * 1e9))
        if resilience is not None:
            tm.count("conformance.retries", resilience["retries"])
            tm.count("conformance.timeouts", resilience["timeouts"])
            tm.count("conformance.pool_respawns",
                     resilience["pool_respawns"])
    return report


# ---------------------------------------------------------------------------
# mutation smoke-check


def run_mutation_check(mutations: "list[str] | None" = None, *,
                       shards: int = 2, workers: int = 1, seed: int = 0,
                       cases: int = 48) -> dict:
    """Inject each fault and assert the sweep catches it.

    Runs one clean baseline (must be mismatch-free) plus one mutated
    sweep per fault (each must report at least one mismatch).  Returns
    a report whose ``ok`` field is the smoke-check verdict.
    """
    names = list(mutations) if mutations else sorted(mutation_mod.MUTATIONS)
    clean = run_sweep(shards=shards, workers=workers, seed=seed,
                      cases=cases, use_cache=False, shrink=False)
    report: dict = {
        "clean_mismatches": clean["totals"]["mismatches"],
        "mutants": {},
    }
    ok = clean["totals"]["mismatches"] == 0
    for name in names:
        swept = run_sweep(shards=shards, workers=workers, seed=seed,
                          cases=cases, mutation=name, shrink=False)
        found = swept["totals"]["mismatches"]
        report["mutants"][name] = {
            "units": list(mutation_mod.mutation_units(name)),
            "mismatches": found,
            "detected": found > 0,
        }
        if _tm.ACTIVE is not None:
            _tm.ACTIVE.count("conformance.mutants.detected" if found
                             else "conformance.mutants.missed")
        ok = ok and found > 0
    report["ok"] = ok
    return report


# ---------------------------------------------------------------------------
# reporting / CLI


def format_summary(report: dict) -> str:
    rows = ["shard  cases  checks  mismatch  cached  cases/s",
            "-----  -----  ------  --------  ------  -------"]
    for r in report["shards"]:
        rows.append(f"{r['shard_id']:>5}  {r['cases']:>5}  "
                    f"{r['checks']:>6}  {r['mismatch_count']:>8}  "
                    f"{'yes' if r['cached'] else 'no':>6}  "
                    f"{r['cases_per_s']:>7.1f}")
    t = report["totals"]
    rows.append("")
    rows.append(
        f"total: {t['cases']} cases / {t['checks']} checks, "
        f"{t['mismatches']} mismatches, "
        f"cache hits {t['cache_hits']}/{len(report['shards'])} "
        f"({100 * t['cache_hit_rate']:.0f}%), "
        f"{t['wall_s']:.2f}s wall, {t['cases_per_s']:.1f} cases/s")
    for r in report["shards"]:
        if r.get("failed"):
            err = r.get("error") or {}
            rows.append(f"FAILED shard {r['shard_id']}: "
                        f"{err.get('kind', '?')} after "
                        f"{r.get('attempts', 0)} attempts "
                        f"({err.get('message', '')})".rstrip(" ()"))
    res = report.get("resilience")
    if res and (res["retries"] or res["timeouts"] or res["pool_respawns"]
                or res["serial_fallback"]):
        rows.append(f"resilience: {res['retries']} retries, "
                    f"{res['timeouts']} timeouts, "
                    f"{res['pool_respawns']} pool respawns"
                    + (", serial fallback" if res["serial_fallback"]
                       else ""))
    for m in report["mismatches"][:10]:
        rows.append("")
        rows.append(f"MISMATCH [{m['unit']}] {m['family']}/{m['stratum']} "
                    f"{m['case_id']}: {m['detail']}")
        rows.append(f"  operands: {' '.join(m['operands'])}")
        rows.append(f"  got:  {m['got']}")
        rows.append(f"  want: {m['want']}")
        if "shrink" in m:
            rows.append(f"  shrunk to: {' '.join(m['shrink']['shrunk'])} "
                        f"({m['shrink']['evals']} evals)")
    return "\n".join(rows)


def _format_mutation_report(report: dict) -> str:
    rows = [f"clean baseline: {report['clean_mismatches']} mismatches"]
    for name, r in report["mutants"].items():
        verdict = "DETECTED" if r["detected"] else "MISSED"
        rows.append(f"mutant {name:<22} [{','.join(r['units'])}] "
                    f"{r['mismatches']:>4} mismatches  -> {verdict}")
    rows.append("smoke-check: " + ("OK" if report["ok"] else "FAILED"))
    return "\n".join(rows)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description="Sharded differential conformance sweep of the FMA "
                    "datapaths against their faithful oracles.",
        epilog="exit status: 0 = sweep clean (or a listing was "
               "printed); 1 = mismatches, failed shards, or a failed "
               "mutation check; 2 = bad arguments.")
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size (default: cpu count; 1 = inline)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cases", type=int, default=64,
                        help="random cases per shard per family")
    parser.add_argument("--families", nargs="+", choices=FAMILIES,
                        default=list(FAMILIES))
    parser.add_argument("--units", nargs="+", choices=UNITS,
                        default=list(UNITS))
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--shard-timeout", type=float, default=300.0,
                        help="wall-clock seconds one shard attempt may "
                             "take in parallel mode (default 300)")
    parser.add_argument("--retries", type=int, default=3,
                        help="max attempts per shard in parallel mode "
                             "(default 3)")
    parser.add_argument("--no-shrink", action="store_true")
    parser.add_argument("--json-out", default=None,
                        help="write the full structured report here")
    parser.add_argument("--repro", type=int, default=None, metavar="SHARD",
                        help="replay one shard inline (no cache, no pool)")
    parser.add_argument("--mutation", default=None,
                        choices=sorted(mutation_mod.MUTATIONS),
                        help="run the sweep with this fault injected")
    parser.add_argument("--mutation-check", action="store_true",
                        help="inject every fault and assert detection")
    parser.add_argument("--list-mutations", action="store_true")
    parser.add_argument("--backend", default=None,
                        choices=("auto", "vector", "tuple", "faithful"),
                        help="pin the repro.batch backend for the whole "
                             "sweep (exported as REPRO_BATCH_BACKEND so "
                             "shard workers inherit it)")
    args = parser.parse_args(argv)

    if args.backend is not None:
        # the batch entry points consult this env var whenever a caller
        # does not pass an explicit backend, so one export covers the
        # inline path and every pooled shard process alike
        import os

        from ..batch.engines import BACKEND_ENV

        os.environ[BACKEND_ENV] = args.backend

    # semantic argument validation fails with the argparse convention
    # (exit 2 + usage on stderr), distinct from runtime failures (1)
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.cases < 1:
        parser.error("--cases must be >= 1")
    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.shard_timeout <= 0:
        parser.error("--shard-timeout must be positive")
    if args.retries < 1:
        parser.error("--retries must be >= 1")
    if args.repro is not None and not 0 <= args.repro < args.shards:
        parser.error(f"--repro shard must be in [0, {args.shards})")

    if args.list_mutations:
        for name in sorted(mutation_mod.MUTATIONS):
            units = ",".join(mutation_mod.mutation_units(name))
            print(f"{name}  (observable on: {units})")
        return 0

    if args.mutation_check:
        report = run_mutation_check(
            [args.mutation] if args.mutation else None,
            shards=min(args.shards, 2), workers=args.workers or 1,
            seed=args.seed, cases=args.cases)
        print(_format_mutation_report(report))
        if args.json_out:
            _write_json(args.json_out, report)
        return 0 if report["ok"] else 1

    if args.repro is not None:
        spec = ShardSpec(shard_id=args.repro, num_shards=args.shards,
                         seed=args.seed, cases=args.cases,
                         families=tuple(args.families),
                         units=tuple(args.units), mutation=args.mutation,
                         shrink=not args.no_shrink)
        result = _shard_entry(spec.to_dict())
        report = {"config": spec.to_dict(), "shards": [result],
                  "mismatches": result["mismatches"],
                  "totals": {"cases": result["cases"],
                             "checks": result["checks"],
                             "mismatches": result["mismatch_count"],
                             "cache_hits": 0, "cache_hit_rate": 0.0,
                             "wall_s": result["elapsed_s"],
                             "cases_per_s": result["cases_per_s"]}}
    else:
        report = run_sweep(
            shards=args.shards, workers=args.workers, seed=args.seed,
            cases=args.cases, families=tuple(args.families),
            units=tuple(args.units), mutation=args.mutation,
            shrink=not args.no_shrink, use_cache=not args.no_cache,
            cache_dir=args.cache_dir, shard_timeout_s=args.shard_timeout,
            retries=args.retries)
    print(format_summary(report))
    if args.json_out:
        _write_json(args.json_out, report)
    if report["totals"].get("failed_shards"):
        return 1
    return 1 if report["totals"]["mismatches"] else 0


def _write_json(path: str, report: dict) -> None:
    with open(path, "w") as f:
        json.dump(report, f, indent=1, sort_keys=True)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
