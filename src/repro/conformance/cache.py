"""Persistent, content-addressed conformance result cache.

A shard's outcome is a pure function of *(the code under test, the
golden-vector file, the shard spec)*, so its result can be reused across
runs as long as none of those inputs changed.  The cache key is::

    sha256(code fingerprint || golden-vector sha256 || spec JSON || salt)

where the *code fingerprint* hashes the path and content of every
``.py`` file under the installed :mod:`repro` package -- any edit to any
datapath, oracle, or to the conformance harness itself invalidates every
cached shard (deliberately coarse: a stale "pass" is the one failure
mode a conformance cache must never have).

Entries are one JSON file per key, written atomically (tmp + rename) so
concurrent sweeps sharing a cache directory never observe torn entries.
Mutation shards are never cached -- the injected fault is process-local
state that the fingerprint cannot see.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from .workunits import ShardSpec, golden_vector_path

__all__ = ["code_fingerprint", "shard_key", "ResultCache",
           "default_cache_dir"]

_fingerprint_memo: dict[str, str] = {}


def default_cache_dir() -> Path:
    """``$REPRO_CONFORMANCE_CACHE`` or ``.conformance-cache`` in cwd."""
    env = os.environ.get("REPRO_CONFORMANCE_CACHE")
    return Path(env) if env else Path.cwd() / ".conformance-cache"


def code_fingerprint(extra: str = "") -> str:
    """SHA-256 over every source file of the :mod:`repro` package.

    ``extra`` folds additional invalidation tokens into the digest
    (tests use it to simulate a code change without touching files).
    Memoized per process: the sweep computes it once, not per shard.
    """
    memo = _fingerprint_memo.get(extra)
    if memo is not None:
        return memo
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    h.update(extra.encode())
    digest = h.hexdigest()
    _fingerprint_memo[extra] = digest
    return digest


def shard_key(spec: ShardSpec, fingerprint: str | None = None,
              salt: str = "") -> str:
    """Content-hash cache key of one shard."""
    if spec.mutation is not None:
        raise ValueError("mutation shards are never cached")
    fp = fingerprint if fingerprint is not None else code_fingerprint()
    h = hashlib.sha256()
    h.update(fp.encode())
    if "golden" in spec.families:
        h.update(hashlib.sha256(
            golden_vector_path().read_bytes()).hexdigest().encode())
    h.update(json.dumps(spec.to_dict(), sort_keys=True).encode())
    h.update(salt.encode())
    return h.hexdigest()


class ResultCache:
    """On-disk shard-result store, one JSON file per content key."""

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict | None:
        path = self._path(key)
        try:
            return json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def put(self, key: str, result: dict) -> None:
        payload = json.dumps(result, sort_keys=True, indent=1)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(payload)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        n = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            n += 1
        return n
