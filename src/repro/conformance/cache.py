"""Persistent, content-addressed conformance result cache.

A shard's outcome is a pure function of *(the code under test, the
golden-vector file, the shard spec)*, so its result can be reused across
runs as long as none of those inputs changed.  The cache key is::

    sha256(code fingerprint || golden-vector sha256 || spec JSON || salt)

where the *code fingerprint* hashes the path and content of every
``.py`` file under the installed :mod:`repro` package -- any edit to any
datapath, oracle, or to the conformance harness itself invalidates every
cached shard (deliberately coarse: a stale "pass" is the one failure
mode a conformance cache must never have).

Entries are one JSON file per key, written atomically (tmp + rename) so
concurrent sweeps sharing a cache directory never observe torn entries.
Each entry wraps its payload with a SHA-256 checksum; an entry that is
truncated, unparsable, or fails the checksum (a torn write that slipped
past the rename, bit rot, a crashed writer from an older version) is
*quarantined* -- moved into a ``quarantine/`` subdirectory for post
mortem instead of being trusted or silently deleted.  Mutation shards
are never cached -- the injected fault is process-local state that the
fingerprint cannot see.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path

from .workunits import ShardSpec, golden_vector_path

__all__ = ["code_fingerprint", "shard_key", "ResultCache",
           "default_cache_dir"]

log = logging.getLogger(__name__)

_fingerprint_memo: dict[str, str] = {}


def default_cache_dir() -> Path:
    """``$REPRO_CONFORMANCE_CACHE`` or ``.conformance-cache`` in cwd."""
    env = os.environ.get("REPRO_CONFORMANCE_CACHE")
    return Path(env) if env else Path.cwd() / ".conformance-cache"


def code_fingerprint(extra: str = "") -> str:
    """SHA-256 over every source file of the :mod:`repro` package.

    ``extra`` folds additional invalidation tokens into the digest
    (tests use it to simulate a code change without touching files).
    Memoized per process: the sweep computes it once, not per shard.
    """
    memo = _fingerprint_memo.get(extra)
    if memo is not None:
        return memo
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    h.update(extra.encode())
    digest = h.hexdigest()
    _fingerprint_memo[extra] = digest
    return digest


def shard_key(spec: ShardSpec, fingerprint: str | None = None,
              salt: str = "") -> str:
    """Content-hash cache key of one shard."""
    if spec.mutation is not None:
        raise ValueError("mutation shards are never cached")
    fp = fingerprint if fingerprint is not None else code_fingerprint()
    h = hashlib.sha256()
    h.update(fp.encode())
    if "golden" in spec.families:
        h.update(hashlib.sha256(
            golden_vector_path().read_bytes()).hexdigest().encode())
    h.update(json.dumps(spec.to_dict(), sort_keys=True).encode())
    h.update(salt.encode())
    return h.hexdigest()


def _payload_checksum(payload: dict) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


class ResultCache:
    """On-disk shard-result store, one checksummed JSON file per key."""

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: entries moved aside by :meth:`get` because they failed
        #: integrity checks (inspectable, never silently deleted)
        self.quarantine_dir = self.root / "quarantine"

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _quarantine(self, path: Path, reason: str) -> None:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        dest = self.quarantine_dir / path.name
        try:
            os.replace(path, dest)
        except OSError:
            return  # a concurrent reader already moved it
        log.warning("quarantined corrupt cache entry %s (%s) -> %s",
                    path.name, reason, dest)

    def get(self, key: str) -> dict | None:
        """The cached payload, or ``None``.

        A present-but-corrupt entry (unparsable JSON, missing envelope
        fields, checksum mismatch) is moved to ``quarantine/`` and
        treated as a miss -- the shard simply recomputes.
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            self._quarantine(path, "unreadable")
            return None
        if (not isinstance(entry, dict) or "payload" not in entry
                or "checksum" not in entry):
            self._quarantine(path, "missing envelope")
            return None
        payload = entry["payload"]
        if _payload_checksum(payload) != entry["checksum"]:
            self._quarantine(path, "checksum mismatch")
            return None
        return payload

    def put(self, key: str, result: dict) -> None:
        entry = {"checksum": _payload_checksum(result), "payload": result}
        payload = json.dumps(entry, sort_keys=True, indent=1)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(payload)
            os.replace(tmp, self._path(key))
        except (KeyboardInterrupt, SystemExit):
            # interruption must win; leave the tmp file for inspection
            log.warning("cache write interrupted; tmp file left at %s", tmp)
            raise
        except (OSError, ValueError, TypeError) as exc:
            log.warning("discarding failed cache write %s: %s", tmp, exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        n = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            n += 1
        return n
