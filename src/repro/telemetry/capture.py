"""The standard capture workload behind ``python -m repro.telemetry``.

:func:`capture_envelope` runs a fixed, seeded workload under one
:func:`~repro.telemetry.core.collecting` session and packages the result
as a JSON-serializable *envelope*::

    {"schema": 1, "label": ..., "config": {...},
     "metrics": {"dot@4096": ops_per_s, ...},
     "snapshot": {...}}           # repro.telemetry.export format

The workload has three parts:

* a **coverage kit** of hand-picked scalar operands that drives every
  branch in :data:`repro.telemetry.gates.REQUIRED_COVERAGE` -- all three
  Fig. 10 ZD block classes, both normalization selectors, the
  product-below-window / cancellation / overflow / flush window edges,
  and the IEEE special cases;
* **throughput probes** (``dot@4096`` and friends) timed with
  ``perf_counter`` best-of-N, feeding the ``metrics`` section the
  regression gate diffs;
* a **miniature conformance sweep** plus a memo-stat publish, so the
  runner/cache counters appear in the snapshot too.
"""

from __future__ import annotations

import platform
import random
import time

from ..fp import BINARY64, FPValue, double
from .core import Telemetry, collecting
from .export import SCHEMA_VERSION, snapshot_to_dict

__all__ = ["capture_envelope", "run_coverage_kit", "make_vectors"]


def make_vectors(n: int, seed: int = 0, spread: int = 40):
    """Deterministic operand vectors with a wide exponent spread."""
    rng = random.Random(seed)

    def mk():
        return double(rng.choice([-1, 1]) * rng.uniform(1.0, 2.0)
                      * 2.0 ** rng.randint(-spread, spread))

    return [mk() for _ in range(n)], [mk() for _ in range(n)]


def run_coverage_kit() -> None:
    """Exercise every gated scalar-datapath branch at least once."""
    from ..fma import FcsFmaUnit, PcsFmaUnit, cs_to_ieee, ieee_to_cs

    nan = FPValue.nan(BINARY64)
    inf = FPValue.inf(BINARY64)
    for unit in (PcsFmaUnit(), FcsFmaUnit()):
        p = unit.params

        def lift(x, p=p):
            return ieee_to_cs(double(x), p)

        # mixed-sign normals: ZD classes + both selectors + conversions
        for a, b, c in [(2.0, 0.25, -3.5), (-1.5, 3.0, 7.0),
                        (1e9, -2.0, 1e-9), (0.75, 0.5, -0.25)]:
            cs_to_ieee(unit.fma(lift(a), double(b), lift(c)))
        # product far below the addend window (Fig. 5 pre-shift limit)
        unit.fma(lift(1e300), double(1e-30), lift(1e-30))
        # exact cancellation: a + b*c == 0
        unit.fma(lift(-6.0), double(2.0), lift(3.0))
        # massive cancellation short of zero (max block skip)
        unit.fma(lift(-1.0), double(1.0), lift(1.0 + 2.0 ** -50))
        # exponent-range edges: the CS exponent field spans twice the
        # binary64 range, so chain two FMAs -- the first result's wide
        # exponent feeds the second multiply past exp_max / exp_min
        big, tiny = 1.7976931348623157e308, 2.2250738585072014e-308
        huge = unit.fma(lift(0.0), double(big), lift(big))
        unit.fma(lift(0.0), double(2.0), huge)      # overflow -> inf
        small = unit.fma(lift(0.0), double(tiny), lift(tiny))
        unit.fma(lift(0.0), double(tiny), small)    # flush to zero
        unit.fma(lift(0.0), double(0.0), lift(0.0))
        # IEEE specials through the FloPoCo-style flag wires
        unit.fma(lift(1.0), nan, lift(1.0))
        unit.fma(lift(1.0), inf, lift(2.0))


def _ops_per_s(fn, n_ops: int, *, repeats: int = 3) -> float:
    """Best-of-``repeats`` throughput of ``fn`` in operations/second."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return n_ops / best if best > 0 else float("inf")


def _throughput_metrics() -> dict[str, float]:
    from ..batch import dot_batch, fma_batch, kernel_for
    from ..fma import FcsFmaUnit, ieee_to_cs

    unit = FcsFmaUnit()
    kernel_for(unit)  # compile outside timing
    a4, b4 = make_vectors(4096, seed=0)
    a1, b1 = make_vectors(1024, seed=1)
    c1 = [double(0.0)] * len(a1)
    sa, sb = make_vectors(64, seed=2, spread=8)
    acc0 = ieee_to_cs(double(0.0), unit.params)

    def scalar_loop():
        for x, y in zip(sa, sb):
            unit.fma(acc0, x, ieee_to_cs(y, unit.params))

    return {
        "dot@4096": _ops_per_s(lambda: dot_batch(a4, b4, unit=unit), 4096),
        "fma_batch@1024": _ops_per_s(
            lambda: fma_batch(c1, a1, b1, unit=unit), 1024),
        "scalar_fma@64": _ops_per_s(scalar_loop, 64),
    }


def capture_envelope(label: str = "", *, quick: bool = False,
                     seed: int = 0) -> dict:
    """Run the capture workload; return the envelope dict.

    ``quick`` skips the conformance mini-sweep (the slowest part) --
    used by tests that only need coverage + metrics.
    """
    from ..batch.memo import publish_cache_stats

    with collecting(Telemetry()) as t:
        run_coverage_kit()
        metrics = _throughput_metrics()
        if not quick:
            from ..conformance import run_sweep
            run_sweep(shards=2, workers=1, seed=seed, cases=8,
                      use_cache=False)
        publish_cache_stats()
        snap = t.snapshot(label=label)

    return {
        "schema": SCHEMA_VERSION,
        "label": label,
        "config": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "argv_seed": seed,
            "quick": quick,
        },
        "metrics": metrics,
        "snapshot": snapshot_to_dict(snap),
    }
