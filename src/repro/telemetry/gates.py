"""Coverage and regression gates over telemetry snapshots.

Two gates share this module so the CLI (``python -m repro.telemetry``)
and the test suite enforce exactly the same policy:

* **Coverage gate** -- :data:`REQUIRED_COVERAGE` lists every datapath
  branch the Fig. 10 Zero Detector taxonomy and the scalar FMA's
  fast/slow normalization split can take.  A workload whose snapshot
  leaves any of these counters at zero has a dead path: either the
  vectors stopped exercising it or an edit made the branch unreachable.
* **Regression gate** -- :func:`find_regressions` compares the
  ``metrics`` section of two capture envelopes (throughput figures in
  ops/s) and flags any metric that dropped by more than the allowed
  fraction.  The CLI exits non-zero when the gate trips, so CI can diff
  ``BENCH_telemetry.json`` against the previous run.
"""

from __future__ import annotations

from .snapshot import Snapshot

__all__ = ["REQUIRED_COVERAGE", "missing_coverage", "check_coverage",
           "find_regressions", "format_regressions"]

#: Counter tags that any full capture workload must drive at least once.
#: One entry per architectural branch of the scalar CS-FMA datapath:
#: the three Fig. 10 block classes, both normalization selectors, every
#: window-edge branch, the IEEE special cases, and both conversion
#: directions (``cs_to_ieee`` is the full/slow normalization path).
REQUIRED_COVERAGE: tuple[str, ...] = (
    "cs.zd.class.zero-value",
    "cs.zd.class.all-ones",
    "cs.zd.class.significant",
    "fma.scalar.norm.zd",
    "fma.scalar.norm.lza",
    "fma.scalar.product_below_window",
    "fma.scalar.cancel_to_zero",
    "fma.scalar.flush_to_zero",
    "fma.scalar.overflow",
    "fma.scalar.special.nan",
    "fma.scalar.special.inf",
    "fma.convert.ieee_to_cs",
    "fma.convert.cs_to_ieee",
)


def missing_coverage(snap: Snapshot,
                     required: tuple[str, ...] = REQUIRED_COVERAGE,
                     ) -> list[str]:
    """Required counters the snapshot never incremented."""
    return [tag for tag in required if snap.counter(tag) <= 0]


def check_coverage(snap: Snapshot,
                   required: tuple[str, ...] = REQUIRED_COVERAGE) -> None:
    """Raise ``AssertionError`` naming every dead datapath branch."""
    missing = missing_coverage(snap, required)
    if missing:
        raise AssertionError(
            "datapath coverage gate failed; never exercised: "
            + ", ".join(missing))


def find_regressions(old: dict, new: dict, *,
                     max_regression: float = 0.10) -> list[dict]:
    """Metrics in ``new`` that regressed past the allowed fraction.

    ``old``/``new`` are capture envelopes (see
    :func:`repro.telemetry.capture.capture_envelope`); their ``metrics``
    maps benchmark names to ops/s, so *lower is worse*.  Metrics present
    on only one side are ignored -- adding or retiring a benchmark is
    not a regression.
    """
    if not 0.0 <= max_regression < 1.0:
        raise ValueError("max_regression must be in [0, 1)")
    out = []
    old_m = old.get("metrics", {})
    new_m = new.get("metrics", {})
    for name in sorted(set(old_m) & set(new_m)):
        before, after = float(old_m[name]), float(new_m[name])
        if before <= 0.0:
            continue
        drop = 1.0 - after / before
        if drop > max_regression:
            out.append({"metric": name, "old": before, "new": after,
                        "drop": drop})
    return out


def format_regressions(regressions: list[dict]) -> str:
    lines = []
    for r in regressions:
        lines.append(f"  {r['metric']}: {r['old']:.3g} -> {r['new']:.3g} "
                     f"ops/s ({r['drop'] * 100.0:.1f}% slower)")
    return "\n".join(lines)
