"""Snapshot serialization: canonical JSON and Prometheus text format.

The JSON form is the storage/interchange format of the telemetry CLI
(``BENCH_telemetry.json``) and the conformance/faults reports; the
Prometheus text form is the scrape format a serving deployment would
expose.  :func:`canonical_bytes` is the determinism contract: equal
snapshots (in the merge-semantics sense) serialize to equal bytes, which
is what the parallel-equals-serial property tests compare.
"""

from __future__ import annotations

import json

from .snapshot import Snapshot, SpanStat

__all__ = ["snapshot_to_dict", "snapshot_from_dict", "canonical_bytes",
           "to_prometheus", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1


def snapshot_to_dict(snap: Snapshot) -> dict:
    """JSON-serializable form; keys are sorted, spans are 4-int lists
    ``[count, total_ns, min_ns, max_ns]``."""
    return {
        "schema": SCHEMA_VERSION,
        "label": snap.label,
        "counters": dict(sorted(snap.counters.items())),
        "spans": {tag: stat.to_list()
                  for tag, stat in sorted(snap.spans.items())},
        "gauges": dict(sorted(snap.gauges.items())),
        "events": list(snap.events),
    }


def snapshot_from_dict(d: dict) -> Snapshot:
    schema = d.get("schema", SCHEMA_VERSION)
    if schema != SCHEMA_VERSION:
        raise ValueError(f"unsupported telemetry schema {schema!r}")
    return Snapshot.build(
        {str(k): int(v) for k, v in d.get("counters", {}).items()},
        {str(k): SpanStat.from_list(v)
         for k, v in d.get("spans", {}).items()},
        {str(k): int(v) for k, v in d.get("gauges", {}).items()},
        d.get("events", []),
        label=str(d.get("label", "")),
    )


def canonical_bytes(snap: Snapshot) -> bytes:
    """Deterministic byte serialization (sorted keys, no whitespace)."""
    return json.dumps(snapshot_to_dict(snap), sort_keys=True,
                      separators=(",", ":")).encode()


# ---------------------------------------------------------------------------
# Prometheus text exposition format


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _labels(tag: str, extra: str = "") -> str:
    body = f'tag="{_escape(tag)}"'
    if extra:
        body += "," + extra
    return "{" + body + "}"


def to_prometheus(snap: Snapshot, prefix: str = "repro") -> str:
    """Render the snapshot in the Prometheus text exposition format.

    Counters map to ``<prefix>_counter_total``, spans to a summary-style
    triplet (``_span_seconds_count`` / ``_span_seconds_sum`` plus
    min/max gauges), gauges to ``<prefix>_gauge``; trace events are
    tallied per tag (their payloads are not a metrics concern).
    """
    lines: list[str] = []
    if snap.counters:
        lines.append(f"# TYPE {prefix}_counter_total counter")
        for tag, n in sorted(snap.counters.items()):
            lines.append(f"{prefix}_counter_total{_labels(tag)} {n}")
    if snap.spans:
        lines.append(f"# TYPE {prefix}_span_seconds summary")
        for tag, stat in sorted(snap.spans.items()):
            lab = _labels(tag)
            lines.append(
                f"{prefix}_span_seconds_count{lab} {stat.count}")
            lines.append(
                f"{prefix}_span_seconds_sum{lab} "
                f"{stat.total_ns / 1e9:.9f}")
        lines.append(f"# TYPE {prefix}_span_seconds_min gauge")
        for tag, stat in sorted(snap.spans.items()):
            lines.append(f"{prefix}_span_seconds_min{_labels(tag)} "
                         f"{stat.min_ns / 1e9:.9f}")
        lines.append(f"# TYPE {prefix}_span_seconds_max gauge")
        for tag, stat in sorted(snap.spans.items()):
            lines.append(f"{prefix}_span_seconds_max{_labels(tag)} "
                         f"{stat.max_ns / 1e9:.9f}")
    if snap.gauges:
        lines.append(f"# TYPE {prefix}_gauge gauge")
        for tag, v in sorted(snap.gauges.items()):
            lines.append(f"{prefix}_gauge{_labels(tag)} {v}")
    if snap.events:
        tally: dict[str, int] = {}
        for ev in snap.events:
            tag = str(ev.get("tag", ""))
            tally[tag] = tally.get(tag, 0) + 1
        lines.append(f"# TYPE {prefix}_event_total counter")
        for tag, n in sorted(tally.items()):
            lines.append(f"{prefix}_event_total{_labels(tag)} {n}")
    return "\n".join(lines) + ("\n" if lines else "")
