"""Datapath telemetry: zero-overhead counters, spans, and trace events.

The paper's whole contribution is an architecture-exploration loop, and
exploration without measurement is guesswork: this subsystem makes the
datapath *observable* -- which Fig. 10 Zero-Detector block classes fire,
whether the scalar units normalize through the ZD or the LZA, how often
a product falls below the window, how shards and campaigns spend their
time, whether a change regressed throughput.

The design mirrors :mod:`repro.probes` (the SEU fault-injection arm
layer): instrumented code performs a single module-global ``None`` check
(``core.ACTIVE``) on the fast path, so with telemetry disabled -- the
default, and the only state outside an explicit
:func:`~repro.telemetry.core.collecting` region -- the datapaths keep
their performance profile.  Collection is process-global and
non-reentrant, exactly like fault arming.

Four instrument kinds, all chosen for *deterministic merging* (parallel
shard snapshots must aggregate to the same report bytes in any order):

* **counters** -- monotonically increasing integers (integer addition is
  associative and commutative);
* **spans** -- wall-time observations held as integer nanoseconds
  ``(count, total_ns, min_ns, max_ns)`` (again all associative ops --
  float summation would be order-dependent);
* **gauges** -- high-water integer marks merged by ``max`` (used for
  absolute process-local readings such as ``lru_cache`` statistics);
* **events** -- capped structured trace records, canonically sorted at
  serialization time.

Public surface::

    from repro.telemetry import Telemetry, collecting, count, span

    with collecting() as t:
        run_workload()
    snap = t.snapshot(label="run-1")
    print(to_prometheus(snap))

``python -m repro.telemetry`` captures benchmark snapshots
(``BENCH_telemetry.json``), diffs two snapshots with a regression gate,
checks datapath coverage, and exports Prometheus text.  See
``docs/OBSERVABILITY.md`` for the tag catalogue and how to add a new
instrument.
"""

from .core import (Telemetry, collecting, count, event, gauge, span,
                   telemetry_active)
from .export import (canonical_bytes, snapshot_from_dict,
                     snapshot_to_dict, to_prometheus)
from .snapshot import Snapshot, SpanStat, merge_snapshots

__all__ = [
    "Telemetry", "collecting", "count", "event", "gauge", "span",
    "telemetry_active",
    "Snapshot", "SpanStat", "merge_snapshots",
    "snapshot_to_dict", "snapshot_from_dict", "canonical_bytes",
    "to_prometheus",
]
