"""Immutable telemetry snapshots and their deterministic merge.

A :class:`Snapshot` is the frozen result of one collection region (or of
merging several).  All aggregation state is integral so that merging is
associative, commutative, and has :func:`Snapshot.empty` as identity --
the property the conformance sweep relies on to aggregate per-shard
snapshots into one report whose bytes do not depend on shard completion
order (checked by ``tests/test_telemetry_property.py`` with Hypothesis).

This module is dependency-free (stdlib only) and must stay importable
from every datapath module without creating cycles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = ["SpanStat", "Snapshot", "merge_snapshots"]


@dataclass(frozen=True)
class SpanStat:
    """Aggregated wall-time observations of one span tag.

    Durations are integer nanoseconds (``time.perf_counter_ns``); the
    four fields each merge associatively (sum, sum, min, max), so any
    merge tree over any partition of the observations yields the same
    stat.
    """

    count: int = 0
    total_ns: int = 0
    min_ns: int = 0
    max_ns: int = 0

    def merged(self, other: "SpanStat") -> "SpanStat":
        if self.count == 0:
            return other
        if other.count == 0:
            return self
        return SpanStat(
            count=self.count + other.count,
            total_ns=self.total_ns + other.total_ns,
            min_ns=min(self.min_ns, other.min_ns),
            max_ns=max(self.max_ns, other.max_ns),
        )

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def to_list(self) -> list[int]:
        return [self.count, self.total_ns, self.min_ns, self.max_ns]

    @classmethod
    def from_list(cls, v: "list | tuple") -> "SpanStat":
        c, t, lo, hi = (int(x) for x in v)
        return cls(c, t, lo, hi)


def _event_key(ev: Mapping) -> str:
    """Canonical sort key of one trace event (stable across processes)."""
    return json.dumps(ev, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Snapshot:
    """One frozen telemetry aggregate.

    ``events`` are stored canonically sorted (see :func:`_event_key`) so
    two snapshots holding the same event *sets* compare equal regardless
    of the order the events were recorded or merged in.
    """

    counters: "Mapping[str, int]" = field(default_factory=dict)
    spans: "Mapping[str, SpanStat]" = field(default_factory=dict)
    gauges: "Mapping[str, int]" = field(default_factory=dict)
    events: tuple = ()
    label: str = ""

    @classmethod
    def empty(cls, label: str = "") -> "Snapshot":
        return cls({}, {}, {}, (), label)

    @classmethod
    def build(cls, counters: Mapping[str, int],
              spans: Mapping[str, SpanStat], gauges: Mapping[str, int],
              events: Iterable[Mapping], label: str = "") -> "Snapshot":
        """Normalize mutable collection state into a canonical snapshot
        (keys sorted, events canonically ordered, zero entries kept --
        an explicitly-created zero counter documents a dead path)."""
        return cls(
            counters=dict(sorted(counters.items())),
            spans=dict(sorted(spans.items())),
            gauges=dict(sorted(gauges.items())),
            events=tuple(sorted((dict(e) for e in events),
                                key=_event_key)),
            label=label,
        )

    def counter(self, tag: str) -> int:
        return self.counters.get(tag, 0)

    def span(self, tag: str) -> SpanStat:
        return self.spans.get(tag, SpanStat())

    def gauge(self, tag: str) -> int:
        return self.gauges.get(tag, 0)

    def merged(self, other: "Snapshot", label: "str | None" = None,
               ) -> "Snapshot":
        """Associative, commutative merge (see module docstring)."""
        counters = dict(self.counters)
        for tag, n in other.counters.items():
            counters[tag] = counters.get(tag, 0) + n
        spans = dict(self.spans)
        for tag, stat in other.spans.items():
            mine = spans.get(tag)
            spans[tag] = stat if mine is None else mine.merged(stat)
        gauges = dict(self.gauges)
        for tag, v in other.gauges.items():
            g = gauges.get(tag)
            gauges[tag] = v if g is None else max(g, v)
        if label is None:
            # deterministic label union, independent of merge order and
            # merge tree shape: split previously-merged labels back into
            # their parts so the union is over atomic labels
            parts: set[str] = set()
            for lab in (self.label, other.label):
                parts.update(p for p in lab.split(" | ") if p)
            label = " | ".join(sorted(parts))
        return Snapshot.build(counters, spans, gauges,
                              list(self.events) + list(other.events),
                              label)


def merge_snapshots(snaps: Iterable[Snapshot],
                    label: "str | None" = None) -> Snapshot:
    """Fold any number of snapshots into one.

    Because :meth:`Snapshot.merged` is associative and commutative, the
    result is independent of both the iteration order and the shape of
    the fold -- per-shard snapshots merged as they stream in equal the
    serial run's single snapshot byte-for-byte.
    """
    out = Snapshot.empty()
    for s in snaps:
        out = out.merged(s, label=None)
    if label is not None:
        out = Snapshot(out.counters, out.spans, out.gauges, out.events,
                       label)
    return out
