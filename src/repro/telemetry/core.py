"""The collection layer: one global, O(1) disabled, armed like probes.

Instrumented modules follow the :mod:`repro.probes` pattern::

    from ..telemetry import core as _tm

    def hot_function(...):
        ...
        t = _tm.ACTIVE
        if t is not None:                 # one global load when disabled
            t.count("fma.scalar.norm.zd")

``ACTIVE`` is ``None`` except inside a :func:`collecting` region, so the
disabled fast path is a single module-global load and ``is not None``
test -- the same budget the fault-injection probes pay.  Instrumentation
of *batched* code goes at call boundaries (once per ``dot_batch``, never
per element), which is what keeps disabled-mode overhead under the 2%
gate in ``benchmarks/test_telemetry_overhead.py``.

Collection is process-global and deliberately non-reentrant: nesting two
regions would make "which run produced this counter" ambiguous, exactly
as nested fault arming would.  Worker processes of the parallel runners
start with ``ACTIVE = None``; their snapshots, when taken explicitly,
merge deterministically via :func:`repro.telemetry.merge_snapshots`.
"""

from __future__ import annotations

import contextlib
import time
from typing import Iterator

from .snapshot import Snapshot, SpanStat

__all__ = ["Telemetry", "collecting", "count", "event", "gauge", "span",
           "telemetry_active", "ACTIVE"]

#: the collector while telemetry is armed; ``None`` always = fast path.
ACTIVE: "Telemetry | None" = None

#: default cap on stored trace events per collector; overflowing events
#: are dropped and tallied under this counter tag.
MAX_EVENTS = 4096
DROPPED_TAG = "telemetry.events.dropped"


class Telemetry:
    """Mutable collection state for one :func:`collecting` region."""

    __slots__ = ("counters", "spans", "gauges", "events", "max_events")

    def __init__(self, max_events: int = MAX_EVENTS):
        self.counters: dict[str, int] = {}
        self.spans: dict[str, SpanStat] = {}
        self.gauges: dict[str, int] = {}
        self.events: list[dict] = []
        self.max_events = max_events

    # -- instruments ---------------------------------------------------

    def count(self, tag: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``tag``."""
        c = self.counters
        c[tag] = c.get(tag, 0) + n

    def observe(self, tag: str, ns: int) -> None:
        """Record one span observation of ``ns`` nanoseconds."""
        s = self.spans.get(tag)
        if s is None:
            self.spans[tag] = SpanStat(1, ns, ns, ns)
        else:
            self.spans[tag] = SpanStat(
                s.count + 1, s.total_ns + ns,
                ns if ns < s.min_ns else s.min_ns,
                ns if ns > s.max_ns else s.max_ns)

    def gauge(self, tag: str, value: int) -> None:
        """Raise the high-water gauge ``tag`` to at least ``value``."""
        g = self.gauges.get(tag)
        if g is None or value > g:
            self.gauges[tag] = value

    def event(self, tag: str, **fields) -> None:
        """Record one structured trace event (JSON-serializable fields).

        Events beyond ``max_events`` are dropped and tallied under
        :data:`DROPPED_TAG` so a truncated trace is always visible.
        """
        if len(self.events) >= self.max_events:
            self.count(DROPPED_TAG)
            return
        ev = {"tag": tag}
        ev.update(fields)
        self.events.append(ev)

    # -- snapshots ------------------------------------------------------

    def snapshot(self, label: str = "") -> Snapshot:
        """Freeze the current state into an immutable snapshot."""
        return Snapshot.build(self.counters, self.spans, self.gauges,
                              self.events, label)


# ---------------------------------------------------------------------------
# module-level convenience instruments (safe to call any time)


def count(tag: str, n: int = 1) -> None:
    """Count ``n`` occurrences of ``tag``; no-op while disabled."""
    t = ACTIVE
    if t is not None:
        t.count(tag, n)


def gauge(tag: str, value: int) -> None:
    """Raise the gauge ``tag``; no-op while disabled."""
    t = ACTIVE
    if t is not None:
        t.gauge(tag, value)


def event(tag: str, **fields) -> None:
    """Record a trace event; no-op while disabled."""
    t = ACTIVE
    if t is not None:
        t.event(tag, **fields)


def telemetry_active() -> bool:
    """True inside a :func:`collecting` region (hot-path call guard)."""
    return ACTIVE is not None


class span:
    """Context manager timing one region under the span ``tag``.

    The enabled/disabled decision is taken at ``__enter__``: when
    telemetry is off the body runs untimed (no clock reads).  A region
    that starts timed but ends after the collector is gone (the
    collecting block exited inside it) is discarded rather than
    attributed to the wrong collector.
    """

    __slots__ = ("tag", "_t0", "_owner")

    def __init__(self, tag: str):
        self.tag = tag
        self._t0 = 0
        self._owner: "Telemetry | None" = None

    def __enter__(self) -> "span":
        owner = ACTIVE
        self._owner = owner
        if owner is not None:
            self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        owner = self._owner
        if owner is not None and ACTIVE is owner:
            owner.observe(self.tag, time.perf_counter_ns() - self._t0)


@contextlib.contextmanager
def collecting(telemetry: "Telemetry | None" = None,
               ) -> Iterator[Telemetry]:
    """Arm telemetry collection for the duration of the context.

    Process-global and non-reentrant, mirroring
    :func:`repro.probes.armed`; pass an existing :class:`Telemetry` to
    accumulate several regions into one collector.
    """
    global ACTIVE
    if ACTIVE is not None:
        raise RuntimeError("telemetry is already being collected")
    t = telemetry if telemetry is not None else Telemetry()
    ACTIVE = t
    try:
        yield t
    finally:
        ACTIVE = None
