"""Telemetry snapshot CLI: capture, diff, gate, export.

Usage::

    python -m repro.telemetry capture [-o BENCH_telemetry.json] [--quick]
    python -m repro.telemetry diff OLD NEW [--max-regression 0.10]
    python -m repro.telemetry coverage FILE
    python -m repro.telemetry export FILE [--format prometheus|json]
    python -m repro.telemetry degrade IN OUT [--factor 0.85]

``capture`` runs the standard workload (:mod:`repro.telemetry.capture`)
and writes the envelope; CI keeps the file as the build's benchmark
artifact.  ``diff`` compares two envelopes' throughput metrics and
exits 1 when any metric dropped past ``--max-regression``; ``coverage``
exits 1 when any :data:`~repro.telemetry.gates.REQUIRED_COVERAGE`
branch was never exercised.  ``degrade`` scales an envelope's metrics
down by ``--factor`` -- a seeded regression for testing the gate
itself.
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import snapshot_from_dict, to_prometheus
from .gates import (REQUIRED_COVERAGE, find_regressions, format_regressions,
                    missing_coverage)

__all__ = ["main"]


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def _dump(env: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(env, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _cmd_capture(args) -> int:
    from .capture import capture_envelope

    env = capture_envelope(label=args.label, quick=args.quick,
                           seed=args.seed)
    _dump(env, args.output)
    n = len(env["snapshot"]["counters"])
    print(f"captured {n} counters, "
          f"{len(env['metrics'])} metrics -> {args.output}")
    for name, val in sorted(env["metrics"].items()):
        print(f"  {name}: {val:.3g} ops/s")
    return 0


def _cmd_diff(args) -> int:
    old, new = _load(args.old), _load(args.new)
    regressions = find_regressions(old, new,
                                   max_regression=args.max_regression)
    shared = sorted(set(old.get("metrics", {}))
                    & set(new.get("metrics", {})))
    if not shared:
        print("no shared metrics to compare", file=sys.stderr)
        return 2
    if regressions:
        print(f"REGRESSION: {len(regressions)} metric(s) dropped more "
              f"than {args.max_regression * 100.0:.0f}%:")
        print(format_regressions(regressions))
        return 1
    print(f"ok: {len(shared)} metric(s) within "
          f"{args.max_regression * 100.0:.0f}% of baseline")
    return 0


def _cmd_coverage(args) -> int:
    env = _load(args.file)
    snap = snapshot_from_dict(env["snapshot"])
    missing = missing_coverage(snap)
    if missing:
        print(f"COVERAGE GATE FAILED: {len(missing)} of "
              f"{len(REQUIRED_COVERAGE)} required datapath branches "
              "never exercised:")
        for tag in missing:
            print(f"  {tag}")
        return 1
    print(f"ok: all {len(REQUIRED_COVERAGE)} required datapath "
          "branches exercised")
    return 0


def _cmd_export(args) -> int:
    env = _load(args.file)
    snap = snapshot_from_dict(env["snapshot"])
    if args.format == "prometheus":
        sys.stdout.write(to_prometheus(snap))
    else:
        json.dump(env["snapshot"], sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    return 0


def _cmd_degrade(args) -> int:
    env = _load(args.input)
    env["metrics"] = {k: v * args.factor
                      for k, v in env.get("metrics", {}).items()}
    env["label"] = (env.get("label", "")
                    + f" [degraded x{args.factor}]").strip()
    _dump(env, args.output)
    print(f"wrote {args.output} with metrics scaled by {args.factor}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Capture, diff, gate and export telemetry "
                    "snapshots of the repro datapaths.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("capture", help="run the standard workload and "
                                       "write a snapshot envelope")
    p.add_argument("-o", "--output", default="BENCH_telemetry.json")
    p.add_argument("--label", default="repro-telemetry")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--quick", action="store_true",
                   help="skip the conformance mini-sweep")
    p.set_defaults(fn=_cmd_capture)

    p = sub.add_parser("diff", help="regression-gate NEW against OLD")
    p.add_argument("old")
    p.add_argument("new")
    p.add_argument("--max-regression", type=float, default=0.10,
                   help="allowed fractional throughput drop "
                        "(default 0.10)")
    p.set_defaults(fn=_cmd_diff)

    p = sub.add_parser("coverage",
                       help="check the required-datapath coverage gate")
    p.add_argument("file")
    p.set_defaults(fn=_cmd_coverage)

    p = sub.add_parser("export", help="print a stored snapshot")
    p.add_argument("file")
    p.add_argument("--format", choices=("json", "prometheus"),
                   default="json")
    p.set_defaults(fn=_cmd_export)

    p = sub.add_parser("degrade",
                       help="scale an envelope's metrics down (seed a "
                            "regression to test the gate)")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--factor", type=float, default=0.85)
    p.set_defaults(fn=_cmd_degrade)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
