"""CDFG functional simulation.

Evaluates a datapath graph on concrete inputs, with two uses:

* **Pass verification** -- the Fig. 12 rewrite must preserve semantics;
  tests simulate a kernel before and after the pass and compare.
* **Hardware-numerics execution** -- FMA nodes can be evaluated through
  the *bit-accurate* PCS/FCS models (via a chain engine), so a whole
  compiled solver kernel runs with exactly the arithmetic the FPGA
  datapath would produce.

:mod:`repro.hls.execute` builds on the same node evaluator to run a
*scheduled* datapath cycle by cycle.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..fma.chain import FmaEngine
from ..fp.ops import fp_add, fp_div, fp_mul, fp_neg, fp_sub
from ..fp.value import FPValue
from .ir import CDFG, Node, OpKind

__all__ = ["simulate", "eval_node"]


def eval_node(graph: CDFG, node: Node, values: dict[int, Any],
              inputs: Mapping[str, float],
              engine: FmaEngine | None) -> Any:
    """Evaluate a single node given its operands\' values."""
    k = node.kind
    if k is OpKind.INPUT:
        if node.name not in inputs:
            raise KeyError(f"missing input {node.name!r}")
        return FPValue.from_float(float(inputs[node.name]))
    if k is OpKind.CONST:
        return FPValue.from_float(float(node.value or 0.0))
    if k is OpKind.ADD:
        return fp_add(values[node.operands[0]], values[node.operands[1]])
    if k is OpKind.SUB:
        return fp_sub(values[node.operands[0]], values[node.operands[1]])
    if k is OpKind.MUL:
        return fp_mul(values[node.operands[0]], values[node.operands[1]])
    if k is OpKind.DIV:
        return fp_div(values[node.operands[0]], values[node.operands[1]])
    if k is OpKind.NEG:
        return fp_neg(values[node.operands[0]])
    if k is OpKind.I2C:
        return _require(engine).lift(values[node.operands[0]])
    if k is OpKind.C2I:
        return _require(engine).lower(values[node.operands[0]])
    if k is OpKind.FMA:
        a = values[node.operands[0]]
        b = values[node.operands[1]]
        c = values[node.operands[2]]
        if node.negate_b:
            b = fp_neg(b)
        return _require(engine).fma(a, b, c)
    if k is OpKind.OUTPUT:
        return values[node.operands[0]]
    raise NotImplementedError(k)  # pragma: no cover


def simulate(graph: CDFG, inputs: Mapping[str, float],
             engine: FmaEngine | None = None, *,
             use_batch: bool = True) -> dict[str, float]:
    """Evaluate the graph; returns output name -> value.

    IEEE nodes use the bit-accurate binary64 operators; FMA/I2C/C2I
    nodes require ``engine`` (a :class:`~repro.fma.chain.FmaEngine`
    matching the FMA flavor the pass inserted).

    ``use_batch`` swaps recognized engines for their bit-identical fast
    twins from :mod:`repro.batch` (set it to ``False`` to force the
    digit-level reference models).
    """
    if use_batch and engine is not None:
        from ..batch import accelerate_engine
        engine = accelerate_engine(engine)
    values: dict[int, Any] = {}
    for nid in graph.topological_order():
        values[nid] = eval_node(graph, graph.nodes[nid], values, inputs,
                                engine)
    return {graph.nodes[nid].name: values[nid].to_float()
            for nid in graph.outputs()}


def _require(engine: FmaEngine | None) -> FmaEngine:
    if engine is None:
        raise ValueError(
            "this graph contains carry-save nodes; pass an FmaEngine "
            "matching the inserted FMA flavor")
    return engine
