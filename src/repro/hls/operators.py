"""Operator library: latency/area of every schedulable operation.

The latencies come straight out of the hardware model of
:mod:`repro.hw`, synthesized for the paper's 200+ MHz constraint on
Virtex-6 (Sec. IV-D: "floating-point operators have been chosen for a
target frequency of 200+ MHz"):

* IEEE multiply: the CoreGen low-latency 5-cycle configuration,
* IEEE add/sub:  the CoreGen low-latency 4-cycle configuration,
* IEEE divide:   a radix-2 SRT pipeline (deep -- divisions live in the
  solver's factorization phase, not in `ldlsolve()`),
* PCS-FMA: 5 cycles,  FCS-FMA: 3 cycles (Table I),
* IEEE->CS converter: cheap (1 cycle),  CS->IEEE: expensive (its full
  normalization pipeline),
* NEG / CONST / IO: free (sign flips and wiring).

Resource constraints model the time-multiplexing of Fig. 15 ("up to 39
time-multiplexed P/FCS-FMA units").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.netlist import (cs_to_ieee_converter, divider_design,
                          ieee_to_cs_converter)
from ..hw.synthesis import synthesize, synthesize_by_name
from ..hw.technology import VIRTEX6, FpgaDevice
from .ir import Node, OpKind

__all__ = ["OperatorSpec", "OperatorLibrary", "default_library"]


@dataclass(frozen=True)
class OperatorSpec:
    """Latency and area of one hardware operator."""

    kind: str
    latency: int
    luts: int = 0
    dsps: int = 0


@dataclass
class OperatorLibrary:
    """Maps CDFG node kinds to operator specs + resource limits.

    ``fma_flavor`` selects which carry-save unit the FMA nodes map to
    (``"pcs"`` or ``"fcs"``); ``fma_limit`` caps how many physical FMA
    units the scheduler may use concurrently (None = unconstrained).
    """

    specs: dict[str, OperatorSpec]
    fma_flavor: str = "pcs"
    fma_limit: int | None = None
    #: per-op-class concurrency limits for the list scheduler
    limits: dict[str, int] = field(default_factory=dict)

    def latency(self, node: Node) -> int:
        return self.spec_for(node).latency

    def spec_for(self, node: Node) -> OperatorSpec:
        key = self.resource_class(node)
        if key is None:
            return OperatorSpec("free", 0)
        return self.specs[key]

    def resource_class(self, node: Node) -> str | None:
        """Which physical operator pool a node occupies (None = wiring)."""
        k = node.kind
        if k in (OpKind.INPUT, OpKind.CONST, OpKind.OUTPUT, OpKind.NEG):
            return None
        if k is OpKind.FMA:
            return f"fma-{self.fma_flavor}"
        if k in (OpKind.ADD, OpKind.SUB):
            return "add"
        if k is OpKind.MUL:
            return "mul"
        if k is OpKind.DIV:
            return "div"
        if k is OpKind.I2C:
            return "i2c"
        if k is OpKind.C2I:
            return "c2i"
        raise KeyError(f"no operator for {k}")

    def limit_for(self, resource: str) -> int | None:
        if resource.startswith("fma"):
            return self.fma_limit
        return self.limits.get(resource)


def default_library(device: FpgaDevice = VIRTEX6,
                    fma_flavor: str = "pcs",
                    fma_limit: int | None = None,
                    target_mhz: float = 200.0) -> OperatorLibrary:
    """Build the operator library from the hardware model."""
    if fma_flavor not in ("pcs", "fcs"):
        raise ValueError("fma_flavor must be 'pcs' or 'fcs'")
    from ..fma.formats import FCS_PARAMS, PCS_PARAMS

    params = PCS_PARAMS if fma_flavor == "pcs" else FCS_PARAMS
    mul = synthesize_by_name("coregen-mul", device, target_mhz)
    add = synthesize_by_name("coregen-add", device, target_mhz)
    fma = synthesize_by_name(f"{fma_flavor}-fma", device, target_mhz)
    div = synthesize(divider_design(device), device, target_mhz)
    i2c = synthesize(ieee_to_cs_converter(device, params), device,
                     target_mhz)
    c2i = synthesize(cs_to_ieee_converter(device, params), device,
                     target_mhz)
    specs = {
        "mul": OperatorSpec("mul", mul.cycles, mul.luts, mul.dsps),
        "div": OperatorSpec("div", div.cycles, div.luts, div.dsps),
        "add": OperatorSpec("add", add.cycles, add.luts, add.dsps),
        f"fma-{fma_flavor}": OperatorSpec(
            f"fma-{fma_flavor}", fma.cycles, fma.luts, fma.dsps),
        "i2c": OperatorSpec("i2c", i2c.cycles, i2c.luts, i2c.dsps),
        "c2i": OperatorSpec("c2i", c2i.cycles, c2i.luts, c2i.dsps),
    }
    return OperatorLibrary(specs, fma_flavor=fma_flavor,
                           fma_limit=fma_limit)
