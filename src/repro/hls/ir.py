"""CDFG intermediate representation of the Nymble-like HLS core.

The paper's compiler pass operates on a scheduled control-data-flow
graph (CDFG, Fig. 1): operation nodes connected by data edges.  We model
the datapath part (the solver kernels are straight-line code after
CVXGEN's unrolling, so control constructs are not needed -- exactly the
situation of the paper's `ldlsolve()` kernels).

Two value types flow along edges: ``ieee`` (binary64 words) and ``cs``
(the P/FCS operand format).  Ordinary operators produce/consume ``ieee``;
the FMA nodes introduced by the Fig. 12 pass consume ``cs`` on their
``A``/``C`` ports and ``ieee`` on ``B``, which is why the pass must
insert :data:`OpKind.I2C` / :data:`OpKind.C2I` converters and why
removing redundant converter pairs matters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["OpKind", "ValueType", "Node", "CDFG", "PortTypeError"]


class PortTypeError(TypeError):
    """An operand edge carries the wrong value format.

    Raised at node-construction time: wiring an IEEE value into a
    carry-save port (or vice versa) is the exact malformation the
    Fig. 12 invariant forbids, so it fails fast instead of producing a
    graph that silently computes garbage.
    """


class ValueType(enum.Enum):
    IEEE = "ieee"
    CS = "cs"


class OpKind(enum.Enum):
    """Operation kinds of the datapath IR."""

    INPUT = "input"
    CONST = "const"
    OUTPUT = "output"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    NEG = "neg"
    FMA = "fma"     # a + b*c  (a, c in CS format; b in IEEE)
    I2C = "i2c"     # IEEE -> CS converter
    C2I = "c2i"     # CS -> IEEE converter


#: operand-port value types per kind (None = same as the node's output)
_PORT_TYPES: dict[OpKind, tuple[ValueType, ...]] = {
    OpKind.ADD: (ValueType.IEEE, ValueType.IEEE),
    OpKind.SUB: (ValueType.IEEE, ValueType.IEEE),
    OpKind.MUL: (ValueType.IEEE, ValueType.IEEE),
    OpKind.DIV: (ValueType.IEEE, ValueType.IEEE),
    OpKind.NEG: (ValueType.IEEE,),
    OpKind.FMA: (ValueType.CS, ValueType.IEEE, ValueType.CS),
    OpKind.I2C: (ValueType.IEEE,),
    OpKind.C2I: (ValueType.CS,),
    OpKind.OUTPUT: (ValueType.IEEE,),
}

_RESULT_TYPES: dict[OpKind, ValueType] = {
    OpKind.INPUT: ValueType.IEEE,
    OpKind.CONST: ValueType.IEEE,
    OpKind.OUTPUT: ValueType.IEEE,
    OpKind.ADD: ValueType.IEEE,
    OpKind.SUB: ValueType.IEEE,
    OpKind.MUL: ValueType.IEEE,
    OpKind.DIV: ValueType.IEEE,
    OpKind.NEG: ValueType.IEEE,
    OpKind.FMA: ValueType.CS,
    OpKind.I2C: ValueType.CS,
    OpKind.C2I: ValueType.IEEE,
}


@dataclass
class Node:
    """One CDFG operation.

    ``operands`` are node ids in port order.  ``negate_b`` on FMA nodes
    flips the sign of the ``B`` port (how the pass absorbs a ``SUB``:
    ``a - b*c == a + (-b)*c``; the sign flip is free in IEEE format).
    """

    id: int
    kind: OpKind
    operands: list[int] = field(default_factory=list)
    name: str = ""
    value: float | None = None      # for CONST nodes
    negate_b: bool = False          # for FMA nodes

    @property
    def result_type(self) -> ValueType:
        return _RESULT_TYPES[self.kind]


class CDFG:
    """A datapath graph: nodes, data edges, and structural queries."""

    def __init__(self) -> None:
        self.nodes: dict[int, Node] = {}
        self._next_id = 0

    # -- construction ----------------------------------------------------

    def _new(self, kind: OpKind, operands: list[int], name: str = "",
             value: float | None = None, negate_b: bool = False) -> int:
        """Create a node, validating operands against ``_PORT_TYPES``.

        Construction is the single choke point for well-typed graphs:
        even callers that bypass :meth:`add_op` cannot create a node
        whose ports read the wrong value format.  (Post-construction
        mutation -- ``rewire`` and friends -- is deliberately
        unchecked; the static verifier in :mod:`repro.analysis` covers
        that.)
        """
        for op in operands:
            if op not in self.nodes:
                raise KeyError(f"operand {op} not in graph")
        ports = _PORT_TYPES.get(kind, ())
        if kind not in (OpKind.INPUT, OpKind.CONST) and \
                len(operands) != len(ports):
            raise ValueError(
                f"{kind.value} takes {len(ports)} operands, "
                f"got {len(operands)}")
        for op, want in zip(operands, ports):
            got = self.nodes[op].result_type
            if got is not want:
                raise PortTypeError(
                    f"{kind.value} port expects {want.value}, operand "
                    f"{op} ({self.nodes[op].kind.value}) produces "
                    f"{got.value}")
        nid = self._next_id
        self._next_id += 1
        self.nodes[nid] = Node(nid, kind, list(operands), name, value,
                               negate_b)
        return nid

    def add_input(self, name: str) -> int:
        return self._new(OpKind.INPUT, [], name)

    def add_const(self, value: float, name: str = "") -> int:
        return self._new(OpKind.CONST, [], name or repr(value), value)

    def add_op(self, kind: OpKind, *operands: int, name: str = "",
               negate_b: bool = False) -> int:
        if kind in (OpKind.INPUT, OpKind.CONST):
            raise ValueError("use add_input/add_const")
        return self._new(kind, list(operands), name, negate_b=negate_b)

    def add_output(self, operand: int, name: str) -> int:
        return self.add_op(OpKind.OUTPUT, operand, name=name)

    # -- structure ---------------------------------------------------------

    def predecessors(self, nid: int) -> list[int]:
        return list(self.nodes[nid].operands)

    def successors(self, nid: int) -> list[int]:
        return [n.id for n in self.nodes.values() if nid in n.operands]

    def consumers(self, nid: int) -> list[tuple[int, int]]:
        """(consumer id, port index) pairs reading ``nid``."""
        out = []
        for n in self.nodes.values():
            for port, op in enumerate(n.operands):
                if op == nid:
                    out.append((n.id, port))
        return out

    def inputs(self) -> list[int]:
        return [n.id for n in self.nodes.values()
                if n.kind is OpKind.INPUT]

    def outputs(self) -> list[int]:
        return [n.id for n in self.nodes.values()
                if n.kind is OpKind.OUTPUT]

    def topological_order(self) -> list[int]:
        """Topologically sorted node ids; raises on cycles."""
        indeg = {nid: 0 for nid in self.nodes}
        succs: dict[int, list[int]] = {nid: [] for nid in self.nodes}
        for n in self.nodes.values():
            for op in n.operands:
                succs[op].append(n.id)
                indeg[n.id] += 1
        ready = sorted(nid for nid, d in indeg.items() if d == 0)
        order: list[int] = []
        while ready:
            nid = ready.pop(0)
            order.append(nid)
            for s in succs[nid]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != len(self.nodes):
            raise ValueError("CDFG contains a cycle")
        return order

    def validate(self) -> None:
        """Check structural invariants: acyclicity and port types."""
        self.topological_order()
        for n in self.nodes.values():
            ports = _PORT_TYPES.get(n.kind, ())
            for op, want in zip(n.operands, ports):
                got = self.nodes[op].result_type
                if got is not want:
                    raise PortTypeError(
                        f"node {n.id} ({n.kind.value}): port type "
                        f"mismatch ({got.value} into {want.value})")

    def op_count(self, kind: OpKind) -> int:
        return sum(1 for n in self.nodes.values() if n.kind is kind)

    def rewire(self, old: int, new: int,
               only: set[int] | None = None) -> None:
        """Redirect consumers of ``old`` to read ``new`` instead."""
        for n in self.nodes.values():
            if only is not None and n.id not in only:
                continue
            n.operands = [new if op == old else op for op in n.operands]

    def remove(self, nid: int) -> None:
        """Remove a node (must have no consumers)."""
        if self.successors(nid):
            raise ValueError(f"node {nid} still has consumers")
        del self.nodes[nid]

    def prune_dead(self) -> int:
        """Remove nodes with no path to an output; returns count."""
        live: set[int] = set()
        work = list(self.outputs())
        while work:
            nid = work.pop()
            if nid in live:
                continue
            live.add(nid)
            work.extend(self.nodes[nid].operands)
        dead = [nid for nid in self.nodes if nid not in live]
        for nid in dead:
            del self.nodes[nid]
        return len(dead)

    # -- debugging ---------------------------------------------------------

    def to_dot(self) -> str:
        """GraphViz dot rendering (operation kinds + value types)."""
        lines = ["digraph cdfg {", "  rankdir=TB;"]
        for n in self.nodes.values():
            label = n.name or n.kind.value
            shape = {"input": "ellipse", "output": "ellipse",
                     "const": "plaintext"}.get(n.kind.value, "box")
            style = ', style=filled, fillcolor="#cde"' \
                if n.kind is OpKind.FMA else ""
            lines.append(
                f'  n{n.id} [label="{label}\\n{n.kind.value}", '
                f'shape={shape}{style}];')
        for n in self.nodes.values():
            for op in n.operands:
                t = self.nodes[op].result_type.value
                lines.append(f'  n{op} -> n{n.id} [label="{t}"];')
        lines.append("}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.nodes)
