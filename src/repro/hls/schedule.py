"""Operation scheduling: ASAP / ALAP and resource-constrained list
scheduling.

The pass of Fig. 12 works on *scheduled* datapaths: it needs start
times to identify the critical path, and it reschedules after every
rewrite.  ``Schedule.length`` is the quantity Fig. 15 reports
("resulting schedule length ... could be reduced by 26.0% to 50.1%").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ir import CDFG
from .operators import OperatorLibrary

__all__ = ["Schedule", "asap_schedule", "alap_schedule", "list_schedule"]


@dataclass
class Schedule:
    """Start times (in cycles) for every node of a CDFG."""

    start: dict[int, int] = field(default_factory=dict)
    graph: CDFG | None = None
    library: OperatorLibrary | None = None

    def finish(self, nid: int) -> int:
        assert self.graph is not None and self.library is not None
        return self.start[nid] + self.library.latency(self.graph.nodes[nid])

    @property
    def length(self) -> int:
        """Schedule length: cycle at which the last result is ready."""
        if not self.start or self.graph is None:
            return 0
        return max(self.finish(nid) for nid in self.start)

    def resource_usage(self) -> dict[str, int]:
        """Peak concurrent occupancy per operator class.

        An operator occupies its unit for its full latency (the units
        are pipelined in hardware, but the paper's Fig. 15 experiment
        *time-multiplexes* a bounded pool of FMA units, so we account
        occupancy conservatively at issue granularity: one issue per
        unit per cycle)."""
        assert self.graph is not None and self.library is not None
        per_cycle: dict[tuple[str, int], int] = {}
        for nid, t in self.start.items():
            res = self.library.resource_class(self.graph.nodes[nid])
            if res is None:
                continue
            per_cycle[(res, t)] = per_cycle.get((res, t), 0) + 1
        peak: dict[str, int] = {}
        for (res, _t), n in per_cycle.items():
            peak[res] = max(peak.get(res, 0), n)
        return peak


def asap_schedule(graph: CDFG, library: OperatorLibrary) -> Schedule:
    """As-soon-as-possible start times (unconstrained resources)."""
    start: dict[int, int] = {}
    for nid in graph.topological_order():
        node = graph.nodes[nid]
        t = 0
        for op in node.operands:
            t = max(t, start[op] + library.latency(graph.nodes[op]))
        start[nid] = t
    return Schedule(start, graph, library)


def alap_schedule(graph: CDFG, library: OperatorLibrary,
                  horizon: int | None = None) -> Schedule:
    """As-late-as-possible start times against a horizon (defaults to
    the ASAP length, giving zero slack on the critical path)."""
    asap = asap_schedule(graph, library)
    if horizon is None:
        horizon = asap.length
    succs: dict[int, list[int]] = {nid: [] for nid in graph.nodes}
    for n in graph.nodes.values():
        for op in n.operands:
            succs[op].append(n.id)
    start: dict[int, int] = {}
    for nid in reversed(graph.topological_order()):
        node = graph.nodes[nid]
        lat = library.latency(node)
        if not succs[nid]:
            start[nid] = horizon - lat
        else:
            start[nid] = min(start[s] for s in succs[nid]) - lat
    return Schedule(start, graph, library)


def list_schedule(graph: CDFG, library: OperatorLibrary) -> Schedule:
    """Resource-constrained list scheduling.

    Ready operations are issued in slack order (most critical first);
    an operation class with a unit limit (e.g. ``fma_limit`` modeling
    the paper's up-to-39 time-multiplexed FMA units) admits at most that
    many *issues per cycle* -- the pipelined units accept one new
    operation per cycle each.
    """
    import heapq

    asap = asap_schedule(graph, library)
    alap = alap_schedule(graph, library, asap.length)
    slack = {nid: alap.start[nid] - asap.start[nid] for nid in graph.nodes}

    succs: dict[int, list[int]] = {nid: [] for nid in graph.nodes}
    remaining: dict[int, int] = {}
    for n in graph.nodes.values():
        remaining[n.id] = len(n.operands)
        for op in n.operands:
            succs[op].append(n.id)

    # event-driven readiness: a min-heap keyed by (slack, id) holds the
    # currently issueable nodes; completion events feed it
    ready: list[tuple[int, int]] = [
        (slack[nid], nid) for nid, cnt in remaining.items() if cnt == 0]
    heapq.heapify(ready)
    becomes_ready: dict[int, list[int]] = {}
    earliest: dict[int, int] = {}
    start: dict[int, int] = {}
    scheduled = 0
    cycle = 0
    while scheduled < len(graph.nodes):
        for nid in becomes_ready.pop(cycle, ()):
            heapq.heappush(ready, (slack[nid], nid))
        deferred: list[tuple[int, int]] = []
        used: dict[str, int] = {}
        while ready:
            s, nid = heapq.heappop(ready)
            node = graph.nodes[nid]
            res = library.resource_class(node)
            if res is not None:
                limit = library.limit_for(res)
                if limit is not None and used.get(res, 0) >= limit:
                    deferred.append((s, nid))
                    continue
                used[res] = used.get(res, 0) + 1
            start[nid] = cycle
            scheduled += 1
            done = cycle + library.latency(node)
            for succ in succs[nid]:
                remaining[succ] -= 1
                # a successor is ready at the max finish over *all* its
                # operands, not at the finish of the last-counted one
                earliest[succ] = max(earliest.get(succ, 0), done)
                if remaining[succ] == 0:
                    when = earliest[succ]
                    if when <= cycle:
                        heapq.heappush(ready, (slack[succ], succ))
                    else:
                        becomes_ready.setdefault(when, []).append(succ)
        for item in deferred:
            heapq.heappush(ready, item)
        if not ready and not becomes_ready and scheduled < len(graph.nodes):
            raise RuntimeError(
                "list scheduler stalled (cyclic graph?)")  # pragma: no cover
        if becomes_ready and not ready:
            cycle = min(becomes_ready)      # jump over idle cycles
        else:
            cycle += 1
    return Schedule(start, graph, library)
