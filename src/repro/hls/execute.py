"""Cycle-accurate execution of a scheduled datapath.

A :class:`~repro.hls.schedule.Schedule` claims that the datapath
finishes in ``length`` cycles under the operator latencies and resource
limits; this module *runs* it, cycle by cycle, verifying the claim:

* every operation issues exactly at its scheduled start cycle,
* its operands' producing operations have finished by then
  (dependence legality),
* no cycle issues more operations of a class than the unit pool allows
  (resource legality -- the "up to 39 time-multiplexed FMA units" of
  Sec. IV-D),

while computing real values through the same bit-accurate evaluators as
:func:`repro.hls.simulate.simulate`.  The result carries the outputs,
the cycle count, and a per-cycle issue trace (useful for visualizing
the Fig. 15 schedules).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..fma.chain import FmaEngine
from .ir import CDFG, OpKind
from .operators import OperatorLibrary
from .schedule import Schedule
from .simulate import eval_node

__all__ = ["ExecutionResult", "ScheduleViolation", "execute_schedule"]


class ScheduleViolation(RuntimeError):
    """A schedule broke a dependence or resource constraint."""


@dataclass
class ExecutionResult:
    """Outcome of executing a schedule."""

    outputs: dict[str, float]
    cycles: int
    issues_per_cycle: dict[int, list[int]] = field(default_factory=dict)
    peak_usage: dict[str, int] = field(default_factory=dict)

    def busiest_cycle(self) -> int:
        if not self.issues_per_cycle:
            return 0
        return max(self.issues_per_cycle,
                   key=lambda t: len(self.issues_per_cycle[t]))


def execute_schedule(graph: CDFG, schedule: Schedule,
                     library: OperatorLibrary,
                     inputs: Mapping[str, float],
                     engine: FmaEngine | None = None, *,
                     use_batch: bool = True) -> ExecutionResult:
    """Run a scheduled datapath cycle by cycle.

    Raises :class:`ScheduleViolation` if an operation issues before its
    operands are ready or a resource pool is oversubscribed in a cycle.

    ``use_batch`` swaps recognized engines for their bit-identical fast
    twins from :mod:`repro.batch`, as in :func:`repro.hls.simulate`.
    """
    if use_batch and engine is not None:
        from ..batch import accelerate_engine
        engine = accelerate_engine(engine)
    if schedule.graph is not graph:
        raise ValueError("schedule does not belong to this graph")
    missing = set(graph.nodes) - set(schedule.start)
    if missing:
        raise ScheduleViolation(f"unscheduled nodes: {sorted(missing)}")

    by_cycle: dict[int, list[int]] = {}
    for nid, t in schedule.start.items():
        by_cycle.setdefault(t, []).append(nid)

    finish: dict[int, int] = {
        nid: schedule.start[nid] + library.latency(graph.nodes[nid])
        for nid in graph.nodes}

    values: dict[int, Any] = {}
    peak: dict[str, int] = {}
    total_cycles = max(finish.values(), default=0)
    for cycle in sorted(by_cycle):
        usage: dict[str, int] = {}
        for nid in sorted(by_cycle[cycle]):
            node = graph.nodes[nid]
            # dependence legality
            for op in node.operands:
                if finish[op] > cycle:
                    raise ScheduleViolation(
                        f"node {nid} ({node.kind.value}) issues at cycle "
                        f"{cycle} but operand {op} finishes at "
                        f"{finish[op]}")
            # resource legality (one issue per unit per cycle:
            # the operators are pipelined)
            res = library.resource_class(node)
            if res is not None:
                usage[res] = usage.get(res, 0) + 1
                limit = library.limit_for(res)
                if limit is not None and usage[res] > limit:
                    raise ScheduleViolation(
                        f"cycle {cycle}: {usage[res]} issues on "
                        f"{res!r} exceed the {limit}-unit pool")
            values[nid] = eval_node(graph, node, values, inputs, engine)
        for res, n in usage.items():
            peak[res] = max(peak.get(res, 0), n)

    outputs = {graph.nodes[nid].name: values[nid].to_float()
               for nid in graph.outputs()}
    return ExecutionResult(outputs, total_cycles, by_cycle, peak)


def format_issue_trace(result: ExecutionResult, graph: CDFG,
                       max_cycles: int = 40) -> str:
    """Human-readable per-cycle issue listing (for examples/debugging)."""
    lines = [f"{result.cycles} cycles, peak usage {result.peak_usage}"]
    for t in sorted(result.issues_per_cycle)[:max_cycles]:
        ops = [graph.nodes[nid].kind.value
               for nid in result.issues_per_cycle[t]
               if graph.nodes[nid].kind not in (OpKind.INPUT,
                                                OpKind.CONST,
                                                OpKind.OUTPUT)]
        if ops:
            lines.append(f"  cycle {t:4d}: " + " ".join(ops))
    return "\n".join(lines)


__all__.append("format_issue_trace")
