"""A small C-like frontend for the HLS core.

Parses straight-line assignment code of the kind CVXGEN emits (and the
paper's Listing 1)::

    x[1] = a*b + c*d;
    x[2] = e*f + g*x[1];
    x[3] = h*i + k*x[2];

into a :class:`~repro.hls.ir.CDFG`.  Supported: identifiers (with
``[...]`` index suffixes, folded into the name), float literals, unary
minus, ``+ - * /``, parentheses, and ``;``-terminated assignments.  Every
name read before being assigned becomes an INPUT; every assigned name
that is still live at the end (or listed in ``outputs``) becomes an
OUTPUT.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .ir import CDFG, OpKind

__all__ = ["parse_program", "ParseError", "expand_loops"]


# ---------------------------------------------------------------------------
# loop unrolling pre-pass
# ---------------------------------------------------------------------------

_FOR_RE = re.compile(
    r"for\s*\(\s*(?P<var>[A-Za-z_]\w*)\s*=\s*(?P<start>-?\d+)\s*;"
    r"\s*(?P=var)\s*<\s*(?P<end>-?\d+)\s*;"
    r"\s*(?:(?P=var)\s*\+\+|(?P=var)\s*=\s*(?P=var)\s*\+\s*"
    r"(?P<step>\d+))\s*\)\s*\{")

_IDX_RE = re.compile(r"\[([^\[\]]*)\]")


def _safe_int_eval(expr: str, env: dict[str, int]) -> int:
    """Evaluate a tiny integer expression (index arithmetic)."""
    if not re.fullmatch(r"[\w\s+\-*/()%]*", expr):
        raise ParseError(f"unsupported index expression {expr!r}")
    try:
        value = eval(expr, {"__builtins__": {}}, dict(env))  # noqa: S307
    except Exception as exc:
        raise ParseError(f"cannot evaluate index {expr!r}: {exc}") from exc
    if not isinstance(value, int):
        raise ParseError(f"index {expr!r} is not an integer")
    return value


def _substitute(body: str, env: dict[str, int]) -> str:
    """Resolve index expressions and bare loop variables in a body.

    Indices that still reference not-yet-bound inner loop variables are
    left untouched; the recursive expansion of the inner loop resolves
    them."""
    def idx(m: re.Match) -> str:
        try:
            return f"[{_safe_int_eval(m.group(1), env)}]"
        except ParseError as exc:
            if "is not defined" in str(exc):
                return m.group(0)
            raise

    out = _IDX_RE.sub(idx, body)
    for var, value in env.items():
        out = re.sub(rf"\b{re.escape(var)}\b", str(value), out)
    return out


def _find_matching_brace(src: str, open_pos: int) -> int:
    depth = 0
    for i in range(open_pos, len(src)):
        if src[i] == "{":
            depth += 1
        elif src[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    raise ParseError("unbalanced braces in for loop")


def expand_loops(src: str, env: dict[str, int] | None = None) -> str:
    """Fully unroll C-style counted loops (HLS-style static unrolling).

    Supports ``for (i = a; i < b; i++)`` / ``i = i + k`` headers with
    literal bounds, nesting, index arithmetic on loop variables inside
    ``[...]``, and bare uses of the loop variable as a value.  Loops are
    unrolled textually before parsing -- the datapath IR stays pure
    straight-line code, exactly how Nymble/CVXGEN-style flows treat
    fixed-trip-count kernels.
    """
    env = dict(env or {})
    while True:
        m = _FOR_RE.search(src)
        if m is None:
            break
        brace_open = src.index("{", m.start())
        brace_close = _find_matching_brace(src, brace_open)
        body = src[brace_open + 1:brace_close]
        var = m.group("var")
        start = int(m.group("start"))
        end = int(m.group("end"))
        step = int(m.group("step") or 1)
        if step <= 0:
            raise ParseError("loop step must be positive")
        pieces = []
        for value in range(start, end, step):
            iter_env = {**env, var: value}
            pieces.append(expand_loops(_substitute(body, iter_env),
                                       iter_env))
        src = src[:m.start()] + "\n".join(pieces) + src[brace_close + 1:]
    return src


class ParseError(ValueError):
    """Raised on malformed source."""


_TOKEN_RE = re.compile(r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<num>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+)
  | (?P<name>[A-Za-z_]\w*(?:\[[^\]]*\])*)
  | (?P<op>[+\-*/=();])
  | (?P<ws>\s+)
""", re.VERBOSE | re.DOTALL)


@dataclass
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(src: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(src):
        m = _TOKEN_RE.match(src, pos)
        if not m:
            raise ParseError(f"unexpected character {src[pos]!r} at "
                             f"offset {pos}")
        kind = m.lastgroup or ""
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, m.group(), pos))
        pos = m.end()
    return tokens


class _Parser:
    """Recursive-descent parser building the CDFG on the fly."""

    def __init__(self, tokens: list[_Token]):
        self.tokens = tokens
        self.i = 0
        self.graph = CDFG()
        self.env: dict[str, int] = {}       # name -> producing node
        self.assigned: list[str] = []

    # -- token helpers ---------------------------------------------------

    def _peek(self) -> _Token | None:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def _next(self) -> _Token:
        t = self._peek()
        if t is None:
            raise ParseError("unexpected end of input")
        self.i += 1
        return t

    def _expect(self, text: str) -> None:
        t = self._next()
        if t.text != text:
            raise ParseError(f"expected {text!r}, got {t.text!r} at "
                             f"offset {t.pos}")

    # -- grammar ------------------------------------------------------------

    def parse(self) -> None:
        while self._peek() is not None:
            self._statement()

    def _statement(self) -> None:
        target = self._next()
        if target.kind != "name":
            raise ParseError(f"expected assignment target at offset "
                             f"{target.pos}, got {target.text!r}")
        self._expect("=")
        value = self._expr()
        self._expect(";")
        self.env[target.text] = value
        self.assigned.append(target.text)

    def _expr(self) -> int:
        """expr := term (('+'|'-') term)*"""
        node = self._term()
        while (t := self._peek()) is not None and t.text in "+-":
            self._next()
            rhs = self._term()
            kind = OpKind.ADD if t.text == "+" else OpKind.SUB
            node = self.graph.add_op(kind, node, rhs)
        return node

    def _term(self) -> int:
        """term := factor (('*'|'/') factor)*"""
        node = self._factor()
        while (t := self._peek()) is not None and t.text in "*/":
            self._next()
            rhs = self._factor()
            kind = OpKind.MUL if t.text == "*" else OpKind.DIV
            node = self.graph.add_op(kind, node, rhs)
        return node

    def _factor(self) -> int:
        t = self._next()
        if t.text == "(":
            node = self._expr()
            self._expect(")")
            return node
        if t.text == "-":
            return self.graph.add_op(OpKind.NEG, self._factor())
        if t.kind == "num":
            return self.graph.add_const(float(t.text), t.text)
        if t.kind == "name":
            if t.text not in self.env:
                self.env[t.text] = self.graph.add_input(t.text)
            return self.env[t.text]
        raise ParseError(f"unexpected token {t.text!r} at offset {t.pos}")


def parse_program(src: str,
                  outputs: list[str] | None = None) -> CDFG:
    """Parse straight-line C-like source into a CDFG.

    ``outputs`` selects which assigned names become OUTPUT nodes; by
    default every name whose value is not consumed by a later statement
    (the live-out set) is emitted.
    """
    p = _Parser(_tokenize(expand_loops(src)))
    p.parse()
    if not p.assigned:
        raise ParseError("program contains no assignments")
    if outputs is None:
        # live-out: assigned names whose final value has no consumer
        outputs = [name for name in dict.fromkeys(p.assigned)
                   if not p.graph.successors(p.env[name])]
        if not outputs:
            outputs = [p.assigned[-1]]
    for name in outputs:
        if name not in p.env:
            raise ParseError(f"requested output {name!r} was never "
                             "assigned")
        p.graph.add_output(p.env[name], name)
    p.graph.prune_dead()
    p.graph.validate()
    return p.graph
