"""Critical-path analysis of scheduled CDFGs (Fig. 1).

The Fig. 12 pass replaces multiply/add pairs *on the critical path*; a
node is critical when its slack -- the difference between its ALAP and
ASAP start times -- is zero.
"""

from __future__ import annotations

from .ir import CDFG
from .operators import OperatorLibrary
from .schedule import alap_schedule, asap_schedule

__all__ = ["critical_path_length", "node_slack", "critical_nodes",
           "longest_path_nodes"]


def critical_path_length(graph: CDFG, library: OperatorLibrary) -> int:
    """Latency (cycles) of the longest dependence chain."""
    return asap_schedule(graph, library).length


def node_slack(graph: CDFG, library: OperatorLibrary) -> dict[int, int]:
    """Slack per node: 0 means the node is on a critical path."""
    asap = asap_schedule(graph, library)
    alap = alap_schedule(graph, library, asap.length)
    return {nid: alap.start[nid] - asap.start[nid] for nid in graph.nodes}


def critical_nodes(graph: CDFG, library: OperatorLibrary) -> set[int]:
    """All nodes with zero slack (the bold red path of Fig. 1)."""
    return {nid for nid, s in node_slack(graph, library).items() if s == 0}


def longest_path_nodes(graph: CDFG, library: OperatorLibrary) -> list[int]:
    """One concrete longest dependence chain, in execution order."""
    asap = asap_schedule(graph, library)
    # walk back from the sink with the latest finish time
    end = max(asap.start, key=lambda nid: asap.finish(nid))
    path = [end]
    cur = end
    while graph.nodes[cur].operands:
        ops = graph.nodes[cur].operands
        pred = max(ops, key=lambda op: asap.finish(op))
        if asap.finish(pred) != asap.start[cur]:
            break  # remaining predecessors are not on the chain
        path.append(pred)
        cur = pred
    return list(reversed(path))
