"""The automatic FMA-insertion compiler pass (Sec. III-I, Fig. 12).

The datapath is first assembled from IEEE 754 operators and scheduled
(Fig. 12a).  Then, repeatedly:

1. the graph is searched for multiply -> add/sub pairs on the critical
   path (zero slack);
2. every such pair is greedily replaced by an FMA node surrounded by the
   required IEEE <-> CS converters (Fig. 12b);
3. redundant conversion pairs between chained FMA units are removed
   (``i2c(c2i(x)) -> x``, Fig. 12c);
4. the datapath is rescheduled, and the procedure repeats until no
   further insertion can be performed.

Subtractions fold into the FMA for free: ``a - b*c = a + (-b)*c`` sets
the FMA's ``negate_b`` flag, and ``b*c - a`` negates the addend (sign
manipulation costs nothing in either operand format).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .critical_path import node_slack
from .ir import CDFG, OpKind
from .operators import OperatorLibrary
from .schedule import asap_schedule

__all__ = ["FmaPassReport", "FmaPassVerificationError",
           "run_fma_insertion"]


class FmaPassVerificationError(RuntimeError):
    """The pass emitted a graph that fails the CS format-flow check.

    The Fig. 12 invariant -- carry-save values only between fused
    operators, reconverted before any ordinary operator or output --
    is re-proved after every run by the static verifier
    (:mod:`repro.analysis.format_flow`).  A failure here means the
    pass itself is buggy; the offending diagnostics ride along in
    :attr:`report`.
    """

    def __init__(self, report) -> None:
        lines = [d.format() for d in report.diagnostics]
        super().__init__(
            "FMA-insertion pass produced a malformed graph:\n  "
            + "\n  ".join(lines))
        self.report = report


@dataclass
class FmaPassReport:
    """What the pass did, and what it bought (the Fig. 15 metric)."""

    baseline_length: int
    final_length: int
    iterations: int = 0
    fma_inserted: int = 0
    converters_removed: int = 0
    fma_per_round: list[int] = field(default_factory=list)

    @property
    def reduction_percent(self) -> float:
        if self.baseline_length == 0:
            return 0.0
        return 100.0 * (self.baseline_length - self.final_length) \
            / self.baseline_length


def _find_critical_pairs(graph: CDFG, slack: dict[int, int],
                         slack_threshold: int = 0,
                         ) -> list[tuple[int, int, int]]:
    """(add_id, mul_id, mul_port) for critical multiply->add/sub pairs.

    The add/sub must lie on the critical path (slack at most
    ``slack_threshold``; the paper's Fig. 12 criterion is 0); the
    multiplier only needs to feed the add exclusively -- fusing helps
    even when the product itself has timing slack, because the fused
    unit removes the adder (and its conversions) from the chain.  When
    both operands are single-use multiplies, the one with less slack is
    fused (the other product stays discrete and feeds the A port).
    """
    pairs: list[tuple[int, int, int]] = []
    taken: set[int] = set()
    for nid in graph.topological_order():
        node = graph.nodes[nid]
        if node.kind not in (OpKind.ADD, OpKind.SUB) or \
                slack[nid] > slack_threshold:
            continue
        candidates = []
        for port, op in enumerate(node.operands):
            pred = graph.nodes[op]
            if pred.kind is not OpKind.MUL:
                continue
            if op in taken or len(graph.consumers(op)) != 1:
                continue
            candidates.append((slack[op], port, op))
        if candidates:
            candidates.sort()
            _s, port, op = candidates[0]
            pairs.append((nid, op, port))
            taken.add(op)
            taken.add(nid)
    return pairs


def _replace_pair(graph: CDFG, library: OperatorLibrary, add_id: int,
                  mul_id: int, mul_port: int,
                  ready_at: dict[int, int]) -> int:
    """Rewrite one add/sub + mul pair into FMA + converters.

    ``ready_at`` caches the round-start ASAP finish times; nodes created
    during the round (converted-back FMA results) are treated as
    latest-ready so chains fuse through them.  Returns the new FMA node.
    """
    add_node = graph.nodes[add_id]
    mul_node = graph.nodes[mul_id]
    other_port = 1 - mul_port
    addend = add_node.operands[other_port]

    negate_b = False
    if add_node.kind is OpKind.SUB:
        if mul_port == 1:
            # a - b*c  ->  a + (-b)*c
            negate_b = True
        else:
            # b*c - a  ->  (-a) + b*c
            addend = graph.add_op(OpKind.NEG, addend)

    # pick the C (carry-save) input of the multiplier: the operand that
    # becomes ready later is the chain-critical one; ties prefer a
    # converted-back FMA result so the cleanup can fuse the chain
    late = 1 << 30
    m_ops = mul_node.operands
    readiness = []
    for op in m_ops:
        r = ready_at.get(op, late)
        if graph.nodes[op].kind is OpKind.C2I:
            r = max(r + 1, late)  # prefer chaining via FMA results
        readiness.append(r)
    c_idx = 0 if readiness[0] >= readiness[1] else 1
    c_op = m_ops[c_idx]
    b_op = m_ops[1 - c_idx]

    a_cs = graph.add_op(OpKind.I2C, addend)
    c_cs = graph.add_op(OpKind.I2C, c_op)
    fma = graph.add_op(OpKind.FMA, a_cs, b_op, c_cs,
                       name=add_node.name or "fma", negate_b=negate_b)
    out = graph.add_op(OpKind.C2I, fma)

    consumers = {cid for cid, _ in graph.consumers(add_id)}
    graph.rewire(add_id, out, only=consumers)
    graph.remove(add_id)
    graph.remove(mul_id)
    return fma


def _remove_redundant_converters(graph: CDFG) -> int:
    """Fig. 12c: collapse ``i2c(c2i(x))`` chains so CS values flow
    directly between FMA units; drop dead converters."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for nid in list(graph.nodes):
            node = graph.nodes.get(nid)
            if node is None or node.kind is not OpKind.I2C:
                continue
            src = graph.nodes[node.operands[0]]
            if src.kind is OpKind.C2I:
                graph.rewire(nid, src.operands[0])
                graph.remove(nid)
                removed += 1
                changed = True
        # dead C2I nodes (their only consumers were removed I2Cs)
        fanout: dict[int, int] = {nid: 0 for nid in graph.nodes}
        for n in graph.nodes.values():
            for op in n.operands:
                fanout[op] += 1
        for nid in list(graph.nodes):
            node = graph.nodes.get(nid)
            if node is not None and node.kind is OpKind.C2I and \
                    fanout[nid] == 0:
                graph.remove(nid)
                removed += 1
                changed = True
    return removed


def run_fma_insertion(graph: CDFG, library: OperatorLibrary,
                      max_rounds: int = 64,
                      slack_threshold: int = 0) -> FmaPassReport:
    """Run the Fig. 12 pass to fixpoint on ``graph`` (in place).

    ``slack_threshold`` widens the fusion criterion: pairs whose
    add/sub has at most that much timing slack are fused (0 = the
    paper's strictly-critical-path rule).  After the fixpoint the
    emitted graph is re-proved against the CS format-flow invariant;
    a violation raises :class:`FmaPassVerificationError` -- the pass
    never hands a malformed datapath to the scheduler or simulator.
    """
    report = FmaPassReport(
        baseline_length=asap_schedule(graph, library).length,
        final_length=0,
    )
    for _ in range(max_rounds):
        slack = node_slack(graph, library)
        pairs = _find_critical_pairs(graph, slack, slack_threshold)
        if not pairs:
            break
        report.iterations += 1
        inserted = 0
        round_asap = asap_schedule(graph, library)
        ready_at = {nid: round_asap.finish(nid)
                    for nid in round_asap.start}
        for add_id, mul_id, mul_port in pairs:
            # earlier replacements in this round may have consumed nodes
            if add_id not in graph.nodes or mul_id not in graph.nodes:
                continue
            if graph.nodes[mul_id].kind is not OpKind.MUL:
                continue
            if mul_id not in graph.nodes[add_id].operands:
                continue
            _replace_pair(graph, library, add_id, mul_id, mul_port,
                          ready_at)
            inserted += 1
        report.fma_inserted += inserted
        report.fma_per_round.append(inserted)
        report.converters_removed += _remove_redundant_converters(graph)
        graph.prune_dead()
        if inserted == 0:  # pragma: no cover - defensive
            break
    # mandatory post-pass self-check: prove the Fig. 12 invariant on
    # the graph we are about to hand to the scheduler (imported lazily;
    # repro.analysis depends on this package)
    from ..analysis.format_flow import verify_format_flow

    verification = verify_format_flow(graph, target="fma-pass")
    if not verification.ok:
        raise FmaPassVerificationError(verification)
    report.final_length = asap_schedule(graph, library).length
    return report
