"""Nymble-like HLS core: CDFG IR, C-like frontend, scheduling, and the
automatic FMA-insertion pass of Sec. III-I / Fig. 12."""

from .critical_path import (critical_nodes, critical_path_length,
                            longest_path_nodes, node_slack)
from .execute import (ExecutionResult, ScheduleViolation,
                      execute_schedule, format_issue_trace)
from .fma_pass import (FmaPassReport, FmaPassVerificationError,
                       run_fma_insertion)
from .frontend import ParseError, parse_program
from .ir import CDFG, Node, OpKind, PortTypeError, ValueType
from .operators import OperatorLibrary, OperatorSpec, default_library
from .schedule import Schedule, alap_schedule, asap_schedule, list_schedule
from .simulate import eval_node, simulate

__all__ = [
    "CDFG", "Node", "OpKind", "ValueType", "PortTypeError",
    "parse_program", "ParseError",
    "OperatorLibrary", "OperatorSpec", "default_library",
    "Schedule", "asap_schedule", "alap_schedule", "list_schedule",
    "critical_path_length", "node_slack", "critical_nodes",
    "longest_path_nodes",
    "FmaPassReport", "FmaPassVerificationError", "run_fma_insertion",
    "simulate", "eval_node",
    "ExecutionResult", "ScheduleViolation", "execute_schedule",
    "format_issue_trace",
]
