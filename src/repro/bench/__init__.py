"""Benchmark aggregation: merge ``BENCH_*.json`` artifacts and gate
against a committed baseline.

The benchmark gates (``benchmarks/test_*_throughput.py``) each archive
their measurements to a schema-versioned ``BENCH_<name>.json``.  This
package folds every such artifact in a directory into one
``BENCH_summary.json`` and compares the flattened numeric metrics
against ``benchmarks/BENCH_baseline.json``:

* only metrics **listed in the baseline** are gated -- raw wall times
  drift with the host, so the baseline pins the ratios (speedups,
  uplifts, overhead bounds) that the benchmark gates themselves
  enforce, keeping one source of truth for "how fast is fast enough";
* a gated metric regresses when it is worse than the baseline value by
  more than the metric's ``tolerance`` (fractional; default 10%);
  ``higher_is_better`` selects the direction.

``python -m repro.bench`` exits non-zero when any gated metric
regressed, so CI can fail the job on the summary alone.
"""

from __future__ import annotations

import json
import os

__all__ = ["DEFAULT_TOLERANCE", "SUMMARY_SCHEMA", "BASELINE_SCHEMA",
           "collect_artifacts", "flatten_metrics", "load_baseline",
           "build_summary"]

SUMMARY_SCHEMA = "repro.bench.summary/1"
BASELINE_SCHEMA = "repro.bench.baseline/1"

#: fractional slack applied when a baseline entry carries none.
DEFAULT_TOLERANCE = 0.10

#: artifacts that are outputs of this tool (or its input gate), never
#: inputs to it.
_EXCLUDE = {"BENCH_summary.json", "BENCH_baseline.json"}


def collect_artifacts(directory: str) -> "dict[str, dict]":
    """``{prefix: parsed_doc}`` for every ``BENCH_*.json`` in
    ``directory`` (non-recursive); the prefix is the file stem with the
    ``BENCH_`` marker stripped (``BENCH_vector.json`` -> ``vector``).
    Unreadable or non-object artifacts are skipped with a warning entry
    rather than failing the aggregation."""
    found: dict[str, dict] = {}
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return found
    for name in names:
        if (not name.startswith("BENCH_") or not name.endswith(".json")
                or name in _EXCLUDE):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            found[name[len("BENCH_"):-len(".json")]] = {
                "error": f"{type(exc).__name__}: {exc}"}
            continue
        if isinstance(doc, dict):
            found[name[len("BENCH_"):-len(".json")]] = doc
    return found


def flatten_metrics(doc: dict, prefix: str = "") -> "dict[str, float]":
    """Numeric leaves of ``doc`` as ``{dotted.path: value}``.

    Booleans and strings are not metrics; lists are indexed by
    position.  The ``schema`` / ``generated_at`` bookkeeping keys are
    skipped at the top level."""
    out: dict[str, float] = {}
    skip = {"schema", "generated_at"} if not prefix else set()
    items: "list[tuple[str, object]]"
    if isinstance(doc, dict):
        items = [(k, v) for k, v in doc.items() if k not in skip]
    else:
        items = [(str(i), v) for i, v in enumerate(doc)]
    for key, value in items:
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[path] = float(value)
        elif isinstance(value, (dict, list)):
            out.update(flatten_metrics(value, path))
    return out


def load_baseline(path: str) -> dict:
    """Parse and validate the committed baseline document."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{path}: expected schema {BASELINE_SCHEMA!r}, "
                         f"got {doc.get('schema')!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError(f"{path}: missing 'metrics' object")
    for name, spec in metrics.items():
        if not isinstance(spec, dict) or "value" not in spec:
            raise ValueError(f"{path}: metric {name!r} needs a 'value'")
    return doc


def _compare(value: float, spec: dict) -> "tuple[float, bool]":
    """``(delta_pct, regressed)`` of ``value`` against one baseline
    entry.  ``delta_pct`` is signed so that positive always means
    *better than baseline*."""
    base = float(spec["value"])
    higher = bool(spec.get("higher_is_better", True))
    tol = float(spec.get("tolerance", DEFAULT_TOLERANCE))
    if base == 0.0:
        return 0.0, False
    rel = (value - base) / abs(base)
    delta_pct = 100.0 * (rel if higher else -rel)
    return delta_pct, delta_pct < -100.0 * tol


def build_summary(directory: str, baseline_path: "str | None" = None,
                  ) -> dict:
    """Aggregate a directory of artifacts into the summary document.

    The summary's ``regressions`` list is empty when every gated metric
    is within tolerance; missing gated metrics (benchmark not run in
    this pass) are reported under ``missing`` but do not regress --
    partial runs are routine locally."""
    artifacts = collect_artifacts(directory)
    metrics: dict[str, float] = {}
    for prefix, doc in artifacts.items():
        metrics.update(flatten_metrics(doc, prefix))

    summary = {
        "schema": SUMMARY_SCHEMA,
        "sources": {p: doc.get("schema", "unknown")
                    for p, doc in artifacts.items()},
        "metrics": {k: metrics[k] for k in sorted(metrics)},
        "deltas": {},
        "missing": [],
        "regressions": [],
    }
    if baseline_path is None:
        return summary

    baseline = load_baseline(baseline_path)
    for name in sorted(baseline["metrics"]):
        spec = baseline["metrics"][name]
        if name not in metrics:
            summary["missing"].append(name)
            continue
        delta_pct, regressed = _compare(metrics[name], spec)
        summary["deltas"][name] = {
            "value": metrics[name],
            "baseline": float(spec["value"]),
            "delta_pct": round(delta_pct, 2),
            "regressed": regressed,
        }
        if regressed:
            summary["regressions"].append(name)
    return summary
