"""CLI for benchmark aggregation: ``python -m repro.bench``.

Merges every ``BENCH_*.json`` in a directory into
``BENCH_summary.json`` and gates the flattened metrics against the
committed baseline (see :mod:`repro.bench`).

Exit status: 0 when no gated metric regressed, 1 on regression, 2 on
bad arguments / unreadable baseline.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import build_summary

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Merge BENCH_*.json benchmark artifacts into a "
                    "summary and gate against the committed baseline.")
    ap.add_argument("--dir", default=".",
                    help="directory holding BENCH_*.json (default: .)")
    ap.add_argument("--baseline", default="benchmarks/BENCH_baseline.json",
                    help="baseline document; pass 'none' to skip gating")
    ap.add_argument("--out", default="BENCH_summary.json",
                    help="summary output path (default BENCH_summary.json)")
    return ap


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    baseline = None if args.baseline.lower() == "none" else args.baseline
    try:
        summary = build_summary(args.dir, baseline)
    except (OSError, ValueError) as exc:
        print(f"repro.bench: {exc}", file=sys.stderr)
        return 2

    with open(args.out, "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")

    n = len(summary["metrics"])
    print(f"repro.bench: {n} metric(s) from "
          f"{len(summary['sources'])} artifact(s) -> {args.out}")
    for name, d in summary["deltas"].items():
        mark = "REGRESSED" if d["regressed"] else "ok"
        print(f"  {name}: {d['value']:g} vs baseline {d['baseline']:g} "
              f"({d['delta_pct']:+.1f}%) {mark}")
    for name in summary["missing"]:
        print(f"  {name}: not measured in this pass (skipped)")
    if summary["regressions"]:
        print(f"repro.bench: {len(summary['regressions'])} gated "
              f"metric(s) regressed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
