"""Command-line driver: regenerate every table and figure of the paper.

Usage::

    repro-experiments                      # run everything, sequentially
    repro-experiments table1 fig14
    repro-experiments --workers 4          # experiments in parallel
    repro-experiments --cache-dir .cache   # reuse unchanged results
    python -m repro.experiments.runner fig15

The driver shares the conformance subsystem's machinery
(:mod:`repro.conformance`): with ``--workers > 1`` experiments fan out
across the same ``ProcessPoolExecutor`` pattern the conformance sweep
uses, and with ``--cache-dir`` each experiment's output is stored in the
same content-hash :class:`~repro.conformance.cache.ResultCache` -- keyed
by a fingerprint of the whole ``repro`` source tree, so any code change
invalidates every cached table.  The ``conformance`` pseudo-experiment
runs a differential sweep alongside the figures.

A failing experiment no longer takes the whole run down silently: its
traceback is printed to stderr, the remaining experiments still run, and
the driver exits non-zero.  Parallel runs go through the resilient
executor (:mod:`repro.faults.resilient`): a worker that dies or hangs
past ``--timeout`` is retried on a respawned pool, and if it never
succeeds the driver reports a structured error record for that
experiment instead of blocking forever on ``future.result()``.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
import time
import traceback

from ..faults.resilient import RetryPolicy, run_resilient
from ..telemetry import core as _tm
from . import ablation, fig13, fig14, fig15, table1, table2

__all__ = ["main", "EXPERIMENTS", "run_experiment"]


def _run_ablation(args) -> str:
    parts = [
        ablation.format_carry_density(ablation.carry_density_sweep()),
        "",
        ablation.format_selector_study(
            ablation.selector_accuracy_study(samples=args.runs * 20)),
        "",
        ablation.booth_tree_study(),
        "",
        ablation.format_device_sweep(ablation.device_sweep()),
        "",
        ablation.format_dot_study(
            ablation.dot_product_study(trials=args.runs)),
    ]
    return "\n".join(parts)


def _run_conformance(args) -> str:
    from repro.conformance import format_summary, run_sweep

    report = run_sweep(
        shards=args.shards, workers=args.workers, seed=args.seed,
        cases=args.runs * 4, use_cache=args.cache_dir is not None,
        cache_dir=args.cache_dir)
    text = format_summary(report)
    if report["totals"]["mismatches"]:
        raise RuntimeError(
            f"conformance sweep found {report['totals']['mismatches']} "
            f"mismatches:\n{text}")
    return text


EXPERIMENTS = {
    "table1": lambda args: table1.format_table(table1.run()),
    "fig13": lambda args: fig13.format_table(fig13.run()),
    "fig14": lambda args: fig14.format_table(
        fig14.run(runs=args.runs)),
    "table2": lambda args: table2.format_table(table2.run()),
    "fig15": lambda args: fig15.format_table(fig15.run()),
    "ablation": _run_ablation,
    "conformance": _run_conformance,
}

#: experiments that manage their own worker pool and therefore always
#: run inline in the driver process
_OWN_POOL = {"conformance"}


def run_experiment(name: str, runs: int = 20, shards: int = 4,
                   workers: int = 1, seed: int = 0,
                   cache_dir: str | None = None) -> str:
    """Execute one experiment by name (picklable pool entry point)."""
    args = argparse.Namespace(runs=runs, shards=shards, workers=workers,
                              seed=seed, cache_dir=cache_dir)
    with _tm.span(f"experiments.{name}"):
        out = EXPERIMENTS[name](args)
    if _tm.ACTIVE is not None:
        _tm.ACTIVE.count(f"experiments.run.{name}")
    return out


def _experiment_entry(payload: dict) -> str:
    """Picklable resilient-executor work unit: one experiment."""
    return run_experiment(payload["name"], payload["runs"],
                          payload["shards"], 1, payload["seed"],
                          payload["cache_dir"])


def _cache_key(fingerprint: str, name: str, args) -> str:
    h = hashlib.sha256()
    h.update(fingerprint.encode())
    h.update(f"experiment:{name}:runs={args.runs}:shards={args.shards}"
             f":seed={args.seed}".encode())
    return h.hexdigest()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures from the "
                    "reproduction models.")
    parser.add_argument("experiments", nargs="*",
                        choices=[*EXPERIMENTS, []],
                        help="which experiments to run (default: all)")
    parser.add_argument("--runs", type=int, default=20,
                        help="number of random runs for fig14")
    parser.add_argument("--workers", type=int, default=1,
                        help="run experiments in parallel processes")
    parser.add_argument("--shards", type=int, default=4,
                        help="shard count for the conformance sweep")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the conformance sweep")
    parser.add_argument("--cache-dir", default=None,
                        help="reuse unchanged experiment results from "
                             "this content-hash cache directory")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="wall-clock seconds one experiment attempt "
                             "may take in parallel mode (default 600)")
    parser.add_argument("--retries", type=int, default=2,
                        help="max attempts per experiment in parallel "
                             "mode (default 2)")
    args = parser.parse_args(argv)
    names = args.experiments or list(EXPERIMENTS)

    cache = None
    fingerprint = ""
    if args.cache_dir is not None:
        from repro.conformance.cache import ResultCache, code_fingerprint

        cache = ResultCache(args.cache_dir)
        fingerprint = code_fingerprint()

    outputs: dict[str, str] = {}
    failures: dict[str, str] = {}
    started = {name: time.time() for name in names}

    pending = []
    for name in names:
        if cache is not None:
            hit = cache.get(_cache_key(fingerprint, name, args))
            if hit is not None:
                outputs[name] = hit["text"] + "\n[cached]"
                if _tm.ACTIVE is not None:
                    _tm.ACTIVE.count("experiments.cache.hit")
                continue
            if _tm.ACTIVE is not None:
                _tm.ACTIVE.count("experiments.cache.miss")
        pending.append(name)

    def record(name: str, exc: BaseException) -> None:
        failures[name] = "".join(traceback.format_exception(exc))
        if _tm.ACTIVE is not None:
            _tm.ACTIVE.count("experiments.failed")

    error_records: dict[str, dict] = {}
    pooled = [n for n in pending if n not in _OWN_POOL]
    inline = [n for n in pending if n in _OWN_POOL]
    if args.workers > 1 and len(pooled) > 1:
        payloads = [{"name": n, "runs": args.runs, "shards": args.shards,
                     "seed": args.seed, "cache_dir": args.cache_dir}
                    for n in pooled]
        run = run_resilient(
            _experiment_entry, payloads,
            workers=min(args.workers, len(pooled)),
            timeout_s=args.timeout,
            retry=RetryPolicy(max_attempts=max(args.retries, 1)),
            rng_seed=args.seed)
        for name, wr in zip(pooled, run.results):
            if wr is not None and wr.ok:
                outputs[name] = wr.value
            else:
                err = (wr.error if wr is not None and wr.error
                       else {"kind": "lost"})
                error_records[name] = {"experiment": name, **err,
                                       "attempts": wr.attempts
                                       if wr is not None else 0}
                failures[name] = (
                    f"[{err.get('kind', '?')}] "
                    + err.get("message", "worker never returned")
                    + ("\n" + err["traceback"]
                       if "traceback" in err else ""))
    else:
        inline = pending
    for name in inline:
        try:
            outputs[name] = run_experiment(
                name, args.runs, args.shards, args.workers, args.seed,
                args.cache_dir)
        except Exception as exc:
            record(name, exc)

    if cache is not None:
        for name in pending:
            if name in outputs:
                cache.put(_cache_key(fingerprint, name, args),
                          {"experiment": name, "text": outputs[name]})

    for name in names:
        print(f"=== {name} " + "=" * (60 - len(name)))
        if name in failures:
            print(f"[{name} FAILED]")
            print(failures[name], file=sys.stderr)
        else:
            print(outputs[name])
        print(f"[{name} took {time.time() - started[name]:.1f}s]\n")

    if failures:
        for name in sorted(error_records):
            rec = error_records[name]
            print("error-record: "
                  f"{{'experiment': {rec['experiment']!r}, "
                  f"'kind': {rec.get('kind', '?')!r}, "
                  f"'attempts': {rec.get('attempts', 0)}}}",
                  file=sys.stderr)
        print(f"{len(failures)} experiment(s) failed: "
              f"{', '.join(sorted(failures))}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
