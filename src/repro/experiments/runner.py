"""Command-line driver: regenerate every table and figure of the paper.

Usage::

    repro-experiments              # run everything
    repro-experiments table1 fig14
    python -m repro.experiments.runner fig15
"""

from __future__ import annotations

import argparse
import sys
import time

from . import ablation, fig13, fig14, fig15, table1, table2

__all__ = ["main", "EXPERIMENTS"]


def _run_ablation(args) -> str:
    parts = [
        ablation.format_carry_density(ablation.carry_density_sweep()),
        "",
        ablation.format_selector_study(
            ablation.selector_accuracy_study(samples=args.runs * 20)),
        "",
        ablation.booth_tree_study(),
        "",
        ablation.format_device_sweep(ablation.device_sweep()),
        "",
        ablation.format_dot_study(
            ablation.dot_product_study(trials=args.runs)),
    ]
    return "\n".join(parts)


EXPERIMENTS = {
    "table1": lambda args: table1.format_table(table1.run()),
    "fig13": lambda args: fig13.format_table(fig13.run()),
    "fig14": lambda args: fig14.format_table(
        fig14.run(runs=args.runs)),
    "table2": lambda args: table2.format_table(table2.run()),
    "fig15": lambda args: fig15.format_table(fig15.run()),
    "ablation": _run_ablation,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures from the "
                    "reproduction models.")
    parser.add_argument("experiments", nargs="*",
                        choices=[*EXPERIMENTS, []],
                        help="which experiments to run (default: all)")
    parser.add_argument("--runs", type=int, default=20,
                        help="number of random runs for fig14")
    args = parser.parse_args(argv)
    names = args.experiments or list(EXPERIMENTS)
    for name in names:
        t0 = time.time()
        print(f"=== {name} " + "=" * (60 - len(name)))
        print(EXPERIMENTS[name](args))
        print(f"[{name} took {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
