"""Fig. 15 -- `ldlsolve()` schedule length for the three convex solvers.

The full application-level flow: trajectory-planning QP -> KKT system ->
symbolic LDL^T -> generated `ldlsolve()` kernel -> HLS frontend ->
scheduled CDFG -> Fig. 12 FMA-insertion pass -> rescheduled length,
with up to 39 time-multiplexed P/FCS-FMA units (Sec. IV-D).  The paper
reports schedule-length reductions between 26.0% and 50.1%, larger for
the FCS units.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hls import (OpKind, default_library, list_schedule, parse_program,
                   run_fma_insertion)
from ..solvers import BENCHMARK_SIZES, generate_kernel, trajectory_problem

__all__ = ["Fig15Row", "run", "format_table", "FMA_UNIT_LIMIT"]

#: Sec. IV-D: "up to 39 time-multiplexed P/FCS-FMA units"
FMA_UNIT_LIMIT = 39


@dataclass(frozen=True)
class Fig15Row:
    solver: str
    kkt_dim: int
    statements: int
    baseline_cycles: int
    pcs_cycles: int
    fcs_cycles: int
    pcs_fma_units: int
    fcs_fma_units: int

    @property
    def pcs_reduction_percent(self) -> float:
        return 100.0 * (self.baseline_cycles - self.pcs_cycles) \
            / self.baseline_cycles

    @property
    def fcs_reduction_percent(self) -> float:
        return 100.0 * (self.baseline_cycles - self.fcs_cycles) \
            / self.baseline_cycles


def run(sizes=None, fma_limit: int = FMA_UNIT_LIMIT) -> list[Fig15Row]:
    sizes = sizes if sizes is not None else BENCHMARK_SIZES
    rows = []
    for name, horizon, obstacles in sizes:
        problem = trajectory_problem(horizon, obstacles)
        kernel = generate_kernel(problem)
        g0 = parse_program(kernel.source, outputs=kernel.output_names)
        baseline = list_schedule(g0, default_library()).length
        cycles = {}
        units = {}
        for flavor in ("pcs", "fcs"):
            g = parse_program(kernel.source,
                              outputs=kernel.output_names)
            lib = default_library(fma_flavor=flavor, fma_limit=fma_limit)
            run_fma_insertion(g, lib)
            sched = list_schedule(g, lib)
            cycles[flavor] = sched.length
            units[flavor] = min(
                g.op_count(OpKind.FMA),
                sched.resource_usage().get(f"fma-{flavor}", 0)
                or g.op_count(OpKind.FMA))
        rows.append(Fig15Row(
            solver=name,
            kkt_dim=kernel.symbolic.n,
            statements=kernel.statement_count,
            baseline_cycles=baseline,
            pcs_cycles=cycles["pcs"],
            fcs_cycles=cycles["fcs"],
            pcs_fma_units=units["pcs"],
            fcs_fma_units=units["fcs"],
        ))
    return rows


def format_table(rows: list[Fig15Row]) -> str:
    out = ["Fig. 15: ldlsolve() schedule length (cycles) for solvers of "
           "increasing complexity",
           f"{'Solver':<8} {'KKT':>4} {'stmts':>6} {'base':>6} "
           f"{'PCS':>6} {'red%':>6} {'FCS':>6} {'red%':>6}"]
    for r in rows:
        out.append(
            f"{r.solver:<8} {r.kkt_dim:>4} {r.statements:>6} "
            f"{r.baseline_cycles:>6} {r.pcs_cycles:>6} "
            f"{r.pcs_reduction_percent:>5.1f}% {r.fcs_cycles:>6} "
            f"{r.fcs_reduction_percent:>5.1f}%")
    out.append("(paper: 26.0%-50.1% reduction, FCS > PCS, <= 39 "
               "time-multiplexed FMA units)")
    from .figures import grouped_bar_chart

    out.append("")
    out.append(grouped_bar_chart(
        [(r.solver, [("baseline", float(r.baseline_cycles)),
                     ("pcs", float(r.pcs_cycles)),
                     ("fcs", float(r.fcs_cycles))]) for r in rows],
        unit=" cyc"))
    return "\n".join(out)
