"""Fig. 14 -- numerical accuracy of chained FMA implementations.

The paper feeds "valid but random data" through a pair of chained FMA
units computing the recurrence

    x[n] = B1*x[n-1] + B2*x[n-2] + x[n-3]

to x[50], with 1 < |B1| < 32 and 0 < |B2| < 1, and reports the average
mantissa error over 20 computations against a 75-bit CoreGen datapath
as the golden reference.  We reproduce exactly that setup and
additionally gauge everything against the *exact* rational trajectory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction

from ..fma import (DiscreteMulAddEngine, FmaEngine, FusedIeeeEngine,
                   fcs_engine, pcs_engine, run_recurrence)
from ..fp import BINARY64, EXTENDED68, EXTENDED75, FPValue, double

__all__ = ["Fig14Result", "run", "format_table", "make_workload",
           "default_engines"]

STEPS = 48  # x[50] from three seeds, two FMAs per step


def make_workload(seed: int, steps: int = STEPS):
    """One Fig. 14 stimulus: coefficients and seeds."""
    rng = random.Random(seed)
    b1 = [double(rng.choice([-1, 1]) * rng.uniform(1.0, 32.0))
          for _ in range(steps)]
    b2 = [double(rng.choice([-1, 1]) * rng.uniform(1e-9, 1.0))
          for _ in range(steps)]
    x0 = [double(rng.uniform(-1.0, 1.0)) for _ in range(3)]
    return b1, b2, x0


def default_engines() -> list[FmaEngine]:
    return [
        DiscreteMulAddEngine(BINARY64),     # the 64b CoreGen datapath
        DiscreteMulAddEngine(EXTENDED68),   # the 68b variant
        FusedIeeeEngine(),                  # classic FMA baseline
        pcs_engine(),
        fcs_engine(),
    ]


@dataclass(frozen=True)
class Fig14Result:
    engine: str
    mean_ulp_error: float       # avg |x50 - golden| in golden-ULP units
    max_ulp_error: float
    runs: int


def _ulp_of(v: FPValue) -> Fraction:
    e = v.unbiased_exponent - v.fmt.fraction_bits
    return Fraction(1 << e) if e >= 0 else Fraction(1, 1 << (-e))


def run(runs: int = 20, steps: int = STEPS, seed0: int = 0,
        engines: list[FmaEngine] | None = None, *,
        use_batch: bool = True) -> list[Fig14Result]:
    """Run the accuracy study; golden reference = the 75b datapath
    (exactly the paper's methodology).

    ``use_batch`` runs every engine (golden included) through its
    bit-identical fast twin from :mod:`repro.batch`; the reported errors
    are unchanged down to the last bit.
    """
    engines = engines if engines is not None else default_engines()
    golden_engine = DiscreteMulAddEngine(EXTENDED75)
    if use_batch:
        from ..batch import accelerate_engine
        engines = [accelerate_engine(e) for e in engines]
        golden_engine = accelerate_engine(golden_engine)
    sums = {e.name: Fraction(0) for e in engines}
    maxes = {e.name: Fraction(0) for e in engines}
    counted = 0
    for r in range(runs):
        b1, b2, x0 = make_workload(seed0 + r, steps)
        golden = run_recurrence(golden_engine, b1, b2, x0, steps).final
        if not golden.is_normal:
            continue
        counted += 1
        gval = golden.to_fraction()
        # errors in units of the golden value's binary64 ULP
        g64 = FPValue.from_fraction(gval, BINARY64)
        ulp = _ulp_of(g64) if g64.is_normal else Fraction(1)
        for e in engines:
            v = run_recurrence(e, b1, b2, x0, steps).final
            err = (abs(v.to_fraction() - gval) / ulp
                   if v.is_normal else Fraction(2 ** 52))
            sums[e.name] += err
            maxes[e.name] = max(maxes[e.name], err)
    return [Fig14Result(e.name, float(sums[e.name] / max(counted, 1)),
                        float(maxes[e.name]), counted)
            for e in engines]


def format_table(results: list[Fig14Result]) -> str:
    out = ["Fig. 14: average mantissa error of x[50] vs 75b golden "
           "reference (binary64 ULPs)",
           f"{'Engine':<22} {'mean ULP err':>12} {'max ULP err':>12}"]
    for r in results:
        out.append(f"{r.engine:<22} {r.mean_ulp_error:>12.3f} "
                   f"{r.max_ulp_error:>12.3f}")
    from .figures import bar_chart

    out.append("")
    out.append(bar_chart([(r.engine, r.mean_ulp_error)
                          for r in results], unit=" ulp"))
    return "\n".join(out)
