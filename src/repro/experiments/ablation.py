"""Ablations: the design-space knobs the paper discusses.

Three studies backing the paper's design decisions and its future-work
section (Sec. V):

* **Carry-bit density** (Sec. III-E + future work): with 55-bit blocks
  the legal PCS carry spacings are 5, 11 and 55; the paper picks 11
  because the 5b-vs-11b adder delay gap is tiny while the carry-bit
  cost halves.  The future-work variant uses 56-bit blocks, whose
  divisors (2, 4, 7, 8, 14, 28, 56) open a finer trade-off curve.  We
  sweep both.
* **Block size vs precision** (Sec. III-D/G/H): how result block size
  and count trade multiplexer complexity against guaranteed significant
  digits.
* **Selector choice** (Sec. III-F vs III-G): exact ZD vs early block
  LZA on the same PCS geometry -- the accuracy cost of anticipation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction

from ..fma import CSFmaParams, CSFmaUnit, cs_to_ieee, ieee_to_cs
from ..fp import double, exact_fma_fraction, ulp_error
from ..hw import VIRTEX6, FpgaDevice

__all__ = [
    "CarryDensityPoint", "carry_density_sweep",
    "SelectorPoint", "selector_accuracy_study",
    "format_carry_density", "format_selector_study",
    "divisor_spacings",
    "DotStudyRow", "dot_product_study", "format_dot_study",
    "DeviceSweepRow", "device_sweep", "format_device_sweep",
]


def divisor_spacings(block: int) -> list[int]:
    """Legal PCS carry spacings for a block size: the divisors > 1
    ("the insertion of a carry bit only for every 5th, 11th or 55th
    bit", Sec. III-E -- i.e. the divisors of 55)."""
    return [k for k in range(2, block + 1) if block % k == 0]


@dataclass(frozen=True)
class CarryDensityPoint:
    block: int
    spacing: int
    chunk_adder_ns: float       # reg-to-reg delay of the chunk adder
    carry_bits_per_block: int   # explicit carries per result block
    window_carry_bits: int      # carries across the whole adder window
    delay_penalty_percent: float  # vs the densest (fastest) spacing


def carry_density_sweep(blocks: list[int] | None = None,
                        device: FpgaDevice = VIRTEX6,
                        window_blocks: int = 7) -> list[CarryDensityPoint]:
    """Sweep carry spacing for 55-bit blocks (the paper's) and 56-bit
    blocks (the future-work variant)."""
    blocks = blocks if blocks is not None else [55, 56]
    points: list[CarryDensityPoint] = []
    for block in blocks:
        spacings = divisor_spacings(block)
        fastest = device.adder_regreg_ns(min(spacings))
        for spacing in spacings:
            delay = device.adder_regreg_ns(spacing)
            points.append(CarryDensityPoint(
                block=block,
                spacing=spacing,
                chunk_adder_ns=delay,
                carry_bits_per_block=block // spacing,
                window_carry_bits=(block * window_blocks) // spacing,
                delay_penalty_percent=100.0 * (delay - fastest) / fastest,
            ))
    return points


def format_carry_density(points: list[CarryDensityPoint]) -> str:
    out = ["Ablation: PCS carry-bit density (Sec. III-E / Sec. V)",
           f"{'block':>5} {'spacing':>8} {'adder ns':>9} "
           f"{'carries/blk':>11} {'window carries':>14} {'penalty':>8}"]
    for p in points:
        out.append(f"{p.block:>5} {p.spacing:>8} {p.chunk_adder_ns:>9.3f} "
                   f"{p.carry_bits_per_block:>11} "
                   f"{p.window_carry_bits:>14} "
                   f"{p.delay_penalty_percent:>7.1f}%")
    out.append("(the paper picks spacing 11: near-minimal delay at a "
               "fifth of the carry bits of spacing 5)")
    return "\n".join(out)


@dataclass(frozen=True)
class SelectorPoint:
    selector: str
    mean_ulp_error: float
    max_ulp_error: float
    samples: int


def selector_accuracy_study(samples: int = 400, seed: int = 0,
                            params: CSFmaParams | None = None,
                            ) -> list[SelectorPoint]:
    """Exact ZD vs early block LZA on identical PCS geometry.

    The LZA variant may keep up to one extra redundant block in the
    result (its bound is conservative), costing trailing precision in
    rare cases -- the trade the FCS unit's widened blocks absorb.
    """
    from ..fma.formats import PCS_PARAMS

    params = params or PCS_PARAMS
    units = {
        "zd": CSFmaUnit(params, selector="zd", use_carry_reduce=True),
        "lza": CSFmaUnit(params, selector="lza", use_carry_reduce=True),
    }
    rng = random.Random(seed)
    results = []
    for name, unit in units.items():
        total = Fraction(0)
        worst = Fraction(0)
        n = 0
        for _ in range(samples):
            a = rng.uniform(-1e3, 1e3) * 10 ** rng.randint(-6, 6)
            b = rng.uniform(-1e3, 1e3) * 10 ** rng.randint(-6, 6)
            c = rng.uniform(-1e3, 1e3) * 10 ** rng.randint(-6, 6)
            fa, fb, fc = double(a), double(b), double(c)
            r = unit.fma(ieee_to_cs(fa, params), fb,
                         ieee_to_cs(fc, params))
            out = cs_to_ieee(r)
            exact = exact_fma_fraction(fa, fb, fc)
            if out.is_normal and exact != 0:
                err = ulp_error(out, exact)
                total += err
                worst = max(worst, err)
                n += 1
        results.append(SelectorPoint(name, float(total / max(n, 1)),
                                     float(worst), n))
    return results


def format_selector_study(points: list[SelectorPoint]) -> str:
    out = ["Ablation: ZD (Sec. III-F) vs early block LZA (Sec. III-G) "
           "on PCS geometry",
           f"{'selector':>8} {'mean ULP err':>13} {'max ULP err':>12} "
           f"{'samples':>8}"]
    for p in points:
        out.append(f"{p.selector:>8} {p.mean_ulp_error:>13.4f} "
                   f"{p.max_ulp_error:>12.4f} {p.samples:>8}")
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Fused dot products (Sec. V: CS mantissas applied to other operations)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DotStudyRow:
    implementation: str
    mean_ulp_error: float
    max_ulp_error: float


def dot_product_study(trials: int = 25, seed: int = 0,
                      max_len: int = 60) -> list[DotStudyRow]:
    """Accuracy of fused CS dot products vs software baselines on
    ill-conditioned inner products (wide dynamic range, cancellation)."""
    from ..fma.dotprod import compare_dot_products
    from ..fp.value import FPValue

    rng = random.Random(seed)
    sums: dict[str, float] = {}
    maxes: dict[str, float] = {}
    for _ in range(trials):
        n = rng.randint(5, max_len)
        a, b = [], []
        for _ in range(n):
            scale = 10.0 ** rng.randint(0, 10)
            a.append(FPValue.from_float(rng.uniform(-scale, scale)))
            b.append(FPValue.from_float(rng.uniform(-1, 1)))
        cmpres = compare_dot_products(a, b)
        for name, err in cmpres.errors_ulp.items():
            sums[name] = sums.get(name, 0.0) + err
            maxes[name] = max(maxes.get(name, 0.0), err)
    return [DotStudyRow(name, sums[name] / trials, maxes[name])
            for name in sums]


def format_dot_study(rows: list[DotStudyRow]) -> str:
    out = ["Extension (Sec. V): fused dot products on CS mantissas",
           f"{'implementation':>14} {'mean ULP err':>13} "
           f"{'max ULP err':>12}"]
    for r in sorted(rows, key=lambda r: r.mean_ulp_error):
        out.append(f"{r.implementation:>14} {r.mean_ulp_error:>13.3f} "
                   f"{r.max_ulp_error:>12.3f}")
    out.append("(one normalization per reduction beats even Kahan "
               "compensation)")
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Multiplier tree height: simple vs Booth-recoded rows (Sec. III-D)
# ---------------------------------------------------------------------------

def booth_tree_study(widths=(24, 53, 87, 110)) -> str:
    """The Sec. III-D argument quantified: tree height vs the number of
    partial-product rows, with radix-4 Booth recoding as the lever."""
    from ..cs.booth import compare_tree_heights

    out = ["Ablation: multiplier CSA-tree height (Sec. III-D)",
           f"{'B width':>8} {'rows':>5} {'depth':>6} {'booth rows':>11} "
           f"{'booth depth':>12} {'levels saved':>13}"]
    for w in widths:
        c = compare_tree_heights(w)
        out.append(f"{w:>8} {c.simple_rows:>5} {c.simple_depth:>6} "
                   f"{c.booth_rows:>11} {c.booth_depth:>12} "
                   f"{c.levels_saved:>13}")
    out.append("(widening C leaves the row count -- and thus the tree "
               "height -- unchanged; only B's width matters)")
    return "\n".join(out)


__all__.append("booth_tree_study")


# ---------------------------------------------------------------------------
# Device portability (Sec. III / III-H)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DeviceSweepRow:
    device: str
    architecture: str
    available: bool
    fmax_mhz: float | None
    cycles: int | None
    latency_ns: float | None


def device_sweep(targets=("pcs-fma", "fcs-fma"),
                 device_names=("virtex5", "virtex6", "virtex7"),
                 ) -> list[DeviceSweepRow]:
    """Synthesize the CS units across FPGA generations: the PCS-FMA is
    'portable to older FPGAs (e.g. Xilinx Virtex-5)' while the FCS-FMA
    requires the DSP48E1 pre-adder of Virtex-6 and later."""
    from ..hw import design_by_name, device_by_name, synthesize

    rows = []
    for dname in device_names:
        device = device_by_name(dname)
        for arch in targets:
            try:
                report = synthesize(design_by_name(arch, device), device)
            except ValueError:
                rows.append(DeviceSweepRow(dname, arch, False, None,
                                           None, None))
                continue
            rows.append(DeviceSweepRow(dname, arch, True,
                                       report.fmax_mhz, report.cycles,
                                       report.latency_ns))
    return rows


def format_device_sweep(rows: list[DeviceSweepRow]) -> str:
    out = ["Ablation: device portability (Sec. III / III-H)",
           f"{'device':>8} {'unit':>8} {'fmax':>6} {'cyc':>4} "
           f"{'latency':>8}"]
    for r in rows:
        if not r.available:
            out.append(f"{r.device:>8} {r.architecture:>8} "
                       "   -- unavailable (no DSP pre-adder) --")
        else:
            out.append(f"{r.device:>8} {r.architecture:>8} "
                       f"{r.fmax_mhz:>6.0f} {r.cycles:>4} "
                       f"{r.latency_ns:>7.1f}ns")
    return "\n".join(out)
