"""Fig. 13 -- minimum computation time per multiply-add operation.

Latency = minimum clock period x pipeline length, for every Table I
architecture; the paper's headline claim is PCS ~1.7x and FCS ~2.5x
faster than the closest competitor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw import VIRTEX6, FpgaDevice, synthesize_by_name
from .table1 import DISPLAY, PAPER_TABLE1

__all__ = ["Fig13Point", "run", "format_table", "paper_latency_ns"]


def paper_latency_ns(name: str) -> float:
    """The latency Fig. 13 plots, derived from the paper's Table I."""
    fmax, cycles, _l, _d = PAPER_TABLE1[name]
    return 1000.0 / fmax * cycles


@dataclass(frozen=True)
class Fig13Point:
    architecture: str
    latency_ns: float
    paper_latency_ns: float
    speedup_vs_best_baseline: float


def run(device: FpgaDevice = VIRTEX6,
        target_mhz: float = 200.0) -> list[Fig13Point]:
    reports = {name: synthesize_by_name(name, device, target_mhz)
               for name in PAPER_TABLE1}
    best_base = min(reports["coregen"].latency_ns,
                    reports["flopoco"].latency_ns)
    return [Fig13Point(name, r.latency_ns, paper_latency_ns(name),
                       best_base / r.latency_ns)
            for name, r in reports.items()]


def format_table(points: list[Fig13Point]) -> str:
    from .figures import bar_chart

    out = ["Fig. 13: Latency per multiply-add (min period x cycles)",
           f"{'Architecture':<20} {'ns':>7} {'paper ns':>9} "
           f"{'speedup':>8}"]
    for p in points:
        out.append(f"{DISPLAY[p.architecture]:<20} {p.latency_ns:>7.1f} "
                   f"{p.paper_latency_ns:>9.1f} "
                   f"{p.speedup_vs_best_baseline:>7.2f}x")
    out.append("")
    out.append(bar_chart([(DISPLAY[p.architecture], p.latency_ns)
                          for p in points], unit=" ns"))
    return "\n".join(out)
