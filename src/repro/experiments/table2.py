"""Table II -- average energy per multiply-add operation (nJ).

Reproduces the paper's XPower methodology: run the Fig. 14 benchmark
through the functional models in pipeline steady state, record the
switching activity, and propagate it through the component netlists
(see :mod:`repro.hw.energy`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fma import DiscreteMulAddEngine, FusedIeeeEngine, fcs_engine, \
    pcs_engine
from ..fp import BINARY64
from ..hw import (VIRTEX6, EnergyReport, FpgaDevice, design_by_name,
                  estimate_energy, measure_toggle_activity, synthesize)
from .fig14 import make_workload
from .table1 import DISPLAY

__all__ = ["PAPER_TABLE2", "Table2Row", "run", "format_table"]

#: Table II of the paper, nJ per multiply-add.
PAPER_TABLE2 = {
    "coregen": 0.54,
    "flopoco": 0.74,
    "pcs-fma": 2.67,
    "fcs-fma": 2.36,
}


@dataclass(frozen=True)
class Table2Row:
    architecture: str
    energy_nj: float
    paper_nj: float
    report: EnergyReport


def run(device: FpgaDevice = VIRTEX6, steps: int = 40,
        seed: int = 42) -> list[Table2Row]:
    b1, b2, x0 = make_workload(seed, steps)
    engines = {
        "coregen": DiscreteMulAddEngine(BINARY64),
        "flopoco": FusedIeeeEngine(),
        "pcs-fma": pcs_engine(),
        "fcs-fma": fcs_engine(),
    }
    rows = []
    for name, engine in engines.items():
        act = measure_toggle_activity(engine, b1, b2, x0, steps)
        design = design_by_name(name, device)
        report = synthesize(design, device)
        er = estimate_energy(design, report, act, device)
        rows.append(Table2Row(name, er.total_nj, PAPER_TABLE2[name], er))
    return rows


def format_table(rows: list[Table2Row]) -> str:
    base = next(r.energy_nj for r in rows if r.architecture == "coregen")
    out = ["Table II: average energy per multiply-add (nJ)",
           f"{'Architecture':<20} {'nJ':>6} {'paper':>6} {'xCoreGen':>9}"
           f"   breakdown (logic/dsp/reg/clk)"]
    for r in rows:
        er = r.report
        out.append(
            f"{DISPLAY[r.architecture]:<20} {r.energy_nj:>6.2f} "
            f"{r.paper_nj:>6.2f} {r.energy_nj / base:>8.2f}x   "
            f"{er.logic_nj:.2f}/{er.dsp_nj:.2f}/"
            f"{er.register_nj:.3f}/{er.clock_nj:.3f}")
    return "\n".join(out)
