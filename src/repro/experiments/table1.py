"""Table I -- synthesis results (fmax, cycles, LUTs, DSPs).

Regenerates the paper's synthesis comparison of Xilinx CoreGen,
FloPoCo FPPipeline, PCS-FMA and FCS-FMA on Virtex-6 at the 200 MHz
constraint, from the calibrated hardware model of :mod:`repro.hw`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw import VIRTEX6, FpgaDevice, SynthesisReport, synthesize_by_name

__all__ = ["PAPER_TABLE1", "Table1Row", "run", "format_table"]

#: The paper's published numbers: fmax MHz, cycles, LUTs, DSPs.
PAPER_TABLE1: dict[str, tuple[int, int, int, int]] = {
    "coregen": (244, 9, 1253, 13),
    "flopoco": (190, 11, 1508, 7),
    "pcs-fma": (231, 5, 5832, 21),
    "fcs-fma": (211, 3, 4685, 12),
}

#: pretty names matching the paper's table
DISPLAY = {
    "coregen": "Xilinx CoreGen",
    "flopoco": "FloPoCo FPPipeline",
    "pcs-fma": "PCS-FMA",
    "fcs-fma": "FCS-FMA",
}


@dataclass(frozen=True)
class Table1Row:
    architecture: str
    fmax_mhz: float
    cycles: int
    luts: int
    dsps: int
    paper: tuple[int, int, int, int]

    @property
    def fmax_delta_percent(self) -> float:
        return 100.0 * (self.fmax_mhz - self.paper[0]) / self.paper[0]


def run(device: FpgaDevice = VIRTEX6,
        target_mhz: float = 200.0) -> list[Table1Row]:
    """Synthesize all four architectures and return the table rows."""
    rows = []
    for name, paper in PAPER_TABLE1.items():
        r: SynthesisReport = synthesize_by_name(name, device, target_mhz)
        rows.append(Table1Row(name, r.fmax_mhz, r.cycles, r.luts, r.dsps,
                              paper))
    return rows


def format_table(rows: list[Table1Row]) -> str:
    out = ["Table I: Synthesis results (measured vs paper)",
           f"{'Architecture':<20} {'fMax':>6} {'Cyc':>4} {'LUTs':>6} "
           f"{'DSPs':>5}   {'paper (fMax/Cyc/LUT/DSP)':>26}"]
    for r in rows:
        p = r.paper
        out.append(
            f"{DISPLAY[r.architecture]:<20} {r.fmax_mhz:>6.0f} "
            f"{r.cycles:>4} {r.luts:>6} {r.dsps:>5}   "
            f"{p[0]:>7}/{p[1]}/{p[2]}/{p[3]}")
    return "\n".join(out)
