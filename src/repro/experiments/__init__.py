"""Experiment harness: one module per table/figure of the paper.

* :mod:`~repro.experiments.table1` -- synthesis results,
* :mod:`~repro.experiments.fig13` -- latency per multiply-add,
* :mod:`~repro.experiments.fig14` -- numerical accuracy of chained FMAs,
* :mod:`~repro.experiments.table2` -- energy per operation,
* :mod:`~repro.experiments.fig15` -- `ldlsolve()` schedule lengths,
* :mod:`~repro.experiments.ablation` -- design-space ablations
  (carry density, ZD vs LZA),
* :mod:`~repro.experiments.runner` -- the CLI driver
  (``repro-experiments``); imported lazily so ``python -m
  repro.experiments.runner`` stays warning-free.
"""

from . import ablation, fig13, fig14, fig15, table1, table2

__all__ = ["table1", "fig13", "fig14", "table2", "fig15", "ablation",
           "runner"]


def __getattr__(name):
    if name == "runner":
        # importlib, not ``from . import runner``: the fromlist form
        # probes the package with hasattr first, which re-enters this
        # __getattr__ and recurses before the submodule ever loads.
        import importlib

        return importlib.import_module(".runner", __name__)
    raise AttributeError(name)
