"""Text rendering of the paper's figures (horizontal bar charts).

The experiment modules return structured data; this module turns them
into terminal bar charts so ``repro-experiments`` output visually
mirrors Fig. 13 / Fig. 14 / Fig. 15.
"""

from __future__ import annotations

__all__ = ["bar_chart", "grouped_bar_chart"]

_FULL = "█"
_PART = " ▏▎▍▌▋▊▉█"


def _bar(value: float, vmax: float, width: int) -> str:
    if vmax <= 0:
        return ""
    cells = value / vmax * width
    whole = int(cells)
    frac = cells - whole
    bar = _FULL * whole
    idx = int(frac * 8)
    if idx > 0 and whole < width:
        bar += _PART[idx]
    return bar


def bar_chart(items: list[tuple[str, float]], *, width: int = 44,
              unit: str = "", title: str = "") -> str:
    """Render labeled values as a horizontal bar chart.

    >>> print(bar_chart([("a", 2.0), ("b", 1.0)], width=4))
    a 2.00 ████
    b 1.00 ██
    """
    if not items:
        return title
    vmax = max(v for _l, v in items)
    label_w = max(len(lbl) for lbl, _v in items)
    val_w = max(len(f"{v:.2f}") for _l, v in items)
    lines = [title] if title else []
    for label, value in items:
        lines.append(f"{label:<{label_w}} {value:>{val_w}.2f}{unit} "
                     f"{_bar(value, vmax, width)}")
    return "\n".join(lines)


def grouped_bar_chart(groups: list[tuple[str, list[tuple[str, float]]]],
                      *, width: int = 40, unit: str = "",
                      title: str = "") -> str:
    """Render groups of labeled values (e.g. per-solver series)."""
    lines = [title] if title else []
    vmax = max((v for _g, items in groups for _l, v in items),
               default=0.0)
    label_w = max((len(lbl) for _g, items in groups
                   for lbl, _v in items), default=1)
    for gname, items in groups:
        lines.append(f"{gname}:")
        for label, value in items:
            lines.append(f"  {label:<{label_w}} {value:>8.1f}{unit} "
                         f"{_bar(value, vmax, width)}")
    return "\n".join(lines)
