#!/usr/bin/env python3
"""HLS walk-through: compile Listing 1 and watch the Fig. 12 pass work.

Parses the paper's motivating kernel into a CDFG, schedules it with the
IEEE operator library, runs the FMA-insertion pass for both carry-save
flavors, and prints the schedules, the critical paths, and (optionally)
GraphViz dot files of the datapath before and after.
"""

import argparse
import random

from repro.fma import fcs_engine, pcs_engine
from repro.hls import (OpKind, asap_schedule, critical_path_length,
                       default_library, longest_path_nodes, parse_program,
                       run_fma_insertion, simulate)

LISTING1 = """
x[1] = a*b + c*d;
x[2] = e*f + g*x[1];
x[3] = h*i + k*x[2];
"""


def describe_path(graph, lib, label: str) -> None:
    path = longest_path_nodes(graph, lib)
    ops = " -> ".join(graph.nodes[n].kind.value for n in path
                      if graph.nodes[n].kind not in
                      (OpKind.INPUT, OpKind.OUTPUT))
    print(f"  {label} critical path ({critical_path_length(graph, lib)} "
          f"cycles): {ops}")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--dot", action="store_true",
                    help="write before/after GraphViz files")
    args = ap.parse_args()

    print("Source (Listing 1):")
    print(LISTING1)

    rng = random.Random(0)
    inputs = {n: rng.uniform(-4, 4) for n in "abcdefghik"}

    baseline = parse_program(LISTING1)
    lib0 = default_library()
    print(f"Baseline: {len(baseline)} nodes, "
          f"{baseline.op_count(OpKind.MUL)} mul / "
          f"{baseline.op_count(OpKind.ADD)} add")
    describe_path(baseline, lib0, "baseline")
    ref = simulate(baseline, inputs)
    print(f"  x[3] = {ref['x[3]']:.15g}")
    if args.dot:
        with open("listing1_before.dot", "w") as f:
            f.write(baseline.to_dot())

    for flavor, engine in (("pcs", pcs_engine()), ("fcs", fcs_engine())):
        g = parse_program(LISTING1)
        lib = default_library(fma_flavor=flavor)
        rep = run_fma_insertion(g, lib)
        print(f"\nAfter the pass ({flavor.upper()}-FMA, "
              f"{lib.specs[f'fma-{flavor}'].latency}-cycle units):")
        print(f"  {rep.fma_inserted} FMAs inserted over "
              f"{rep.iterations} rounds, {rep.converters_removed} "
              "redundant converters removed")
        print(f"  schedule: {rep.baseline_length} -> {rep.final_length} "
              f"cycles ({rep.reduction_percent:.1f}% reduction)")
        describe_path(g, lib, flavor)
        out = simulate(g, inputs, engine=engine)
        print(f"  x[3] = {out['x[3]']:.15g} (carry-save arithmetic; "
              f"delta vs baseline {out['x[3]'] - ref['x[3]']:.3g})")
        sched = asap_schedule(g, lib)
        rows = sorted(((sched.start[n.id], n.kind.value, n.id)
                       for n in g.nodes.values()
                       if n.kind not in (OpKind.INPUT, OpKind.CONST,
                                         OpKind.OUTPUT)))
        print("  schedule table (cycle: op):")
        for t, kind, nid in rows:
            print(f"    {t:4d}: {kind}#{nid}")
        if args.dot:
            with open(f"listing1_after_{flavor}.dot", "w") as f:
                f.write(g.to_dot())
    if args.dot:
        print("\nWrote listing1_before.dot / listing1_after_*.dot "
              "(render with `dot -Tpng`).")


if __name__ == "__main__":
    main()
