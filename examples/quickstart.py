#!/usr/bin/env python3
"""Quickstart: the carry-save FMA units in five minutes.

Runs a single fused multiply-add through every implementation, shows
the operand formats, and demonstrates a chained computation where the
carry-save units keep full precision between operations.
"""

from fractions import Fraction

from repro import quick_fma
from repro.fma import (FCS_PARAMS, PCS_PARAMS, FcsFmaUnit, PcsFmaUnit,
                       cs_to_ieee, fcs_engine, ieee_to_cs, pcs_engine)
from repro.fp import double, exact_fma_fraction


def main() -> None:
    a, b, c = 1.5, 0.1, 12.25

    print("== one FMA, three architectures ==")
    exact = exact_fma_fraction(double(a), double(b), double(c))
    print(f"  a + b*c = {a} + {b}*{c}")
    print(f"  exact            : {float(exact):.17g}")
    for unit in ("classic", "pcs", "fcs"):
        print(f"  {unit:8s}         : {quick_fma(a, b, c, unit=unit):.17g}")

    print("\n== the operand formats (Fig. 8 / Sec. III-H) ==")
    for params in (PCS_PARAMS, FCS_PARAMS):
        print(f"  {params.name.upper()}: {params.mant_width} mantissa "
              f"digits in {params.mant_blocks} x {params.block} blocks, "
              f"{params.mant_carry_bits} carry bits, "
              f"{params.block}+{params.round_carry_bits} rounding data, "
              f"{params.exp_bits}b exponent -> "
              f"{params.operand_bits}-bit operands")
    x = ieee_to_cs(double(3.141592653589793), PCS_PARAMS)
    print(f"  pi as a PCS operand: mantissa={x.mant_signed()}, "
          f"exponent={x.exp} (excess-2047 field {x.biased_exponent})")
    print(f"  ...and back: {cs_to_ieee(x).to_float()!r}")

    print("\n== chained FMAs: values stay in carry-save format ==")
    # y = ((x0 + b1*x1) + b2*x2) + b3*x3 with no intermediate rounding
    coeffs = [0.1, 0.2, 0.3]
    xs = [1.0, 1e-17, -1.0, 3.0]
    for make in (pcs_engine, fcs_engine):
        eng = make()
        acc = eng.lift(double(xs[0]))
        for bk, xk in zip(coeffs, xs[1:]):
            acc = eng.fma(acc, double(bk), eng.lift(double(xk)))
        got = eng.lower(acc).to_float()
        exact = Fraction(xs[0])
        for bk, xk in zip(coeffs, xs[1:]):
            exact += Fraction(bk) * Fraction(xk)
        print(f"  {eng.name:8s}: {got:.17g}   "
              f"(exact {float(exact):.17g})")

    print("\n== the units are bit-accurate datapath models ==")
    for unit in (PcsFmaUnit(), FcsFmaUnit()):
        r = unit.fma(ieee_to_cs(double(a), unit.params), double(b),
                     ieee_to_cs(double(c), unit.params))
        print(f"  {unit.name}: result mantissa CS pair sum={r.mant.sum:x}"
              f" carry={r.mant.carry:x}, round data "
              f"{r.round_data.sum:x}/{r.round_data.carry:x}")


if __name__ == "__main__":
    main()
