#!/usr/bin/env python3
"""Accuracy study: the Fig. 14 experiment, interactively.

Runs the paper's random recurrence x[n] = B1*x[n-1] + B2*x[n-2] + x[n-3]
through every FMA implementation and prints the error of x[50] against
both the 75-bit golden reference (the paper's methodology) and the
exact rational result, plus a text histogram of error distribution.
"""

import argparse

from repro.experiments import fig14
from repro.fma import run_recurrence, reference_recurrence
from repro.fp import mantissa_error_bits


def error_histogram(runs: int, seed0: int) -> None:
    """Per-run wrong-mantissa-bits of the final value, per engine."""
    engines = fig14.default_engines()
    print(f"\nPer-run wrong mantissa bits over {runs} runs "
          "(vs exact rational):")
    header = "run  " + "".join(f"{e.name[:14]:>16}" for e in engines)
    print(header)
    totals = {e.name: 0.0 for e in engines}
    for r in range(runs):
        b1, b2, x0 = fig14.make_workload(seed0 + r)
        exact = reference_recurrence(b1, b2, x0, fig14.STEPS)[-1]
        row = f"{r:3d}  "
        for e in engines:
            v = run_recurrence(e, b1, b2, x0, fig14.STEPS).final
            bits = (mantissa_error_bits(v.to_fraction(), exact)
                    if v.is_normal else 52.0)
            totals[e.name] += bits
            row += f"{bits:>16.2f}"
        print(row)
    print("avg  " + "".join(f"{totals[e.name] / runs:>16.2f}"
                            for e in engines))


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--runs", type=int, default=20,
                    help="number of random recurrences (paper used 20)")
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args()

    results = fig14.run(runs=args.runs, seed0=args.seed)
    print(fig14.format_table(results))
    error_histogram(min(args.runs, 10), args.seed)

    print("\nReading the numbers: the discrete 64b datapath accumulates "
          "one extra rounding per multiply-add;\nthe fused and "
          "carry-save chains avoid it, and the 110/87-digit operand "
          "formats of the\nP/FCS units carry ~2x double precision "
          "between operations (Sec. III-D/III-H).")


if __name__ == "__main__":
    main()
