#!/usr/bin/env python3
"""Closed-loop model-predictive control with the generated solver.

The paper motivates its FMA units with "systems relying on
model-based/model-predictive control rules" (Sec. I): a convex solver
runs inside the control loop, re-planning the trajectory at every tick.
This example closes that loop with :class:`repro.solvers.MPCController`:
a planar vehicle drives through an obstacle field, re-solving its
trajectory-planning QP each step (same fixed-structure `ldlsolve()`
kernel every time) and applying only the first control input.

Run with ``--hardware`` to execute every KKT solve on the bit-accurate
FCS-FMA datapath models (slower; demonstrates that the carry-save
arithmetic closes the control loop identically).
"""

import argparse
import time

import numpy as np

from repro.fma import fcs_engine
from repro.solvers import MPCController


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--horizon", type=int, default=4)
    ap.add_argument("--ticks", type=int, default=6)
    ap.add_argument("--hardware", action="store_true",
                    help="run every ldlsolve() on the FCS-FMA models")
    args = ap.parse_args()

    engine = fcs_engine() if args.hardware else None
    ctl = MPCController(horizon=args.horizon, n_obstacles=1,
                        engine=engine)
    if ctl.pass_report is not None:
        rep = ctl.pass_report
        print(f"Compiled ldlsolve(): {rep.fma_inserted} FCS-FMAs, "
              f"schedule {rep.baseline_length} -> {rep.final_length} "
              f"cycles ({rep.reduction_percent:.1f}% shorter)")

    x = np.array([0.0, 0.0, 1.0, 0.0])
    print(f"MPC loop: horizon {args.horizon}, {args.ticks} ticks, "
          f"{'FCS-FMA hardware numerics' if args.hardware else 'double'}"
          " arithmetic\n")
    print(" tick    px      py      vx      vy    |u|     solve")

    total = 0.0
    for tick in range(args.ticks):
        t0 = time.time()
        step = ctl.plan(x)
        dt_solve = time.time() - t0
        total += dt_solve
        x = ctl.step_dynamics(x, step.control)
        status = "ok" if step.converged else "MAXIT"
        print(f"  {tick:3d} {x[0]:7.3f} {x[1]:7.3f} {x[2]:7.3f} "
              f"{x[3]:7.3f} {np.linalg.norm(step.control):6.2f}  "
              f"{dt_solve * 1000:7.1f}ms {status}")

    print(f"\nTotal solver time: {total:.2f}s "
          f"({total / args.ticks * 1000:.1f} ms/tick)")
    print("Each tick re-solved the same fixed-sparsity KKT system -- "
          "the workload the\npaper's ldlsolve() hardware accelerates "
          "(Fig. 15).")


if __name__ == "__main__":
    main()
