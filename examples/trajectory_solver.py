#!/usr/bin/env python3
"""End-to-end: solve a collision-avoidance trajectory QP on the
carry-save FMA datapath.

This is the paper's full application story in one script:

1. build a CVXGEN-style trajectory-planning QP (Sec. I),
2. generate its `ldlsolve()` kernel from the symbolic LDL^T of the KKT
   system (Sec. IV-D),
3. compile the kernel with the Fig. 12 FMA-insertion pass,
4. run the interior-point solver with the kernel executed through the
   *bit-accurate FCS-FMA models* -- the hardware's arithmetic solves the
   control problem,
5. print the resulting trajectory and the schedule-length savings.
"""

import argparse
import time

import numpy as np

from repro.fma import fcs_engine
from repro.solvers import (InteriorPointSolver, generate_kernel,
                           trajectory_problem)


def print_trajectory(problem, z, horizon: int) -> None:
    print("  t     px      py      vx      vy   |   ax      ay")
    for t in range(1, horizon + 1):
        x = z[(t - 1) * 4:t * 4]
        u = z[horizon * 4 + (t - 1) * 2: horizon * 4 + t * 2]
        print(f"  {t:2d}  {x[0]:6.3f}  {x[1]:6.3f}  {x[2]:6.3f} "
              f" {x[3]:6.3f}  | {u[0]:6.2f}  {u[1]:6.2f}")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--horizon", type=int, default=4)
    ap.add_argument("--obstacles", type=int, default=1)
    ap.add_argument("--reference-only", action="store_true",
                    help="skip the (slower) carry-save execution")
    args = ap.parse_args()

    problem = trajectory_problem(args.horizon, args.obstacles)
    print(f"Problem {problem.name}: {problem.n} variables, "
          f"{problem.n_eq} equalities, {problem.n_ineq} inequalities")

    kernel = generate_kernel(problem)
    print(f"Generated ldlsolve(): KKT dim {kernel.symbolic.n}, "
          f"nnz(L) {kernel.symbolic.nnz}, "
          f"{kernel.statement_count} statements")

    # reference solve (double precision)
    t0 = time.time()
    ref = InteriorPointSolver(problem).solve()
    print(f"\nReference IPM: converged={ref.converged} in "
          f"{ref.iterations} iterations "
          f"({time.time() - t0:.2f}s), objective {ref.objective:.6f}")
    print_trajectory(problem, ref.z, args.horizon)

    if args.reference_only:
        return

    # the same solve, with ldlsolve() executed on the FCS-FMA datapath
    print("\nRe-solving with the ldlsolve() kernel compiled through the "
          "FMA pass\nand executed with bit-accurate FCS-FMA arithmetic "
          "(this simulates\nevery carry-save digit, so it takes a "
          "little while)...")
    t0 = time.time()
    solver = InteriorPointSolver.with_kernel_backend(
        problem, engine=fcs_engine())
    rep = solver.backend.pass_report
    print(f"  FMA pass: {rep.fma_inserted} FMAs, schedule "
          f"{rep.baseline_length} -> {rep.final_length} cycles "
          f"({rep.reduction_percent:.1f}% shorter)")
    hw = solver.solve()
    dt = time.time() - t0
    print(f"  hardware-numerics IPM: converged={hw.converged} in "
          f"{hw.iterations} iterations ({dt:.1f}s)")
    print(f"  objective {hw.objective:.6f} "
          f"(reference {ref.objective:.6f})")
    print(f"  max |z_hw - z_ref| = {np.max(np.abs(hw.z - ref.z)):.3g}")
    print(f"  constraint violation: {problem.max_violation(hw.z):.3g}")


if __name__ == "__main__":
    main()
