#!/usr/bin/env python3
"""Signal processing on the carry-save datapath: an FIR filter.

The paper opens with "many signal processing and control engineering
applications have large numbers of floating-point multiply-add
operations at their core" (Sec. I).  An FIR filter is the canonical
instance: every output sample is a dot product of the taps with a
window of the input.

This example exercises two ways to build it:

1. **Through the HLS flow** -- write the tap loop in the C-like
   frontend, let the loop unroller and the Fig. 12 pass turn it into a
   chain of FCS-FMA units, then simulate the compiled datapath.
2. **Through the fused dot-product engine** -- the Sec. V extension that
   keeps the accumulator in carry-save format.

Both are compared against naive binary64 accumulation on an
ill-conditioned input (large DC offset on a small signal).
"""

import argparse
import math
import random

from repro.fma import (FusedDotProductUnit, exact_dot, fcs_engine,
                       naive_dot)
from repro.fp import FPValue
from repro.hls import (OpKind, default_library, parse_program,
                       run_fma_insertion, simulate)


def fir_source(taps: int) -> str:
    return f"""
    acc[0] = 0;
    for (i = 0; i < {taps}; i++) {{
        acc[i+1] = acc[i] + h[i]*x[i];
    }}
    y = acc[{taps}];
    """


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--taps", type=int, default=16)
    ap.add_argument("--samples", type=int, default=8)
    args = ap.parse_args()

    rng = random.Random(0)
    # a low-pass-ish tap set and a nasty input: tiny signal on a huge DC
    taps = [math.sin((k + 1) / args.taps) / args.taps
            for k in range(args.taps)]
    signal = [1e12 * (-1) ** k + math.sin(k / 3.0)
              for k in range(args.samples + args.taps)]

    print(f"FIR: {args.taps} taps, {args.samples} output samples")
    print("Compiling the tap loop through the HLS flow...")
    g = parse_program(fir_source(args.taps), outputs=["y"])
    lib = default_library(fma_flavor="fcs")
    rep = run_fma_insertion(g, lib)
    print(f"  {g.op_count(OpKind.FMA)} FCS-FMAs, schedule "
          f"{rep.baseline_length} -> {rep.final_length} cycles "
          f"({rep.reduction_percent:.1f}% shorter)\n")

    fused = FusedDotProductUnit()
    print(" n |      naive binary64      |  HLS datapath (FCS)      |"
          "  fused dot |  exact")
    for n in range(args.samples):
        window = signal[n:n + args.taps]
        a = [FPValue.from_float(v) for v in taps]
        b = [FPValue.from_float(v) for v in window]
        exact = float(exact_dot(a, b))
        naive = naive_dot(a, b).to_float()
        inputs = {f"h[{i}]": taps[i] for i in range(args.taps)}
        inputs.update({f"x[{i}]": window[i] for i in range(args.taps)})
        hls = simulate(g, inputs, engine=fcs_engine())["y"]
        fd = fused.dot(a, b).to_float()
        print(f"{n:2d} | {naive:+.18e} | {hls:+.18e} | "
              f"err {abs(fd - exact):.1e} | {exact:+.6e}")

    _ = rng  # reserved for future noisy variants


if __name__ == "__main__":
    main()
