"""End-to-end fuzzing: random straight-line programs through the whole
frontend -> pass -> simulate pipeline, checked against plain IEEE
evaluation.

This is the strongest correctness statement the reproduction makes: for
*arbitrary* multiply-add datapaths, the Fig. 12 rewrite plus the
bit-accurate carry-save execution agrees with double precision to
rounding noise.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fma import fcs_engine, pcs_engine
from repro.hls import (OpKind, default_library, parse_program,
                       run_fma_insertion, simulate)


def random_program(rng: random.Random, statements: int) -> tuple[str,
                                                                 list[str]]:
    """Generate a straight-line program over a growing set of names."""
    names = [f"in{i}" for i in range(4)]
    lines = []
    for s in range(statements):
        def operand():
            return rng.choice(names)

        shape = rng.randrange(5)
        if shape == 0:
            expr = f"{operand()}*{operand()} + {operand()}*{operand()}"
        elif shape == 1:
            expr = f"{operand()} - {operand()}*{operand()}"
        elif shape == 2:
            expr = f"{operand()}*{operand()} - {operand()}"
        elif shape == 3:
            expr = (f"{operand()}*{operand()} + {operand()}*{operand()}"
                    f" + {operand()}")
        else:
            expr = f"({operand()} + {operand()})*{operand()}"
        name = f"t{s}"
        lines.append(f"{name} = {expr};")
        names.append(name)
    return "\n".join(lines), [f"t{statements - 1}"]


class TestFuzzedPrograms:
    @pytest.mark.parametrize("flavor,engine_factory", [
        ("pcs", pcs_engine), ("fcs", fcs_engine)])
    @pytest.mark.parametrize("seed", range(8))
    def test_random_program_semantics(self, flavor, engine_factory, seed):
        rng = random.Random(seed)
        src, outputs = random_program(rng, statements=rng.randint(3, 12))
        inputs = {f"in{i}": rng.uniform(-8, 8) for i in range(4)}
        g = parse_program(src, outputs=outputs)
        before = simulate(g, inputs)
        lib = default_library(fma_flavor=flavor)
        rep = run_fma_insertion(g, lib)
        g.validate()
        after = simulate(g, inputs, engine=engine_factory())
        for k, ref in before.items():
            assert after[k] == pytest.approx(ref, rel=1e-11, abs=1e-11), \
                f"seed={seed} output {k}: {after[k]} vs {ref}\n{src}"
        # the pass must never *lengthen* the unconstrained schedule
        assert rep.final_length <= rep.baseline_length + \
            2 * lib.specs["c2i"].latency

    @pytest.mark.parametrize("seed", range(4))
    def test_pass_reaches_fixpoint(self, seed):
        rng = random.Random(100 + seed)
        src, outputs = random_program(rng, statements=8)
        g = parse_program(src, outputs=outputs)
        lib = default_library(fma_flavor="fcs")
        run_fma_insertion(g, lib)
        again = run_fma_insertion(g, lib)
        assert again.fma_inserted == 0


class TestHypothesisExpressions:
    @given(st.lists(st.floats(-50, 50, allow_nan=False), min_size=6,
                    max_size=6),
           st.sampled_from(["pcs", "fcs"]))
    @settings(max_examples=25, deadline=None)
    def test_two_level_chain(self, vals, flavor):
        src = """
        t = a*b + c;
        y = d*t + e*f;
        """
        names = list("abcdef")
        inputs = dict(zip(names, vals))
        g = parse_program(src, outputs=["y"])
        ref = simulate(g, inputs)["y"]
        run_fma_insertion(g, default_library(fma_flavor=flavor))
        engine = pcs_engine() if flavor == "pcs" else fcs_engine()
        got = simulate(g, inputs, engine=engine)["y"]
        assert got == pytest.approx(ref, rel=1e-11, abs=1e-11)


class TestConverterBalance:
    def test_every_cs_value_produced_and_consumed_consistently(self):
        # after the pass, every FMA A/C input is CS-typed and every
        # OUTPUT is IEEE-typed (the converters balance out)
        rng = random.Random(7)
        src, outputs = random_program(rng, statements=10)
        g = parse_program(src, outputs=outputs)
        run_fma_insertion(g, default_library(fma_flavor="pcs"))
        for n in g.nodes.values():
            if n.kind is OpKind.FMA:
                a, b, c = n.operands
                assert g.nodes[a].result_type.value == "cs"
                assert g.nodes[b].result_type.value == "ieee"
                assert g.nodes[c].result_type.value == "cs"
            if n.kind is OpKind.OUTPUT:
                assert g.nodes[n.operands[0]].result_type.value == "ieee"
