"""SEU campaign engine tests: determinism, taxonomy, resume, parallel.

The acceptance drill rides on the default 500-injection campaign: it
must complete with a nonzero detected count, report an explicit SDC
rate per site class, and be byte-for-byte reproducible under the same
seed -- including when resumed from a truncated checkpoint and when run
through the parallel (resilient) path.
"""

from __future__ import annotations

import json

import pytest

from repro import probes
from repro.faults.campaign import (CampaignConfig, load_checkpoint,
                                   plan_injections, render_text,
                                   run_campaign, run_injection)
from repro.faults.sites import SITE_CLASSES, SITES, select_sites

# pools / armed collectors are process-global: never run
# these concurrently with other tests (xdist, future runners)
pytestmark = pytest.mark.serial

SMALL = CampaignConfig(seed=11, injections=66, operands=8)


def _dumps(report: dict) -> str:
    return json.dumps(report, sort_keys=True)


@pytest.fixture(scope="module")
def default_report():
    # the acceptance campaign: >= 500 injections across every site
    return run_campaign(CampaignConfig(seed=0, injections=500))


def test_plan_is_deterministic_and_covers_all_sites():
    config = CampaignConfig(seed=3, injections=100)
    p1, p2 = plan_injections(config), plan_injections(config)
    assert p1 == p2
    assert [inj["id"] for inj in p1] == list(range(100))
    assert {inj["site"] for inj in p1} == set(SITES)
    assert any(len(inj["fracs"]) == 2 for inj in p1)  # multi-bit faults
    assert plan_injections(CampaignConfig(seed=4, injections=100)) != p1


def test_plan_respects_class_filter():
    config = CampaignConfig(seed=0, injections=40, classes=("batch",))
    plan = plan_injections(config)
    assert {SITES[inj["site"]].site_class for inj in plan} == {"batch"}


def test_report_reproducible_byte_for_byte():
    a = run_campaign(SMALL)
    b = run_campaign(SMALL)
    assert _dumps(a) == _dumps(b)


def test_default_campaign_acceptance(default_report):
    t = default_report["totals"]
    assert t["injections"] == 500
    assert t["detected"] > 0
    assert t["sdc"] > 0 and t["masked"] > 0  # full taxonomy exercised
    assert t["landed"] > 400  # operand pools actually exercise the sites
    # explicit SDC rate for every site class, PCS/FCS/batch included
    assert set(default_report["classes"]) == set(SITE_CLASSES)
    for cls, bucket in default_report["classes"].items():
        assert 0.0 <= bucket["sdc_rate"] <= 1.0
        assert bucket["sdc_rate"] == round(
            bucket["sdc"] / bucket["injections"], 4)
    # detection cross-references the analysis rules (NL/SCH)
    assert any(r.startswith("NL") or r.startswith("SCH")
               for r in default_report["rules"])


def test_per_site_and_per_stage_tables(default_report):
    assert set(default_report["sites"]) == set(SITES)
    for entry in default_report["sites"].values():
        assert entry["injections"] > 0
        assert (entry["masked"] + entry["detected"] + entry["sdc"]
                == entry["injections"])
    assert "multiplier" in default_report["stages"]
    assert "carry-reduce" in default_report["stages"]


def test_probes_disarmed_after_campaign(default_report):
    assert probes.ARMED is None


def test_differential_catch_superset_of_sdc(default_report):
    # every silent corruption changes raw bits, so the bit-exact
    # differential harness would flag at least the SDC population
    t = default_report["totals"]
    assert t["differential_catch"] >= t["sdc"]


def test_render_text_contains_rate_table(default_report):
    text = render_text(default_report)
    assert "SDC" in text and "sdc-rate" in text
    for cls in SITE_CLASSES:
        assert cls in text


def test_exception_detections_have_detail():
    report = run_campaign(CampaignConfig(seed=0, injections=200,
                                         sites=("pcs.operand.word",
                                                "fcs.operand.word",
                                                "pcs.mant.carry")))
    assert report["totals"]["detected"] > 0


def test_checkpoint_resume_is_byte_identical(tmp_path):
    ckpt = tmp_path / "campaign.jsonl"
    full = run_campaign(SMALL, checkpoint=ckpt)
    lines = ckpt.read_text().splitlines()
    assert len(lines) == SMALL.injections
    # truncate mid-campaign, with a torn trailing line
    ckpt.write_text("\n".join(lines[:30]) + "\n" + lines[30][:17] + "\n")
    resumed = run_campaign(SMALL, checkpoint=ckpt, resume=True)
    assert _dumps(full) == _dumps(resumed)
    assert len(load_checkpoint(ckpt)) == SMALL.injections


def test_parallel_report_matches_serial():
    serial = run_campaign(SMALL)
    par = run_campaign(SMALL, workers=2, chunk=16)
    res = par.pop("resilience")
    assert res["failed"] == []
    assert _dumps(serial) == _dumps(par)


def test_run_injection_record_shape():
    config = CampaignConfig(seed=5, injections=len(SITES))
    plan = plan_injections(config)
    sites = select_sites()
    rec = run_injection(config, sites[plan[0]["id"] % len(sites)], plan[0])
    assert {"id", "site", "class", "stage", "outcome", "detail",
            "landed", "bit_diff", "differential_catch", "bits",
            "rules"} <= set(rec)
    assert rec["outcome"] in ("masked", "detected", "sdc")


def test_empty_site_selection_raises():
    with pytest.raises(KeyError):
        run_campaign(CampaignConfig(sites=("nope",)))


def test_config_roundtrip():
    c = CampaignConfig(seed=9, injections=10, classes=("pcs", "batch"))
    assert CampaignConfig.from_dict(c.to_dict()) == c


def test_cli_list_sites_and_small_run(tmp_path, capsys):
    from repro.faults.__main__ import main

    assert main(["--list-sites"]) == 0
    out = capsys.readouterr().out
    assert "pcs.carry_reduce.carry" in out and "schedule.listing1" in out
    json_out = tmp_path / "rep.json"
    assert main(["--injections", "40", "--seed", "2", "--quiet",
                 "--json-out", str(json_out)]) == 0
    report = json.loads(json_out.read_text())
    assert report["totals"]["injections"] == 40


def test_cli_rejects_bad_filters(capsys):
    """Bad arguments exit 2 (argparse convention), not the runtime 1;
    the full exit-code contract lives in test_cli_exit_codes.py."""
    import pytest

    from repro.faults.__main__ import main

    with pytest.raises(SystemExit) as exc:
        main(["--classes", "bogus"])
    assert exc.value.code == 2
    with pytest.raises(SystemExit) as exc:
        main(["--resume"])
    assert exc.value.code == 2
