"""Tests for the [12] PCS multiply-accumulate baseline."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.fma.accumulator import AccumulatorOverflow, PcsAccumulator
from repro.fp import FPValue, double


class TestBasicAccumulation:
    def test_sum_of_products(self):
        acc = PcsAccumulator()
        for a, b in [(1.5, 2.0), (0.25, 4.0), (-3.0, 1.0)]:
            acc.accumulate(double(a), double(b))
        assert acc.result_float() == 1.5 * 2.0 + 0.25 * 4.0 - 3.0

    def test_empty_is_zero(self):
        assert PcsAccumulator().result().is_zero

    def test_reset(self):
        acc = PcsAccumulator()
        acc.accumulate(double(2.0), double(2.0))
        acc.reset()
        assert acc.result().is_zero and acc.operations == 0

    @given(st.lists(st.tuples(
        st.floats(1.0, 1e6), st.booleans(),
        st.floats(1.0, 1e6), st.booleans()),
        min_size=1, max_size=20).map(
            lambda ps: [((-a if sa else a), (-b if sb else b))
                        for a, sa, b, sb in ps]))
    @settings(max_examples=30)
    def test_matches_exact_sum_of_rounded_products(self, pairs):
        # magnitudes in [1, 1e12]: every product bit lies inside the
        # [2^-80, 2^80) window, so accumulation is exact until the final
        # normalization
        acc = PcsAccumulator(max_exp=80, lsb_exp=-80)
        exact = Fraction(0)
        for a, b in pairs:
            fa, fb = double(a), double(b)
            acc.accumulate(fa, fb)
            from repro.fp import fp_mul
            exact += fp_mul(fa, fb).to_fraction()
        # accumulation itself is exact within the window: only the
        # final normalization rounds
        got = acc.result().to_fraction() if acc.result().is_finite \
            else None
        from repro.fp import BINARY64
        want = FPValue.from_fraction(exact, BINARY64).to_fraction() \
            if exact else Fraction(0)
        assert got == want

    def test_carry_free_addition_is_exact_in_window(self):
        # the classic accumulation killer: alternating huge/tiny values
        acc = PcsAccumulator(max_exp=80, lsb_exp=-80)
        acc.accumulate_value(double(2.0 ** 60))
        acc.accumulate_value(double(1.0))
        acc.accumulate_value(double(-(2.0 ** 60)))
        assert acc.result_float() == 1.0


class TestWindowSemantics:
    def test_overflow_detected(self):
        acc = PcsAccumulator(max_exp=16, lsb_exp=-16)
        with pytest.raises(AccumulatorOverflow):
            acc.accumulate_value(double(2.0 ** 40))

    def test_non_finite_rejected(self):
        from repro.fp import BINARY64
        acc = PcsAccumulator()
        with pytest.raises(AccumulatorOverflow):
            acc.accumulate_value(FPValue.inf(BINARY64))

    def test_truncation_below_window(self):
        acc = PcsAccumulator(max_exp=16, lsb_exp=0)
        acc.accumulate_value(double(1.5))   # the .5 is below the LSB
        assert acc.result_float() == 1.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            PcsAccumulator(max_exp=0, lsb_exp=0)

    def test_zero_addend_counts_operation(self):
        from repro.fp import BINARY64
        acc = PcsAccumulator()
        acc.accumulate_value(FPValue.zero(BINARY64))
        assert acc.operations == 1


class TestVersusFmaChain:
    """The Sec. III argument: the MAC shines on independent sums, not on
    dependent chains."""

    def test_mac_beats_naive_on_large_sums(self):
        rng = random.Random(0)
        acc = PcsAccumulator(max_exp=96, lsb_exp=-96)
        naive = 0.0
        exact = Fraction(0)
        for _ in range(200):
            a = rng.uniform(-1e6, 1e6)
            b = rng.uniform(-1e6, 1e6)
            fa, fb = double(a), double(b)
            acc.accumulate(fa, fb)
            naive = naive + (a * b)
            from repro.fp import fp_mul
            exact += fp_mul(fa, fb).to_fraction()
        err_mac = abs(acc.result().to_fraction() - exact)
        err_naive = abs(Fraction(naive) - exact)
        assert err_mac <= err_naive

    def test_chained_dependence_needs_fma_not_mac(self):
        # x2 = e*f + g*x1 needs x1 back in IEEE format to multiply: the
        # MAC's low-latency addition does not help -- the reason the
        # paper eliminates it (Sec. III).  Functionally the MAC route
        # equals the discrete path here, while the FMA chain matches
        # the correctly-rounded result.
        from repro.fma import fcs_engine
        from repro.fp import fp_mul

        a, b, c, d, e, f, g = (0.1, 3.0, 0.7, -2.0, 1e-8, 5.0, 32.0)
        # MAC route: accumulate a*b + c*d, normalize, then a *new*
        # accumulation for e*f + g*x1
        acc = PcsAccumulator()
        acc.accumulate(double(a), double(b))
        acc.accumulate(double(c), double(d))
        x1 = acc.result()
        acc2 = PcsAccumulator()
        acc2.accumulate(double(e), double(f))
        acc2.accumulate(double(g), x1)
        mac_x2 = acc2.result_float()

        # FMA-chain route: x1 stays in carry-save format end to end
        eng = fcs_engine()
        x1c = eng.fma(eng.lift(fp_mul(double(a), double(b))), double(c),
                      eng.lift(double(d)))
        x2c = eng.fma(eng.lift(fp_mul(double(e), double(f))), double(g),
                      x1c)
        fma_x2 = eng.lower(x2c).to_float()

        exact_x1 = Fraction(a) * Fraction(b) + Fraction(c) * Fraction(d)
        exact_x2 = Fraction(e) * Fraction(f) + Fraction(g) * exact_x1
        assert abs(fma_x2 - float(exact_x2)) <= \
            abs(mac_x2 - float(exact_x2)) + 1e-18
