"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import math
import struct

import pytest
from hypothesis import HealthCheck, settings, strategies as st

from repro.fp import BINARY64, FPValue

# A leaner default profile so the full property suite stays fast; the
# invariants here are exercised with hundreds of examples each, which in
# practice has been enough to find every seeded bug.
#
# ``function_scoped_fixture`` is suppressed because the autouse
# ``isolate_process_state`` fixture below runs around every test,
# including @given ones; it resets process-global state once per test
# function (not per example), which is exactly the intent.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def isolate_process_state(tmp_path, monkeypatch):
    """Order-independence guard: no test leaks process-global state.

    Three pieces of module-level state previously made test outcomes
    depend on execution order:

    * the ``lru_cache`` memos behind :func:`repro.hw` lookups -- a test
      monkeypatching a device model could poison every later reader, and
      cache-stat assertions depended on who warmed the cache first;
    * the conformance :class:`ResultCache` default directory -- a shared
      on-disk cache made sweep results bleed between tests (and between
      whole pytest runs);
    * the ``repro.probes`` / ``repro.telemetry`` arming globals -- a
      test failing mid-``collecting`` region would leave instrumentation
      armed for the rest of the session.

    Each test now starts cold: hw memos cleared (re-warm is
    sub-millisecond), the cache dir pointed into ``tmp_path``, and both
    arming globals verified clean before *and* after.  A test that leaks
    an armed collector fails itself rather than corrupting its
    successors.
    """
    from repro import probes
    from repro.batch.memo import clear_hw_caches
    from repro.guard import residue as _gd_core
    from repro.telemetry import core as _tm_core

    clear_hw_caches()
    monkeypatch.setenv("REPRO_CONFORMANCE_CACHE",
                       str(tmp_path / "conformance-cache"))
    assert probes.ARMED is None, "previous test leaked armed probes"
    assert _tm_core.ACTIVE is None, "previous test leaked telemetry"
    assert _gd_core.ACTIVE is None, "previous test leaked an armed guard"
    yield
    leaked_probes = probes.ARMED is not None
    leaked_tm = _tm_core.ACTIVE is not None
    leaked_gd = _gd_core.ACTIVE is not None
    probes.ARMED = None
    _tm_core.ACTIVE = None
    _gd_core.ACTIVE = None
    assert not leaked_probes, "test leaked armed probes"
    assert not leaked_tm, "test leaked an active telemetry collector"
    assert not leaked_gd, "test leaked an armed residue guard"


def bits_to_float(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


@st.composite
def normal_doubles(draw, min_exp: int = -900, max_exp: int = 900):
    """Finite normal binary64 values with bounded exponent.

    The exponent bound keeps products/sums inside the normal range so
    tests don't conflate flush-to-zero/overflow policy with the property
    under test (separate tests cover those edges).
    """
    sign = draw(st.booleans())
    exp = draw(st.integers(min_exp, max_exp))
    frac = draw(st.integers(0, (1 << 52) - 1))
    x = math.ldexp(1.0 + frac / (1 << 52), exp)
    return -x if sign else x


@st.composite
def normal_fpvalues(draw, min_exp: int = -900, max_exp: int = 900):
    return FPValue.from_float(draw(normal_doubles(min_exp, max_exp)),
                              BINARY64)


@st.composite
def cs_words(draw, max_width: int = 128):
    """(sum, carry, width) triples for CSNumber construction."""
    width = draw(st.integers(2, max_width))
    s = draw(st.integers(0, (1 << width) - 1))
    c = draw(st.integers(0, (1 << width) - 1))
    return s, c, width
