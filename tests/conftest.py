"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import math
import struct

from hypothesis import HealthCheck, settings, strategies as st

from repro.fp import BINARY64, FPValue

# A leaner default profile so the full property suite stays fast; the
# invariants here are exercised with hundreds of examples each, which in
# practice has been enough to find every seeded bug.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def bits_to_float(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


@st.composite
def normal_doubles(draw, min_exp: int = -900, max_exp: int = 900):
    """Finite normal binary64 values with bounded exponent.

    The exponent bound keeps products/sums inside the normal range so
    tests don't conflate flush-to-zero/overflow policy with the property
    under test (separate tests cover those edges).
    """
    sign = draw(st.booleans())
    exp = draw(st.integers(min_exp, max_exp))
    frac = draw(st.integers(0, (1 << 52) - 1))
    x = math.ldexp(1.0 + frac / (1 << 52), exp)
    return -x if sign else x


@st.composite
def normal_fpvalues(draw, min_exp: int = -900, max_exp: int = 900):
    return FPValue.from_float(draw(normal_doubles(min_exp, max_exp)),
                              BINARY64)


@st.composite
def cs_words(draw, max_width: int = 128):
    """(sum, carry, width) triples for CSNumber construction."""
    width = draw(st.integers(2, max_width))
    s = draw(st.integers(0, (1 << width) - 1))
    c = draw(st.integers(0, (1 << width) - 1))
    return s, c, width
