"""Per-request verification through the serving layer.

A request carrying ``verify`` routes its micro-batch through the
:class:`repro.guard.voting.GuardedExecutor`: the residue checkers run
armed, a flagged execution is redone and voted on, and the response
reports the guard classification.  These tests drive all three
outcomes end-to-end through ``FmaServer.submit``:

* ``clean`` -- no fault, one guarded execution, result bit-identical
  to the unguarded reference;
* ``corrected`` -- a transient fault armed on the first execution is
  flagged by the window residue check, the re-execution recomputes the
  uncorrupted value, and the served word equals the oracle exactly;
* ``uncorrectable`` -- every execution flags, the budget runs out, and
  the server answers a structured ``error`` (kind ``uncorrectable``)
  -- corrupted data is never returned as a result.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import probes
from repro.guard.residue import GuardMismatch
from repro.serve import FmaServer, Request, ServeConfig
from repro.serve.executor import reference_result
from repro.telemetry import collecting

from _serve_util import run

pytestmark = pytest.mark.serial

ONE = 0x3FF0000000000000
PI = 0x400921FB54442D18
HALF = 0x3FE0000000000000


def fma_req(req_id, fmt="pcs", verify=None) -> Request:
    return Request(req_id=req_id, op="fma", fmt=fmt, a=PI, b=ONE,
                   c=HALF, verify=verify)


def submit_one(req: Request, config: ServeConfig | None = None):
    async def body():
        cfg = config if config is not None else ServeConfig(
            slow_start=False, max_wait_s=0.001)
        async with FmaServer(cfg) as srv:
            return await srv.submit(req), dict(srv.stats)

    return run(body())


def raise_mismatch(payload):
    """Injectable work function: every execution flags."""
    raise GuardMismatch("test", "forced")


class TestVerifiedSubmit:
    @pytest.mark.parametrize("fmt", ["classic", "pcs", "fcs"])
    def test_clean_path_is_bit_identical(self, fmt):
        resp, stats = submit_one(fma_req(1, fmt=fmt, verify="residue"))
        assert resp.ok
        assert resp.meta == {"guard": "clean"}
        assert resp.result == reference_result(fma_req(1, fmt=fmt))[1]
        assert stats["guard.clean"] == 1

    @pytest.mark.parametrize("mode", ["residue", "dmr", "tmr"])
    def test_all_verify_levels_serve(self, mode):
        resp, stats = submit_one(fma_req(2, verify=mode))
        assert resp.ok and resp.meta == {"guard": "clean"}
        assert stats["guard.clean"] == 1

    def test_unverified_requests_carry_no_guard_meta(self):
        resp, stats = submit_one(fma_req(3))
        assert resp.ok and resp.meta == {}
        assert stats["guard.clean"] == 0

    def test_transient_fault_is_corrected_bit_identically(self):
        # upset one window-sum bit on the first guarded execution only;
        # the mod-2^W window congruence flags it, and the re-execution
        # (the fault is transient: Arm fires at one occurrence) must
        # recompute the exact oracle word
        arm = probes.Arm(lambda v: (v[0] ^ (1 << 100), v[1]), at_call=0)
        with probes.armed({"batch.window": arm}):
            resp, stats = submit_one(fma_req(4, verify="residue"))
        assert arm.hits == 1
        assert resp.ok
        assert resp.meta == {"guard": "corrected"}
        assert resp.result == reference_result(fma_req(4))[1]
        assert stats["guard.corrected"] == 1

    def test_uncorrectable_is_rejected_never_returned_as_data(self):
        cfg = ServeConfig(slow_start=False, max_wait_s=0.001,
                          work_fn=raise_mismatch)
        resp, stats = submit_one(fma_req(5, verify="residue"), cfg)
        assert not resp.ok
        assert resp.status == "error"
        assert resp.kind == "uncorrectable"
        assert resp.result is None
        assert resp.meta == {"guard": "uncorrectable"}
        assert stats["guard.uncorrectable"] == 1

    def test_guard_telemetry_flows_through_serve(self):
        with collecting() as t:
            resp, _stats = submit_one(fma_req(6, verify="residue"))
        assert resp.ok
        counters = t.snapshot().counters
        assert counters["serve.guard.clean"] == 1
        assert counters["guard.exec.clean"] == 1
        assert counters["guard.checks.product"] >= 1
        assert counters["guard.checks.window"] >= 1

    def test_mixed_batch_keeps_levels_apart(self):
        async def body():
            cfg = ServeConfig(slow_start=False, max_batch=8,
                              max_wait_s=0.002)
            async with FmaServer(cfg) as srv:
                reqs = [fma_req(i) for i in range(3)]
                reqs += [fma_req(10 + i, verify="residue")
                         for i in range(3)]
                resps = await asyncio.gather(
                    *(srv.submit(r) for r in reqs))
                return resps, dict(srv.stats)

        resps, stats = run(body())
        assert all(r.ok for r in resps)
        plain = [r for r in resps if r.req_id < 10]
        checked = [r for r in resps if r.req_id >= 10]
        assert all(r.meta == {} for r in plain)
        assert all(r.meta == {"guard": "clean"} for r in checked)
        # one word, bit-identical, regardless of the path taken
        want = reference_result(fma_req(0))[1]
        assert {r.result for r in resps} == {want}
        assert stats["guard.clean"] == 1         # one verified batch
