"""Tests for the PCS-FMA and FCS-FMA datapaths (repro.fma.csfma)."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from conftest import normal_doubles
from repro.fma import (CSFmaUnit, FcsFmaUnit, PCS_PARAMS, PcsFmaUnit,
                       cs_to_ieee, ieee_to_cs)
from repro.fma.csfma import FmaTrace
from repro.fp import BINARY64, FPValue, double, ulp_error

PCS = PcsFmaUnit()
FCS = FcsFmaUnit()
UNITS = [PCS, FCS]


def lift(unit, x: float):
    return ieee_to_cs(double(x), unit.params)


def run(unit, a: float, b: float, c: float,
        trace: FmaTrace | None = None) -> FPValue:
    return cs_to_ieee(unit.fma(lift(unit, a), double(b), lift(unit, c),
                               trace))


class TestSingleOperationAccuracy:
    @pytest.mark.parametrize("unit", UNITS, ids=lambda u: u.name)
    @given(a=normal_doubles(-60, 60), b=normal_doubles(-60, 60),
           c=normal_doubles(-60, 60))
    def test_within_one_ulp_of_exact(self, unit, a, b, c):
        out = run(unit, a, b, c)
        exact = Fraction(a) + Fraction(b) * Fraction(c)
        if out.is_normal and exact != 0:
            assert ulp_error(out, exact) <= 1

    @pytest.mark.parametrize("unit", UNITS, ids=lambda u: u.name)
    @given(a=normal_doubles(-30, 30), b=normal_doubles(-30, 30))
    def test_cancellation_stays_accurate(self, unit, a, b):
        # A + B*C with A ~ -B*C: the leading-zero stress case of
        # Sec. III-G
        c = -a / b
        out = run(unit, a, b, c)
        exact = Fraction(a) + Fraction(b) * Fraction(c)
        if exact == 0:
            assert out.is_zero or abs(out.to_float()) < 1e-300
        elif out.is_normal:
            assert ulp_error(out, exact) <= 1

    @pytest.mark.parametrize("unit", UNITS, ids=lambda u: u.name)
    def test_simple_values(self, unit):
        assert run(unit, 1.5, 2.0, 3.25).to_float() == 1.5 + 2.0 * 3.25
        assert run(unit, 0.0, 1.0, 1.0).to_float() == 1.0
        assert run(unit, -1.0, 1.0, 1.0).is_zero

    @pytest.mark.parametrize("unit", UNITS, ids=lambda u: u.name)
    @given(a=normal_doubles(-300, 300), b=normal_doubles(-300, 300),
           c=normal_doubles(-300, 300))
    def test_wide_exponent_spread(self, unit, a, b, c):
        out = run(unit, a, b, c)
        exact = Fraction(a) + Fraction(b) * Fraction(c)
        if out.is_normal and exact != 0:
            assert ulp_error(out, exact) <= 1


class TestOperandDominanceExtremes:
    """Exercise the alignment-shifter clamps at both ends."""

    @pytest.mark.parametrize("unit", UNITS, ids=lambda u: u.name)
    def test_addend_dominates_product(self, unit):
        out = run(unit, 1e200, 1e-100, 1e-100)
        assert out.to_float() == 1e200

    @pytest.mark.parametrize("unit", UNITS, ids=lambda u: u.name)
    def test_product_dominates_addend(self, unit):
        out = run(unit, 1e-200, 1e50, 1e50)
        exact = Fraction(double(1e50).to_fraction()) ** 2
        assert out.is_normal
        assert ulp_error(out, Fraction(1e-200) + exact) <= 1

    @pytest.mark.parametrize("unit", UNITS, ids=lambda u: u.name)
    def test_partial_overlap_keeps_low_bits(self, unit):
        # the addend 2^60 ULPs above the product: both contribute
        out = run(unit, 2.0 ** 60, 1.0, 1.0)
        assert out.to_float() == 2.0 ** 60 + 1.0


class TestSpecialValues:
    @pytest.mark.parametrize("unit", UNITS, ids=lambda u: u.name)
    def test_nan_propagation(self, unit):
        nan = ieee_to_cs(FPValue.nan(BINARY64), unit.params)
        assert unit.fma(nan, double(1.0), lift(unit, 1.0)).is_nan
        assert unit.fma(lift(unit, 1.0), FPValue.nan(BINARY64),
                        lift(unit, 1.0)).is_nan

    @pytest.mark.parametrize("unit", UNITS, ids=lambda u: u.name)
    def test_inf_times_zero_is_nan(self, unit):
        inf_c = ieee_to_cs(FPValue.inf(BINARY64), unit.params)
        zero_b = FPValue.zero(BINARY64)
        assert unit.fma(lift(unit, 1.0), zero_b, inf_c).is_nan

    @pytest.mark.parametrize("unit", UNITS, ids=lambda u: u.name)
    def test_inf_minus_inf_is_nan(self, unit):
        inf_a = ieee_to_cs(FPValue.inf(BINARY64, 1), unit.params)
        r = unit.fma(inf_a, double(1.0),
                     ieee_to_cs(FPValue.inf(BINARY64), unit.params))
        assert r.is_nan

    @pytest.mark.parametrize("unit", UNITS, ids=lambda u: u.name)
    def test_inf_product_sign(self, unit):
        r = unit.fma(lift(unit, 1.0), double(-2.0),
                     ieee_to_cs(FPValue.inf(BINARY64), unit.params))
        assert r.is_inf and r.sign == 1

    @pytest.mark.parametrize("unit", UNITS, ids=lambda u: u.name)
    def test_zero_operands(self, unit):
        z = ieee_to_cs(FPValue.zero(BINARY64), unit.params)
        r = unit.fma(z, FPValue.zero(BINARY64), z)
        assert r.is_zero
        r = unit.fma(lift(unit, 2.5), FPValue.zero(BINARY64),
                     lift(unit, 7.0))
        assert cs_to_ieee(r).to_float() == 2.5

    @pytest.mark.parametrize("unit", UNITS, ids=lambda u: u.name)
    def test_exponent_overflow_saturates(self, unit):
        out = run(unit, 1e300, 1e300, 1e300)
        assert out.is_inf

    @pytest.mark.parametrize("unit", UNITS, ids=lambda u: u.name)
    def test_result_underflow_flushes(self, unit):
        out = run(unit, 0.0, 1e-300, 1e-300)
        # below the CS exponent range the result flushes; lowering the
        # in-range CS value to binary64 flushes instead
        assert out.is_zero or out.to_float() == 0.0


class TestArchitecturalInvariants:
    @pytest.mark.parametrize("unit", UNITS, ids=lambda u: u.name)
    @given(a=normal_doubles(-40, 40), b=normal_doubles(-40, 40),
           c=normal_doubles(-40, 40))
    def test_mux_position_within_hardware_range(self, unit, a, b, c):
        t = FmaTrace()
        run(unit, a, b, c, t)
        assert 0 <= t.skipped_blocks <= \
            unit.params.window_blocks - unit.params.mant_blocks

    @given(a=normal_doubles(-40, 40), b=normal_doubles(-40, 40),
           c=normal_doubles(-40, 40))
    def test_pcs_window_carries_are_chunk_aligned(self, a, b, c):
        t = FmaTrace()
        run(PCS, a, b, c, t)
        for i in range(PCS.params.window_width):
            if (t.window_carry >> i) & 1:
                assert i % PCS.params.carry_spacing == 0

    @given(a=normal_doubles(-40, 40), b=normal_doubles(-40, 40),
           c=normal_doubles(-40, 40))
    def test_fcs_lza_is_lower_bound_on_window_redundancy(self, a, b, c):
        from repro.cs import leading_sign_bits
        t = FmaTrace()
        run(FCS, a, b, c, t)
        if t.lza_estimate is None:
            return
        W = FCS.params.window_width
        v = (t.window_sum + t.window_carry) & ((1 << W) - 1)
        assert t.lza_estimate <= leading_sign_bits(v, W)

    @pytest.mark.parametrize("unit", UNITS, ids=lambda u: u.name)
    @given(a=normal_doubles(-40, 40), b=normal_doubles(-40, 40),
           c=normal_doubles(-40, 40))
    def test_result_round_data_respects_format_masks(self, unit, a, b, c):
        r = unit.fma(lift(unit, a), double(b), lift(unit, c))
        if r.is_normal:
            p = unit.params
            assert r.mant.carry & ~p.mant_carry_mask == 0
            assert r.round_data.carry & ~p.round_carry_mask == 0

    def test_format_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PCS.fma(lift(FCS, 1.0), double(1.0), lift(FCS, 1.0))

    def test_selector_validation(self):
        with pytest.raises(ValueError):
            CSFmaUnit(PCS_PARAMS, selector="magic")

    def test_unit_reprs(self):
        assert "pcs" in repr(PCS)
        assert PCS.name == "pcs-fma"
        assert FCS.name == "fcs-fma"


class TestDeferredRounding:
    def test_round_data_feeds_successor(self):
        # build a result whose rounding data is non-trivial, feed it as C
        a, b, c = 1.0, 1.0 + 2.0 ** -30, 1.0 + 2.0 ** -25
        t1 = PCS.fma(lift(PCS, a), double(b), lift(PCS, c))
        assert t1.is_normal
        # chain: 0 + 1.0 * t1 must reproduce t1's value to <= 1 ulp
        z = ieee_to_cs(FPValue.zero(BINARY64), PCS.params)
        r = PCS.fma(z, double(1.0), t1)
        exact = Fraction(a) + Fraction(b) * Fraction(c)
        out = cs_to_ieee(r)
        assert ulp_error(out, exact) <= 1

    @given(st.integers(0, 2**54 - 1))
    def test_decision_threshold(self, frac):
        from repro.cs import CSNumber
        from repro.fma import round_decision
        rd = CSNumber(frac, 0, 55, PCS_PARAMS.round_carry_mask)
        assert round_decision(rd, 55) == 0   # below half: never up
        rd2 = CSNumber(frac | (1 << 54), 0, 55, PCS_PARAMS.round_carry_mask)
        assert round_decision(rd2, 55) == 1  # at/above half: up
