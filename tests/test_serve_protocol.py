"""Wire format, micro-batcher mechanics, and the TCP/JSON-lines
frontend of :mod:`repro.serve`.

The codec tests pin the wire contract (hex binary64 words, structured
response shapes); the batcher tests drive the coalescing logic with a
fake clock so both flush knobs and the deadline clipping are checked
deterministically; the TCP tests run a real server on an ephemeral
port and assert end-to-end bit identity plus graceful handling of
malformed lines.
"""

from __future__ import annotations

import asyncio
import json
import math

import pytest

from repro.fp.formats import BINARY64
from repro.fp.value import FPValue
from repro.serve import FmaServer, Request, ServeConfig
from repro.serve.batcher import Entry, MicroBatcher
from repro.serve.protocol import (ProtocolError, Response, decode_request,
                                  decode_response, encode_request,
                                  encode_response, fp_to_word, hex_to_word,
                                  word_to_fp, word_to_hex)

from _serve_util import run

pytestmark = pytest.mark.serial


# ---------------------------------------------------------------------------
# binary64 word conversions


class TestWordConversions:
    @pytest.mark.parametrize("x", [0.0, 1.0, -1.0, 1.5, -2.75, 3.141592653589793,
                                   2.0 ** 100, -(2.0 ** -100), 1e308])
    def test_roundtrip_matches_struct(self, x):
        import struct

        word = struct.unpack("<Q", struct.pack("<d", x))[0]
        fp = word_to_fp(word)
        assert fp_to_word(fp) == word
        assert fp.to_float() == x

    def test_signed_zero_and_inf(self):
        assert fp_to_word(word_to_fp(0x8000000000000000)) == 0x8000000000000000
        assert fp_to_word(word_to_fp(0x7FF0000000000000)) == 0x7FF0000000000000
        assert fp_to_word(word_to_fp(0xFFF0000000000000)) == 0xFFF0000000000000

    def test_nan_canonicalized(self):
        # any NaN payload decodes to NaN and re-encodes as the quiet NaN
        for word in (0x7FF8000000000000, 0x7FF0000000000001,
                     0xFFFFFFFFFFFFFFFF):
            fp = word_to_fp(word)
            assert fp.is_nan
            assert fp_to_word(fp) == 0x7FF8000000000000

    def test_subnormal_flushes_to_signed_zero(self):
        assert fp_to_word(word_to_fp(0x0000000000000001)) == 0
        assert fp_to_word(word_to_fp(0x8000000000000001)) == (1 << 63)

    def test_hex_codec(self):
        assert word_to_hex(0x3FF0000000000000) == "0x3ff0000000000000"
        assert hex_to_word("0x3FF0000000000000") == 0x3FF0000000000000
        with pytest.raises(ProtocolError):
            hex_to_word("not-hex")
        with pytest.raises(ProtocolError):
            hex_to_word("0x1" + "0" * 16)      # 65+ bits

    def test_matches_from_float(self):
        for x in (1.0, -0.5, 1234.5678, 2.0 ** -500):
            assert (fp_to_word(FPValue.from_float(x, BINARY64))
                    == fp_to_word(word_to_fp(fp_to_word(
                        FPValue.from_float(x, BINARY64)))))


# ---------------------------------------------------------------------------
# request/response codec


def fma_obj(**kw) -> dict:
    obj = {"id": 1, "op": "fma", "fmt": "pcs",
           "a": "0x3ff0000000000000", "b": "0x4000000000000000",
           "c": "0x3fe0000000000000"}
    obj.update(kw)
    return obj


class TestRequestCodec:
    def test_fma_roundtrip(self):
        req = decode_request(fma_obj(timeout_s=0.25))
        assert req.op == "fma" and req.fmt == "pcs"
        assert req.a == 0x3FF0000000000000
        assert req.timeout_s == 0.25
        assert decode_request(encode_request(req)) == req

    def test_vector_roundtrip(self):
        req = decode_request({"id": "v1", "op": "dot", "fmt": "fcs",
                              "a": ["0x3ff0000000000000"] * 3,
                              "b": ["0x4000000000000000"] * 3})
        assert req.n_elements == 3
        assert decode_request(encode_request(req)) == req

    def test_int_words_accepted(self):
        req = decode_request(fma_obj(a=0x3FF0000000000000))
        assert req.a == 0x3FF0000000000000

    @pytest.mark.parametrize("mutate", [
        {"op": "nope"},                          # unknown op
        {"fmt": "classic", "op": "dot"},         # op/fmt mismatch
        {"a": ["0x0"], "b": ["0x0", "0x0"], "op": "acc", "fmt": "pcs",
         "c": None},                             # length mismatch
        {"a": True},                             # bool is not a word
        {"a": -1},                               # negative word
        {"timeout_s": "soon"},                   # non-numeric timeout
        {"timeout_s": 0},                        # non-positive budget
        {"id": None},                            # id required
    ])
    def test_malformed_requests_raise(self, mutate):
        obj = fma_obj()
        obj.update(mutate)
        obj = {k: v for k, v in obj.items() if v is not None or k == "id"}
        with pytest.raises(ProtocolError):
            decode_request(obj)

    def test_missing_id_raises(self):
        obj = fma_obj()
        del obj["id"]
        with pytest.raises(ProtocolError):
            decode_request(obj)


class TestResponseCodec:
    def test_ok_roundtrip(self):
        resp = Response(7, "ok", result=0x4008000000000000, attempts=2)
        back = decode_response(encode_response(resp))
        assert back.ok and back.result == resp.result
        assert back.attempts == 2

    def test_rejected_roundtrip(self):
        resp = Response(8, "rejected", reason="queue-full")
        back = decode_response(encode_response(resp))
        assert back.status == "rejected" and back.reason == "queue-full"

    def test_error_roundtrip(self):
        resp = Response(9, "error", kind="timeout", message="hung",
                        attempts=3)
        back = decode_response(encode_response(resp))
        assert back.kind == "timeout" and back.message == "hung"

    def test_unknown_status_raises(self):
        with pytest.raises(ProtocolError):
            decode_response({"id": 1, "status": "maybe"})


class TestVerifyProtocol:
    def test_verify_roundtrip(self):
        req = decode_request(fma_obj(verify="residue"))
        assert req.verify == "residue"
        assert encode_request(req)["verify"] == "residue"
        assert decode_request(encode_request(req)) == req

    def test_verify_defaults_to_off(self):
        req = decode_request(fma_obj())
        assert req.verify is None
        assert "verify" not in encode_request(req)

    @pytest.mark.parametrize("bad", ["paranoid", "", 3, True])
    def test_invalid_verify_rejected(self, bad):
        with pytest.raises(ProtocolError):
            decode_request(fma_obj(verify=bad))

    def test_guard_meta_roundtrip(self):
        resp = Response(4, "ok", result=0x3FF0000000000000,
                        meta={"guard": "corrected"})
        wire = encode_response(resp)
        assert wire["guard"] == "corrected"
        assert decode_response(wire).meta == {"guard": "corrected"}
        # uncorrectable batches answer with an error carrying the
        # classification -- never with data
        err = Response(5, "error", kind="uncorrectable", message="x",
                       meta={"guard": "uncorrectable"})
        wire = encode_response(err)
        assert wire["guard"] == "uncorrectable"
        assert "result" not in wire


# ---------------------------------------------------------------------------
# micro-batcher mechanics (fake clock, manual timers)


class FakeLoop:
    """Deterministic clock + timer wheel for driving the batcher."""

    def __init__(self):
        self.now = 0.0
        self.timers = []          # (fire_at, cb, handle)

    def clock(self) -> float:
        return self.now

    def schedule(self, delay, cb):
        handle = _Handle()
        self.timers.append((self.now + delay, cb, handle))
        return handle

    def advance(self, dt: float) -> None:
        self.now += dt
        due = [(t, cb, h) for t, cb, h in self.timers
               if t <= self.now and not h.cancelled]
        self.timers = [(t, cb, h) for t, cb, h in self.timers
                       if t > self.now and not h.cancelled]
        for _t, cb, _h in sorted(due, key=lambda x: x[0]):
            cb()

    def pending_delays(self):
        return [t - self.now for t, _cb, h in self.timers
                if not h.cancelled]


class _Handle:
    cancelled = False

    def cancel(self):
        self.cancelled = True


def make_batcher(loop: FakeLoop, batches: list, *, max_batch=4,
                 max_wait_s=0.010, **kw) -> MicroBatcher:
    return MicroBatcher(max_batch=max_batch, max_wait_s=max_wait_s,
                        clock=loop.clock, schedule=loop.schedule,
                        on_batch=lambda k, es: batches.append((k, es)),
                        **kw)


def entry(i, op="fma", fmt="pcs", t=0.0, deadline=None) -> Entry:
    return Entry(req=Request(req_id=i, op=op, fmt=fmt, a=0, b=0,
                             c=0 if op == "fma" else None),
                 fut=None, t_enqueue=t, deadline=deadline)


class TestMicroBatcher:
    def test_flush_at_max_batch_without_timer(self):
        loop, batches = FakeLoop(), []
        mb = make_batcher(loop, batches, max_batch=3)
        for i in range(3):
            mb.put(entry(i))
        assert len(batches) == 1
        key, es = batches[0]
        assert key == "fma.pcs" and [e.req.req_id for e in es] == [0, 1, 2]
        assert mb.depth("fma.pcs") == 0

    def test_partial_batch_flushes_at_max_wait(self):
        loop, batches = FakeLoop(), []
        mb = make_batcher(loop, batches, max_batch=8, max_wait_s=0.010)
        mb.put(entry(0))
        mb.put(entry(1))
        assert not batches
        loop.advance(0.009)
        assert not batches                       # not yet
        loop.advance(0.002)
        assert len(batches) == 1 and len(batches[0][1]) == 2

    def test_queues_are_per_op_and_format(self):
        loop, batches = FakeLoop(), []
        mb = make_batcher(loop, batches, max_batch=2)
        mb.put(entry(0, fmt="pcs"))
        mb.put(entry(1, fmt="fcs"))
        assert not batches                       # distinct queues
        mb.put(entry(2, fmt="pcs"))
        assert len(batches) == 1 and batches[0][0] == "fma.pcs"
        mb.put(entry(3, op="dot", fmt="fcs"))
        assert mb.depths() == {"fma.fcs": 1, "dot.fcs": 1}

    def test_timer_clipped_to_tightest_deadline(self):
        loop, batches = FakeLoop(), []
        mb = make_batcher(loop, batches, max_batch=8, max_wait_s=0.050,
                          shed_margin_s=0.001)
        mb.put(entry(0, deadline=0.004))         # budget < max_wait
        (delay,) = loop.pending_delays()
        assert delay == pytest.approx(0.003)     # deadline - margin
        loop.advance(0.0035)
        assert len(batches) == 1                 # flushed before expiry

    def test_burst_larger_than_max_batch_drains_in_chunks(self):
        loop, batches = FakeLoop(), []
        mb = make_batcher(loop, batches, max_batch=4)
        for i in range(10):
            mb.put(entry(i))
        # two full batches leave immediately; the remainder waits
        assert [len(es) for _k, es in batches] == [4, 4]
        loop.advance(0.011)
        assert [len(es) for _k, es in batches] == [4, 4, 2]
        ids = [e.req.req_id for _k, es in batches for e in es]
        assert ids == list(range(10))            # order preserved

    def test_flush_all_drains_everything(self):
        loop, batches = FakeLoop(), []
        mb = make_batcher(loop, batches, max_batch=8)
        mb.put(entry(0))
        mb.put(entry(1, op="dot", fmt="fcs"))
        mb.flush_all()
        assert sorted(k for k, _es in batches) == ["dot.fcs", "fma.pcs"]
        assert mb.depths() == {}

    def test_validation(self):
        loop = FakeLoop()
        with pytest.raises(ValueError):
            make_batcher(loop, [], max_batch=0)
        with pytest.raises(ValueError):
            make_batcher(loop, [], max_wait_s=-1.0)

    def test_verified_requests_never_coalesce_with_unverified(self):
        loop, batches = FakeLoop(), []
        mb = make_batcher(loop, batches, max_batch=2)
        plain = entry(0)
        checked = Entry(req=Request(req_id=1, op="fma", fmt="pcs",
                                    a=0, b=0, c=0, verify="residue"),
                        fut=None)
        assert (MicroBatcher.key_for(plain.req)
                != MicroBatcher.key_for(checked.req))
        mb.put(plain)
        mb.put(checked)
        assert not batches                       # distinct queues
        assert mb.depths() == {"fma.pcs": 1, "fma.pcs.residue": 1}


# ---------------------------------------------------------------------------
# TCP/JSON-lines frontend


async def tcp_session(server: FmaServer, lines: list[bytes],
                      n_replies: int) -> list[dict]:
    tcp = await server.serve_tcp("127.0.0.1", 0)
    _host, port = tcp.sockets[0].getsockname()[:2]
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    for line in lines:
        writer.write(line)
    await writer.drain()
    writer.write_eof()
    replies = []
    for _ in range(n_replies):
        raw = await asyncio.wait_for(reader.readline(), timeout=10.0)
        assert raw, "connection closed before all replies arrived"
        replies.append(json.loads(raw))
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return replies


class TestTcpFrontend:
    def test_end_to_end_bit_identity(self):
        """Requests over TCP produce exactly the direct-engine words."""
        from repro.serve.executor import reference_result

        reqs = [Request(req_id=i, op="fma", fmt=fmt,
                        a=fp_to_word(FPValue.from_float(1.0 + i, BINARY64)),
                        b=fp_to_word(FPValue.from_float(1.5, BINARY64)),
                        c=fp_to_word(FPValue.from_float(-0.25 * i, BINARY64)))
                for i, fmt in enumerate(["pcs", "fcs", "classic"] * 3)]
        lines = [(json.dumps(encode_request(r)) + "\n").encode()
                 for r in reqs]

        async def body():
            cfg = ServeConfig(max_batch=4, max_wait_s=0.002,
                              slow_start=False)
            async with FmaServer(cfg) as s:
                return await tcp_session(s, lines, len(reqs))

        replies = run(body())
        by_id = {r["id"]: r for r in replies}
        assert len(by_id) == len(reqs)
        for req in reqs:
            reply = by_id[req.req_id]
            assert reply["status"] == "ok"
            assert hex_to_word(reply["result"]) == reference_result(req)[1]

    def test_malformed_lines_get_structured_errors(self):
        lines = [b"this is not json\n",
                 b'{"id": 5, "op": "nope"}\n',
                 b'{"op": "fma"}\n',
                 (json.dumps(fma_obj(id=6)) + "\n").encode()]

        async def body():
            async with FmaServer(ServeConfig(slow_start=False)) as s:
                return await tcp_session(s, lines, 4)

        replies = run(body())
        good = [r for r in replies if r["status"] == "ok"]
        bad = [r for r in replies if r["status"] == "error"]
        assert len(good) == 1 and good[0]["id"] == 6
        assert len(bad) == 3
        assert all(r["kind"] == "bad-request" for r in bad)

    def test_pipelined_lines_coalesce_into_batches(self):
        """Many requests written in one burst share kernel batches."""
        lines = [(json.dumps(fma_obj(id=i)) + "\n").encode()
                 for i in range(32)]

        async def body():
            cfg = ServeConfig(max_batch=16, max_wait_s=0.005,
                              slow_start=False)
            async with FmaServer(cfg) as s:
                replies = await tcp_session(s, lines, 32)
                return replies, dict(s.stats)

        replies, stats = run(body())
        assert all(r["status"] == "ok" for r in replies)
        assert sorted(r["id"] for r in replies) == list(range(32))
        assert stats["max_batch_size"] > 1       # coalescing happened

    def test_blank_lines_ignored(self):
        lines = [b"\n", b"  \n",
                 (json.dumps(fma_obj(id=0)) + "\n").encode()]

        async def body():
            async with FmaServer(ServeConfig(slow_start=False)) as s:
                return await tcp_session(s, lines, 1)

        (reply,) = run(body())
        assert reply["status"] == "ok" and reply["id"] == 0

    def test_oversized_line_gets_error_and_connection_survives(self):
        """Regression: a request line beyond the stream limit used to
        raise out of ``readline`` and kill the connection without any
        response.  It must answer a structured error and keep serving
        the same connection."""
        lines = [b"x" * 20000 + b"\n",
                 (json.dumps(fma_obj(id=7)) + "\n").encode()]

        async def body():
            cfg = ServeConfig(slow_start=False, tcp_line_limit=4096)
            async with FmaServer(cfg) as s:
                return await tcp_session(s, lines, 2)

        first, second = run(body())
        assert first["status"] == "error"
        assert first["kind"] == "bad-request"
        assert second["status"] == "ok" and second["id"] == 7

    def test_unterminated_oversized_line_closes_cleanly(self):
        """An oversized line that never ends (client gone) must still
        produce one structured error, then a clean close -- no hang, no
        silent drop."""
        async def body():
            cfg = ServeConfig(slow_start=False, tcp_line_limit=4096)
            async with FmaServer(cfg) as s:
                tcp = await s.serve_tcp("127.0.0.1", 0)
                port = tcp.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer.write(b"y" * 9000)        # no newline, ever
                await writer.drain()
                writer.write_eof()
                reply = json.loads(await asyncio.wait_for(
                    reader.readline(), timeout=10.0))
                eof = await asyncio.wait_for(reader.readline(),
                                             timeout=10.0)
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                return reply, eof

        reply, eof = run(body())
        assert reply["status"] == "error"
        assert reply["kind"] == "bad-request"
        assert eof == b""                        # clean close after

    def test_verify_over_the_wire(self):
        lines = [(json.dumps(fma_obj(id=11, verify="residue"))
                  + "\n").encode()]

        async def body():
            async with FmaServer(ServeConfig(slow_start=False)) as s:
                return await tcp_session(s, lines, 1)

        (reply,) = run(body())
        assert reply["status"] == "ok"
        assert reply["guard"] == "clean"


# ---------------------------------------------------------------------------
# serve-layer telemetry


class TestServeTelemetry:
    def test_instruments_fire_when_armed(self):
        from repro.telemetry import collecting

        async def body():
            cfg = ServeConfig(max_batch=4, max_wait_s=0.002,
                              slow_start=False, max_pending=2)
            async with FmaServer(cfg) as s:
                return await asyncio.gather(
                    *(s.submit(Request(req_id=i, op="fma", fmt="pcs",
                                       a=0x3FF0000000000000,
                                       b=0x4000000000000000,
                                       c=0x3FE0000000000000))
                      for i in range(5)))

        with collecting() as report:
            resps = run(body())
        counters = report.counters
        assert sum(1 for r in resps if r.ok) == 2
        assert counters["serve.requests.admitted"] == 2
        assert counters["serve.requests.rejected.queue-full"] == 3
        assert counters["serve.responses.ok"] == 2
        assert counters["serve.batches"] >= 1
        assert any(k.startswith("serve.batch.size_le.") for k in counters)
        spans = report.spans
        assert "serve.request.total" in spans
        assert "serve.stage.exec" in spans

    def test_silent_when_unarmed(self):
        # nothing above should have leaked a collector; the autouse
        # isolation fixture would fail the test otherwise.  Run one
        # request with no collector armed as an explicit smoke check.
        async def body():
            async with FmaServer(ServeConfig(slow_start=False)) as s:
                return await s.submit(Request(
                    req_id=0, op="fma", fmt="pcs", a=0x3FF0000000000000,
                    b=0x3FF0000000000000, c=0x3FF0000000000000))

        assert run(body()).ok


def test_nan_and_inf_travel_unharmed():
    """Payload specials survive the wire and the engines."""
    async def body():
        async with FmaServer(ServeConfig(slow_start=False)) as s:
            nan = await s.submit(Request(
                req_id="nan", op="fma", fmt="classic",
                a=0x7FF8000000000000, b=0x3FF0000000000000,
                c=0x3FF0000000000000))
            inf = await s.submit(Request(
                req_id="inf", op="fma", fmt="classic",
                a=0x7FF0000000000000, b=0x3FF0000000000000,
                c=0x3FF0000000000000))
            return nan, inf

    nan, inf = run(body())
    assert nan.ok and math.isnan(word_to_fp(nan.result).to_float())
    assert inf.ok and word_to_fp(inf.result).to_float() == math.inf
