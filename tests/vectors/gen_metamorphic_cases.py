"""Regenerate the ``metamorphic`` category of ``fma_hard_cases.json``.

The metamorphic suite (``tests/test_metamorphic_fma.py``) checks
operand-transformation relations rather than fixed outputs.  This
generator pins a *seeded probe set* for those relations into the golden
corpus -- for each base triple it emits the transformed partners (sign
flip, scale transfer across the product, multiplicand swap), each with
the faithful scalar models' expected outputs.  A drift in any unit that
breaks a relation then fails the plain golden-vector regression too,
without re-running Hypothesis.

If the metamorphic suite ever records shrunk counterexamples in
``metamorphic_failures.json`` (written automatically on a property
failure), they are folded in here as additional cases, making every
shrunk failure a permanent regression vector.  Run from the repo
root::

    PYTHONPATH=src python tests/vectors/gen_metamorphic_cases.py

Idempotent: existing ``metamorphic`` cases are replaced, everything
else in the corpus is preserved byte for byte.
"""

from __future__ import annotations

import json
import random
import struct
from pathlib import Path

from repro.fma import FcsFmaUnit, PcsFmaUnit, cs_to_ieee, ieee_to_cs
from repro.fma.classic import ClassicFmaUnit
from repro.fp import BINARY64, FPValue

VECTORS = Path(__file__).parent / "fma_hard_cases.json"
FAILURES = Path(__file__).parent / "metamorphic_failures.json"
SEED = 20260808
CATEGORY = "metamorphic"

_FRACM = (1 << 52) - 1


def bits(sign: int, be: int, frac: int) -> int:
    return (sign << 63) | (be << 52) | frac


def from_bits(word: int) -> FPValue:
    x = struct.unpack("<d", struct.pack("<Q", word))[0]
    return FPValue.from_float(x, BINARY64)


def to_bits(v: FPValue) -> str:
    return "0x%016x" % struct.unpack("<Q", struct.pack("<d",
                                                       v.to_float()))[0]


def expected(a: int, b: int, c: int) -> dict:
    av, bv, cv = from_bits(a), from_bits(b), from_bits(c)
    out = {"classic-fma": to_bits(ClassicFmaUnit(BINARY64).fma(av, bv, cv))}
    for unit in (PcsFmaUnit(), FcsFmaUnit()):
        r = unit.fma(ieee_to_cs(av, unit.params), bv,
                     ieee_to_cs(cv, unit.params))
        out[unit.name] = to_bits(cs_to_ieee(r))
    return out


def negate(word: int) -> int:
    return word ^ (1 << 63)


def scale(word: int, k: int) -> int:
    """Exact power-of-two scaling of a normal encoding."""
    be = (word >> 52) & 0x7FF
    assert 1 <= be + k <= 2046, "scaled operand left the normal range"
    return word + (k << 52)


def normal(rng: random.Random, lo: int, hi: int) -> int:
    return bits(rng.getrandbits(1), rng.randint(lo + 1023, hi + 1023),
                rng.getrandbits(52))


def near_cancel(rng: random.Random) -> "tuple[int, int, int]":
    """A triple where the addend nearly cancels the product -- the
    regime where a broken sign/scale relation is most visible."""
    b = normal(rng, -10, 10)
    c = normal(rng, -10, 10)
    prod = from_bits(b).to_float() * from_bits(c).to_float()
    a = struct.unpack("<Q", struct.pack("<d", -prod))[0]
    # perturb the low bits so the cancellation is near-total, not exact
    a ^= rng.randint(1, 0xFF)
    return a, b, c


def probe_triples(rng: random.Random) -> list[dict]:
    """Base triples spanning the interesting alignment regimes."""
    probes = []

    def add(note, a, b, c):
        probes.append({"note": note, "a": a, "b": b, "c": c})

    for i in range(3):
        add("balanced operands", normal(rng, -20, 20),
            normal(rng, -20, 20), normal(rng, -20, 20))
    for i in range(3):
        a, b, c = near_cancel(rng)
        add("near-total cancellation", a, b, c)
    add("addend dominates product", normal(rng, 180, 200),
        normal(rng, -10, 10), normal(rng, -10, 10))
    add("product dominates addend", normal(rng, -200, -180),
        normal(rng, 40, 60), normal(rng, 40, 60))
    # an exactly-representable product (short multiplicands): fused and
    # discrete paths must agree here, so the goldens double as the
    # fused-vs-discrete pin
    add("exact 26-bit product",
        normal(rng, -5, 5),
        bits(rng.getrandbits(1), rng.randint(-5 + 1023, 5 + 1023),
             rng.getrandbits(25) << 27),
        bits(rng.getrandbits(1), rng.randint(-5 + 1023, 5 + 1023),
             rng.getrandbits(25) << 27))
    return probes


def transformed(base: dict) -> list[dict]:
    """The base triple plus its metamorphic partners."""
    a, b, c = base["a"], base["b"], base["c"]
    note = base["note"]
    return [
        {"note": f"{note} (base)", "a": a, "b": b, "c": c},
        {"note": f"{note} (sign partner: -a, b, -c)",
         "a": negate(a), "b": b, "c": negate(c)},
        {"note": f"{note} (scale partner: a, b*2^12, c*2^-12)",
         "a": a, "b": scale(b, 12), "c": scale(c, -12)},
        {"note": f"{note} (swap partner: a, c, b)",
         "a": a, "b": c, "c": b},
    ]


def harvested_failures() -> list[dict]:
    """Shrunk counterexamples recorded by the metamorphic suite."""
    try:
        doc = json.loads(FAILURES.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        return []
    out = []
    for key in sorted(doc):
        entry = doc[key]
        out.append({"note": f"shrunk counterexample: {key}",
                    "a": int(entry["a"], 16), "b": int(entry["b"], 16),
                    "c": int(entry["c"], 16)})
    return out


def main() -> None:
    doc = json.loads(VECTORS.read_text())
    doc["cases"] = [c for c in doc["cases"] if c["category"] != CATEGORY]
    rng = random.Random(SEED)
    cases = [t for base in probe_triples(rng) for t in transformed(base)]
    cases.extend(harvested_failures())
    new = []
    for i, case in enumerate(cases):
        new.append({
            "id": f"{CATEGORY}-{i:03d}",
            "category": CATEGORY,
            "note": case["note"],
            "a": "0x%016x" % case["a"],
            "b": "0x%016x" % case["b"],
            "c": "0x%016x" % case["c"],
            "expected": expected(case["a"], case["b"], case["c"]),
        })
    doc["cases"].extend(new)
    VECTORS.write_text(json.dumps(doc, indent=1) + "\n")
    print(f"wrote {len(new)} {CATEGORY} cases "
          f"({len(doc['cases'])} total) to {VECTORS}")


if __name__ == "__main__":
    main()
