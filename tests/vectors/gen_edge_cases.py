"""Regenerate the edge-case extension of ``fma_hard_cases.json``.

Appends two case categories to the golden-vector file (idempotently --
existing extension cases are replaced, everything else is preserved):

* ``subnormal-window-edge`` -- subnormal binary64 encodings (which the
  FloPoCo-style loaders flush to signed zero) in every operand slot,
  products straddling the flush-to-zero boundary, and addend/product
  exponent gaps swept across the PCS/FCS alignment-window edges
  (``addend_max_pos`` is 275 bits for PCS, 261 for FCS);
* ``nan-propagation`` -- payload/sign NaN variants in every slot,
  ``0 * inf`` and ``inf - inf`` invalid cases, signed-infinity and
  signed-zero propagation.

Expected outputs come from the *faithful scalar models* (the same
oracle the conformance runner uses), lowered to binary64 hex.  Run from
the repo root::

    PYTHONPATH=src python tests/vectors/gen_edge_cases.py
"""

from __future__ import annotations

import json
import random
import struct
from pathlib import Path

from repro.fma import FcsFmaUnit, PcsFmaUnit, cs_to_ieee, ieee_to_cs
from repro.fma.classic import ClassicFmaUnit
from repro.fp import BINARY64, FPValue

VECTORS = Path(__file__).parent / "fma_hard_cases.json"
SEED = 20260806
NEW_CATEGORIES = ("subnormal-window-edge", "nan-propagation")

_EXPF = 0x7FF
_FRACM = (1 << 52) - 1


def bits(sign: int, be: int, frac: int) -> int:
    return (sign << 63) | (be << 52) | frac


def from_bits(word: int) -> FPValue:
    x = struct.unpack("<d", struct.pack("<Q", word))[0]
    return FPValue.from_float(x, BINARY64)


def to_bits(v: FPValue) -> str:
    return "0x%016x" % struct.unpack("<Q", struct.pack("<d",
                                                       v.to_float()))[0]


def expected(a: int, b: int, c: int) -> dict:
    av, bv, cv = from_bits(a), from_bits(b), from_bits(c)
    out = {"classic-fma": to_bits(ClassicFmaUnit(BINARY64).fma(av, bv, cv))}
    for unit in (PcsFmaUnit(), FcsFmaUnit()):
        r = unit.fma(ieee_to_cs(av, unit.params), bv,
                     ieee_to_cs(cv, unit.params))
        out[unit.name] = to_bits(cs_to_ieee(r))
    return out


def normal(rng: random.Random, lo: int, hi: int) -> int:
    return bits(rng.getrandbits(1), rng.randint(lo + 1023, hi + 1023),
                rng.getrandbits(52))


def subnormal(rng: random.Random) -> int:
    return bits(rng.getrandbits(1), 0, rng.randint(1, _FRACM))


def gen_subnormal_window_edge(rng: random.Random) -> list[dict]:
    cases = []

    def add(note, a, b, c):
        cases.append({"note": note, "a": a, "b": b, "c": c})

    # subnormal encodings in each operand slot (flush-to-zero on load)
    for i in range(6):
        add("subnormal addend flushes; product survives",
            subnormal(rng), normal(rng, -60, 60), normal(rng, -60, 60))
    for i in range(6):
        add("subnormal C operand: product term vanishes",
            normal(rng, -60, 60), normal(rng, -60, 60), subnormal(rng))
    for i in range(3):
        add("subnormal B operand: product term vanishes",
            normal(rng, -60, 60), subnormal(rng), normal(rng, -60, 60))

    # products straddling the binary64 flush boundary (result subnormal
    # in IEEE, flushed by the model)
    for i in range(8):
        e = rng.randint(-1074, -1010)
        half = e // 2
        ea = max(e - 2, -1022)
        add("product near flush-to-zero boundary",
            normal(rng, ea, ea + 4),
            normal(rng, half - 1, half + 1),
            normal(rng, e - half - 2, e - half + 1))

    # addend/product gap swept across the alignment-window edges: the
    # PCS addend pre-shift tops out at 275 positions, FCS at 261, and
    # the product drops below the window past ~270 binades
    for gap in (-340, -300, -277, -276, -275, -274, -262, -261, -260,
                -220, 220, 260, 261, 262, 274, 275, 276, 300):
        ae = rng.randint(-40, 40)
        be = rng.randint(-30, 30)
        ce = ae - gap - be  # product exponent = ae - gap
        if not (-1021 <= ce <= 1022):
            continue
        add(f"addend {gap:+d} binades above product (window edge)",
            normal(rng, ae, ae), normal(rng, be, be), normal(rng, ce, ce))
    return cases


def gen_nan_propagation(rng: random.Random) -> list[dict]:
    cases = []
    inf = bits(0, _EXPF, 0)
    ninf = bits(1, _EXPF, 0)
    pzero, nzero = 0, 1 << 63

    def payload_nan():
        return bits(rng.getrandbits(1), _EXPF, rng.randint(1, _FRACM))

    def add(note, a, b, c):
        cases.append({"note": note, "a": a, "b": b, "c": c})

    for slot in range(3):
        for _ in range(3):
            ops = [normal(rng, -20, 20) for _ in range(3)]
            ops[slot] = payload_nan()
            add(f"payload NaN in operand {'abc'[slot]} canonicalizes",
                *ops)
    add("0 * inf is invalid", normal(rng, -5, 5), pzero, inf)
    add("inf * 0 is invalid", normal(rng, -5, 5), ninf, nzero)
    add("-0 * -inf is invalid", normal(rng, -5, 5), nzero, ninf)
    add("inf + (-inf product) is invalid", inf, normal(rng, -5, 5),
        bits(1, 1023 + 4, rng.getrandbits(52)))
    add("-inf + (+inf product) is invalid", ninf,
        bits(0, 1023 + 3, 0), bits(0, 1023 + 5, rng.getrandbits(52)))
    add("inf addend dominates finite product", inf,
        normal(rng, -5, 5), normal(rng, -5, 5))
    add("-inf addend dominates finite product", ninf,
        normal(rng, -5, 5), normal(rng, -5, 5))
    add("negative product overflows to -inf", pzero,
        bits(0, 1023 + 600, 0), bits(1, 1023 + 600, _FRACM))
    add("-0 + (+0 * x) keeps the addend's zero sign", nzero, pzero,
        normal(rng, -5, 5))
    add("-0 + (x * -0) keeps the addend's zero sign", nzero,
        normal(rng, -5, 5), nzero)
    add("+0 + (-0 * x): differing zero signs round to +0", pzero, nzero,
        normal(rng, -5, 5))
    return cases


def main() -> None:
    doc = json.loads(VECTORS.read_text())
    doc["cases"] = [c for c in doc["cases"]
                    if c["category"] not in NEW_CATEGORIES]
    rng = random.Random(SEED)
    new = []
    for category, gen in (("subnormal-window-edge",
                           gen_subnormal_window_edge),
                          ("nan-propagation", gen_nan_propagation)):
        for i, case in enumerate(gen(rng)):
            new.append({
                "id": f"{category}-{i:03d}",
                "category": category,
                "note": case["note"],
                "a": "0x%016x" % case["a"],
                "b": "0x%016x" % case["b"],
                "c": "0x%016x" % case["c"],
                "expected": expected(case["a"], case["b"], case["c"]),
            })
    doc["cases"].extend(new)
    VECTORS.write_text(json.dumps(doc, indent=1) + "\n")
    print(f"wrote {len(new)} extension cases "
          f"({len(doc['cases'])} total) to {VECTORS}")


if __name__ == "__main__":
    main()
