"""GuardedExecutor: detection -> re-execution -> vote -> classify.

Work functions receive the zero-based execution number, so each test
scripts exactly which executions misbehave; outcomes are asserted on
status, released value, execution count, and the structured records.
The pool path (``workers > 1``) uses module-level picklable functions.
"""

from __future__ import annotations

import pytest

from repro.guard.residue import GuardMismatch
from repro.guard.voting import GuardedExecutor, GuardedOutcome, GuardPolicy
from repro.telemetry import collecting

# worker pools / armed guards are process-global
pytestmark = pytest.mark.serial


def flag_below(n):
    """Work fn raising a residue flag on executions ``< n``."""
    def work(execution: int):
        if execution < n:
            raise GuardMismatch("window", f"execution {execution}")
        return 42
    return work


def run(mode="residue", fn=None, **policy_kw):
    policy = GuardPolicy(mode=mode, **policy_kw)
    return GuardedExecutor(policy).run(fn)


# -- residue mode -----------------------------------------------------------


class TestResidueMode:
    def test_clean_single_execution(self):
        out = run(fn=flag_below(0))
        assert out.status == "clean" and out.ok
        assert out.value == 42
        assert out.executions == 1 and out.flagged == 0
        assert out.records == [{"execution": 0, "flagged": False}]

    def test_flag_triggers_reexecution_and_corrects(self):
        out = run(fn=flag_below(1))
        assert out.status == "corrected" and out.ok
        assert out.value == 42
        assert out.executions == 2 and out.flagged == 1
        assert out.records[0] == {"execution": 0, "flagged": True,
                                  "mismatches": {"window": 1}}

    def test_budget_exhaustion_is_uncorrectable(self):
        out = run(fn=flag_below(99), max_executions=3)
        assert out.status == "uncorrectable" and not out.ok
        assert out.value is None                # never released as data
        assert out.executions == 3 and out.flagged == 3

    def test_work_exception_is_not_a_vote(self):
        # a crash is not a residue flag: it burns budget but the next
        # clean execution still certifies the result
        calls = []

        def work(execution: int):
            calls.append(execution)
            if execution == 0:
                raise ValueError("boom")
            return 7

        out = run(fn=work)
        assert out.status == "corrected" and out.value == 7
        assert out.flagged == 0
        assert out.records[0]["error"]["type"] == "ValueError"
        assert calls == [0, 1]


# -- DMR / TMR --------------------------------------------------------------


class TestRedundantModes:
    def test_dmr_agreeing_pair_is_clean(self):
        out = run("dmr", fn=lambda e: 5)
        assert out.status == "clean" and out.value == 5
        assert out.executions == 2

    def test_dmr_disagreement_escalates_to_quorum(self):
        # execution 0 returns a corrupted value; 1 and 2 agree
        out = run("dmr", fn=lambda e: 99 if e == 0 else 5)
        assert out.status == "corrected" and out.value == 5
        assert out.executions == 3 and out.flagged == 0

    def test_dmr_never_agreeing_is_uncorrectable(self):
        out = run("dmr", fn=lambda e: e, max_executions=4)
        assert out.status == "uncorrectable" and out.value is None
        assert out.executions == 4

    def test_tmr_majority_outvotes_one_corruption(self):
        out = run("tmr", fn=lambda e: 99 if e == 0 else 5)
        assert out.status == "corrected" and out.value == 5
        assert out.executions == 3              # the majority sufficed

    def test_tmr_unanimous_is_clean(self):
        out = run("tmr", fn=lambda e: 5)
        assert out.status == "clean" and out.executions == 3

    def test_flag_in_dmr_counts_and_escalates(self):
        def work(execution: int):
            if execution == 0:
                raise GuardMismatch("product")
            return 11

        out = run("dmr", fn=work)
        assert out.status == "corrected" and out.value == 11
        assert out.flagged == 1
        assert out.executions == 3              # 2 initial + 1 makeup


# -- policy -----------------------------------------------------------------


class TestPolicy:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            GuardPolicy(mode="qmr")

    def test_budget_below_mode_minimum(self):
        with pytest.raises(ValueError):
            GuardPolicy(mode="tmr", max_executions=2)

    def test_quorum_validation(self):
        with pytest.raises(ValueError):
            GuardPolicy(quorum=0)

    def test_min_executions_ladder(self):
        assert GuardPolicy(mode="residue").min_executions == 1
        assert GuardPolicy(mode="dmr").min_executions == 2
        assert GuardPolicy(mode="tmr").min_executions == 3


# -- outcome / telemetry ----------------------------------------------------


class TestOutcome:
    def test_to_record_shape(self):
        out = GuardedOutcome("clean", 1, executions=1)
        assert out.to_record() == {"status": "clean", "executions": 1,
                                   "flagged": 0, "records": []}

    def test_telemetry_counters(self):
        with collecting() as t:
            run(fn=flag_below(0))               # clean
            run(fn=flag_below(1))               # corrected
            run(fn=flag_below(99), max_executions=2)  # uncorrectable
        c = t.snapshot().counters
        assert c["guard.exec.clean"] == 1
        assert c["guard.exec.corrected"] == 1
        assert c["guard.exec.uncorrectable"] == 1
        assert c["guard.escalations"] == 2
        assert c["guard.reexecutions"] == 2     # one makeup each


# -- the pool path ----------------------------------------------------------


def pool_ok(execution: int):
    return ("pool", execution >= 0)


def pool_flag(execution: int):
    raise GuardMismatch("window", "in the worker")


class TestPoolPath:
    def test_clean_value_roundtrips_from_worker(self):
        policy = GuardPolicy(workers=2, timeout_s=30.0)
        out = GuardedExecutor(policy).run(pool_ok)
        assert out.status == "clean"
        assert out.value == ("pool", True)
        assert out.executions == 1

    def test_worker_flag_is_classified_flagged(self):
        policy = GuardPolicy(workers=2, max_executions=2, timeout_s=30.0)
        out = GuardedExecutor(policy).run(pool_flag)
        assert out.status == "uncorrectable"
        assert out.flagged == 2
        assert all(r["flagged"] for r in out.records)
