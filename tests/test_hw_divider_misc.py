"""Coverage for the divider netlist and remaining hw corners."""

import pytest

from repro.hw import (VIRTEX5, VIRTEX6, VIRTEX7, design_by_name,
                      divider_design, synthesize)


class TestDivider:
    def test_synthesizes_at_target(self):
        r = synthesize(divider_design(VIRTEX6), VIRTEX6)
        assert r.meets_target
        assert r.cycles > 10          # deep SRT pipeline

    def test_deeper_than_any_fma(self):
        div = synthesize(divider_design(VIRTEX6), VIRTEX6)
        for name in ("pcs-fma", "fcs-fma", "coregen-mul"):
            assert div.cycles > synthesize(
                design_by_name(name, VIRTEX6), VIRTEX6).cycles

    def test_no_dsps(self):
        # the SRT divider is pure fabric
        assert divider_design(VIRTEX6).dsps == 0

    def test_registered_in_factories(self):
        d = design_by_name("divider", VIRTEX6)
        assert d.name == "divider"


class TestCrossDeviceShapes:
    @pytest.mark.parametrize("device", [VIRTEX6, VIRTEX7],
                             ids=["v6", "v7"])
    def test_fcs_beats_pcs_latency_everywhere(self, device):
        pcs = synthesize(design_by_name("pcs-fma", device), device)
        fcs = synthesize(design_by_name("fcs-fma", device), device)
        assert fcs.latency_ns < pcs.latency_ns

    def test_newer_devices_are_faster(self):
        lat = {}
        for device in (VIRTEX5, VIRTEX6, VIRTEX7):
            r = synthesize(design_by_name("pcs-fma", device), device)
            lat[device.name] = r.latency_ns
        assert lat["virtex7"] < lat["virtex6"] < lat["virtex5"]

    def test_classic_fma_design_synthesizes(self):
        r = synthesize(design_by_name("classic-fma", VIRTEX6), VIRTEX6)
        # the variable-distance shifter + 161b adder make it deeper than
        # the block-normalized CS units
        fcs = synthesize(design_by_name("fcs-fma", VIRTEX6), VIRTEX6)
        assert r.cycles > fcs.cycles
