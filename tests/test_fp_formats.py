"""Unit tests for repro.fp.formats."""

import pytest

from repro.fp import (BINARY32, BINARY64, EXTENDED68, EXTENDED75,
                      FloatFormat, format_by_name)


class TestPredefinedFormats:
    def test_binary64_layout(self):
        # Fig. 2 of the paper: 1 sign + 11 exponent + 52 mantissa.
        assert BINARY64.exponent_bits == 11
        assert BINARY64.fraction_bits == 52
        assert BINARY64.total_bits == 64
        assert BINARY64.bias == 1023
        assert BINARY64.significand_bits == 53

    def test_binary32_layout(self):
        assert BINARY32.total_bits == 32
        assert BINARY32.bias == 127

    def test_widened_formats_total_widths(self):
        # The Fig. 14 reference datapaths are 68 and 75 bits wide.
        assert EXTENDED68.total_bits == 68
        assert EXTENDED75.total_bits == 75

    def test_widened_formats_keep_binary64_exponent(self):
        assert EXTENDED68.exponent_bits == BINARY64.exponent_bits
        assert EXTENDED75.exponent_bits == BINARY64.exponent_bits

    def test_widened_formats_extend_mantissa(self):
        assert EXTENDED68.fraction_bits > BINARY64.fraction_bits
        assert EXTENDED75.fraction_bits > EXTENDED68.fraction_bits


class TestDerivedProperties:
    def test_emax_emin(self):
        assert BINARY64.emax == 1023
        assert BINARY64.emin == -1022

    def test_max_biased_exponent(self):
        assert BINARY64.max_biased_exponent == 2046

    def test_masks(self):
        assert BINARY64.fraction_mask == (1 << 52) - 1
        assert BINARY64.exponent_mask == 0x7FF

    def test_ulp_exponent(self):
        assert BINARY64.ulp_exponent == -52

    def test_describe_mentions_name_and_bias(self):
        d = BINARY64.describe()
        assert "binary64" in d
        assert "1023" in d


class TestValidation:
    def test_rejects_tiny_exponent_field(self):
        with pytest.raises(ValueError):
            FloatFormat("bad", exponent_bits=1, fraction_bits=10)

    def test_rejects_empty_fraction(self):
        with pytest.raises(ValueError):
            FloatFormat("bad", exponent_bits=8, fraction_bits=0)

    def test_custom_format(self):
        f = FloatFormat("half", exponent_bits=5, fraction_bits=10)
        assert f.total_bits == 16
        assert f.bias == 15


class TestRegistry:
    def test_lookup(self):
        assert format_by_name("binary64") is BINARY64
        assert format_by_name("extended75") is EXTENDED75

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            format_by_name("binary128")

    def test_formats_are_hashable_value_objects(self):
        clone = FloatFormat("binary64", 11, 52)
        assert clone == BINARY64
        assert hash(clone) == hash(BINARY64)
