"""Tests for the cycle-accurate schedule executor (repro.hls.execute)."""

import pytest

from repro.fma import fcs_engine
from repro.hls import (ScheduleViolation, asap_schedule,
                       default_library, execute_schedule,
                       format_issue_trace, list_schedule, parse_program,
                       run_fma_insertion, simulate)

SRC = """
t = a*b + c*d;
y = e*t + f;
"""
INPUTS = {n: float(i + 2) for i, n in enumerate("abcdef")}


@pytest.fixture(scope="module")
def lib():
    return default_library()


class TestLegalSchedules:
    def test_asap_schedule_executes(self, lib):
        g = parse_program(SRC)
        sched = asap_schedule(g, lib)
        res = execute_schedule(g, sched, lib, INPUTS)
        assert res.outputs == simulate(g, INPUTS)
        assert res.cycles == sched.length

    def test_list_schedule_executes_with_limits(self):
        lib = default_library()
        lib.limits["mul"] = 1
        g = parse_program(SRC)
        sched = list_schedule(g, lib)
        res = execute_schedule(g, sched, lib, INPUTS)
        assert res.peak_usage.get("mul", 0) <= 1
        assert res.outputs == simulate(g, INPUTS)

    def test_fma_schedule_executes_with_engine(self):
        lib = default_library(fma_flavor="fcs", fma_limit=2)
        g = parse_program(SRC)
        run_fma_insertion(g, lib)
        sched = list_schedule(g, lib)
        res = execute_schedule(g, sched, lib, INPUTS,
                               engine=fcs_engine())
        ref = simulate(parse_program(SRC), INPUTS)
        assert res.outputs["y"] == pytest.approx(ref["y"], rel=1e-12)
        assert res.peak_usage.get("fma-fcs", 0) <= 2

    def test_issue_trace_formatting(self, lib):
        g = parse_program(SRC)
        sched = asap_schedule(g, lib)
        res = execute_schedule(g, sched, lib, INPUTS)
        text = format_issue_trace(res, g)
        assert "cycle" in text and "mul" in text


class TestViolationDetection:
    def test_dependence_violation_detected(self, lib):
        g = parse_program(SRC)
        sched = asap_schedule(g, lib)
        # sabotage: pull the output's producer to cycle 0
        victim = g.predecessors(g.outputs()[0])[0]
        sched.start[victim] = 0
        with pytest.raises(ScheduleViolation, match="finishes at"):
            execute_schedule(g, sched, lib, INPUTS)

    def test_resource_violation_detected(self):
        lib = default_library()
        lib.limits["mul"] = 1
        g = parse_program("p = a*b;\nq = c*d;\n", outputs=["p", "q"])
        sched = asap_schedule(g, lib)  # issues both muls at cycle 0
        with pytest.raises(ScheduleViolation, match="exceed"):
            execute_schedule(g, sched, lib, INPUTS)

    def test_unscheduled_node_detected(self, lib):
        g = parse_program(SRC)
        sched = asap_schedule(g, lib)
        sched.start.pop(g.outputs()[0])
        with pytest.raises(ScheduleViolation, match="unscheduled"):
            execute_schedule(g, sched, lib, INPUTS)

    def test_foreign_schedule_rejected(self, lib):
        g = parse_program(SRC)
        other = parse_program(SRC)
        sched = asap_schedule(other, lib)
        with pytest.raises(ValueError):
            execute_schedule(g, sched, lib, INPUTS)


class TestListSchedulerLegality:
    """Regression for the max-operand-finish bug the executor caught."""

    @pytest.mark.parametrize("flavor", ["pcs", "fcs"])
    def test_solver_kernel_schedules_are_legal(self, flavor):
        from repro.solvers import generate_kernel, trajectory_problem
        kernel = generate_kernel(trajectory_problem(4, 1))
        g = parse_program(kernel.source, outputs=kernel.output_names)
        lib = default_library(fma_flavor=flavor, fma_limit=39)
        run_fma_insertion(g, lib)
        sched = list_schedule(g, lib)
        for n in g.nodes.values():
            for op in n.operands:
                assert sched.start[n.id] >= \
                    sched.start[op] + lib.latency(g.nodes[op])

    def test_mixed_latency_operands(self, lib):
        # an op whose operands are a free INPUT and a 5-cycle MUL must
        # wait for the mul even though the input "completes" first
        g = parse_program("y = a*b + c;")
        sched = list_schedule(g, lib)
        res = execute_schedule(g, sched, lib, dict(a=2.0, b=3.0, c=1.0))
        assert res.outputs["y"] == 7.0
