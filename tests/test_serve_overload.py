"""Overload policy: bounded queues, slow start, shedding, drain, and
the resilient execution path of the serving layer.

Every rejected request receives a *structured* rejection (never a lost
response, never an exception), and the admission window reacts to both
success (ramp) and failure (halving).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.faults.resilient import RetryPolicy
from repro.serve import (AdmissionController, FmaServer, Request,
                         ServeConfig)

from _serve_util import (always_fail_execute, flaky_execute, hang_execute,
                         run, slow_execute)

pytestmark = pytest.mark.serial


def fma_req(i, **kw) -> Request:
    return Request(req_id=i, op="fma", fmt="pcs",
                   a=0x3FF8000000000000, b=0x4008000000000000,
                   c=0x3FF4000000000000, **kw)


class TestAdmissionController:
    def test_hard_bound(self):
        ac = AdmissionController(max_pending=4, slow_start=False)
        assert [ac.try_admit() for _ in range(4)] == [None] * 4
        assert ac.try_admit() == "queue-full"
        ac.release()
        assert ac.try_admit() is None

    def test_slow_start_ramp_and_halving(self):
        ac = AdmissionController(max_pending=100, initial_window=4,
                                 min_window=2)
        for _ in range(4):
            assert ac.try_admit() is None
        assert ac.try_admit() == "slow-start"
        ac.on_batch_ok(4)              # window 4 -> 8
        for _ in range(4):
            assert ac.try_admit() is None
        ac.on_failure()                # window 8 -> 4
        assert ac.try_admit() == "slow-start"
        for _ in range(10):
            ac.on_failure()            # clamps at min_window
        assert ac.window == 2

    def test_window_never_exceeds_max_pending(self):
        ac = AdmissionController(max_pending=10, initial_window=8,
                                 min_window=1)
        for _ in range(50):
            ac.on_batch_ok(64)
        assert ac.window == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)
        with pytest.raises(ValueError):
            AdmissionController(max_pending=4, min_window=0)
        # a floor above the hard bound is clamped, not an error
        ac = AdmissionController(max_pending=4, min_window=9)
        assert ac.min_window == 4


class TestQueueBound:
    def test_burst_past_bound_sheds_with_structured_rejections(self):
        """50 concurrent requests against max_pending=8: every request
        is answered, the overflow as ``rejected``/``queue-full``."""
        cfg = ServeConfig(max_pending=8, slow_start=False, workers=1,
                          max_batch=8, max_wait_s=0.02,
                          work_fn=slow_execute)

        async def body():
            async with FmaServer(cfg) as s:
                resps = await asyncio.gather(
                    *(s.submit(fma_req(i)) for i in range(50)))
                return resps, dict(s.stats)

        resps, stats = run(body())
        assert len(resps) == 50
        ok = [r for r in resps if r.ok]
        rejected = [r for r in resps if r.status == "rejected"]
        assert len(ok) == 8                      # exactly the bound
        assert len(rejected) == 42
        assert {r.reason for r in rejected} == {"queue-full"}
        assert stats["rejected.queue-full"] == 42
        assert stats["admitted"] == 8

    def test_slow_start_backpressure_then_ramp(self):
        """A cold server admits only the initial window; once batches
        complete the window opens and the same burst is admitted."""
        cfg = ServeConfig(max_pending=256, slow_start=True,
                          initial_window=4, min_window=2, workers=2,
                          max_batch=4, max_wait_s=0.001)

        async def body():
            async with FmaServer(cfg) as s:
                waves = []
                for wave in range(4):
                    resps = await asyncio.gather(
                        *(s.submit(fma_req(100 * wave + i))
                          for i in range(16)))
                    waves.append(resps)
                return waves, s.admission.window

        waves, window = run(body())
        shed = [r for r in waves[0] if r.status == "rejected"]
        assert len([r for r in waves[0] if r.ok]) == 4   # cold window
        assert shed and {r.reason for r in shed} == {"slow-start"}
        admitted = [sum(1 for r in w if r.ok) for w in waves]
        assert admitted == sorted(admitted)              # monotone ramp
        assert all(r.ok for r in waves[-1])              # fully open
        assert window > 4


class TestDeadlines:
    def test_expired_budget_rejected_at_admission(self):
        async def body():
            async with FmaServer(ServeConfig()) as s:
                return await s.submit(fma_req(0, timeout_s=0))

        # timeout_s=0 fails Request.validate -> bad-request, while a
        # negative remaining budget at admission is a deadline shed
        resp = run(body())
        assert resp.status == "error"
        assert resp.kind == "bad-request"

    def test_queued_past_deadline_is_shed(self):
        """With a single busy worker, queued requests whose budget
        expires before execution are shed with reason ``deadline``."""
        cfg = ServeConfig(workers=1, max_batch=1, max_wait_s=0.0,
                          slow_start=False, work_fn=slow_execute)

        async def body():
            async with FmaServer(cfg) as s:
                blocker = asyncio.ensure_future(s.submit(fma_req("block")))
                await asyncio.sleep(0.01)       # blocker occupies worker
                tight = await asyncio.gather(
                    *(s.submit(fma_req(i, timeout_s=0.01))
                      for i in range(3)))
                return await blocker, tight, dict(s.stats)

        blocker, tight, stats = run(body())
        assert blocker.ok
        assert all(r.status == "rejected" and r.reason == "deadline"
                   for r in tight)
        assert stats["shed_deadline"] == 3

    def test_deadline_shed_halves_window(self):
        cfg = ServeConfig(workers=1, max_batch=1, max_wait_s=0.0,
                          slow_start=True, initial_window=64,
                          min_window=2, work_fn=slow_execute)

        async def body():
            async with FmaServer(cfg) as s:
                blocker = asyncio.ensure_future(s.submit(fma_req("block")))
                await asyncio.sleep(0.01)
                await asyncio.gather(
                    *(s.submit(fma_req(i, timeout_s=0.005))
                      for i in range(2)))
                w = s.admission.window
                await blocker
                return w

        assert run(body()) < 64


class TestDrain:
    def test_drain_completes_admitted_rejects_new(self):
        cfg = ServeConfig(workers=1, max_batch=4, max_wait_s=0.005,
                          slow_start=False, work_fn=slow_execute)

        async def body():
            s = FmaServer(cfg)
            await s.start()
            inflight = [asyncio.ensure_future(s.submit(fma_req(i)))
                        for i in range(4)]
            await asyncio.sleep(0.01)
            drainer = asyncio.ensure_future(s.drain())
            await asyncio.sleep(0.01)
            late = await s.submit(fma_req("late"))
            await drainer
            done = await asyncio.gather(*inflight)
            return done, late, s._started

        done, late, started = run(body())
        assert all(r.ok for r in done)           # admitted work finished
        assert late.status == "rejected"
        assert late.reason == "draining"
        assert not started

    def test_submit_after_drain_raises(self):
        async def body():
            s = FmaServer(ServeConfig())
            await s.start()
            await s.drain()
            with pytest.raises(RuntimeError):
                await s.submit(fma_req(0))

        run(body())


class TestResilientExecution:
    def test_transient_failure_is_retried_transparently(self):
        """A payload that fails its first attempt succeeds on retry;
        the client sees one ok response with attempts=2."""
        cfg = ServeConfig(workers=1, max_batch=4, max_wait_s=0.001,
                          slow_start=False, work_fn=flaky_execute,
                          retry=RetryPolicy(max_attempts=2,
                                            backoff_base_s=0.001,
                                            backoff_cap_s=0.002))

        async def body():
            async with FmaServer(cfg) as s:
                resps = await asyncio.gather(
                    *(s.submit(fma_req(i)) for i in range(4)))
                return resps, dict(s.stats)

        resps, stats = run(body())
        assert all(r.ok for r in resps)
        assert all(r.attempts == 2 for r in resps)
        assert stats["retries"] >= 1
        assert stats["exec_failures"] == 0

    def test_permanent_failure_yields_structured_errors(self):
        """After the last attempt every batch member gets an ``error``
        response carrying the resilient record's kind -- nothing is
        lost, nothing raises into the event loop."""
        cfg = ServeConfig(workers=1, max_batch=8, max_wait_s=0.001,
                          slow_start=True, initial_window=64,
                          min_window=2, work_fn=always_fail_execute,
                          retry=RetryPolicy(max_attempts=2,
                                            backoff_base_s=0.001,
                                            backoff_cap_s=0.002))

        async def body():
            async with FmaServer(cfg) as s:
                resps = await asyncio.gather(
                    *(s.submit(fma_req(i)) for i in range(6)))
                return resps, dict(s.stats), s.admission.window

        resps, stats, window = run(body())
        assert all(r.status == "error" for r in resps)
        assert all(r.kind == "exception" for r in resps)
        assert all("injected permanent failure" in r.message
                   for r in resps)
        assert stats["exec_failures"] >= 1
        assert window < 64                       # failures shrink it

    def test_per_request_error_does_not_poison_the_batch(self):
        """An accumulator overflow inside a batch fails only its own
        request; batchmates still get ok results."""
        good = Request(req_id="good", op="acc",
                       a=(0x3FF0000000000000,) * 3,
                       b=(0x4000000000000000,) * 3)
        bad = Request(req_id="bad", op="acc",
                      a=(0x4630000000000000,),   # 2^100 ...
                      b=(0x4630000000000000,))   # ... squared > window

        async def body():
            cfg = ServeConfig(max_batch=2, max_wait_s=0.005,
                              slow_start=False)
            async with FmaServer(cfg) as s:
                return await asyncio.gather(s.submit(good),
                                            s.submit(bad))

        good_resp, bad_resp = run(body())
        assert good_resp.ok
        assert bad_resp.status == "error"
        assert bad_resp.kind == "exception"
        assert "AccumulatorOverflow" in bad_resp.message

    @pytest.mark.slow
    def test_process_isolation_hang_times_out(self):
        """Process isolation routes batches through the full resilient
        timeout/respawn machinery: a hung worker produces a structured
        timeout error, not a stuck server."""
        cfg = ServeConfig(workers=1, max_batch=2, max_wait_s=0.001,
                          slow_start=False, isolation="process",
                          exec_timeout_s=0.5, work_fn=hang_execute,
                          retry=RetryPolicy(max_attempts=1))

        async def body():
            async with FmaServer(cfg) as s:
                return await s.submit(fma_req(0))

        resp = run(body())
        assert resp.status == "error"
        assert resp.kind == "timeout"

    @pytest.mark.slow
    def test_process_isolation_computes_correctly(self):
        """Sanity: the default payload executor works across the
        process boundary and still matches the direct engines."""
        from repro.serve.executor import reference_result

        cfg = ServeConfig(workers=1, max_batch=4, max_wait_s=0.001,
                          slow_start=False, isolation="process",
                          exec_timeout_s=30.0)

        async def body():
            async with FmaServer(cfg) as s:
                return await asyncio.gather(
                    *(s.submit(fma_req(i)) for i in range(3)))

        resps = run(body())
        ref = reference_result(fma_req(0))[1]
        assert all(r.ok and r.result == ref for r in resps)
