"""Tests for the IEEE <-> carry-save converters (repro.fma.convert)."""

import math
from fractions import Fraction

from hypothesis import given

from conftest import normal_doubles, normal_fpvalues
from repro.fma import (FCS_PARAMS, PCS_PARAMS, PcsFmaUnit, cs_to_ieee,
                       ieee_to_cs)
from repro.fp import BINARY64, EXTENDED68, FPValue, double


class TestRoundTrips:
    @given(normal_fpvalues())
    def test_pcs_roundtrip_identity(self, v):
        assert cs_to_ieee(ieee_to_cs(v, PCS_PARAMS)) == v

    @given(normal_fpvalues())
    def test_fcs_roundtrip_identity(self, v):
        assert cs_to_ieee(ieee_to_cs(v, FCS_PARAMS)) == v

    def test_extreme_exponents_roundtrip(self):
        for e in (-1022, -1000, 1000, 1023):
            x = math.ldexp(1.5, e)
            assert cs_to_ieee(ieee_to_cs(double(x), PCS_PARAMS)
                              ).to_float() == x

    def test_specials_roundtrip(self):
        for v in (FPValue.nan(BINARY64), FPValue.inf(BINARY64),
                  FPValue.inf(BINARY64, 1), FPValue.zero(BINARY64, 1)):
            back = cs_to_ieee(ieee_to_cs(v, PCS_PARAMS))
            assert back.cls == v.cls
            if not v.is_nan:
                assert back.sign == v.sign


class TestLoweringWithRoundData:
    @given(normal_doubles(-40, 40), normal_doubles(-40, 40),
           normal_doubles(-40, 40))
    def test_lowering_after_fma_is_within_one_ulp(self, a, b, c):
        # an FMA result carries rounding data; the converter must fold it
        # into one correct rounding of the information available
        unit = PcsFmaUnit()
        fa, fb, fc = double(a), double(b), double(c)
        r = unit.fma(ieee_to_cs(fa, unit.params), fb,
                     ieee_to_cs(fc, unit.params))
        out = cs_to_ieee(r)
        exact = Fraction(a) + Fraction(b) * Fraction(c)
        if out.is_normal and exact != 0:
            ulp = Fraction(2) ** (out.unbiased_exponent - 52)
            assert abs(out.to_fraction() - exact) <= ulp

    @given(normal_fpvalues())
    def test_lower_to_wider_format_is_exact(self, v):
        cs = ieee_to_cs(v, PCS_PARAMS)
        wide = cs_to_ieee(cs, EXTENDED68)
        assert wide.to_fraction() == v.to_fraction()


class TestOutOfRangeHandling:
    def test_huge_cs_exponent_overflows_to_inf(self):
        from repro.fma import CSFloat
        from repro.fp import FpClass
        from repro.cs import CSNumber
        p = PCS_PARAMS
        mant = CSNumber((1 << 107), 0, p.mant_width, p.mant_carry_mask)
        big = CSFloat(p, FpClass.NORMAL, exp=1500, mant=mant)
        assert cs_to_ieee(big).is_inf

    def test_tiny_cs_exponent_flushes_to_zero(self):
        from repro.fma import CSFloat
        from repro.fp import FpClass
        from repro.cs import CSNumber
        p = PCS_PARAMS
        mant = CSNumber((1 << 107), 0, p.mant_width, p.mant_carry_mask)
        tiny = CSFloat(p, FpClass.NORMAL, exp=-1500, mant=mant)
        assert cs_to_ieee(tiny).is_zero

    def test_zero_mantissa_lowers_to_zero(self):
        from repro.fma import CSFloat
        from repro.fp import FpClass
        from repro.cs import CSNumber
        p = PCS_PARAMS
        mant = CSNumber(0, 0, p.mant_width, p.mant_carry_mask)
        z = CSFloat(p, FpClass.NORMAL, exp=0, mant=mant)
        assert cs_to_ieee(z).is_zero
