"""Chain-level tests: engines and the Fig. 14 recurrence."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings

from conftest import normal_doubles
from repro.fma import (DiscreteMulAddEngine, FusedIeeeEngine, fcs_engine,
                       pcs_engine, reference_recurrence, run_recurrence)
from repro.fp import (BINARY64, EXTENDED68, EXTENDED75, double,
                      mantissa_error_bits)

ENGINE_FACTORIES = {
    "discrete64": lambda: DiscreteMulAddEngine(BINARY64),
    "discrete68": lambda: DiscreteMulAddEngine(EXTENDED68),
    "discrete75": lambda: DiscreteMulAddEngine(EXTENDED75),
    "classic": lambda: FusedIeeeEngine(),
    "pcs": pcs_engine,
    "fcs": fcs_engine,
}


def make_workload(seed: int, steps: int = 48):
    """The Fig. 14 stimulus: 1 < |B1| < 32, 0 < |B2| < 1."""
    rng = random.Random(seed)
    b1 = [double(rng.choice([-1, 1]) * rng.uniform(1, 32))
          for _ in range(steps)]
    b2 = [double(rng.choice([-1, 1]) * rng.uniform(1e-6, 1))
          for _ in range(steps)]
    x0 = [double(rng.uniform(-1, 1)) for _ in range(3)]
    return b1, b2, x0


class TestRecurrenceMachinery:
    def test_needs_three_seeds(self):
        e = DiscreteMulAddEngine(BINARY64)
        with pytest.raises(ValueError):
            run_recurrence(e, [], [], [double(1.0)], 0)

    def test_trajectory_length(self):
        b1, b2, x0 = make_workload(0, steps=10)
        res = run_recurrence(DiscreteMulAddEngine(BINARY64), b1, b2, x0, 10)
        assert len(res.values) == 13

    def test_reference_matches_exact_hand_computation(self):
        b1, b2, x0 = make_workload(1, steps=3)
        ref = reference_recurrence(b1, b2, x0, 3)
        t = x0[0].to_fraction() + b2[0].to_fraction() * x0[1].to_fraction()
        x3 = t + b1[0].to_fraction() * x0[2].to_fraction()
        assert ref[3] == x3

    @pytest.mark.parametrize("name", list(ENGINE_FACTORIES))
    def test_every_engine_runs_the_workload(self, name):
        b1, b2, x0 = make_workload(2, steps=20)
        res = run_recurrence(ENGINE_FACTORIES[name](), b1, b2, x0, 20)
        assert res.final.is_normal or res.final.is_inf


class TestAccuracyOrdering:
    """The Fig. 14 claim: the CS-FMA chains clearly outperform standard
    IEEE double precision; the widened 68b datapath does too."""

    def test_cs_chains_beat_discrete_double(self):
        worse = 0
        for seed in range(8):
            b1, b2, x0 = make_workload(seed)
            exact = reference_recurrence(b1, b2, x0, 48)[-1]
            err = {}
            for name in ("discrete64", "pcs", "fcs"):
                v = run_recurrence(ENGINE_FACTORIES[name](),
                                   b1, b2, x0, 48).final
                err[name] = (abs(v.to_fraction() - exact)
                             if v.is_normal else None)
            if err["discrete64"] is None:
                continue
            for name in ("pcs", "fcs"):
                if err[name] is not None and err[name] > err["discrete64"]:
                    worse += 1
        # allow isolated ties/losses but the trend must be decisive
        assert worse <= 2

    def test_fused_beats_discrete_on_average(self):
        # Per-run errors are rounding noise (either datapath can win a
        # single seed), but over many runs the single-rounding fused
        # chain accumulates measurably fewer wrong mantissa bits.
        fused_bits, disc_bits = [], []
        for seed in range(12):
            b1, b2, x0 = make_workload(seed)
            exact = reference_recurrence(b1, b2, x0, 48)[-1]
            f = run_recurrence(ENGINE_FACTORIES["classic"](),
                               b1, b2, x0, 48).final
            d = run_recurrence(ENGINE_FACTORIES["discrete64"](),
                               b1, b2, x0, 48).final
            if f.is_normal and d.is_normal and exact != 0:
                fused_bits.append(mantissa_error_bits(f.to_fraction(),
                                                      exact))
                disc_bits.append(mantissa_error_bits(d.to_fraction(),
                                                     exact))
        assert sum(fused_bits) / len(fused_bits) <= \
            sum(disc_bits) / len(disc_bits)

    def test_wider_reference_formats_are_strictly_better(self):
        for seed in range(4):
            b1, b2, x0 = make_workload(seed)
            exact = reference_recurrence(b1, b2, x0, 48)[-1]
            e64 = run_recurrence(ENGINE_FACTORIES["discrete64"](),
                                 b1, b2, x0, 48).final
            e75 = run_recurrence(ENGINE_FACTORIES["discrete75"](),
                                 b1, b2, x0, 48).final
            if e64.is_normal and e75.is_normal and exact != 0:
                assert abs(e75.to_fraction() - exact) <= \
                    abs(e64.to_fraction() - exact)

    @pytest.mark.parametrize("name", ["pcs", "fcs"])
    def test_cs_chain_error_small_in_mantissa_bits(self, name):
        for seed in range(4):
            b1, b2, x0 = make_workload(seed)
            exact = reference_recurrence(b1, b2, x0, 48)[-1]
            v = run_recurrence(ENGINE_FACTORIES[name](),
                               b1, b2, x0, 48).final
            if v.is_normal and exact != 0:
                assert mantissa_error_bits(v.to_fraction(), exact) <= 2.0


class TestChainedFmaSemantics:
    @pytest.mark.parametrize("name", ["pcs", "fcs"])
    @given(a=normal_doubles(-20, 20), b=normal_doubles(-20, 20),
           c=normal_doubles(-20, 20), b2=normal_doubles(-20, 20),
           a2=normal_doubles(-20, 20))
    @settings(max_examples=40)
    def test_two_fma_chain_both_ports(self, name, a, b, c, b2, a2):
        """Feed an FMA result into both the A port and the C port of a
        successor; the chained result must track the exact value to a
        couple of final-ulps *at the chain's working scale*.  (A plain
        relative bound is wrong under cancellation: rounding error
        committed at the magnitude of the intermediates is amplified
        arbitrarily when the second FMA cancels most of the first's
        result, e.g. a=2^-17ish, b*c = -b2*c = 2^15.)"""
        e = ENGINE_FACTORIES[name]()
        A, C, A2 = e.lift(double(a)), e.lift(double(c)), e.lift(double(a2))
        t = e.fma(A, double(b), C)
        r_a = e.lower(e.fma(t, double(b2), C))       # t on the A port
        r_c = e.lower(e.fma(A2, double(b2), t))      # t on the C port
        exact_t = Fraction(a) + Fraction(b) * Fraction(c)
        exact_a = exact_t + Fraction(b2) * Fraction(c)
        exact_c = Fraction(a2) + Fraction(b2) * exact_t
        checks = (
            (r_a, exact_a,
             max(abs(exact_t), abs(Fraction(b2) * Fraction(c)))),
            (r_c, exact_c,
             max(abs(Fraction(b2)) * abs(exact_t), abs(Fraction(a2)))),
        )
        for out, exact, working in checks:
            if out.is_normal and exact != 0:
                err = abs(out.to_fraction() - exact)
                assert err <= max(abs(exact), working) / (2 ** 47)

    def test_engine_names_are_distinct(self):
        names = {f().name for f in ENGINE_FACTORIES.values()}
        assert len(names) == len(ENGINE_FACTORIES)
