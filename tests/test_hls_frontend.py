"""Tests for the C-like frontend (repro.hls.frontend)."""

import pytest

from repro.hls import OpKind, ParseError, parse_program, simulate

LISTING1 = """
x[1] = a*b + c*d;
x[2] = e*f + g*x[1];
x[3] = h*i + k*x[2];
"""


class TestListing1:
    """The paper's Listing 1 must parse into the Fig. 1 CDFG."""

    def test_structure(self):
        g = parse_program(LISTING1)
        assert g.op_count(OpKind.MUL) == 6
        assert g.op_count(OpKind.ADD) == 3
        assert g.op_count(OpKind.INPUT) == 10
        assert [g.nodes[o].name for o in g.outputs()] == ["x[3]"]

    def test_values(self):
        g = parse_program(LISTING1)
        ins = dict(a=1, b=2, c=3, d=4, e=5, f=6, g=7, h=8, i=9, k=10)
        ins = {k_: float(v) for k_, v in ins.items()}
        x1 = 1 * 2 + 3 * 4
        x2 = 5 * 6 + 7 * x1
        x3 = 8 * 9 + 10 * x2
        out = simulate(g, ins)
        assert out["x[3]"] == x3


class TestExpressions:
    def test_precedence(self):
        g = parse_program("y = a + b*c;")
        assert simulate(g, dict(a=1.0, b=2.0, c=3.0))["y"] == 7.0

    def test_parentheses(self):
        g = parse_program("y = (a + b)*c;")
        assert simulate(g, dict(a=1.0, b=2.0, c=3.0))["y"] == 9.0

    def test_subtraction_left_assoc(self):
        g = parse_program("y = a - b - c;")
        assert simulate(g, dict(a=10.0, b=3.0, c=2.0))["y"] == 5.0

    def test_unary_minus(self):
        g = parse_program("y = -a*b;")
        assert simulate(g, dict(a=2.0, b=3.0))["y"] == -6.0

    def test_literals(self):
        g = parse_program("y = 2.5*a + 1;")
        assert simulate(g, dict(a=2.0))["y"] == 6.0

    def test_scientific_literals(self):
        g = parse_program("y = 1.5e2 + a;")
        assert simulate(g, dict(a=0.5))["y"] == 150.5

    def test_comments_ignored(self):
        g = parse_program("// header\ny = a + b; /* inline */\n")
        assert simulate(g, dict(a=1.0, b=2.0))["y"] == 3.0

    def test_rebinding_names(self):
        g = parse_program("t = a + b;\nt = t*c;\n")
        assert simulate(g, dict(a=1.0, b=2.0, c=4.0))["t"] == 12.0


class TestOutputs:
    def test_default_outputs_are_live_out(self):
        g = parse_program("t = a + b;\ny = t*c;\n")
        names = {g.nodes[o].name for o in g.outputs()}
        assert names == {"y"}

    def test_explicit_outputs(self):
        g = parse_program("t = a + b;\ny = t*c;\n", outputs=["t", "y"])
        names = {g.nodes[o].name for o in g.outputs()}
        assert names == {"t", "y"}

    def test_unknown_output_rejected(self):
        with pytest.raises(ParseError):
            parse_program("y = a;", outputs=["z"])


class TestErrors:
    @pytest.mark.parametrize("src", [
        "y = ;", "y = a +;", "= a;", "y a;", "y = a", "y = (a;",
        "y = a $ b;", "",
    ])
    def test_malformed(self, src):
        with pytest.raises(ParseError):
            parse_program(src)
