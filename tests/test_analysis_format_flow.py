"""Tests for the CS format-flow verifier (repro.analysis.format_flow).

Two halves: clean shipped graphs must yield zero diagnostics, and
every seeded corruption must be detected with exactly its expected
rule ids (no miss, no collateral noise).
"""

import pytest

from repro.analysis import (RULES, Severity, all_violations,
                            graph_targets, run_detection_suite,
                            verify_format_flow)
from repro.hls import CDFG, OpKind, default_library, run_fma_insertion

LISTING1 = """
x1 = a*b + c*d;
x2 = e*f + g*x1;
x3 = h*i + k*x2;
"""


def fused_listing1(flavor="pcs"):
    from repro.hls import parse_program

    g = parse_program(LISTING1)
    run_fma_insertion(g, default_library(fma_flavor=flavor))
    return g


class TestCleanGraphs:
    @pytest.mark.parametrize("name", sorted(graph_targets()))
    def test_shipped_graphs_verify_clean(self, name):
        graph = graph_targets()[name]()
        assert verify_format_flow(graph).clean

    @pytest.mark.parametrize("flavor", ["pcs", "fcs"])
    def test_post_pass_graphs_verify_clean(self, flavor):
        report = verify_format_flow(fused_listing1(flavor))
        assert report.clean, [d.format() for d in report.diagnostics]

    def test_empty_graph_is_clean(self):
        assert verify_format_flow(CDFG()).clean


class TestSeededViolations:
    """Acceptance criterion: each corruption yields exactly its rule."""

    @pytest.mark.parametrize(
        "violation", all_violations(),
        ids=[v.name for v in all_violations()])
    def test_detected_with_exact_rule_ids(self, violation):
        from repro.hw.technology import VIRTEX6

        report = violation.run(VIRTEX6)
        assert report.rule_ids() == set(violation.expected), \
            [d.format() for d in report.diagnostics]

    def test_suite_runner_reports_all_detected(self):
        results = run_detection_suite()
        assert len(results) >= 6
        assert all(r.detected for r in results)

    def test_suite_covers_all_required_corruptions(self):
        names = {v.name for v in all_violations()}
        required = {"missing-converter", "redundant-converter-pair",
                    "cs-to-output", "swapped-fma-ports",
                    "netlist-stage-width", "schedule-ready-time"}
        assert required <= names


class TestIndividualRules:
    def test_cs007_c2i_of_i2c(self):
        g = CDFG()
        a = g.add_input("a")
        rt = g.add_op(OpKind.C2I, g.add_op(OpKind.I2C, a))
        g.add_output(rt, "y")
        assert verify_format_flow(g).rule_ids() == {"CS007"}

    def test_cs009_wrong_operand_count(self):
        g = CDFG()
        a = g.add_input("a")
        b = g.add_input("b")
        s = g.add_op(OpKind.ADD, a, b)
        g.add_output(s, "y")
        g.nodes[s].operands.append(b)       # third operand on an ADD
        assert "CS009" in verify_format_flow(g).rule_ids()

    def test_cs010_no_outputs(self):
        g = CDFG()
        a = g.add_input("a")
        g.add_op(OpKind.NEG, a)
        ids = verify_format_flow(g).rule_ids()
        assert "CS010" in ids

    def test_cs011_source_with_operands(self):
        g = CDFG()
        a = g.add_input("a")
        b = g.add_input("b")
        g.add_output(g.add_op(OpKind.ADD, a, b), "y")
        g.nodes[b].operands = [a]
        assert "CS011" in verify_format_flow(g).rule_ids()

    def test_cs012_negate_b_outside_fma(self):
        g = CDFG()
        a = g.add_input("a")
        b = g.add_input("b")
        s = g.add_op(OpKind.ADD, a, b)
        g.add_output(s, "y")
        g.nodes[s].negate_b = True
        assert verify_format_flow(g).rule_ids() == {"CS012"}

    def test_multiple_violations_all_reported(self):
        g = CDFG()
        a = g.add_input("a")
        b = g.add_input("b")
        s = g.add_op(OpKind.ADD, a, b)
        out = g.add_output(s, "y")
        g.nodes[s].operands[1] = 4242       # dangling (a keeps s? no--)
        g.nodes[out].operands = [4343]      # dangling output too
        ids = verify_format_flow(g).rule_ids()
        assert "CS001" in ids

    def test_severities_come_from_registry(self):
        g = CDFG()
        a = g.add_input("a")
        rt = g.add_op(OpKind.C2I, g.add_op(OpKind.I2C, a))
        g.add_output(rt, "y")
        report = verify_format_flow(g)
        (diag,) = report.diagnostics
        assert diag.severity is RULES[diag.rule].severity
        assert diag.severity is Severity.WARNING
        assert report.ok and not report.clean

    def test_diagnostic_format_names_rule_and_location(self):
        g = CDFG()
        a = g.add_input("a")
        rt = g.add_op(OpKind.C2I, g.add_op(OpKind.I2C, a))
        g.add_output(rt, "y")
        (diag,) = verify_format_flow(g, target="t").diagnostics
        text = diag.format()
        assert "CS007" in text and "[t]" in text and "node" in text
