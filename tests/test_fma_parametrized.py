"""The architectures are 'freely parametrizable' (Sec. III): exercise
the generic CS-FMA datapath on non-default geometries."""

import random
from fractions import Fraction

import pytest

from repro.fma import (CSFloat, CSFmaParams, CSFmaUnit, cs_to_ieee,
                       ieee_to_cs)
from repro.fp import BINARY32, double, exact_fma_fraction, ulp_error

#: a single-precision-class PCS variant: 15-bit blocks, two-block
#: mantissa (30 digits >= 24+guard+sign), carries every 5th bit
SINGLE_PCS = CSFmaParams(
    name="pcs-sp",
    block=15,
    mant_blocks=2,
    window_blocks=7,
    right_blocks=2,
    carry_spacing=5,
    exp_bits=10,
    exp_bias=511,
    b_sig_bits=24,
)

#: a wider FCS variant with four result blocks
WIDE_FCS = CSFmaParams(
    name="fcs-wide",
    block=29,
    mant_blocks=4,
    window_blocks=15,
    right_blocks=4,
    carry_spacing=1,
)

VARIANTS = [
    (SINGLE_PCS, "zd", True),
    (WIDE_FCS, "lza", False),
    (CSFmaParams(name="pcs-dense", block=55, mant_blocks=2,
                 window_blocks=7, right_blocks=2, carry_spacing=5),
     "zd", True),
]


def _b_value(rng, params):
    """A B operand whose significand fits the variant's B port."""
    from repro.fp import FPValue

    if params.b_sig_bits < 53:
        return FPValue.from_float(rng.uniform(-100, 100), BINARY32)
    return double(rng.uniform(-100, 100))


class TestParametrizedUnits:
    @pytest.mark.parametrize("params,selector,reduce_", VARIANTS,
                             ids=[p.name for p, _s, _r in VARIANTS])
    def test_geometry_consistency(self, params, selector, reduce_):
        assert params.window_width == params.block * params.window_blocks
        assert params.mux_positions == \
            params.window_blocks - params.mant_blocks + 1
        assert params.frac_bits == params.mant_width - 3

    @pytest.mark.parametrize("params,selector,reduce_", VARIANTS,
                             ids=[p.name for p, _s, _r in VARIANTS])
    def test_roundtrip(self, params, selector, reduce_):
        rng = random.Random(0)
        for _ in range(50):
            x = double(rng.uniform(-1e3, 1e3))
            if params.frac_bits + 1 < 53:
                continue  # source format too wide for this variant
            assert cs_to_ieee(ieee_to_cs(x, params)) == x

    @pytest.mark.parametrize("params,selector,reduce_", VARIANTS,
                             ids=[p.name for p, _s, _r in VARIANTS])
    def test_fma_accuracy(self, params, selector, reduce_):
        unit = CSFmaUnit(params, selector=selector,
                         use_carry_reduce=reduce_)
        rng = random.Random(1)
        # precision guarantee of the variant: at least
        # (frac_bits - block - margin) correct bits, capped by the
        # binary64 rounding of inputs and output
        frac = params.frac_bits
        guaranteed_bits = min(max(frac - params.block - 4, 1), 52)
        bound = Fraction(1, 1 << guaranteed_bits)
        for _ in range(150):
            a = rng.uniform(-100, 100)
            c = rng.uniform(-100, 100)
            fb = _b_value(rng, params)
            fa, fc = double(a), double(c)
            if params.frac_bits + 1 < 53:
                # narrow variant: operate on inputs representable in it
                fa = cs_to_ieee(ieee_to_cs_lossy(fa, params))
                fc = cs_to_ieee(ieee_to_cs_lossy(fc, params))
                A = ieee_to_cs_lossy(fa, params)
                C = ieee_to_cs_lossy(fc, params)
            else:
                A = ieee_to_cs(fa, params)
                C = ieee_to_cs(fc, params)
            r = unit.fma(A, fb, C)
            out = cs_to_ieee(r)
            exact = exact_fma_fraction(fa, fb, fc)
            if out.is_normal and exact != 0:
                rel = abs(out.to_fraction() - exact) / abs(exact)
                assert rel <= bound, (params.name, a, fb.to_float(), c,
                                      float(rel))

    def test_default_double_precision_units_within_one_ulp(self):
        from repro.fma import FcsFmaUnit, PcsFmaUnit
        rng = random.Random(2)
        for unit in (PcsFmaUnit(), FcsFmaUnit()):
            for _ in range(100):
                fa = double(rng.uniform(-1e5, 1e5))
                fb = double(rng.uniform(-1e5, 1e5))
                fc = double(rng.uniform(-1e5, 1e5))
                r = unit.fma(ieee_to_cs(fa, unit.params), fb,
                             ieee_to_cs(fc, unit.params))
                out = cs_to_ieee(r)
                exact = exact_fma_fraction(fa, fb, fc)
                if out.is_normal and exact != 0:
                    assert ulp_error(out, exact) <= 1


def ieee_to_cs_lossy(x, params):
    """Round an IEEE value into a *narrower* CS format (the converter a
    reduced-precision variant would use)."""
    from repro.fp import FPValue, FloatFormat

    if not x.is_normal:
        return CSFloat.from_ieee(x, params)
    narrow = FloatFormat("narrow", 11, params.frac_bits)
    y = FPValue.from_fraction(x.to_fraction(), narrow)
    return CSFloat.from_ieee(y, params)
