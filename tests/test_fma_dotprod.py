"""Tests for the fused dot-product extension (repro.fma.dotprod)."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.fma import (FusedDotProductUnit, PcsFmaUnit, compare_dot_products,
                       exact_dot, fma_dot, naive_dot)
from repro.fp import FPValue


def vec(values):
    return [FPValue.from_float(float(v)) for v in values]


class TestFusedDot:
    def test_simple_values(self):
        unit = FusedDotProductUnit()
        assert unit.dot_floats([1, 2, 3], [4, 5, 6]) == 32.0

    def test_empty_vectors(self):
        assert FusedDotProductUnit().dot([], []).is_zero

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            FusedDotProductUnit().dot(vec([1]), vec([1, 2]))

    def test_pcs_flavor(self):
        unit = FusedDotProductUnit(PcsFmaUnit())
        assert unit.name == "fused-dot-pcs"
        assert unit.dot_floats([0.5, 0.25], [2.0, 4.0]) == 2.0

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=15))
    @settings(max_examples=30)
    def test_matches_exact_within_one_ulp(self, xs):
        a = vec(xs)
        b = vec([x / 3 + 1 for x in xs])
        exact = exact_dot(a, b)
        r = FusedDotProductUnit().dot(a, b)
        if r.is_normal and exact != 0:
            ulp = Fraction(2) ** (r.unbiased_exponent - 52)
            assert abs(r.to_fraction() - exact) <= ulp

    def test_single_rounding_for_cancellation(self):
        # a dot product whose partial sums cancel catastrophically:
        # [M, 1, -M] . [1, 1, 1].  With M = 2^60 the intermediate 1.0
        # falls 60 bits below the running sum -- inside the 87-digit CS
        # accumulator but far outside binary64's 53 bits.
        M = 2.0 ** 60
        a = vec([M, 1.0, -M])
        b = vec([1.0, 1.0, 1.0])
        fused = FusedDotProductUnit().dot(a, b)
        naive = naive_dot(a, b)
        assert fused.to_float() == 1.0         # exact
        assert naive.to_float() == 0.0         # the 1.0 was absorbed

    def test_accumulator_precision_is_bounded(self):
        # the CS accumulator is wide, not infinite (not a Kulisch
        # accumulator): data further below the running maximum than the
        # mantissa + rounding block is consumed by the deferred
        # rounding decision
        M = 2.0 ** 120
        a = vec([M, 1.0, -M])
        b = vec([1.0, 1.0, 1.0])
        fused = FusedDotProductUnit().dot(a, b)
        assert fused.to_float() != 1.0


class TestBaselines:
    @given(st.lists(st.floats(-100, 100).filter(
        lambda x: x == 0.0 or abs(x) > 1e-300), min_size=1, max_size=10))
    @settings(max_examples=25)
    def test_naive_matches_python_loop(self, xs):
        # subnormals excluded: the models flush them to zero by design
        a = vec(xs)
        b = vec([2.0] * len(xs))
        acc = 0.0
        for x in xs:
            acc = acc + x * 2.0
        assert naive_dot(a, b).to_float() == acc

    def test_fma_loop_beats_naive_on_products(self):
        # products that need >53 bits: the fma loop keeps them
        x = 1.0 + 2.0 ** -30
        a = vec([x, -1.0])
        b = vec([x, x * x])
        exact = exact_dot(a, b)
        err_naive = abs(naive_dot(a, b).to_fraction() - exact)
        err_fma = abs(fma_dot(a, b).to_fraction() - exact)
        assert err_fma <= err_naive


class TestComparison:
    def test_comparison_structure(self):
        a = vec([1.0, 2.0, 3.0])
        b = vec([4.0, 5.0, 6.0])
        c = compare_dot_products(a, b)
        assert set(c.errors_ulp) == {"naive", "fma-loop", "kahan",
                                     "fused-pcs", "fused-fcs"}
        assert c.exact == 32
        assert c.errors_ulp[c.best()] == min(c.errors_ulp.values())

    def test_fused_wins_on_ill_conditioned_inputs(self):
        rng = random.Random(3)
        fused_total = 0.0
        kahan_total = 0.0
        for _ in range(10):
            n = rng.randint(8, 40)
            a, b = [], []
            for _ in range(n):
                scale = 10.0 ** rng.randint(0, 10)
                a.append(FPValue.from_float(rng.uniform(-scale, scale)))
                b.append(FPValue.from_float(rng.uniform(-1, 1)))
            c = compare_dot_products(a, b)
            fused_total += c.errors_ulp["fused-fcs"]
            kahan_total += c.errors_ulp["kahan"]
        assert fused_total < kahan_total

    def test_zero_exact_handled(self):
        a = vec([1.0, -1.0])
        b = vec([1.0, 1.0])
        c = compare_dot_products(a, b)
        assert c.exact == 0
        assert all(v >= 0 for v in c.errors_ulp.values())
