"""Tests of the experiment harness (every table/figure runs and holds
its headline shape)."""

import pytest

from repro.experiments import ablation, fig13, fig14, fig15, table1, table2
from repro.experiments.runner import EXPERIMENTS, main


class TestTable1:
    def test_runs_and_formats(self):
        rows = table1.run()
        text = table1.format_table(rows)
        assert "Xilinx CoreGen" in text and "FCS-FMA" in text
        assert len(rows) == 4

    def test_rows_carry_paper_reference(self):
        for r in table1.run():
            assert r.paper == table1.PAPER_TABLE1[r.architecture]
            assert abs(r.fmax_delta_percent) < 5.0


class TestFig13:
    def test_speedups(self):
        points = {p.architecture: p for p in fig13.run()}
        assert points["fcs-fma"].speedup_vs_best_baseline > \
            points["pcs-fma"].speedup_vs_best_baseline > 1.0

    def test_paper_latency_derivation(self):
        # 9 cycles at 244 MHz
        assert fig13.paper_latency_ns("coregen") == \
            pytest.approx(9 * 1000 / 244)


class TestFig14:
    def test_small_run_shape(self):
        results = {r.engine: r for r in fig14.run(runs=4)}
        assert results["pcs-fma"].mean_ulp_error <= \
            results["discrete-binary64"].mean_ulp_error
        assert results["fcs-fma"].mean_ulp_error <= \
            results["discrete-binary64"].mean_ulp_error
        assert all(r.runs == 4 for r in results.values())

    def test_workload_respects_coefficient_ranges(self):
        b1, b2, x0 = fig14.make_workload(0)
        for v in b1:
            assert 1.0 < abs(v.to_float()) < 32.0
        for v in b2:
            assert 0.0 < abs(v.to_float()) < 1.0
        assert len(x0) == 3

    def test_format(self):
        text = fig14.format_table(fig14.run(runs=2))
        assert "pcs-fma" in text


class TestTable2:
    def test_shape(self):
        rows = {r.architecture: r for r in table2.run(steps=20)}
        base = rows["coregen"].energy_nj
        assert rows["pcs-fma"].energy_nj > 3 * base
        assert rows["fcs-fma"].energy_nj < rows["pcs-fma"].energy_nj
        text = table2.format_table(list(rows.values()))
        assert "nJ" in text


class TestFig15:
    def test_single_small_solver(self):
        rows = fig15.run(sizes=[("small", 4, 1)])
        assert len(rows) == 1
        r = rows[0]
        assert r.fcs_cycles < r.pcs_cycles < r.baseline_cycles
        assert r.fcs_reduction_percent > 25.0
        text = fig15.format_table(rows)
        assert "small" in text


class TestAblation:
    def test_divisor_spacings(self):
        assert ablation.divisor_spacings(55) == [5, 11, 55]
        assert 7 in ablation.divisor_spacings(56)

    def test_carry_density_tradeoff(self):
        points = ablation.carry_density_sweep(blocks=[55])
        by_spacing = {p.spacing: p for p in points}
        # the paper's observation: 5 vs 11 delay gap is small, carry
        # cost differs by >2x
        assert by_spacing[11].delay_penalty_percent < 10.0
        assert by_spacing[5].carry_bits_per_block > \
            2 * by_spacing[11].carry_bits_per_block
        # 35 window carries for spacing 11 over 7 blocks (Sec. III-E)
        assert by_spacing[11].window_carry_bits == 35

    def test_56_block_future_work_variant(self):
        points = ablation.carry_density_sweep(blocks=[56])
        assert len(points) >= 6  # richer divisor structure than 55

    def test_selector_study(self):
        points = {p.selector: p
                  for p in ablation.selector_accuracy_study(samples=80)}
        # both stay sub-ULP; LZA is allowed to be slightly worse
        assert points["zd"].max_ulp_error <= 1.0
        assert points["lza"].max_ulp_error <= 1.5


class TestRunnerCli:
    def test_main_runs_selected(self, capsys):
        assert main(["table1", "fig13"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig13" in out

    def test_experiments_registry_complete(self):
        assert set(EXPERIMENTS) >= {"table1", "fig13", "fig14",
                                    "table2", "fig15", "ablation"}
