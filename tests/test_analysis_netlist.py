"""Tests for the netlist consistency lint (repro.analysis.netlist_lint)."""

import dataclasses
import math

import pytest

from repro.analysis import lint_design, lint_library, netlist_targets
from repro.fma.formats import FCS_PARAMS, PCS_PARAMS
from repro.hls import default_library
from repro.hw.components import Component, make_mux
from repro.hw.netlist import (design_by_name, fcs_fma_design,
                              pcs_fma_design)
from repro.hw.technology import VIRTEX6


class TestCleanDesigns:
    @pytest.mark.parametrize("name", netlist_targets())
    def test_shipped_designs_lint_clean(self, name):
        report = lint_design(design_by_name(name, VIRTEX6), VIRTEX6)
        assert report.clean, [d.format() for d in report.diagnostics]

    @pytest.mark.parametrize("flavor", ["pcs", "fcs"])
    def test_operator_library_latencies_match_hardware(self, flavor):
        report = lint_library(default_library(fma_flavor=flavor))
        assert report.clean, [d.format() for d in report.diagnostics]


def _replace_component(design, name, new):
    path = [new if c.name == name else c for c in design.path]
    return dataclasses.replace(design, path=path)


class TestGeometryRules:
    def test_nl001_missing_window_stage(self):
        design = pcs_fma_design(VIRTEX6)
        path = [c for c in design.path if c.name != "window-3to2"]
        report = lint_design(dataclasses.replace(design, path=path))
        assert "NL001" in report.rule_ids()

    def test_nl002_fcs_must_not_have_zd_on_path(self):
        fcs = fcs_fma_design(VIRTEX6)
        pcs = pcs_fma_design(VIRTEX6)
        zd = next(c for c in pcs.path if c.name.startswith("zd"))
        corrupted = dataclasses.replace(fcs, path=fcs.path + [zd])
        assert "NL002" in lint_design(corrupted).rule_ids()

    def test_nl003_carry_reduce_width(self):
        design = pcs_fma_design(VIRTEX6)
        cr = next(c for c in design.path if c.name == "carry-reduce")
        corrupted = _replace_component(
            design, "carry-reduce", dataclasses.replace(cr, luts=29))
        assert lint_design(corrupted).rule_ids() == {"NL003"}

    def test_nl004_result_mux_positions(self):
        design = pcs_fma_design(VIRTEX6)
        result_w = PCS_PARAMS.mant_width + PCS_PARAMS.block
        wrong = make_mux(11, result_w, VIRTEX6, "result-mux")
        corrupted = _replace_component(design, "result-mux", wrong)
        assert lint_design(corrupted).rule_ids() == {"NL004"}

    def test_nl005_preshift_window(self):
        design = fcs_fma_design(VIRTEX6)
        pre = next(c for c in design.offpath
                   if c.name == "a-preshift")
        offpath = [dataclasses.replace(c, luts=c.luts // 2)
                   if c.name == "a-preshift" else c
                   for c in design.offpath]
        corrupted = dataclasses.replace(design, offpath=offpath)
        assert pre.luts > 0
        assert lint_design(corrupted).rule_ids() == {"NL005"}

    def test_nl006_window_wires(self):
        design = pcs_fma_design(VIRTEX6)
        corrupted = dataclasses.replace(design, window_wires=42)
        assert lint_design(corrupted).rule_ids() == {"NL006"}

    def test_nl007_implausible_cost(self):
        design = pcs_fma_design(VIRTEX6)
        bad = Component("window-3to2", math.nan,
                        PCS_PARAMS.window_width)
        corrupted = _replace_component(design, "window-3to2", bad)
        assert "NL007" in lint_design(corrupted).rule_ids()

    def test_nl007_empty_path(self):
        empty = dataclasses.replace(pcs_fma_design(VIRTEX6), path=[],
                                    window_wires=420)
        ids = lint_design(empty).rule_ids()
        assert "NL007" in ids

    def test_nl008_latency_drift_in_any_operator(self):
        library = default_library(fma_flavor="fcs")
        spec = library.specs["add"]
        library.specs["add"] = dataclasses.replace(
            spec, latency=spec.latency + 1)
        report = lint_library(library)
        assert report.rule_ids() == {"NL008"}
        assert any("'add'" in d.location for d in report.diagnostics)

    def test_window_constants_match_paper(self):
        # the constants the lint checks against are the paper's:
        # 110b/11b-chunk PCS over a 385b window, 87c/29c-block FCS
        # over a 377c window, 13-block alignment
        assert PCS_PARAMS.window_width == 385
        assert PCS_PARAMS.mant_width == 110
        assert PCS_PARAMS.carry_spacing == 11
        assert FCS_PARAMS.window_width == 377
        assert FCS_PARAMS.mant_width == 87
        assert FCS_PARAMS.window_blocks == 13
