"""Failure injection: corrupt states, broken invariants, hostile inputs.

Every layer of the stack must *detect* violated preconditions rather
than silently compute garbage -- the property that makes the functional
models trustworthy as a hardware reference.
"""

import numpy as np
import pytest

from repro.cs import CSNumber
from repro.fma import (CSFloat, FCS_PARAMS, PCS_PARAMS, PcsFmaUnit,
                       cs_to_ieee, ieee_to_cs)
from repro.fp import BINARY64, FpClass, FPValue, double
from repro.hls import (OpKind, ScheduleViolation, asap_schedule,
                       default_library, execute_schedule, parse_program)
from repro.solvers import InteriorPointSolver, QPProblem


class TestCorruptedCsNumbers:
    def test_carry_outside_mask_rejected(self):
        p = PCS_PARAMS
        with pytest.raises(ValueError):
            CSNumber(0, 1 << 5, p.mant_width, p.mant_carry_mask)

    def test_oversized_sum_rejected(self):
        with pytest.raises(ValueError):
            CSNumber(1 << 110, 0, 110)

    def test_corrupted_mantissa_width_rejected(self):
        p = PCS_PARAMS
        bad = CSNumber(1, 0, 55)  # half the required width
        with pytest.raises(ValueError):
            CSFloat(p, FpClass.NORMAL, exp=0, mant=bad)

    def test_corrupted_round_block_width_rejected(self):
        p = PCS_PARAMS
        mant = CSNumber(1 << 107, 0, p.mant_width, p.mant_carry_mask)
        bad_round = CSNumber(0, 0, 11)
        with pytest.raises(ValueError):
            CSFloat(p, FpClass.NORMAL, exp=0, mant=mant,
                    round_data=bad_round)

    def test_exponent_overflow_rejected(self):
        p = PCS_PARAMS
        mant = CSNumber(1 << 107, 0, p.mant_width, p.mant_carry_mask)
        for bad_exp in (p.exp_max + 1, p.exp_min - 1):
            with pytest.raises(ValueError):
                CSFloat(p, FpClass.NORMAL, exp=bad_exp, mant=mant)


class TestHostileFmaOperands:
    def test_mixed_format_operands_rejected(self):
        unit = PcsFmaUnit()
        a_fcs = ieee_to_cs(double(1.0), FCS_PARAMS)
        c_pcs = ieee_to_cs(double(1.0), PCS_PARAMS)
        with pytest.raises(ValueError):
            unit.fma(a_fcs, double(1.0), c_pcs)

    def test_denormalized_operand_still_sound(self):
        # an operand whose mantissa is NOT block-normalized (all value
        # in the low block) must still produce a value-correct result
        p = PCS_PARAMS
        unit = PcsFmaUnit()
        low_mant = CSNumber(1 << 20, 0, p.mant_width, p.mant_carry_mask)
        weird = CSFloat(p, FpClass.NORMAL, exp=0, mant=low_mant)
        r = unit.fma(weird, double(1.0), ieee_to_cs(double(1.0), p))
        out = cs_to_ieee(r)
        expect = float(weird.to_fraction()) + 1.0
        assert out.to_float() == pytest.approx(expect, rel=1e-12)

    def test_all_carries_set_operand(self):
        # a legal-but-extreme operand: every permitted carry bit set
        p = PCS_PARAMS
        unit = PcsFmaUnit()
        mant = CSNumber((1 << 108) - 1, p.mant_carry_mask, p.mant_width,
                        p.mant_carry_mask)
        x = CSFloat(p, FpClass.NORMAL, exp=0, mant=mant)
        r = unit.fma(x, double(0.5), ieee_to_cs(double(1.0), p))
        out = cs_to_ieee(r)
        expect = x.to_fraction() + (double(0.5).to_fraction() * 1)
        assert out.is_normal
        rel = abs(out.to_fraction() - expect) / abs(expect)
        assert rel < 1e-15


class TestHlsRobustness:
    def test_type_confusion_rejected_by_validate(self):
        g = parse_program("y = a + b;")
        # surgically mis-wire: feed a CS value into the ADD
        a = g.inputs()[0]
        cs = g.add_op(OpKind.I2C, a)
        add = [n for n in g.nodes.values() if n.kind is OpKind.ADD][0]
        add.operands[0] = cs
        with pytest.raises(TypeError):
            g.validate()

    def test_cyclic_graph_rejected(self):
        g = parse_program("y = a + b;")
        add = [n for n in g.nodes.values() if n.kind is OpKind.ADD][0]
        out = g.outputs()[0]
        add.operands[1] = out
        with pytest.raises(ValueError):
            g.validate()

    def test_sabotaged_schedule_detected(self):
        lib = default_library()
        g = parse_program("y = a*b + c;")
        sched = asap_schedule(g, lib)
        mul = [n.id for n in g.nodes.values()
               if n.kind is OpKind.MUL][0]
        add = [n.id for n in g.nodes.values()
               if n.kind is OpKind.ADD][0]
        sched.start[add] = sched.start[mul]  # issue before operand done
        with pytest.raises(ScheduleViolation):
            execute_schedule(g, sched, lib, dict(a=1.0, b=1.0, c=1.0))


class TestSolverRobustness:
    def test_infeasible_problem_reports_non_convergence(self):
        # x <= -1 and -x <= -1 simultaneously: empty feasible set
        P = np.eye(1)
        q = np.zeros(1)
        G = np.array([[1.0], [-1.0]])
        h = np.array([-1.0, -1.0])
        p = QPProblem(P, q, np.zeros((0, 1)), np.zeros(0), G, h)
        res = InteriorPointSolver(p, max_iterations=15).solve()
        assert not res.converged

    def test_unbounded_below_does_not_crash(self):
        # linear objective, no constraints: diverges but must terminate
        P = np.zeros((1, 1))
        q = np.array([1.0])
        p = QPProblem(P, q, np.zeros((0, 1)), np.zeros(0),
                      np.zeros((0, 1)), np.zeros(0))
        res = InteriorPointSolver(p, max_iterations=5).solve()
        assert res.iterations <= 5

    def test_singular_kkt_detected(self):
        from repro.solvers import numeric_ldl, symbolic_ldl
        K = np.zeros((3, 3))
        K[0, 1] = K[1, 0] = 1.0
        sym = symbolic_ldl(np.ones((3, 3), dtype=bool),
                           order=np.arange(3))
        with pytest.raises(ZeroDivisionError):
            numeric_ldl(K, sym)


class TestPackingCorruption:
    def test_unpack_garbage_class_bits(self):
        # any 2-bit class decodes to a valid FpClass; garbage payloads
        # of non-normal classes are ignored rather than trusted
        word = (FpClass.NAN.value << (PCS_PARAMS.operand_bits)) | 12345
        x = CSFloat.unpack(word, PCS_PARAMS)
        assert x.is_nan

    def test_ieee_unpack_of_corrupt_exponent(self):
        # a NORMAL-class word whose exponent field is all ones violates
        # the format invariant and must be rejected
        v = FPValue.from_float(1.0)
        word = v.pack()
        word |= (BINARY64.exponent_mask << BINARY64.fraction_bits)
        with pytest.raises(ValueError):
            FPValue.unpack(word, BINARY64)
