"""Table II shape tests (repro.hw.energy)."""

import random

import pytest

from repro.fma import (DiscreteMulAddEngine, FusedIeeeEngine, fcs_engine,
                       pcs_engine)
from repro.fp import BINARY64, double
from repro.hw import (VIRTEX6, design_by_name, estimate_energy,
                      glitch_factor, measure_toggle_activity, synthesize)

PAPER_TABLE2 = {  # nJ per multiply-add
    "coregen": 0.54,
    "flopoco": 0.74,
    "pcs-fma": 2.67,
    "fcs-fma": 2.36,
}


def fig14_workload(seed=42, steps=40):
    rng = random.Random(seed)
    b1 = [double(rng.choice([-1, 1]) * rng.uniform(1, 32))
          for _ in range(steps)]
    b2 = [double(rng.choice([-1, 1]) * rng.uniform(1e-6, 1))
          for _ in range(steps)]
    x0 = [double(rng.uniform(-1, 1)) for _ in range(3)]
    return b1, b2, x0, steps


@pytest.fixture(scope="module")
def energies():
    b1, b2, x0, steps = fig14_workload()
    engines = {
        "coregen": DiscreteMulAddEngine(BINARY64),
        "flopoco": FusedIeeeEngine(),
        "pcs-fma": pcs_engine(),
        "fcs-fma": fcs_engine(),
    }
    out = {}
    for name, engine in engines.items():
        act = measure_toggle_activity(engine, b1, b2, x0, steps)
        design = design_by_name(name, VIRTEX6)
        report = synthesize(design, VIRTEX6)
        out[name] = estimate_energy(design, report, act, VIRTEX6)
    return out


class TestActivityMeasurement:
    def test_data_rates_plausible(self, energies):
        for er in energies.values():
            assert 0.2 <= er.activity.data_rate <= 0.6

    def test_carry_reduce_cleans_the_window(self, energies):
        # PCS's Carry Reduce leaves a much quieter window fabric than the
        # FCS unit's raw carry-save wires
        assert energies["pcs-fma"].activity.window_rate < \
            0.6 * energies["fcs-fma"].activity.window_rate


class TestTable2Shape:
    @pytest.mark.parametrize("name", list(PAPER_TABLE2))
    def test_within_25_percent_of_paper(self, energies, name):
        paper = PAPER_TABLE2[name]
        assert abs(energies[name].total_nj - paper) / paper < 0.25

    def test_cs_units_cost_4_to_5x(self, energies):
        # Sec. IV-C: "a 4x to 5x increase in energy consumption"
        base = energies["coregen"].total_nj
        assert 3.5 <= energies["pcs-fma"].total_nj / base <= 5.5
        assert 3.0 <= energies["fcs-fma"].total_nj / base <= 5.0

    def test_fcs_cheaper_than_pcs(self, energies):
        assert energies["fcs-fma"].total_nj < energies["pcs-fma"].total_nj

    def test_baselines_cheaper_than_cs_units(self, energies):
        top_base = max(energies["coregen"].total_nj,
                       energies["flopoco"].total_nj)
        assert top_base < energies["fcs-fma"].total_nj

    def test_csa_trees_dominate(self, energies):
        # "most of the energy was drawn in the large CSA trees"
        er = energies["pcs-fma"]
        assert er.logic_nj > er.dsp_nj + er.register_nj + er.clock_nj


class TestGlitchClassification:
    def test_csa_class(self):
        assert glitch_factor("csatree8x164") > glitch_factor("mux6x110")
        assert glitch_factor("pp-merge") == glitch_factor("window-3to2")

    def test_default_class(self):
        assert glitch_factor("exp-logic") == 1.0

    def test_invalid_activity_rejected(self):
        design = design_by_name("coregen", VIRTEX6)
        report = synthesize(design, VIRTEX6)
        with pytest.raises(ValueError):
            estimate_energy(design, report, 1.5, VIRTEX6)

    def test_scalar_activity_accepted(self):
        design = design_by_name("coregen", VIRTEX6)
        report = synthesize(design, VIRTEX6)
        er = estimate_energy(design, report, 0.4, VIRTEX6)
        assert er.total_nj > 0
