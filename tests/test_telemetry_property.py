"""Property tests: telemetry aggregation is merge-order independent.

The parallel runners (conformance shards, resilient fault campaigns)
merge per-worker snapshots in whatever order workers finish.  These
Hypothesis properties pin the algebra that makes that safe: snapshot
merge is associative and commutative with the empty snapshot as
identity, so *any* merge tree over *any* permutation of the per-shard
snapshots serializes to the same canonical bytes as the serial run.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry import (Snapshot, SpanStat, Telemetry, canonical_bytes,
                             merge_snapshots)

TAGS = st.sampled_from(["a", "b", "c", "fma.scalar.norm.zd",
                        "conformance.shard"])

counters_st = st.dictionaries(TAGS, st.integers(0, 1 << 40), max_size=4)
gauges_st = st.dictionaries(TAGS, st.integers(0, 1 << 40), max_size=4)
events_st = st.lists(
    st.fixed_dictionaries({"tag": TAGS, "n": st.integers(0, 9)}),
    max_size=4)


@st.composite
def span_stats(draw) -> SpanStat:
    durations = draw(st.lists(st.integers(0, 10 ** 12),
                              min_size=1, max_size=5))
    return SpanStat(len(durations), sum(durations), min(durations),
                    max(durations))


spans_st = st.dictionaries(TAGS, span_stats(), max_size=3)


@st.composite
def snapshots(draw) -> Snapshot:
    return Snapshot.build(draw(counters_st), draw(spans_st),
                          draw(gauges_st), draw(events_st),
                          label=draw(st.sampled_from(["", "s0", "s1"])))


def bytes_of(s: Snapshot) -> bytes:
    return canonical_bytes(s)


class TestMergeAlgebra:
    @given(snapshots())
    def test_empty_is_identity(self, s):
        assert bytes_of(s.merged(Snapshot.empty())) == bytes_of(s)
        assert bytes_of(Snapshot.empty().merged(s)) == bytes_of(s)

    @given(snapshots(), snapshots())
    def test_commutative(self, a, b):
        assert bytes_of(a.merged(b)) == bytes_of(b.merged(a))

    @given(snapshots(), snapshots(), snapshots())
    def test_associative(self, a, b, c):
        assert (bytes_of(a.merged(b).merged(c))
                == bytes_of(a.merged(b.merged(c))))

    @given(st.lists(snapshots(), max_size=6), st.randoms())
    def test_any_permutation_any_fold_equals_serial(self, snaps, rnd):
        serial = bytes_of(merge_snapshots(snaps))
        shuffled = list(snaps)
        rnd.shuffle(shuffled)
        # left fold over the shuffled order
        assert bytes_of(merge_snapshots(shuffled)) == serial
        # balanced binary fold (the shape a worker pool produces)
        work = [Snapshot.empty()] + shuffled
        while len(work) > 1:
            work = [work[i].merged(work[i + 1])
                    if i + 1 < len(work) else work[i]
                    for i in range(0, len(work), 2)]
        assert bytes_of(
            Snapshot(work[0].counters, work[0].spans, work[0].gauges,
                     work[0].events, merge_snapshots(shuffled).label)
        ) == serial


class TestSpanStatAlgebra:
    @given(span_stats(), span_stats(), span_stats())
    def test_associative(self, a, b, c):
        assert a.merged(b).merged(c) == a.merged(b.merged(c))

    @given(span_stats(), span_stats())
    def test_commutative(self, a, b):
        assert a.merged(b) == b.merged(a)

    @given(span_stats())
    def test_identity(self, s):
        assert s.merged(SpanStat()) == s
        assert SpanStat().merged(s) == s


class TestSplitWorkloadEqualsWhole:
    """Recording N observations split across K collectors, then merging,
    equals recording them all in one collector -- the concrete guarantee
    the sharded runners rely on."""

    @given(st.lists(st.tuples(TAGS, st.integers(1, 100)),
                    min_size=1, max_size=20),
           st.integers(2, 4), st.randoms())
    def test_sharded_counting(self, increments, k, rnd):
        whole = Telemetry()
        shards = [Telemetry() for _ in range(k)]
        for tag, n in increments:
            whole.count(tag, n)
            rnd.choice(shards).count(tag, n)
        merged = merge_snapshots(s.snapshot() for s in shards)
        assert (bytes_of(merged) == bytes_of(whole.snapshot()))
